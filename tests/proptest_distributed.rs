//! Property tests for the distributed-merge and snapshot surfaces:
//! arbitrary stream splits must merge back to (approximately) the
//! whole-stream summary, and snapshots must round-trip exactly.

use proptest::prelude::*;
use td_conformance::Oracle;
use td_counters::{ExactDecayedSum, ExpCounter, PolyExpCounter, QuantizedExpCounter};
use td_eh::{DominationEh, WindowSketch};
use timedecay::{CascadedEh, Constant, DecayFunction, Exponential, Polynomial, Wbmh};

/// A random stream plus a random site assignment for each item.
fn split_stream_strategy() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    proptest::collection::vec((1u64..4, 0u64..8, any::<bool>()), 10..300).prop_map(|steps| {
        let mut t = 0u64;
        steps
            .into_iter()
            .map(|(dt, f, site)| {
                t += dt;
                (t, f, site)
            })
            .collect()
    })
}

/// A random stream dealt across three sites.
fn three_site_stream() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    proptest::collection::vec((1u64..4, 0u64..8, 0u64..3), 10..300).prop_map(|steps| {
        let mut t = 0u64;
        steps
            .into_iter()
            .map(|(dt, f, site)| {
                t += dt;
                (t, f, site)
            })
            .collect()
    })
}

/// Certified 3-way merge associativity: the stream is dealt across
/// three shards (every shard's clock mirrored through `advance` so
/// merge preconditions hold), then folded in both association orders —
/// `(s0 ⊕ s1) ⊕ s2` and `s0 ⊕ (s1 ⊕ s2)`. Each fold's answer must land
/// inside the envelope the *merged summary itself* certifies via
/// `StreamAggregate::error_bound`, checked against the exact oracle of
/// the whole stream.
fn certify_three_way_split<A, G>(
    make: impl Fn() -> A,
    decay: G,
    items: &[(u64, u64, u64)],
) -> Result<(), String>
where
    A: timedecay::StreamAggregate + Clone,
    G: DecayFunction,
{
    let mut oracle = Oracle::new(decay);
    let mut shards: Vec<A> = (0..3).map(|_| make()).collect();
    for &(t, f, site) in items {
        oracle.observe(t, f);
        for (i, s) in shards.iter_mut().enumerate() {
            if i == site as usize {
                s.observe(t, f);
            } else {
                s.advance(t);
            }
        }
    }
    let t_end = items.last().map(|&(t, _, _)| t).unwrap_or(1) + 1;
    for s in shards.iter_mut() {
        s.advance(t_end);
    }

    let mut left = shards[0].clone();
    left.merge_from(&shards[1]);
    left.merge_from(&shards[2]);

    let mut tail = shards[1].clone();
    tail.merge_from(&shards[2]);
    let mut right = shards[0].clone();
    right.merge_from(&tail);

    let truth = oracle.decayed_sum(t_end);
    let slop = 1e-9 * truth.abs().max(1.0);
    for (label, merged) in [("(s0+s1)+s2", &left), ("s0+(s1+s2)", &right)] {
        let est = merged.query(t_end);
        let bound = merged.error_bound();
        if !bound.admits(est, truth, slop) {
            return Err(format!(
                "{label}: est {est} outside envelope [-{}, +{}] of truth {truth}",
                bound.lower, bound.upper
            ));
        }
    }
    Ok(())
}

proptest! {
    /// Exponential counters merge exactly.
    #[test]
    fn exp_counter_merge_is_exact(items in split_stream_strategy(), lambda in 0.001f64..0.5) {
        let g = Exponential::new(lambda);
        let mut whole = ExpCounter::new(g);
        let mut a = ExpCounter::new(g);
        let mut b = ExpCounter::new(g);
        for &(t, f, site) in &items {
            whole.observe(t, f);
            if site {
                a.observe(t, f);
            } else {
                b.observe(t, f);
            }
        }
        a.merge_from(&b);
        let t_end = items.last().map(|&(t, _, _)| t).unwrap_or(1) + 1;
        let (m, w) = (a.query(t_end), whole.query(t_end));
        prop_assert!((m - w).abs() <= 1e-9 * w.max(1.0), "{m} vs {w}");
    }

    /// Polyexponential pipelines merge exactly.
    #[test]
    fn polyexp_merge_is_exact(items in split_stream_strategy(), k in 0u32..4) {
        let lambda = 0.05;
        let mut whole = PolyExpCounter::new(k, lambda);
        let mut a = PolyExpCounter::new(k, lambda);
        let mut b = PolyExpCounter::new(k, lambda);
        for &(t, f, site) in &items {
            whole.observe(t, f);
            if site {
                a.observe(t, f);
            } else {
                b.observe(t, f);
            }
        }
        a.merge_from(&b);
        let t_end = items.last().map(|&(t, _, _)| t).unwrap_or(1) + 10;
        let (m, w) = (a.query(t_end), whole.query(t_end));
        prop_assert!((m - w).abs() <= 1e-9 * w.abs().max(1.0), "{m} vs {w}");
    }

    /// Two merged domination EHs answer window queries within 2ε of the
    /// union's truth.
    #[test]
    fn domination_eh_merge_within_band(items in split_stream_strategy(), eps in 0.05f64..0.5) {
        let mut a = DominationEh::new(eps, None);
        let mut b = DominationEh::new(eps, None);
        for &(t, f, site) in &items {
            if site {
                a.observe(t, f);
            } else {
                b.observe(t, f);
            }
        }
        a.merge_from(&b);
        let t_end = items.last().map(|&(t, _, _)| t).unwrap_or(1) + 1;
        let mut w = 1u64;
        while w < t_end {
            let truth: u64 = items
                .iter()
                .filter(|&&(t, _, _)| t + w >= t_end)
                .map(|&(_, f, _)| f)
                .sum();
            let est = a.query_window(t_end, w);
            prop_assert!(
                (est - truth as f64).abs() <= 2.0 * eps * truth as f64 + 8.0,
                "w={w}: est={est}, truth={truth}"
            );
            w *= 2;
        }
    }

    /// Merged WBMHs keep the single-histogram one-sided ε band.
    #[test]
    fn wbmh_merge_keeps_single_band(
        items in split_stream_strategy(),
        eps in 0.1f64..0.5,
        alpha in 0.5f64..2.5,
    ) {
        let g = Polynomial::new(alpha);
        let mut a = Wbmh::new(g, eps, 1 << 16);
        let mut b = Wbmh::new(g, eps, 1 << 16);
        let mut exact = ExactDecayedSum::new(g);
        for &(t, f, site) in &items {
            exact.observe(t, f);
            if site {
                a.observe(t, f);
                b.advance(t);
            } else {
                b.observe(t, f);
                a.advance(t);
            }
        }
        let t_end = items.last().map(|&(t, _, _)| t).unwrap_or(1) + 1;
        a.advance(t_end);
        b.advance(t_end);
        a.merge_from(&b);
        let truth = exact.query(t_end);
        let est = a.query(t_end);
        prop_assert!(est >= truth * (1.0 - 1e-9), "{est} < {truth}");
        prop_assert!(est <= truth * (1.0 + eps) + 1e-9, "{est} > (1+{eps}){truth}");
    }

    /// CEH merge: one-sided within 2ε (two sites).
    #[test]
    fn ceh_merge_within_two_eps(items in split_stream_strategy(), eps in 0.05f64..0.5) {
        let g = Polynomial::new(1.0);
        let mut a = CascadedEh::new(g, eps);
        let mut b = CascadedEh::new(g, eps);
        let mut exact = ExactDecayedSum::new(g);
        for &(t, f, site) in &items {
            exact.observe(t, f);
            if site {
                a.observe(t, f);
            } else {
                b.observe(t, f);
            }
        }
        a.merge_from(&b);
        let t_end = items.last().map(|&(t, _, _)| t).unwrap_or(1) + 1;
        let truth = exact.query(t_end);
        let est = a.query(t_end);
        prop_assert!(est >= truth * (1.0 - 1e-9), "{est} < {truth}");
        prop_assert!(est <= truth * (1.0 + 2.0 * eps) + 1e-9, "{est} vs {truth}");
    }

    /// 3-way associativity, exact counters: both folds land inside the
    /// certified envelope (which is exact up to f64 order).
    #[test]
    fn three_way_split_certifies_exact_sum(items in three_site_stream(), alpha in 0.5f64..2.5) {
        let g = Polynomial::new(alpha);
        certify_three_way_split(|| ExactDecayedSum::new(g), g, &items)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// 3-way associativity, §3.1 exponential counter.
    #[test]
    fn three_way_split_certifies_exp_counter(items in three_site_stream(), lambda in 0.001f64..0.5) {
        let g = Exponential::new(lambda);
        certify_three_way_split(|| ExpCounter::new(g), g, &items)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// 3-way associativity, quantized counter: the envelope widens with
    /// accumulated roundings (merges included) and must still hold.
    #[test]
    fn three_way_split_certifies_quantized_counter(
        items in three_site_stream(),
        m in 12u32..24,
    ) {
        let g = Exponential::new(0.05);
        certify_three_way_split(|| QuantizedExpCounter::new(g, m), g, &items)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// 3-way associativity, §3.4 pipelined counters.
    #[test]
    fn three_way_split_certifies_polyexp(items in three_site_stream(), k in 0u32..4) {
        let g = timedecay::PolyExponential::new(k, 0.05);
        certify_three_way_split(|| PolyExpCounter::new(k, 0.05), g, &items)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// 3-way associativity, Theorem 1 cascaded EH: the three-site
    /// fan-in widens the one-sided envelope to 3ε.
    #[test]
    fn three_way_split_certifies_ceh(items in three_site_stream(), eps in 0.05f64..0.5) {
        let g = Polynomial::new(1.0);
        certify_three_way_split(|| CascadedEh::new(g, eps), g, &items)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// 3-way associativity, §5 WBMH (mirrored clocks are the merge
    /// precondition — `certify_three_way_split` maintains them).
    #[test]
    fn three_way_split_certifies_wbmh(items in three_site_stream(), eps in 0.1f64..0.5) {
        let g = Polynomial::new(1.0);
        certify_three_way_split(|| Wbmh::new(g, eps, 1 << 16), g, &items)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// 3-way associativity, §3.2 domination EH as a landmark counter.
    #[test]
    fn three_way_split_certifies_domination_eh(items in three_site_stream(), eps in 0.05f64..0.5) {
        certify_three_way_split(|| DominationEh::new(eps, None), Constant, &items)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Snapshot/restore is an exact round-trip at arbitrary cut points,
    /// and the restored histogram continues identically.
    #[test]
    fn wbmh_snapshot_round_trip(
        items in split_stream_strategy(),
        cut in 0.1f64..0.9,
        approx in any::<bool>(),
    ) {
        let g = Polynomial::new(1.0);
        let count_eps = approx.then_some(0.1);
        let mut h = match count_eps {
            None => Wbmh::new(g, 0.2, 1 << 16),
            Some(ce) => Wbmh::with_approx_counts(g, 0.2, 1 << 16, ce),
        };
        let cut_idx = ((items.len() as f64) * cut) as usize;
        for &(t, f, _) in &items[..cut_idx] {
            h.observe(t, f);
        }
        let snap = h.snapshot();
        let mut restored = Wbmh::restore(g, 0.2, 1 << 16, count_eps, &snap);
        for &(t, f, _) in &items[cut_idx..] {
            h.observe(t, f);
            restored.observe(t, f);
        }
        let t_end = items.last().map(|&(t, _, _)| t).unwrap_or(1) + 1;
        prop_assert_eq!(h.query(t_end), restored.query(t_end));
        prop_assert_eq!(h.snapshot(), restored.snapshot());
    }
}
