//! Failure-injection and boundary-condition tests across the facade:
//! extreme values, giant time jumps, degenerate parameters.

use timedecay::{
    BackendChoice, CascadedEh, DecayFunction, DecayedSum, Exponential, LogDecay, Polynomial,
    SlidingWindow, StorageAccounting, Wbmh,
};

#[test]
fn huge_values_do_not_overflow() {
    let mut s = DecayedSum::builder(Polynomial::new(1.0))
        .epsilon(0.1)
        .build();
    for t in 1..=100u64 {
        s.observe(t, u64::MAX / 128);
    }
    let v = s.query(101);
    assert!(v.is_finite() && v > 0.0);
}

#[test]
fn giant_time_jumps() {
    // Items separated by ~2^50 ticks: structures must not allocate or
    // loop proportionally to the gap.
    let mut s = DecayedSum::builder(Polynomial::new(1.0))
        .epsilon(0.1)
        .max_age(1 << 60)
        .build();
    let times = [1u64, 1 << 20, 1 << 40, 1 << 50, (1 << 50) + 1];
    for &t in &times {
        s.observe(t, 5);
    }
    let q = (1u64 << 50) + 2;
    let want: f64 = times
        .iter()
        .map(|&t| 5.0 * Polynomial::new(1.0).weight(q - t))
        .sum();
    let got = s.query(q);
    assert!((got - want).abs() <= 0.25 * want, "{got} vs {want}");
}

#[test]
fn times_near_u64_max() {
    let start = u64::MAX - 10_000;
    let mut s = CascadedEh::new(Exponential::new(0.001), 0.1);
    for i in 0..5_000u64 {
        s.observe(start + i, 1);
    }
    let v = s.query(start + 5_000);
    assert!(v.is_finite() && v > 0.0);
}

#[test]
fn epsilon_one_is_permitted_and_coarse() {
    let mut s = DecayedSum::builder(SlidingWindow::new(100))
        .epsilon(1.0)
        .build();
    for t in 1..=1_000u64 {
        s.observe(t, 1);
    }
    let v = s.query(1_001);
    // Window truth 100; ε = 1 allows a factor-2 band.
    assert!((40.0..=210.0).contains(&v), "v={v}");
    // And it should be very cheap.
    assert!(s.storage_bits() < 600, "bits={}", s.storage_bits());
}

#[test]
fn tiny_epsilon_stays_tight() {
    let mut s = DecayedSum::builder(SlidingWindow::new(512))
        .epsilon(0.01)
        .build();
    for t in 1..=5_000u64 {
        s.observe(t, 1);
    }
    let v = s.query(5_001);
    assert!((v - 512.0).abs() <= 0.01 * 512.0 + 1.0, "v={v}");
}

#[test]
fn zero_value_streams_cost_nothing() {
    let mut s = DecayedSum::builder(Polynomial::new(2.0))
        .epsilon(0.1)
        .build();
    for t in 1..=10_000u64 {
        s.observe(t, 0);
    }
    assert_eq!(s.query(10_001), 0.0);
    assert_eq!(s.storage_bits(), 0);
}

#[test]
fn single_item_all_backends() {
    let makers: Vec<Box<dyn Fn() -> DecayedSum>> = vec![
        Box::new(|| DecayedSum::new(Exponential::new(0.1))),
        Box::new(|| DecayedSum::new(SlidingWindow::new(50))),
        Box::new(|| {
            DecayedSum::builder(Polynomial::new(1.0))
                .epsilon(0.1)
                .build()
        }),
        Box::new(|| {
            DecayedSum::builder(Polynomial::new(1.0))
                .backend(BackendChoice::ForceExact)
                .build()
        }),
    ];
    for mk in &makers {
        // One item at age 5: single buckets never approximate, so every
        // backend answers with some positive value very close to
        // 7·g(5) of its decay.
        let mut s = mk();
        s.observe(10, 7);
        assert!(s.query(15) > 0.0, "{}", s.backend_name());
        // Query at the arrival tick excludes the item (§2.1).
        let mut s2 = mk();
        s2.observe(10, 7);
        assert_eq!(s2.query(10), 0.0, "{}", s2.backend_name());
    }
    // Pin the exact value for the polynomial route.
    let mut s = DecayedSum::builder(Polynomial::new(1.0))
        .epsilon(0.1)
        .build();
    s.observe(10, 7);
    let want = 7.0 * Polynomial::new(1.0).weight(5);
    assert!((s.query(15) - want).abs() < 1e-9);
}

#[test]
fn logd_summary_is_tiny_even_for_huge_streams() {
    let mut h = Wbmh::new(LogDecay::new(1), 0.2, 1 << 40);
    // Sparse arrivals over an enormous span.
    let mut t = 1u64;
    while t < 1 << 40 {
        h.observe(t, 1);
        t = t.saturating_mul(3) + 1;
    }
    h.advance(1 << 40);
    assert!(h.num_buckets() < 40, "buckets={}", h.num_buckets());
    assert!(h.storage_bits() < 500, "bits={}", h.storage_bits());
    assert!(h.query(1 << 40) > 0.0);
}

#[test]
fn repeated_queries_are_pure() {
    let mut s = DecayedSum::builder(Polynomial::new(1.0))
        .epsilon(0.1)
        .build();
    for t in 1..=500u64 {
        s.observe(t, 2);
    }
    let a = s.query(501);
    let b = s.query(501);
    let c = s.query(501);
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn observing_at_the_same_tick_accumulates() {
    let mut s = DecayedSum::builder(Polynomial::new(1.0))
        .epsilon(0.1)
        .build();
    for _ in 0..1_000 {
        s.observe(42, 1);
    }
    let got = s.query(43);
    assert!((got - 1_000.0).abs() < 1e-9, "got={got}");
}
