//! Property-based tests of the workspace's core invariants, driven by
//! randomized streams and decay parameters.

use proptest::prelude::*;
use td_counters::approx::{round_to_mantissa, ApproxCount};
use td_counters::ExactDecayedSum;
use td_eh::{ClassicEh, DominationEh, WindowSketch};
use td_sketch::MvdList;
use timedecay::{
    CascadedEh, DecayFunction, Exponential, Polynomial, RegionSchedule, SlidingWindow, Wbmh,
};

/// A random bursty 0/1..9-valued stream of bounded length.
fn stream_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((1u64..4, 0u64..10), 10..400).prop_map(|steps| {
        let mut t = 0u64;
        steps
            .into_iter()
            .map(|(dt, f)| {
                t += dt;
                (t, f)
            })
            .collect()
    })
}

proptest! {
    /// Classic EH: window estimates stay within ε on arbitrary 0/1
    /// streams, for every power-of-two window.
    #[test]
    fn classic_eh_window_error(items in stream_strategy(), eps in 0.02f64..0.5) {
        let mut eh = ClassicEh::new(eps, None);
        let mut ones = Vec::new();
        for &(t, f) in &items {
            let bit = u64::from(f % 2 == 1);
            eh.observe(t, bit);
            if bit == 1 {
                ones.push(t);
            }
        }
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        let mut w = 1u64;
        while w < t_end {
            let truth = ones.iter().filter(|&&t| t + w >= t_end).count() as f64;
            let est = eh.query_window(t_end, w);
            prop_assert!(
                (est - truth).abs() <= eps * truth + 1.0,
                "w={w}: est={est}, truth={truth}"
            );
            w *= 2;
        }
    }

    /// Domination EH: bulk-value window estimates stay within ε plus
    /// the value of a single tick (the straddler granularity).
    #[test]
    fn domination_eh_window_error(items in stream_strategy(), eps in 0.02f64..0.5) {
        let mut eh = DominationEh::new(eps, None);
        for &(t, f) in &items {
            eh.observe(t, f);
        }
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        let mut w = 1u64;
        while w < t_end {
            let truth: u64 = items
                .iter()
                .filter(|&&(t, _)| t + w >= t_end)
                .map(|&(_, f)| f)
                .sum();
            let est = eh.query_window(t_end, w);
            prop_assert!(
                (est - truth as f64).abs() <= eps * truth as f64 + 10.0,
                "w={w}: est={est}, truth={truth}"
            );
            w *= 2;
        }
    }

    /// Cascaded EH (Theorem 1): one-sided (1+ε) bound for polynomial
    /// decays of random exponent.
    #[test]
    fn ceh_one_sided_bound(
        items in stream_strategy(),
        eps in 0.05f64..0.5,
        alpha in 0.3f64..3.0,
    ) {
        let g = Polynomial::new(alpha);
        let mut ceh = CascadedEh::new(g, eps);
        let mut exact = ExactDecayedSum::new(g);
        for &(t, f) in &items {
            ceh.observe(t, f);
            exact.observe(t, f);
        }
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        let truth = exact.query(t_end);
        let est = ceh.query(t_end);
        prop_assert!(est >= truth * (1.0 - 1e-9), "{est} < {truth}");
        prop_assert!(est <= truth * (1.0 + eps) + 1e-9, "{est} > (1+{eps}){truth}");
    }

    /// WBMH: the same one-sided bound, plus non-negativity.
    #[test]
    fn wbmh_one_sided_bound(
        items in stream_strategy(),
        eps in 0.05f64..0.5,
        alpha in 0.3f64..3.0,
    ) {
        let g = Polynomial::new(alpha);
        let mut h = Wbmh::new(g, eps, 1 << 16);
        let mut exact = ExactDecayedSum::new(g);
        for &(t, f) in &items {
            h.observe(t, f);
            exact.observe(t, f);
        }
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        let truth = exact.query(t_end);
        let est = h.query(t_end);
        prop_assert!(est >= truth * (1.0 - 1e-9), "{est} < {truth}");
        prop_assert!(est <= truth * (1.0 + eps) + 1e-9, "{est} > (1+{eps}){truth}");
    }

    /// Region schedules: weights within one region agree to (1+ε), and
    /// region lookup is consistent with spans.
    #[test]
    fn region_schedule_band(eps in 0.05f64..4.0, alpha in 0.3f64..3.0) {
        let g = Polynomial::new(alpha);
        let s = RegionSchedule::compute(&g, eps, 1 << 14);
        for (i, start, end) in s.iter() {
            let end = end.unwrap_or(s.max_age());
            prop_assert!(
                (1.0 + eps) * g.weight(end) >= g.weight(start) * (1.0 - 1e-12),
                "region {i} [{start},{end}] too wide"
            );
            prop_assert_eq!(s.region_of(start), i);
        }
    }

    /// Mantissa rounding: relative error ≤ 2^{1−bits}, idempotent.
    #[test]
    fn rounding_error_bound(x in 1e-6f64..1e18, bits in 1u32..52) {
        let r = round_to_mantissa(x, bits);
        let rel = (r - x).abs() / x;
        prop_assert!(rel <= (-(bits as f64 - 1.0)).exp2() + 1e-15);
        prop_assert_eq!(round_to_mantissa(r, bits), r);
    }

    /// ApproxCount ladder: arbitrary merge trees stay within the
    /// accumulated bound.
    #[test]
    fn approx_count_ladder(counts in proptest::collection::vec(0u64..1000, 2..64)) {
        let eps = 0.05;
        let truth: u64 = counts.iter().sum();
        // Left-deep merge (worst depth).
        let mut acc = ApproxCount::exact(counts[0], eps);
        for &c in &counts[1..] {
            acc = ApproxCount::merge(&acc, &ApproxCount::exact(c, eps));
        }
        if truth > 0 {
            let rel = (acc.value() - truth as f64).abs() / truth as f64;
            prop_assert!(rel <= acc.error_bound() + 1e-12);
        }
    }

    /// MV/D: the retained set is exactly the suffix minima of the rank
    /// sequence.
    #[test]
    fn mvd_is_suffix_minima(ranks in proptest::collection::vec(0.0f64..1.0, 1..200)) {
        let mut list: MvdList<usize> = MvdList::with_seed(0);
        for (i, &r) in ranks.iter().enumerate() {
            list.observe_with_rank(i as u64 + 1, i, r);
        }
        let retained: Vec<usize> = list.entries().map(|e| e.value).collect();
        let expected: Vec<usize> = (0..ranks.len())
            .filter(|&i| ranks[i + 1..].iter().all(|&later| later > ranks[i]))
            .collect();
        prop_assert_eq!(retained, expected);
    }

    /// The decayed sum is monotone under adding items (more data never
    /// lowers the estimate at a fixed query time).
    #[test]
    fn sum_monotone_in_items(items in stream_strategy()) {
        let g = SlidingWindow::new(1 << 20);
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        let mut partial = CascadedEh::new(g, 0.1);
        let mut prev = 0.0;
        for &(t, f) in &items {
            partial.observe(t, f);
            let v = partial.query(t_end);
            prop_assert!(v + 1e-9 >= prev, "estimate dropped: {v} < {prev}");
            prev = v;
        }
    }

    /// EXPD counter equals the exact baseline (it is an exact algorithm
    /// in f64).
    #[test]
    fn exp_counter_matches_exact(items in stream_strategy(), lambda in 0.001f64..1.0) {
        use td_counters::ExpCounter;
        let g = Exponential::new(lambda);
        let mut c = ExpCounter::new(g);
        let mut exact = ExactDecayedSum::new(g);
        for &(t, f) in &items {
            c.observe(t, f);
            exact.observe(t, f);
        }
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        let (a, b) = (c.query(t_end), exact.query(t_end));
        prop_assert!((a - b).abs() <= 1e-9 * b.max(1.0), "{a} vs {b}");
    }
}
