//! End-to-end integration: the facade API against the exact baseline,
//! across every decay class the paper discusses.

use timedecay::{
    BackendChoice, ClosureDecay, Constant, DecayFunction, DecayedSum, Exponential, Polynomial,
    ShiftedPolynomial, SlidingWindow, StorageAccounting,
};

fn exact_sum<G: DecayFunction>(g: &G, items: &[(u64, u64)], t: u64) -> f64 {
    items
        .iter()
        .filter(|&&(ti, _)| ti < t)
        .map(|&(ti, f)| f as f64 * g.weight(t - ti))
        .sum()
}

fn bursty_items(n: u64, seed: u64) -> Vec<(u64, u64)> {
    let mut x = seed | 1;
    let mut out = Vec::new();
    let mut t = 0u64;
    while t < n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t += 1 + x % 7; // irregular arrival spacing
        out.push((t, x % 20));
    }
    out
}

fn audit<G: DecayFunction + Clone + 'static>(g: G, eps: f64, band: f64) {
    let items = bursty_items(20_000, 0xC0FFEE);
    let mut s = DecayedSum::builder(g.clone()).epsilon(eps).build();
    for &(t, f) in &items {
        s.observe(t, f);
    }
    let t_query = items.last().unwrap().0 + 1;
    let truth = exact_sum(&g, &items, t_query);
    let est = s.query(t_query);
    assert!(
        (est - truth).abs() <= band * truth + 1e-9,
        "{} ({}): est={est}, truth={truth}",
        g.describe(),
        s.backend_name()
    );
}

#[test]
fn facade_accuracy_exponential() {
    audit(Exponential::new(0.01), 0.05, 0.05);
    audit(Exponential::with_half_life(1000), 0.05, 0.05);
}

#[test]
fn facade_accuracy_sliding_window() {
    audit(SlidingWindow::new(500), 0.05, 0.05);
    audit(SlidingWindow::new(10_000), 0.05, 0.05);
}

#[test]
fn facade_accuracy_polynomial() {
    // WBMH band: region ε composed with the count ladder.
    audit(Polynomial::new(0.5), 0.05, 0.15);
    audit(Polynomial::new(1.0), 0.05, 0.15);
    audit(Polynomial::new(2.0), 0.05, 0.15);
    audit(ShiftedPolynomial::new(1.0, 100), 0.05, 0.15);
}

#[test]
fn facade_accuracy_general_closure() {
    let g = ClosureDecay::new(|age| 1.0 / (1.0 + (age as f64).ln_1p())).with_name("1/(1+ln(1+x))");
    audit(g, 0.05, 0.05);
}

#[test]
fn facade_accuracy_constant() {
    audit(Constant, 0.05, 1e-12);
}

#[test]
fn storage_hierarchy_matches_paper_table() {
    // Feed the same 50k-tick dense stream under each decay class and
    // check the §8 storage ordering: EXPD counter < WBMH(POLYD) <
    // CEH(SLIWIN-sized) < exact.
    let n = 50_000u64;
    let mut exp = DecayedSum::builder(Exponential::new(0.001))
        .epsilon(0.05)
        .build();
    let mut pol = DecayedSum::builder(Polynomial::new(1.0))
        .epsilon(0.05)
        .build();
    let mut win = DecayedSum::builder(SlidingWindow::new(n))
        .epsilon(0.05)
        .build();
    let mut exact = DecayedSum::builder(Polynomial::new(1.0))
        .backend(BackendChoice::ForceExact)
        .build();
    for t in 1..=n {
        exp.observe(t, 1);
        pol.observe(t, 1);
        win.observe(t, 1);
        exact.observe(t, 1);
    }
    let (b_exp, b_pol, b_win, b_exact) = (
        exp.storage_bits(),
        pol.storage_bits(),
        win.storage_bits(),
        exact.storage_bits(),
    );
    assert!(b_exp < b_pol, "exp={b_exp} pol={b_pol}");
    assert!(b_pol < b_win, "pol={b_pol} win={b_win}");
    assert!(b_win < b_exact, "win={b_win} exact={b_exact}");
}

#[test]
fn queries_between_arrivals_are_monotone_for_nonincreasing_streams() {
    // After arrivals stop, the decayed sum must be non-increasing in T
    // (weights only decay).
    let mut s = DecayedSum::builder(Polynomial::new(1.0))
        .epsilon(0.05)
        .build();
    for t in 1..=1_000u64 {
        s.observe(t, 2);
    }
    let mut prev = f64::INFINITY;
    for q in 1_001..1_200u64 {
        let v = s.query(q);
        assert!(v <= prev + 1e-9, "q={q}: {v} > {prev}");
        prev = v;
    }
}
