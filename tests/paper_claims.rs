//! Integration tests that pin the paper's own worked examples and
//! qualitative claims, end to end through the public API.

use td_stream::link::{LinkTrace, DAY, HOUR};
use td_stream::LowerBoundFamily;
use timedecay::{
    DecayFunction, DecayedSum, Exponential, Polynomial, RegionSchedule, SlidingWindow, TableDecay,
    Wbmh,
};

/// §5 worked example: region boundaries for g = 1/x², 1+ε = 5.
#[test]
fn section5_region_boundaries() {
    let s = RegionSchedule::compute(&Polynomial::new(2.0), 4.0, 1 << 16);
    assert_eq!(
        (s.boundary(1), s.boundary(2), s.boundary(3)),
        (3, 7, 16),
        "paper quotes b1=3, b2=7, b3=16"
    );
}

/// §5 worked trace: the bucket evolution at T = 1..10.
#[test]
fn section5_bucket_trace() {
    let mut h = Wbmh::new(Polynomial::new(2.0), 4.0, 1 << 16);
    let expected: &[(u64, &[(u64, u64)])] = &[
        (1, &[(0, 0)]),
        (2, &[(0, 1)]),
        (3, &[(0, 1), (2, 2)]),
        (4, &[(0, 1), (2, 3)]),
        (6, &[(0, 3), (4, 5)]),
        (8, &[(0, 3), (4, 5), (6, 7)]),
        (9, &[(0, 3), (4, 5), (6, 7), (8, 8)]),
        (10, &[(0, 3), (4, 7), (8, 9)]),
    ];
    let mut fed = 0u64;
    for &(t_query, spans) in expected {
        while fed < t_query {
            h.observe(fed, 1);
            fed += 1;
        }
        h.advance(t_query);
        let got: Vec<(u64, u64)> = h.bucket_spans().iter().map(|b| (b.start, b.end)).collect();
        assert_eq!(got, spans.to_vec(), "trace diverges at T={t_query}");
    }
}

/// §4.2 worked example: weights 8,5,3,2 and the grouped evaluation.
#[test]
fn section4_eq4_example() {
    let g = TableDecay::new(vec![8.0, 8.0, 5.0, 3.0, 2.0], 0.0).unwrap();
    // One item per tick t=0..3: S(4) = 8f(3)+5f(2)+3f(1)+2f(0) = 18.
    let mut s = DecayedSum::builder(g).epsilon(0.5).build();
    for t in 0..4u64 {
        s.observe(t, 1);
    }
    // With single-tick buckets the cascaded estimate is exact.
    assert_eq!(s.query(4), 18.0);
}

/// §1.2 / Figure 1: the crossover exists under POLYD and cannot occur
/// under EXPD or SLIWIN (checked through the approximate structures,
/// not just the exact weights).
#[test]
fn figure1_crossover_classes() {
    let t0 = HOUR;
    let l1 = LinkTrace::paper_l1(t0);
    let l2 = LinkTrace::paper_l2(t0);
    let l2_end = t0 + DAY + 30;
    let probes = [l2_end + 5, l2_end + 12 * HOUR, l2_end + 60 * DAY];
    let horizon = probes[2] + 1;

    let run = |mk: &dyn Fn() -> DecayedSum| -> Vec<(f64, f64)> {
        let mut s1 = mk();
        let mut s2 = mk();
        let mut out = Vec::new();
        for t in 1..=horizon {
            s1.observe(t, l1.demerit(t));
            s2.observe(t, l2.demerit(t));
            if probes.contains(&t) {
                out.push((s1.query(t + 1), s2.query(t + 1)));
            }
        }
        out
    };

    // POLYD(2): L2 worse right after its failure; L1 worse in the end.
    let poly = run(&|| {
        DecayedSum::builder(Polynomial::new(2.0))
            .epsilon(0.05)
            .build()
    });
    assert!(
        poly[0].1 > poly[0].0,
        "right after failure, L2 must rate worse"
    );
    assert!(poly[2].0 > poly[2].1, "months later, L1 must rate worse");

    // EXPD: whichever is worse at probe 1 is still worse at probe 2
    // (frozen ratio).
    let expd = run(&|| DecayedSum::new(Exponential::with_half_life(12 * HOUR)));
    let worse_mid = expd[1].0 > expd[1].1;
    let worse_late = expd[2].0 > expd[2].1;
    assert_eq!(worse_mid, worse_late, "EXPD verdict must be frozen");

    // SLIWIN(12h): months later both ratings are exactly zero.
    let win = run(&|| DecayedSum::new(SlidingWindow::new(12 * HOUR)));
    assert_eq!(win[2], (0.0, 0.0));
}

/// Theorem 2: the adversarial family's information survives a real
/// WBMH summary at 1/4 accuracy.
#[test]
fn theorem2_recovery_through_wbmh() {
    for code in [0b01011u64, 0b11100, 0b00000] {
        let bits: Vec<u8> = (0..5).map(|i| 1 + ((code >> i) & 1) as u8).collect();
        let fam = LowerBoundFamily::new(40, 1.0, bits.clone());
        let mut h = Wbmh::new(Polynomial::new(1.0), 0.05, u64::MAX / 4);
        for (t, c) in fam.arrivals() {
            h.observe(t, c);
        }
        let sums: Vec<f64> = (1..=5).map(|i| h.query(fam.probe_time(i))).collect();
        assert_eq!(fam.recover_bits(&sums), bits, "secret {code:b}");
    }
}

/// Lemma 3.2 in spirit: with polynomial decay, *exact* values of the
/// decayed sum at successive probe times distinguish distinct streams
/// (the Hilbert-matrix non-singularity made concrete for a small case).
#[test]
fn lemma32_exact_sums_distinguish_streams() {
    let n = 10u64;
    let g = Polynomial::new(1.0);
    // All 2^10 binary streams on t = 1..=10; compare S(T) for
    // T = 11..=20 — every pair must differ somewhere.
    let sums = |bits: u32| -> Vec<f64> {
        (n + 1..=2 * n)
            .map(|t| {
                (1..=n)
                    .filter(|&ti| bits >> (ti - 1) & 1 == 1)
                    .map(|ti| g.weight(t - ti))
                    .sum()
            })
            .collect()
    };
    let all: Vec<Vec<f64>> = (0..1u32 << n).map(sums).collect();
    for a in 0..all.len() {
        for b in a + 1..all.len() {
            let distinct = all[a]
                .iter()
                .zip(&all[b])
                .any(|(x, y)| (x - y).abs() > 1e-12);
            assert!(distinct, "streams {a:b} and {b:b} collide");
        }
    }
}
