//! Property tests that `observe_batch` is equivalent to item-by-item
//! `observe` on every backend: bit-identical histogram state for the
//! bucket-based sketches (EH, WBMH), and ≤1e-12 relative drift for the
//! f64 counters (whose only batch difference is summation order within
//! one tick).
//!
//! Streams here deliberately repeat ticks (bursts) — the batch paths
//! coalesce same-tick runs, and these tests pin down that the
//! coalescing changes nothing observable.

use proptest::prelude::*;
use td_counters::{ExactDecayedSum, ExpCounter, PolyExpCounter, QuantizedExpCounter};
use timedecay::{
    CascadedEh, ClassicEh, DecayedAverage, DecayedSum, DecayedVariance, DominationEh, Exponential,
    Polynomial, SlidingWindow, StorageAccounting, StreamAggregate, Wbmh, WindowSketch,
};

/// A bursty stream: non-decreasing times with frequent repeats, values
/// 0..20 (zeros included — they must be no-ops on the sketch paths).
fn bursty_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..3, 0u64..20), 10..300).prop_map(|steps| {
        let mut t = 1u64;
        steps
            .into_iter()
            .map(|(dt, f)| {
                t += dt;
                (t, f)
            })
            .collect()
    })
}

/// Feeds `items` to `agg` in batches of `chunk` items, mimicking an
/// ingest loop that drains a buffer of arbitrary size.
fn feed_chunks<A: StreamAggregate>(agg: &mut A, items: &[(u64, u64)], chunk: usize) {
    for c in items.chunks(chunk.max(1)) {
        agg.observe_batch(c);
    }
}

proptest! {
    /// DominationEh: the batch path must leave the *exact* same bucket
    /// list as the sequential path — merge passes fire at the same
    /// points, so this is equality of state, not of estimates.
    #[test]
    fn domination_eh_batch_is_bit_identical(
        items in bursty_stream(),
        eps in 0.05f64..0.8,
        chunk in 1usize..64,
    ) {
        let mut seq = DominationEh::new(eps, None);
        let mut bat = DominationEh::new(eps, None);
        for &(t, f) in &items {
            WindowSketch::observe(&mut seq, t, f);
        }
        feed_chunks(&mut bat, &items, chunk);
        prop_assert_eq!(seq.buckets(), bat.buckets());
        prop_assert_eq!(seq.live_total(), bat.live_total());
        prop_assert_eq!(seq.last_time(), bat.last_time());
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        prop_assert_eq!(seq.query_window(t_end, t_end), bat.query_window(t_end, t_end));
    }

    /// ClassicEh on 0/1 streams: identical bucket lists (the per-unit
    /// cascade is order-sensitive, so the batch path replays it 1:1).
    #[test]
    fn classic_eh_batch_is_bit_identical(
        items in bursty_stream(),
        eps in 0.05f64..0.8,
        chunk in 1usize..64,
    ) {
        let bits: Vec<(u64, u64)> = items.iter().map(|&(t, f)| (t, f % 2)).collect();
        let mut seq = ClassicEh::new(eps, None);
        let mut bat = ClassicEh::new(eps, None);
        for &(t, f) in &bits {
            WindowSketch::observe(&mut seq, t, f);
        }
        feed_chunks(&mut bat, &bits, chunk);
        prop_assert_eq!(seq.buckets(), bat.buckets());
        prop_assert_eq!(seq.live_total(), bat.live_total());
    }

    /// WBMH: full snapshot equality — sealed buckets, the open bucket,
    /// pending item, and merge bookkeeping all match.
    #[test]
    fn wbmh_batch_is_bit_identical(
        items in bursty_stream(),
        eps in 0.05f64..0.8,
        alpha in 0.3f64..3.0,
        chunk in 1usize..64,
    ) {
        let g = Polynomial::new(alpha);
        let mut seq = Wbmh::new(g, eps, 1 << 16);
        let mut bat = Wbmh::new(g, eps, 1 << 16);
        for &(t, f) in &items {
            seq.observe(t, f);
        }
        feed_chunks(&mut bat, &items, chunk);
        prop_assert_eq!(seq.snapshot(), bat.snapshot());
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        prop_assert_eq!(seq.query(t_end), bat.query(t_end));
    }

    /// Cascaded EH: estimates and storage agree exactly (the inner
    /// domination sketch is bit-identical, so queries must be too).
    #[test]
    fn ceh_batch_matches_sequential(
        items in bursty_stream(),
        eps in 0.05f64..0.8,
        alpha in 0.3f64..3.0,
        chunk in 1usize..64,
    ) {
        let g = Polynomial::new(alpha);
        let mut seq = CascadedEh::new(g, eps);
        let mut bat = CascadedEh::new(g, eps);
        for &(t, f) in &items {
            seq.observe(t, f);
        }
        feed_chunks(&mut bat, &items, chunk);
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        for dt in [0u64, 1, 7, 100] {
            prop_assert_eq!(seq.query(t_end + dt), bat.query(t_end + dt));
        }
        prop_assert_eq!(
            StorageAccounting::storage_bits(&seq),
            StorageAccounting::storage_bits(&bat)
        );
    }

    /// Counters: the batch path may reorder same-tick f64 additions, so
    /// allow 1e-12 relative drift; the exact baseline must match to the
    /// bit (its per-tick mass is folded in u64).
    #[test]
    fn counters_batch_drift_below_1e12(
        items in bursty_stream(),
        lambda in 0.001f64..0.5,
        chunk in 1usize..64,
    ) {
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs().max(1.0);

        let g = Exponential::new(lambda);
        let mut seq = ExpCounter::new(g);
        let mut bat = ExpCounter::new(g);
        for &(t, f) in &items {
            seq.observe(t, f);
        }
        feed_chunks(&mut bat, &items, chunk);
        prop_assert!(close(bat.query(t_end), seq.query(t_end)));

        let mut seq = QuantizedExpCounter::new(g, 52);
        let mut bat = QuantizedExpCounter::new(g, 52);
        for &(t, f) in &items {
            seq.observe(t, f);
        }
        feed_chunks(&mut bat, &items, chunk);
        prop_assert!(close(bat.query(t_end), seq.query(t_end)));

        let mut seq = PolyExpCounter::new(2, lambda);
        let mut bat = PolyExpCounter::new(2, lambda);
        for &(t, f) in &items {
            seq.observe(t, f);
        }
        feed_chunks(&mut bat, &items, chunk);
        prop_assert!(close(bat.query(t_end), seq.query(t_end)));

        let mut seq = ExactDecayedSum::new(g);
        let mut bat = ExactDecayedSum::new(g);
        for &(t, f) in &items {
            seq.observe(t, f);
        }
        feed_chunks(&mut bat, &items, chunk);
        prop_assert_eq!(seq.query(t_end), bat.query(t_end));
    }

    /// The unified facade: every auto-selected DecayedSum backend gives
    /// the same estimate for batched and sequential ingest.
    #[test]
    fn decayed_sum_batch_matches_sequential(
        items in bursty_stream(),
        chunk in 1usize..64,
    ) {
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        let mks: [fn() -> DecayedSum; 3] = [
            || DecayedSum::new(Exponential::new(0.05)),
            || DecayedSum::new(SlidingWindow::new(64)),
            || DecayedSum::new(Polynomial::new(1.5)),
        ];
        for mk in mks {
            let mut seq = mk();
            let mut bat = mk();
            for &(t, f) in &items {
                seq.observe(t, f);
            }
            feed_chunks(&mut bat, &items, chunk);
            let (a, b) = (seq.query(t_end), bat.query(t_end));
            prop_assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "{}: {} vs {}", seq.backend_name(), a, b
            );
        }
    }

    /// Composite aggregates route batches through every component
    /// stream: average and variance match their sequential selves.
    #[test]
    fn composite_batch_matches_sequential(
        items in bursty_stream(),
        eps in 0.05f64..0.5,
        chunk in 1usize..64,
    ) {
        let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
        let g = SlidingWindow::new(128);

        let mut seq = DecayedAverage::ceh(g, eps);
        let mut bat = DecayedAverage::ceh(g, eps);
        for &(t, f) in &items {
            StreamAggregate::observe(&mut seq, t, f);
        }
        feed_chunks(&mut bat, &items, chunk);
        prop_assert_eq!(
            StreamAggregate::query(&seq, t_end),
            StreamAggregate::query(&bat, t_end)
        );

        let mut seq = DecayedVariance::ceh(g, eps);
        let mut bat = DecayedVariance::ceh(g, eps);
        for &(t, f) in &items {
            StreamAggregate::observe(&mut seq, t, f);
        }
        feed_chunks(&mut bat, &items, chunk);
        prop_assert_eq!(
            StreamAggregate::query(&seq, t_end),
            StreamAggregate::query(&bat, t_end)
        );
    }
}
