//! Integration tests for the §7 aggregates through the facade, on the
//! synthetic application workloads.

use rand::rngs::StdRng;
use rand::SeedableRng;
use td_stream::{DriftingValues, QueueWalk, UniformValues};
use timedecay::{
    DecayFunction, DecayedAverage, DecayedLpNorm, DecayedQuantile, DecayedSampler, DecayedVariance,
    Exponential, Polynomial, SlidingWindow,
};

#[test]
fn decayed_average_follows_drift() {
    let mut a = DecayedAverage::wbmh(Polynomial::new(2.0), 0.05, 1 << 22);
    let n = 4_000u64;
    for (t, f) in DriftingValues::new(50.0, 500.0, n, 10, 3).take(n as usize) {
        a.observe(t, f);
    }
    let avg = a.query(n + 1).unwrap();
    // POLYD(2) is recency-heavy: the average must sit near the drift's
    // end value, far from the lifetime mean (~275).
    assert!(avg > 400.0, "avg={avg}");
}

#[test]
fn window_average_equals_arithmetic_mean() {
    let g = SlidingWindow::new(1_000);
    let mut a = DecayedAverage::ceh(g, 0.05);
    let items: Vec<(u64, u64)> = UniformValues::new(0, 200, 9).take(10_000).collect();
    for &(t, f) in &items {
        a.observe(t, f);
    }
    let got = a.query(10_001).unwrap();
    let want: f64 = items[9_000..].iter().map(|&(_, f)| f as f64).sum::<f64>() / 1_000.0;
    assert!((got - want).abs() <= 0.12 * want, "{got} vs {want}");
}

#[test]
fn variance_detects_regime_change_in_queue() {
    // A queue walk alternates calm (variance small) and congested
    // (variance large) regimes; a windowed variance must register both.
    let mut v = DecayedVariance::ceh(SlidingWindow::new(2_000), 0.05);
    let mut max_sd = 0.0f64;
    let mut min_sd = f64::INFINITY;
    for (t, q) in QueueWalk::new(300, 0.003, 0.02, 5).take(50_000) {
        v.observe(t, q);
        if t % 5_000 == 0 {
            if let Some(sd) = v.std_dev(t + 1) {
                max_sd = max_sd.max(sd);
                min_sd = min_sd.min(sd);
            }
        }
    }
    assert!(
        max_sd > 4.0 * min_sd.max(1e-9),
        "max={max_sd}, min={min_sd}"
    );
}

#[test]
fn sampler_prefers_recent_items_under_steep_decay() {
    let mut recent = 0u32;
    let trials = 300u64;
    for seed in 0..trials {
        let mut s: DecayedSampler<_, u64> = DecayedSampler::new(Polynomial::new(2.5), 0.1, seed);
        for t in 1..=500u64 {
            s.observe(t, t);
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 99);
        if s.sample(501, &mut rng).unwrap() > 480 {
            recent += 1;
        }
    }
    assert!(recent > 150, "recent={recent}/{trials}");
}

#[test]
fn quantile_median_respects_decayed_mass() {
    let g = Exponential::new(0.01);
    let mut q = DecayedQuantile::new(g, 0.1, 101, 77);
    // Old regime: values ~100; recent regime (last half-life ~69
    // ticks... use longer): values ~900.
    for t in 1..=2_000u64 {
        q.observe(t, if t <= 1_500 { 100 } else { 900 });
    }
    let mut rng = StdRng::seed_from_u64(5);
    let med = q.median(2_001, &mut rng).unwrap();
    // The last 500 ticks carry nearly all exponential mass at λ=0.01
    // (e^{-5} ≈ 0.7% left beyond).
    assert_eq!(med, 900);
}

#[test]
fn lp_norm_reacts_to_coordinate_concentration() {
    // Same total mass, spread vs concentrated: L2 must distinguish.
    let mk = || DecayedLpNorm::new(SlidingWindow::new(10_000), 2.0, 0.1, 201, 5);
    let mut spread = mk();
    let mut point = mk();
    for t in 1..=1_000u64 {
        spread.observe(t, t % 500, 2);
        point.observe(t, 7, 2);
    }
    let (ns, np) = (spread.query(1_001), point.query(1_001));
    // ‖point‖₂ = 2000; ‖spread‖₂ = sqrt(500·4²) = 89.4.
    assert!(np > 5.0 * ns, "point={np}, spread={ns}");
}

#[test]
fn aggregates_tolerate_sparse_streams() {
    let g = Polynomial::new(1.0);
    let times = [5u64, 6, 1_000, 50_000, 50_001];
    let mut a = DecayedAverage::wbmh(g, 0.1, 1 << 24);
    let mut v = DecayedVariance::wbmh(Polynomial::new(1.0), 0.1, 1 << 24);
    for &t in &times {
        a.observe(t, 10);
        v.observe(t, 10);
    }
    let avg = a.query(50_002).unwrap();
    assert!((avg - 10.0).abs() < 1.5, "avg={avg}");
    // Identical values → variance ~0 relative to the second moment.
    let var = v.query(50_002).unwrap();
    assert!(var < 0.3 * 100.0 * 5.0, "var={var}");
}

#[test]
fn describe_strings_are_stable() {
    // The experiment tables key on these; keep them stable.
    assert_eq!(Polynomial::new(2.0).describe(), "POLYD(alpha=2)");
    assert_eq!(SlidingWindow::new(5).describe(), "SLIWIN(W=5)");
    assert_eq!(Exponential::new(0.5).describe(), "EXPD(lambda=0.5)");
}
