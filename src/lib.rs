//! # timedecay
//!
//! Time-decaying stream aggregates, after Cohen & Strauss,
//! *"Maintaining Time-Decaying Stream Aggregates"* (PODS 2003).
//!
//! This facade re-exports the unified API of `td-core`. See the README
//! for a tour and `DESIGN.md` for the paper-to-module map.
#![forbid(unsafe_code)]

pub use td_core::*;
