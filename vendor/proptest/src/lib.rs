//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the slice of the proptest API its tests use:
//! range strategies over `f64`/integers, tuple strategies, `any::<bool>()`,
//! `collection::vec`, `prop_map`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Semantics: each `proptest!`-generated test runs `PROPTEST_CASES`
//! (default 64) cases from a generator seeded deterministically from the
//! test's name, so failures are reproducible run-to-run. There is no
//! shrinking — a failing case panics with the ordinary assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// A source of random values for one generated test case.
pub type TestRng = StdRng;

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test generator: seeded from an FNV-1a hash of the
/// test's name so every property explores a distinct but reproducible
/// stream.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of values of one type — the shim's `Strategy`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u64, usize);

impl Strategy for Range<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        rng.random_range(self.start as u64..self.end as u64) as u32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.random()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (only `bool`/`u64` are wired up).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`vec` only).
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Defines `#[test]` functions that run a property over many generated
/// cases. Mirrors `proptest::proptest!` for the `pattern in strategy`
/// argument form.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($p:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cases = $crate::cases();
                let mut __pt_rng = $crate::test_rng(stringify!($name));
                for __pt_case in 0..__pt_cases {
                    let _ = __pt_case;
                    $(let $p = $crate::Strategy::sample(&($strat), &mut __pt_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

pub mod prelude {
    //! The glob-import surface test files use.
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro machinery itself: attrs, multiple bindings,
        /// trailing comma, `mut` patterns.
        #[test]
        fn macro_round_trip(
            x in 0u64..100,
            mut v in collection::vec(0.0f64..1.0, 1..20),
            flag in any::<bool>(),
        ) {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(x < 100);
            prop_assert!(v.iter().all(|&w| (0.0..1.0).contains(&w)));
            let bit = u64::from(flag);
            prop_assert_eq!(bit * bit, bit);
        }

        #[test]
        fn prop_map_composes(pairs in collection::vec((1u64..4, 0u64..8), 2..50)) {
            let total: u64 = pairs.iter().map(|&(a, b)| a + b).sum();
            prop_assert!(total as usize >= pairs.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("some_test");
        let mut b = crate::test_rng("some_test");
        let s = (1u64..100, 0.0f64..1.0);
        for _ in 0..32 {
            let (xa, ya) = s.sample(&mut a);
            let (xb, yb) = s.sample(&mut b);
            assert_eq!(xa, xb);
            assert_eq!(ya.to_bits(), yb.to_bits());
        }
    }
}
