//! A bounded lock-free single-producer single-consumer ring buffer.
//!
//! Classic Lamport queue with the two standard refinements used by
//! production SPSC rings (crossbeam, rtrb, folly's `ProducerConsumerQueue`):
//!
//! * **Cache-padded indices.** `head` (consumer cursor) and `tail`
//!   (producer cursor) live on separate cache lines so the two sides
//!   never false-share.
//! * **Cached counterpart cursors.** The producer keeps a stale copy of
//!   `head` and only re-loads the atomic when the ring *looks* full
//!   (symmetrically for the consumer), so the steady-state hot path does
//!   one relaxed load + one release store per side.
//!
//! Capacity is rounded up to a power of two; indices grow monotonically
//! and are masked on access, which distinguishes full from empty without
//! sacrificing a slot.
//!
//! The bulk operations (`push_slice` / `pop_chunk`, `T: Copy`) amortize
//! the atomic traffic over whole batches — one acquire load and one
//! release store move up to `capacity` items — which is what makes the
//! sharded drain loop cheap enough to feed `observe_batch`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads and aligns a value to a cache line to prevent false sharing.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written by consumer only.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written by producer only.
    tail: CachePadded<AtomicUsize>,
    /// Set when either half is dropped or explicitly closed — a
    /// level-triggered signal the surviving half can poll without
    /// relying on `Arc::strong_count` (which a supervisor holding a
    /// spare handle would inflate).
    closed: AtomicBool,
    /// Set when a half was dropped *during a panic* — distinguishes an
    /// orderly shutdown from a peer that died mid-operation.
    poisoned: AtomicBool,
}

// The ring hands `&UnsafeCell` slots to exactly one producer and one
// consumer; the acquire/release cursor protocol orders every slot
// access, so sharing the allocation across threads is sound.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both handles are gone; drop any items still in flight.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            unsafe {
                (*self.buf[i & self.mask].get()).assume_init_drop();
            }
        }
    }
}

/// Producer half of the ring. `!Clone`; exactly one exists per ring.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Producer-private copy of `tail` (authoritative; only we write it).
    tail: usize,
    /// Stale copy of `head`, refreshed only when the ring looks full.
    cached_head: usize,
}

/// Consumer half of the ring. `!Clone`; exactly one exists per ring.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Consumer-private copy of `head` (authoritative; only we write it).
    head: usize,
    /// Stale copy of `tail`, refreshed only when the ring looks empty.
    cached_tail: usize,
}

unsafe impl<T: Send> Send for Producer<T> {}
unsafe impl<T: Send> Send for Consumer<T> {}

/// Creates a bounded SPSC ring holding at least `capacity` items
/// (rounded up to a power of two, minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        poisoned: AtomicBool::new(false),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            tail: 0,
            cached_head: 0,
        },
        Consumer {
            ring,
            head: 0,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Number of slots the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Free slots, refreshing the stale `head` copy only when the
    /// cached view cannot satisfy a request for `want` slots.
    fn free_slots(&mut self, want: usize) -> usize {
        let cap = self.capacity();
        let free = cap - self.tail.wrapping_sub(self.cached_head);
        if free >= want {
            return free;
        }
        self.cached_head = self.ring.head.0.load(Ordering::Acquire);
        cap - self.tail.wrapping_sub(self.cached_head)
    }

    /// Attempts to enqueue one item. Returns it back if the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.free_slots(1) == 0 {
            return Err(item);
        }
        unsafe {
            (*self.ring.buf[self.tail & self.ring.mask].get()).write(item);
        }
        self.tail = self.tail.wrapping_add(1);
        self.ring.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// True when the consumer half has been dropped.
    pub fn is_disconnected(&self) -> bool {
        Arc::strong_count(&self.ring) == 1
    }

    /// Marks the channel closed without dropping this half. The consumer
    /// sees it via [`Consumer::is_closed`]; items already in the ring
    /// remain poppable.
    pub fn close(&self) {
        self.ring.closed.store(true, Ordering::Release);
    }

    /// True once either half has been dropped or explicitly closed.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// True when a half was dropped while its thread was panicking.
    pub fn is_poisoned(&self) -> bool {
        self.ring.poisoned.load(Ordering::Acquire)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.ring.poisoned.store(true, Ordering::Release);
        }
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T: Copy> Producer<T> {
    /// Enqueues a prefix of `items`, returning how many were accepted.
    /// One release store publishes the whole prefix.
    pub fn push_slice(&mut self, items: &[T]) -> usize {
        let n = self.free_slots(items.len()).min(items.len());
        if n == 0 {
            return 0;
        }
        for (i, &item) in items[..n].iter().enumerate() {
            unsafe {
                (*self.ring.buf[self.tail.wrapping_add(i) & self.ring.mask].get()).write(item);
            }
        }
        self.tail = self.tail.wrapping_add(n);
        self.ring.tail.0.store(self.tail, Ordering::Release);
        n
    }
}

impl<T> Consumer<T> {
    /// Number of slots the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Readable items, refreshing the stale `tail` copy only when the
    /// cached view cannot satisfy a request for `want` items.
    fn available(&mut self, want: usize) -> usize {
        let avail = self.cached_tail.wrapping_sub(self.head);
        if avail >= want {
            return avail;
        }
        self.cached_tail = self.ring.tail.0.load(Ordering::Acquire);
        self.cached_tail.wrapping_sub(self.head)
    }

    /// Attempts to dequeue one item.
    pub fn pop(&mut self) -> Option<T> {
        if self.available(1) == 0 {
            return None;
        }
        let item = unsafe { (*self.ring.buf[self.head & self.ring.mask].get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.ring.head.0.store(self.head, Ordering::Release);
        Some(item)
    }

    /// True when the producer half has been dropped.
    pub fn is_disconnected(&self) -> bool {
        Arc::strong_count(&self.ring) == 1
    }

    /// Marks the channel closed without dropping this half. The producer
    /// sees it via [`Producer::is_closed`] and can stop pushing.
    pub fn close(&self) {
        self.ring.closed.store(true, Ordering::Release);
    }

    /// True once either half has been dropped or explicitly closed.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// True when a half was dropped while its thread was panicking.
    pub fn is_poisoned(&self) -> bool {
        self.ring.poisoned.load(Ordering::Acquire)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.ring.poisoned.store(true, Ordering::Release);
        }
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T: Copy> Consumer<T> {
    /// Dequeues up to `out.capacity() - out.len()` items into `out`,
    /// returning how many were moved. One release store frees the
    /// whole chunk for the producer.
    pub fn pop_chunk(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let want = max.min(out.capacity() - out.len());
        let n = self.available(want).min(want);
        if n == 0 {
            return 0;
        }
        for i in 0..n {
            let item = unsafe {
                (*self.ring.buf[self.head.wrapping_add(i) & self.ring.mask].get())
                    .assume_init_read()
            };
            out.push(item);
        }
        self.head = self.head.wrapping_add(n);
        self.ring.head.0.store(self.head, Ordering::Release);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = ring::<u64>(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_ring_rejects_then_accepts_after_pop() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99));
        assert_eq!(rx.pop(), Some(0));
        tx.push(99).unwrap();
        assert_eq!(rx.pop(), Some(1));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn bulk_ops_roundtrip() {
        let (mut tx, mut rx) = ring::<u64>(16);
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(tx.push_slice(&items), 10);
        let mut out = Vec::with_capacity(16);
        assert_eq!(rx.pop_chunk(&mut out, 64), 10);
        assert_eq!(out, items);
        // Partial accept when nearly full.
        assert_eq!(tx.push_slice(&vec![7u64; 32]), 16);
        out.clear();
        assert_eq!(rx.pop_chunk(&mut out, 4), 4);
        assert_eq!(out, vec![7u64; 4]);
    }

    #[test]
    fn disconnect_is_visible() {
        let (tx, rx) = ring::<u8>(4);
        assert!(!tx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
    }

    #[test]
    fn drops_in_flight_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = ring::<D>(8);
        for _ in 0..3 {
            tx.push(D).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn drop_signals_closed_not_poisoned() {
        let (tx, rx) = ring::<u8>(4);
        assert!(!tx.is_closed());
        assert!(!rx.is_closed());
        drop(rx);
        assert!(tx.is_closed());
        assert!(!tx.is_poisoned());
    }

    #[test]
    fn explicit_close_leaves_items_poppable() {
        let (mut tx, mut rx) = ring::<u8>(4);
        tx.push(7).unwrap();
        rx.close();
        assert!(tx.is_closed());
        assert!(rx.is_closed());
        assert_eq!(rx.pop(), Some(7));
        assert!(!tx.is_poisoned());
    }

    #[test]
    fn panicking_drop_poisons() {
        let (tx, rx) = ring::<u8>(4);
        let h = std::thread::spawn(move || {
            let _rx = rx;
            panic!("worker died");
        });
        assert!(h.join().is_err());
        assert!(tx.is_closed());
        assert!(tx.is_poisoned());
    }

    /// Threaded stress: every pushed value arrives exactly once, in order,
    /// across wrap-around and full/empty transitions.
    #[test]
    fn threaded_stress_preserves_order_and_counts() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = ring::<u64>(64);
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                let batch: Vec<u64> = (next..(next + 173).min(N)).collect();
                let mut sent = 0;
                while sent < batch.len() {
                    sent += tx.push_slice(&batch[sent..]);
                    if sent < batch.len() {
                        std::thread::yield_now();
                    }
                }
                next = *batch.last().unwrap() + 1;
            }
        });
        let mut expected = 0u64;
        let mut buf = Vec::with_capacity(64);
        while expected < N {
            buf.clear();
            if rx.pop_chunk(&mut buf, 64) == 0 {
                std::thread::yield_now();
                continue;
            }
            for &v in &buf {
                assert_eq!(v, expected);
                expected += 1;
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }
}
