//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the small slice of the `rand` 0.9 API it
//! actually uses: `StdRng` (here a xoshiro256++ generator seeded via
//! splitmix64), `SeedableRng::seed_from_u64`, the `Rng` extension trait
//! with `random::<T>()` / `random_range(..)`, and the free `rng()`
//! constructor. Statistical quality is more than adequate for the
//! workspace's tests and benches; this is NOT a cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Marker for types that can be drawn uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::random_range`] can produce. A single generic
/// `SampleRange` impl per range type hangs off this trait — that shape
/// (mirroring the real crate) is what lets inference resolve
/// `q + rng.random_range(0..=3)` to the integer type of `q`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Maps a uniform word into `[0, span)` by widening multiply
/// (Lemire-style; the residual bias is far below anything the tests
/// can detect).
fn bounded(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_ints {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range");
                lo + bounded(rng.next_u64(), (hi - lo) as u64) as $ty
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + bounded(rng.next_u64(), span + 1) as $ty
            }
        }
    )*};
}

uniform_ints!(u64, u32, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range");
        let v = lo + f64::draw(rng) * (hi - lo);
        // Rounding can land exactly on the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing sampling surface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`
    /// (`f64` uniform in `[0,1)`, integers uniform over their domain).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T: SampleUniform, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a fresh, non-deterministically seeded generator (the shim's
/// analogue of `rand::rng()`). Seeds mix the wall clock with a process
/// counter so repeated calls differ.
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::StdRng::seed_from_u64(nanos ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a: u64 = r.random_range(3..9u64);
            assert!((3..9).contains(&a));
            let b: u64 = r.random_range(0..=3u64);
            assert!(b <= 3);
            let c: f64 = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut hits = [0u32; 8];
        for _ in 0..80_000 {
            hits[r.random_range(0..8u64) as usize] += 1;
        }
        for &h in &hits {
            assert!((9_000..11_000).contains(&h), "bucket count {h}");
        }
    }
}
