//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the slice of the criterion 0.8 API its benches
//! use: `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{bench_function, bench_with_input, throughput,
//! finish}`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches until ~`CRITERION_SHIM_MEASURE_MS` (default 300) of
//! wall-clock accumulates, and reports the mean time per iteration.
//! No statistics, plots, or baselines — just honest wall-clock means
//! printed one line per benchmark.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// How batched setup output is sized; the shim treats all variants the
/// same (setup runs outside the timed region either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Setup output consumed once per batch.
    PerIteration,
}

/// Optional per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark's identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (used when the group name already names the
    /// function).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget = measure_budget();
        // Warmup.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let mut batch = 1u64;
        while self.total < budget {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.iters += batch;
            // Grow batches until each takes ≥ ~10ms, to amortize timer
            // overhead on fast routines.
            if elapsed < Duration::from_millis(10) {
                batch = batch.saturating_mul(2);
            }
        }
    }

    /// Times `routine` over fresh `setup` output each iteration; setup
    /// runs outside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = measure_budget();
        for _ in 0..2 {
            std::hint::black_box(routine(setup()));
        }
        while self.total < budget {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{label:<48} (no iterations)");
            return;
        }
        let per_iter = self.total.as_nanos() as f64 / self.iters as f64;
        let mut line = format!("{label:<48} {:>14} ns/iter", format_ns(per_iter));
        if let Some(tp) = throughput {
            let (n, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if n > 0 && per_iter > 0.0 {
                let rate = n as f64 / (per_iter * 1e-9);
                let _ = write!(line, "  ({rate:.3e} {unit}/s)");
            }
        }
        println!("{line}");
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.1}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<F, I, D>(&mut self, id: D, input: &I, mut f: F) -> &mut Self
    where
        D: std::fmt::Display,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Finishes the group (a no-op beyond matching the criterion API).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Prevents the optimizer from discarding a value (re-export shape;
/// benches here use `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a set of groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts() {
        std::env::set_var("CRITERION_SHIM_MEASURE_MS", "5");
        let mut b = Bencher::new();
        b.iter(|| 1u64 + 1);
        assert!(b.iters > 0);
        let mut b2 = Bencher::new();
        b2.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b2.iters > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("classic", 0.1).to_string(), "classic/0.1");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
