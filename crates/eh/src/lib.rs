//! Exponential Histograms — the sliding-window counting substrate
//! (Datar, Gionis, Indyk & Motwani \[9\]; paper §4.1), built from scratch.
//!
//! An Exponential Histogram (EH) summarizes a stream of non-negative
//! arrivals so that, at any time `T`, the count of items in *any* window
//! `w <= N` can be estimated within a `(1 ± ε)` factor (Lemma 4.1 of
//! Cohen–Strauss) — which is exactly what the cascaded construction of
//! Theorem 1 needs to handle arbitrary decay functions.
//!
//! Two variants are provided:
//!
//! * [`ClassicEh`] — the literal Datar et al. structure for 0/1 streams:
//!   bucket sizes are powers of two and each size class holds a bounded
//!   number of buckets; exceeding the bound merges the two oldest buckets
//!   of that class into one of the next class.
//! * [`DominationEh`] — the merge rule as Cohen–Strauss characterize it
//!   in §4.1: *"two consecutive buckets are merged if the combined count
//!   of the merged buckets is dominated by the total count of all
//!   more-recent buckets."* This form supports arbitrary non-negative
//!   bulk values per tick (the paper's generalization to polynomial
//!   values) with the same `O(ε⁻¹ log N)` bucket bound.
//!
//! Both implement [`WindowSketch`], the Lemma 4.1 interface consumed by
//! `td-ceh`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod classic;
pub mod domination;

pub use bucket::{Bucket, Estimator};
pub use classic::ClassicEh;
pub use domination::DominationEh;

use td_decay::Time;

/// The Lemma 4.1 interface: a summary that can estimate the item count
/// in any suffix window of the stream.
///
/// `query_window(T, w)` estimates the number of items with arrival time
/// in `[T − w, T − 1]` (ages `1..=w` at time `T`, matching the §2.1
/// convention that items at the query instant are excluded).
pub trait WindowSketch {
    /// Ingests `f` unit items at time `t` (non-decreasing `t`).
    fn observe(&mut self, t: Time, f: u64);

    /// Ingests a burst of `(time, value)` items sorted by non-decreasing
    /// time, leaving the sketch in the same state sequential
    /// [`observe`](Self::observe) calls would.
    ///
    /// The default is the sequential loop; implementations override it
    /// to run clock advancement and expiry once per distinct tick and to
    /// coalesce same-tick mass where their merge rule permits.
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        for &(t, f) in items {
            self.observe(t, f);
        }
    }

    /// Advances the sketch's clock to `t` without ingesting any items,
    /// expiring buckets that leave the configured window.
    fn advance(&mut self, t: Time);

    /// Estimates the count of items with age in `1..=w` at time `T`.
    fn query_window(&self, t: Time, w: Time) -> f64;

    /// The exact total count of all live (non-expired) items.
    fn live_total(&self) -> u64;

    /// A snapshot of the live buckets, oldest first.
    ///
    /// This *copies*; query paths should prefer
    /// [`columns`](Self::columns), which borrows the live
    /// structure-of-arrays columns directly.
    fn buckets(&self) -> Vec<Bucket>;

    /// Borrowed view of the live bucket columns (oldest first, sorted
    /// by end time) — the zero-gather interface cascaded queries stream
    /// their decay kernels over.
    fn columns(&self) -> td_decay::ColumnsView<'_>;

    /// The configured accuracy target ε.
    fn epsilon(&self) -> f64;
}
