//! Histogram buckets and the shared window-estimation routine.

use td_decay::Time;

/// One histogram bucket: all items observed in the time interval
/// `[start, end]`, with their exact total count (§2.3's *time-width* is
/// `end − start`, the *count-width* is `count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Arrival time of the oldest item in the bucket.
    pub start: Time,
    /// Arrival time of the newest item in the bucket (the Datar et al.
    /// "timestamp"; the bucket expires when this leaves the window).
    pub end: Time,
    /// Exact sum of item values in the bucket.
    pub count: u64,
}

impl Bucket {
    /// A fresh bucket holding `count` items that all arrived at `t`.
    pub fn unit(t: Time, count: u64) -> Self {
        Self {
            start: t,
            end: t,
            count,
        }
    }

    /// Merges a pair of buckets: the merged bucket spans the union of
    /// the two intervals and sums the counts (§2.3). For the usual
    /// adjacent-pair merge this inherits the older start and newer end;
    /// cross-histogram merges (`DominationEh::merge_from`) may combine
    /// overlapping intervals, which the min/max form handles too.
    pub fn merge_with(&self, newer: &Bucket) -> Bucket {
        Bucket {
            start: self.start.min(newer.start),
            end: self.end.max(newer.end),
            count: self.count.saturating_add(newer.count),
        }
    }
}

/// How a window query treats the bucket straddling the window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Estimator {
    /// Include the straddling bucket in full — the paper's Eq. (2)
    /// (`S' = Σ_{ℓ>=j} C_ℓ` over buckets with end time inside the
    /// window). One-sided: never underestimates.
    Paper,
    /// Include half the straddling bucket — Datar et al.'s estimator,
    /// two-sided with half the worst-case error.
    #[default]
    Halved,
}

/// Estimates the count of items with arrival time in `[T − w, T − 1]`
/// from `buckets` (sorted by end time, oldest first).
///
/// Buckets whose `end < T − w` contribute nothing; buckets whose
/// `start >= T − w` contribute fully (items at time `T` itself never
/// enter a bucket before time `T` is past, so no upper-edge correction
/// is needed); straddlers contribute per `estimator`. In a single
/// histogram exactly one bucket can straddle; after a cross-histogram
/// merge (`merge_from`) intervals may nest, so every straddler is
/// accounted (each is individually ε-dominated in its origin, so k
/// merged histograms carry a k·ε bound — see `DominationEh::merge_from`).
pub fn estimate_window(buckets: &[Bucket], t: Time, w: Time, estimator: Estimator) -> f64 {
    let cutoff = t.saturating_sub(w); // earliest in-window arrival time
    let mut total = 0.0;
    for b in buckets.iter().rev() {
        if b.end < cutoff {
            break; // sorted by end: everything older is fully outside
        }
        if b.start >= cutoff {
            total += b.count as f64;
        } else {
            // A straddler: items span [start, end] with start < cutoff
            // <= end.
            total += match estimator {
                Estimator::Paper => b.count as f64,
                Estimator::Halved => b.count as f64 / 2.0,
            };
        }
    }
    total
}

/// Estimates the strictly-past landmark count `Σ_{t_i < t} f_i` at the
/// current tick `t`, where `at_tick` is the exact mass observed at `t`
/// itself.
///
/// Buckets holding only at-tick mass (`start >= t`) are excluded whole,
/// and at-tick mass that a burst merge folded into a bucket that also
/// spans earlier ticks (`at_tick` minus the excluded counts) is
/// subtracted exactly. The histogram's ε guarantee therefore applies to
/// the estimated *strictly-past* quantity itself — subtracting the
/// at-tick mass from an estimate of past **plus** at-tick mass would
/// instead let a large burst at the query tick carry `ε · burst` of
/// estimation error against a possibly tiny past count, violating any
/// relative envelope stated against the past truth.
pub fn estimate_strict_past(
    buckets: &[Bucket],
    t: Time,
    at_tick: u64,
    estimator: Estimator,
) -> f64 {
    let mut pure_at_tick = 0u64;
    let mut past: Vec<Bucket> = Vec::with_capacity(buckets.len());
    for b in buckets {
        if b.start >= t {
            pure_at_tick = pure_at_tick.saturating_add(b.count);
        } else {
            past.push(*b);
        }
    }
    // Mass at `t` inside buckets that also hold earlier items (possible
    // only after same-tick burst merges in the classic structure); the
    // containing buckets are counted in full below, so subtracting it
    // is exact.
    let mixed = at_tick.saturating_sub(pure_at_tick);
    (estimate_window(&past, t, t, estimator) - mixed as f64).max(0.0)
}

/// [`estimate_window`] over structure-of-arrays columns (oldest first,
/// sorted by end time) — the zero-copy form the SoA histograms use.
/// Loop structure and floating-point accumulation order are identical
/// to the AoS version, so the two are bit-equal on the same buckets.
pub fn estimate_window_cols(
    starts: &[Time],
    ends: &[Time],
    counts: &[u64],
    t: Time,
    w: Time,
    estimator: Estimator,
) -> f64 {
    let cutoff = t.saturating_sub(w);
    let mut total = 0.0;
    for i in (0..ends.len()).rev() {
        if ends[i] < cutoff {
            break; // sorted by end: everything older is fully outside
        }
        if starts[i] >= cutoff {
            total += counts[i] as f64;
        } else {
            total += match estimator {
                Estimator::Paper => counts[i] as f64,
                Estimator::Halved => counts[i] as f64 / 2.0,
            };
        }
    }
    total
}

/// [`estimate_strict_past`] over structure-of-arrays columns — same
/// partition/subtraction semantics, but the "past" sub-list is never
/// materialized: at-tick buckets (`start >= t`) are skipped in place
/// during the reverse sweep, preserving the AoS accumulation order
/// bit-for-bit while doing zero allocation.
pub fn estimate_strict_past_cols(
    starts: &[Time],
    ends: &[Time],
    counts: &[u64],
    t: Time,
    at_tick: u64,
    estimator: Estimator,
) -> f64 {
    let mut pure_at_tick = 0u64;
    for i in 0..starts.len() {
        if starts[i] >= t {
            pure_at_tick = pure_at_tick.saturating_add(counts[i]);
        }
    }
    let mixed = at_tick.saturating_sub(pure_at_tick);
    // estimate_window over the past subsequence with w = t: cutoff is
    // t − t = 0, matching the AoS path exactly (the break below is
    // unreachable at cutoff 0 but kept so the two loops stay twins).
    let cutoff = 0u64;
    let mut total = 0.0;
    for i in (0..ends.len()).rev() {
        if starts[i] >= t {
            continue; // at-tick bucket: excluded whole, invisible to the sweep
        }
        if ends[i] < cutoff {
            break;
        }
        if starts[i] >= cutoff {
            total += counts[i] as f64;
        } else {
            total += match estimator {
                Estimator::Paper => counts[i] as f64,
                Estimator::Halved => counts[i] as f64 / 2.0,
            };
        }
    }
    (total - mixed as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(start: Time, end: Time, count: u64) -> Bucket {
        Bucket { start, end, count }
    }

    #[test]
    fn full_containment() {
        let buckets = [b(1, 4, 8), b(5, 6, 4), b(7, 8, 2)];
        // T = 9, w = 8: cutoff 1, all buckets inside.
        assert_eq!(estimate_window(&buckets, 9, 8, Estimator::Paper), 14.0);
        assert_eq!(estimate_window(&buckets, 9, 8, Estimator::Halved), 14.0);
    }

    #[test]
    fn straddler_treatment() {
        let buckets = [b(1, 4, 8), b(5, 6, 4), b(7, 8, 2)];
        // T = 9, w = 6: cutoff 3 → bucket [1,4] straddles.
        assert_eq!(estimate_window(&buckets, 9, 6, Estimator::Paper), 14.0);
        assert_eq!(estimate_window(&buckets, 9, 6, Estimator::Halved), 10.0);
    }

    #[test]
    fn old_buckets_excluded() {
        let buckets = [b(1, 2, 8), b(5, 6, 4), b(7, 8, 2)];
        // T = 9, w = 4: cutoff 5 → [1,2] fully out.
        assert_eq!(estimate_window(&buckets, 9, 4, Estimator::Paper), 6.0);
    }

    #[test]
    fn window_larger_than_history() {
        let buckets = [b(10, 12, 3)];
        assert_eq!(estimate_window(&buckets, 13, 1_000, Estimator::Halved), 3.0);
    }

    #[test]
    fn empty_histogram() {
        assert_eq!(estimate_window(&[], 5, 5, Estimator::Paper), 0.0);
    }

    #[test]
    fn merge_inherits_extremes() {
        let m = b(1, 3, 5).merge_with(&b(4, 9, 7));
        assert_eq!(m, b(1, 9, 12));
    }

    #[test]
    fn strict_past_excludes_pure_at_tick_buckets() {
        // Past mass 12, plus a pure at-tick bucket of 1000 at t = 9.
        let buckets = [b(1, 4, 8), b(5, 6, 4), b(9, 9, 1000)];
        let est = estimate_strict_past(&buckets, 9, 1000, Estimator::Halved);
        assert_eq!(est, 12.0);
    }

    #[test]
    fn strict_past_subtracts_mixed_bucket_mass_exactly() {
        // A burst-merged bucket [7, 9] carries 3 past items and 5
        // at-tick items; at_tick = 5 (all of it inside the mixed
        // bucket).
        let buckets = [b(1, 4, 8), b(7, 9, 8)];
        let est = estimate_strict_past(&buckets, 9, 5, Estimator::Halved);
        assert_eq!(est, 11.0);
    }

    #[test]
    fn strict_past_with_no_at_tick_mass_is_plain_estimate() {
        let buckets = [b(1, 4, 8), b(5, 6, 4)];
        let est = estimate_strict_past(&buckets, 9, 0, Estimator::Halved);
        assert_eq!(est, estimate_window(&buckets, 9, 9, Estimator::Halved));
    }

    /// The SoA estimators are bit-identical twins of the AoS ones on
    /// every (window, estimator) combination over a merged-looking
    /// bucket list (nested intervals included).
    #[test]
    fn column_estimators_match_aos_bitwise() {
        let buckets = [b(1, 4, 8), b(2, 6, 3), b(5, 6, 4), b(7, 8, 2), b(9, 9, 70)];
        let starts: Vec<Time> = buckets.iter().map(|b| b.start).collect();
        let ends: Vec<Time> = buckets.iter().map(|b| b.end).collect();
        let counts: Vec<u64> = buckets.iter().map(|b| b.count).collect();
        for est in [Estimator::Paper, Estimator::Halved] {
            for t in 5..=12u64 {
                for w in 1..=t {
                    let aos = estimate_window(&buckets, t, w, est);
                    let soa = estimate_window_cols(&starts, &ends, &counts, t, w, est);
                    assert_eq!(aos.to_bits(), soa.to_bits(), "t={t} w={w} {est:?}");
                }
                for at_tick in [0u64, 5, 70, 100] {
                    let aos = estimate_strict_past(&buckets, t, at_tick, est);
                    let soa = estimate_strict_past_cols(&starts, &ends, &counts, t, at_tick, est);
                    assert_eq!(aos.to_bits(), soa.to_bits(), "t={t} at={at_tick} {est:?}");
                }
            }
        }
    }
}
