//! The domination-based Exponential Histogram for general values.

use td_decay::storage::{bits_for_count, bits_for_timestamp, StorageAccounting};
use td_decay::{BucketColumns, ColumnsView, Time};

use crate::bucket::{estimate_strict_past_cols, estimate_window_cols, Bucket, Estimator};
use crate::WindowSketch;

/// An Exponential Histogram driven by the merge rule exactly as
/// Cohen–Strauss characterize it (§4.1):
///
/// > *two consecutive buckets are merged if the combined count of the
/// > merged buckets is dominated by the total count of all more-recent
/// > buckets*
///
/// concretely: adjacent buckets `a` (older) and `b` (newer) merge when
/// `count(a) + count(b) <= ε · Σ(counts of buckets newer than b)`.
///
/// Properties (all verified by tests):
///
/// * **general values** — each tick may carry any `u64` value, giving
///   the paper's §2.1 generalization to polynomial values for free;
/// * **persistent dominance** — once created, a merged bucket's count
///   stays `<= ε ×` the (only ever growing) count of newer items, so a
///   window straddler always costs at most an ε fraction of the true
///   in-window count. Single-tick buckets never straddle, so unmerged
///   bulk arrivals never contribute error;
/// * **logarithmic size** — any two adjacent unmerged buckets grow the
///   suffix count by a `(1 + ε)` factor, so there are
///   `O(ε⁻¹ log(total))` buckets.
///
/// # Examples
///
/// ```
/// use td_eh::{DominationEh, WindowSketch};
/// let mut eh = DominationEh::new(0.1, None);
/// eh.observe(1, 500);  // bulk arrival
/// eh.observe(2, 1);
/// assert_eq!(eh.live_total(), 501);
/// assert!((eh.query_window(3, 2) - 501.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DominationEh {
    epsilon: f64,
    window: Option<Time>,
    /// Buckets, oldest first, as structure-of-arrays columns (see
    /// `td_decay::soa`): queries stream the boundary columns straight
    /// into the decay kernels, and front expiry is an amortized head-
    /// offset bump instead of a deque rotation.
    buckets: BucketColumns,
    live_total: u64,
    last_t: Time,
    started: bool,
    /// Inserts since the last merge pass (the pass is amortized: it
    /// costs O(#buckets) and runs every ~#buckets/4 inserts, so the
    /// amortized cost per insert is O(1) — the §4.2 claim — at the
    /// price of at most 25% transiently-unmerged extra buckets).
    inserts_since_merge: usize,
    /// Number of single-site histograms folded into this one (1 for a
    /// freshly built summary). A k-site union certifies a `k·ε`
    /// envelope, so the certified bound widens with each merge.
    sites: u32,
    /// Mass observed exactly at `last_t`, so the unified-aggregate
    /// `query(T)` can exclude items at `T` itself (§2.1).
    at_last: u64,
}

impl DominationEh {
    /// A histogram targeting relative error `epsilon`, optionally
    /// expiring items older than `window` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]` or `window == Some(0)`.
    pub fn new(epsilon: f64, window: Option<Time>) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0,1], got {epsilon}"
        );
        assert!(window != Some(0), "window must be positive");
        Self {
            epsilon,
            window,
            buckets: BucketColumns::new(),
            live_total: 0,
            last_t: 0,
            started: false,
            inserts_since_merge: 0,
            sites: 1,
            at_last: 0,
        }
    }

    /// The configured window, if any.
    pub fn window(&self) -> Option<Time> {
        self.window
    }

    /// How many single-site histograms this summary unions (1 until
    /// [`merge_from`](Self::merge_from) is used). The certified
    /// relative-error envelope is `sites · ε`.
    pub fn sites(&self) -> u32 {
        self.sites
    }

    /// Forces the deferred merge pass to run now (tests and storage
    /// audits call this to measure the canonical size).
    pub fn force_canonicalize(&mut self) {
        self.canonicalize();
        self.inserts_since_merge = 0;
    }

    /// Number of live buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The live bucket list, oldest first (inspection and equivalence
    /// testing).
    pub fn buckets(&self) -> Vec<Bucket> {
        self.buckets
            .iter()
            .map(|(start, end, count)| Bucket { start, end, count })
            .collect()
    }

    /// The time of the most recent observation.
    pub fn last_time(&self) -> Time {
        self.last_t
    }

    fn expire(&mut self, now: Time) {
        if let Some(w) = self.window {
            let cutoff = now.saturating_sub(w);
            while let Some((_, end, count)) = self.buckets.front() {
                if end < cutoff {
                    self.live_total -= count;
                    self.buckets.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// One merge pass, newest → oldest, with a running suffix count.
    /// Merges cascade naturally: a merged bucket is immediately
    /// re-considered against its next-older neighbour under the same
    /// suffix count.
    fn canonicalize(&mut self) {
        if self.buckets.len() < 2 {
            return;
        }
        let mut idx = self.buckets.len() - 1;
        // suffix = total count of buckets strictly newer than `idx`.
        let mut suffix: f64 = 0.0;
        while idx > 0 {
            let (n_start, n_end, n_count) = self.buckets.get(idx);
            let (o_start, o_end, o_count) = self.buckets.get(idx - 1);
            let combined = o_count + n_count;
            // Never fold at-tick mass (end == last_t) into a bucket
            // spanning earlier ticks: `query` excludes the §2.1 at-tick
            // mass exactly by skipping whole buckets, which requires
            // age-0 mass to stay in single-tick buckets. Only reachable
            // after a cross-site merge interleaves bucket lists — within
            // one site the sole at-tick bucket is the newest and its
            // zero suffix already blocks the merge.
            let mixes_at_tick = n_end == self.last_t && o_end < n_end;
            if !mixes_at_tick && (combined as f64) <= self.epsilon * suffix {
                self.buckets.set(
                    idx - 1,
                    o_start.min(n_start),
                    o_end.max(n_end),
                    o_count.saturating_add(n_count),
                );
                self.buckets.remove(idx);
                // The merged bucket sits at idx − 1; re-examine it
                // against its next-older neighbour with the same suffix.
                idx -= 1;
            } else {
                suffix += n_count as f64;
                idx -= 1;
            }
        }
    }

    /// Merges another histogram's contents into this one — the
    /// distributed-streams operation (cf. Gibbons–Tirthapura, the
    /// paper's reference \[12\]): summaries built at k sites over disjoint
    /// substreams combine into a summary of the union.
    ///
    /// Bucket lists are interleaved by end time and re-canonicalized.
    /// Each incoming multi-tick bucket was ε-dominated by newer items in
    /// its *origin* stream, and union only adds newer mass, so after
    /// merging `k` histograms every window estimate carries a `k·ε`
    /// relative bound (build the site histograms with `ε/k` for an
    /// end-to-end ε; the merge test pins this).
    ///
    /// # Panics
    ///
    /// Panics if the two histograms were built with different `epsilon`
    /// or different expiry windows.
    pub fn merge_from(&mut self, other: &DominationEh) {
        assert!(
            (self.epsilon - other.epsilon).abs() < f64::EPSILON,
            "cannot merge histograms with different epsilon"
        );
        assert_eq!(self.window, other.window, "expiry windows differ");
        if other.buckets.is_empty() {
            return;
        }
        let mut merged = BucketColumns::with_capacity(self.buckets.len() + other.buckets.len());
        let mut a = self.buckets.iter().peekable();
        let mut b = other.buckets.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&x), Some(&y)) => {
                    if x.1 <= y.1 {
                        merged.push_back(x.0, x.1, x.2);
                        a.next();
                    } else {
                        merged.push_back(y.0, y.1, y.2);
                        b.next();
                    }
                }
                (Some(_), None) => {
                    for (s, e, c) in a.by_ref() {
                        merged.push_back(s, e, c);
                    }
                    break;
                }
                (None, Some(_)) => {
                    for (s, e, c) in b.by_ref() {
                        merged.push_back(s, e, c);
                    }
                    break;
                }
                (None, None) => break,
            }
        }
        drop(a);
        drop(b);
        self.buckets = merged;
        self.live_total = self.live_total.saturating_add(other.live_total);
        // Compare against the PRE-merge tick: after taking the max,
        // `other.last_t > self.last_t` is unsatisfiable and a strictly
        // newer site would wrongly keep this site's stale at-tick mass.
        let old_last = self.last_t;
        self.last_t = self.last_t.max(other.last_t);
        self.started |= other.started;
        self.sites = self.sites.saturating_add(other.sites);
        match other.last_t.cmp(&old_last) {
            std::cmp::Ordering::Greater => self.at_last = other.at_last,
            std::cmp::Ordering::Equal => self.at_last = self.at_last.saturating_add(other.at_last),
            std::cmp::Ordering::Less => {}
        }
        self.expire(self.last_t);
        self.canonicalize();
        self.inserts_since_merge = 0;
    }

    /// Estimates a window count with an explicit straddler rule,
    /// streaming the columns directly — the SoA layout never wraps, so
    /// there is no copy on any path.
    pub fn query_window_with(&self, t: Time, w: Time, estimator: Estimator) -> f64 {
        estimate_window_cols(
            self.buckets.starts(),
            self.buckets.ends(),
            self.buckets.counts(),
            t,
            w,
            estimator,
        )
    }

    /// Adds `mass > 0` at the (already advanced-to) tick `t`: coalesce
    /// into the newest bucket when it is single-tick at `t`, otherwise
    /// open a fresh bucket and maybe run the amortized merge pass.
    ///
    /// The merge counter ticks per *new bucket*, not per item, so
    /// same-tick coalescing never re-triggers the pass.
    fn add_mass(&mut self, t: Time, f: u64) {
        match self.buckets.back() {
            Some((start, end, count)) if start == t && end == t => {
                self.buckets
                    .set_count(self.buckets.len() - 1, count.saturating_add(f));
            }
            _ => {
                self.buckets.push_back(t, t, f);
                self.inserts_since_merge += 1;
                if self.inserts_since_merge >= (self.buckets.len() / 4).max(8) {
                    self.canonicalize();
                    self.inserts_since_merge = 0;
                }
            }
        }
        self.live_total = self.live_total.saturating_add(f);
        self.at_last = self.at_last.saturating_add(f);
    }
}

impl WindowSketch for DominationEh {
    /// Ingests a bulk value `f` at time `t` (non-decreasing `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previous observation.
    fn observe(&mut self, t: Time, f: u64) {
        self.advance(t);
        if f == 0 {
            return;
        }
        self.add_mass(t, f);
    }

    /// Ingests a sorted burst, bit-identical in end state to the
    /// sequential loop: clock advance and expiry run once per distinct
    /// tick; the run's first non-zero item replays
    /// [`add_mass`](Self::add_mass) (so the amortized merge pass fires
    /// exactly when the sequential loop's would, seeing the same back-
    /// bucket count); the run's remaining mass folds straight into the
    /// back bucket, which is the only effect the sequential loop's later
    /// same-tick calls can have (`canonicalize` never merges the newest
    /// bucket — its suffix count is zero — so the back bucket survives
    /// any pass unchanged and stays single-tick at `t`).
    ///
    /// # Panics
    ///
    /// Panics if any time precedes its predecessor.
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let mut i = 0;
        while i < items.len() {
            let t = items[i].0;
            self.advance(t);
            let mut opened = false;
            let mut rest = 0u64;
            while i < items.len() && items[i].0 == t {
                let f = items[i].1;
                if f > 0 {
                    if opened {
                        rest = rest.saturating_add(f);
                    } else {
                        self.add_mass(t, f);
                        opened = true;
                    }
                }
                i += 1;
            }
            if rest > 0 {
                if let Some((_, _, count)) = self.buckets.back() {
                    self.buckets
                        .set_count(self.buckets.len() - 1, count.saturating_add(rest));
                }
                self.live_total = self.live_total.saturating_add(rest);
                self.at_last = self.at_last.saturating_add(rest);
            }
        }
    }

    fn advance(&mut self, t: Time) {
        if self.started {
            assert!(
                t >= self.last_t,
                "time went backwards: {t} < {}",
                self.last_t
            );
        }
        if !self.started || t > self.last_t {
            self.at_last = 0;
        }
        self.started = true;
        self.last_t = t;
        self.expire(t);
    }

    fn query_window(&self, t: Time, w: Time) -> f64 {
        self.query_window_with(t, w, Estimator::Halved)
    }

    fn live_total(&self) -> u64 {
        self.live_total
    }

    fn buckets(&self) -> Vec<Bucket> {
        DominationEh::buckets(self)
    }

    fn columns(&self) -> ColumnsView<'_> {
        ColumnsView::from(&self.buckets)
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl td_decay::StreamAggregate for DominationEh {
    fn observe(&mut self, t: Time, f: u64) {
        WindowSketch::observe(self, t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        WindowSketch::observe_batch(self, items)
    }
    fn batched_ingest_amortizes(&self) -> bool {
        true // same-tick mass coalesced before the merge cascade
    }
    fn advance(&mut self, t: Time) {
        WindowSketch::advance(self, t)
    }
    /// The live-total estimate: a window query spanning the whole
    /// elapsed stream (ages `1..=t`), i.e. the sliding-window decayed
    /// sum this sketch maintains. Mass observed exactly at `t` is
    /// excluded (§2.1) *before* estimation — at-tick buckets are dropped
    /// whole (`canonicalize` keeps age-0 mass single-tick) — so the ε
    /// envelope applies to the strictly-past quantity being reported,
    /// not to past-plus-burst mass with a subtraction on top.
    fn query(&self, t: Time) -> f64 {
        if t == self.last_t && self.at_last > 0 {
            estimate_strict_past_cols(
                self.buckets.starts(),
                self.buckets.ends(),
                self.buckets.counts(),
                t,
                self.at_last,
                Estimator::Halved,
            )
        } else {
            self.query_window(t, t)
        }
    }
    fn merge_from(&mut self, other: &Self) {
        DominationEh::merge_from(self, other)
    }
    fn error_bound(&self) -> td_decay::ErrorBound {
        // A k-site union certifies k·ε (see merge_from); queries are
        // symmetric because a straddling oldest bucket can land on
        // either side of the true suffix count.
        td_decay::ErrorBound::symmetric(self.sites as f64 * self.epsilon)
    }
}

impl StorageAccounting for DominationEh {
    fn storage_bits(&self) -> u64 {
        // Per bucket: one timestamp plus an exact count.
        let span = self.last_t;
        self.buckets
            .counts()
            .iter()
            .map(|&c| bits_for_timestamp(span) + bits_for_count(c))
            .sum()
    }
}

/// Checkpoint tag for [`DominationEh`].
const TAG_DOMINATION: u8 = 6;

impl td_decay::checkpoint::Checkpoint for DominationEh {
    fn save_checkpoint(&self) -> Vec<u8> {
        use td_decay::checkpoint::CheckpointWriter;
        let mut w = CheckpointWriter::new(TAG_DOMINATION);
        w.put_f64(self.epsilon); // configuration pins
        match self.window {
            None => w.put_u8(0),
            Some(win) => {
                w.put_u8(1);
                w.put_u64(win);
            }
        }
        w.put_u64(self.live_total);
        w.put_u64(self.last_t);
        w.put_bool(self.started);
        w.put_u64(self.inserts_since_merge as u64);
        w.put_u32(self.sites);
        w.put_u64(self.at_last);
        // Serialized from the columns in the original AoS field order
        // (start, end, count per bucket): byte-stable across the SoA
        // refactor, pinned by the golden-checkpoint fixtures.
        w.put_u64(self.buckets.len() as u64);
        for (start, end, count) in self.buckets.iter() {
            w.put_u64(start);
            w.put_u64(end);
            w.put_u64(count);
        }
        w.seal()
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), td_decay::RestoreError> {
        use td_decay::checkpoint::{CheckpointReader, RestoreError};
        let mut r = CheckpointReader::open(bytes, TAG_DOMINATION)?;
        let eps = r.get_f64()?;
        let window = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u64()?),
            b => return Err(RestoreError::Invariant(format!("bad window tag {b}"))),
        };
        if eps.to_bits() != self.epsilon.to_bits() || window != self.window {
            return Err(RestoreError::Invariant(format!(
                "config mismatch: checkpoint (ε={eps}, window={window:?}), \
                 receiver (ε={}, window={:?})",
                self.epsilon, self.window
            )));
        }
        let live_total = r.get_u64()?;
        let last_t = r.get_u64()?;
        let started = r.get_bool()?;
        let inserts_since_merge = r.get_u64()? as usize;
        let sites = r.get_u32()?;
        let at_last = r.get_u64()?;
        if sites == 0 {
            return Err(RestoreError::Invariant("zero sites".into()));
        }
        let n = r.get_u64()?;
        let mut buckets = BucketColumns::with_capacity(n as usize);
        let mut sum = 0u64;
        for i in 0..n {
            let start = r.get_u64()?;
            let end = r.get_u64()?;
            let count = r.get_u64()?;
            if start > end || end > last_t {
                return Err(RestoreError::Invariant(format!(
                    "bucket {i} spans [{start}, {end}] beyond clock {last_t}"
                )));
            }
            if count == 0 {
                return Err(RestoreError::Invariant(format!("bucket {i} is empty")));
            }
            if let Some((_, prev_end, _)) = buckets.back() {
                // Cross-site merges interleave by end time and may nest
                // intervals, so only end-ordering is invariant.
                if prev_end > end {
                    return Err(RestoreError::Invariant(format!(
                        "bucket {i} ends before bucket {}",
                        i - 1
                    )));
                }
            }
            sum = sum.saturating_add(count);
            buckets.push_back(start, end, count);
        }
        r.finish()?;
        if sum != live_total {
            return Err(RestoreError::Invariant(format!(
                "bucket mass {sum} disagrees with live_total {live_total}"
            )));
        }
        self.buckets = buckets;
        self.live_total = live_total;
        self.last_t = last_t;
        self.started = started;
        self.inserts_since_merge = inserts_since_merge;
        self.sites = sites;
        self.at_last = at_last;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every multi-tick (merged) bucket is dominated: its count is at
    /// most ε × the total count of strictly newer buckets, measured NOW
    /// (dominance only strengthens as newer items arrive).
    fn assert_dominance(eh: &DominationEh) {
        let buckets = eh.buckets();
        let mut suffix = 0u64;
        for i in (0..buckets.len()).rev() {
            let b = buckets[i];
            if b.start != b.end {
                assert!(
                    b.count as f64 <= eh.epsilon * suffix as f64 + 1e-9,
                    "bucket {i} ({b:?}) not dominated by suffix {suffix}"
                );
            }
            suffix += b.count;
        }
    }

    #[test]
    fn dense_unit_stream_accuracy() {
        let eps = 0.1;
        let mut eh = DominationEh::new(eps, None);
        for t in 1..=20_000u64 {
            eh.observe(t, 1);
            if t % 1009 == 0 {
                assert_dominance(&eh);
            }
        }
        assert_dominance(&eh);
        for w in [1u64, 10, 100, 1_000, 10_000, 19_999] {
            let est = eh.query_window(20_001, w);
            let truth = w as f64;
            assert!(
                (est - truth).abs() <= eps * truth + 1.0,
                "w={w}: est={est}, truth={truth}"
            );
        }
    }

    #[test]
    fn bulk_values_accuracy() {
        let eps = 0.05;
        let mut eh = DominationEh::new(eps, None);
        let mut items: Vec<(Time, u64)> = Vec::new();
        let mut x = 98765u64;
        for t in 1..=10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 50; // bulk values 0..49
            eh.observe(t, f);
            items.push((t, f));
        }
        for w in [50u64, 500, 5_000, 9_999] {
            let truth: u64 = items
                .iter()
                .filter(|&&(t, _)| t >= 10_001 - w)
                .map(|&(_, f)| f)
                .sum();
            let est = eh.query_window(10_001, w);
            assert!(
                (est - truth as f64).abs() <= eps * truth as f64 + 25.0,
                "w={w}: est={est}, truth={truth}"
            );
        }
    }

    #[test]
    fn bucket_count_logarithmic_in_total() {
        let eps = 0.1;
        let mut eh = DominationEh::new(eps, None);
        for t in 1..=(1u64 << 16) {
            eh.observe(t, 1);
        }
        let n = eh.num_buckets() as f64;
        // O(ε⁻¹ log total): generous bound 4·(1/ε)·log2(total).
        let bound = 4.0 * (1.0 / eps) * 16.0;
        assert!(n <= bound, "n={n}, bound={bound}");
    }

    #[test]
    fn huge_single_burst_then_trickle() {
        // A 10^6 burst followed by unit arrivals: the burst bucket is
        // single-tick so window queries around it are exact.
        let mut eh = DominationEh::new(0.1, None);
        eh.observe(100, 1_000_000);
        for t in 101..=200u64 {
            eh.observe(t, 1);
        }
        // Window covering only the trickle.
        let est = eh.query_window(201, 100);
        assert!((est - 100.0).abs() <= 0.1 * 100.0 + 1.0, "est={est}");
        // Window covering everything.
        let est_all = eh.query_window(201, 101);
        let truth = 1_000_100.0;
        assert!((est_all - truth).abs() <= 0.1 * truth, "est={est_all}");
    }

    #[test]
    fn window_mode_expires() {
        let mut eh = DominationEh::new(0.1, Some(100));
        for t in 1..=10_000u64 {
            eh.observe(t, 3);
        }
        assert!(eh.live_total() <= 3 * 200);
        let est = eh.query_window(10_001, 100);
        let truth = 300.0;
        assert!((est - truth).abs() <= 0.1 * truth + 3.0, "est={est}");
    }

    #[test]
    fn same_tick_accumulation() {
        let mut eh = DominationEh::new(0.1, None);
        for _ in 0..10 {
            eh.observe(5, 7);
        }
        assert_eq!(eh.live_total(), 70);
        assert_eq!(eh.num_buckets(), 1);
        assert_eq!(eh.query_window(6, 1), 70.0);
    }

    #[test]
    fn estimate_is_exact_when_no_straddler() {
        let mut eh = DominationEh::new(0.25, None);
        for t in 1..=1000u64 {
            eh.observe(t, 2);
        }
        // Whole-history window: every bucket fully inside.
        let est = eh.query_window(1001, 1000);
        assert_eq!(est, 2000.0);
    }

    #[test]
    fn merge_from_combines_disjoint_sites() {
        // Two sites see interleaved substreams of one logical stream;
        // the merged histogram must estimate union windows within 2ε.
        let eps = 0.05;
        let mut site_a = DominationEh::new(eps, None);
        let mut site_b = DominationEh::new(eps, None);
        let mut items: Vec<(Time, u64)> = Vec::new();
        let mut x = 4242u64;
        for t in 1..=20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 6;
            items.push((t, f));
            if x.is_multiple_of(2) {
                site_a.observe(t, f);
            } else {
                site_b.observe(t, f);
            }
        }
        site_a.merge_from(&site_b);
        assert_eq!(
            site_a.live_total(),
            items.iter().map(|&(_, f)| f).sum::<u64>()
        );
        for w in [100u64, 1_000, 10_000, 19_999] {
            let truth: u64 = items
                .iter()
                .filter(|&&(t, _)| t >= 20_001 - w)
                .map(|&(_, f)| f)
                .sum();
            let est = site_a.query_window(20_001, w);
            assert!(
                (est - truth as f64).abs() <= 2.0 * eps * truth as f64 + 12.0,
                "w={w}: est={est}, truth={truth}"
            );
        }
    }

    #[test]
    fn merge_from_newer_site_replaces_at_tick_mass() {
        // Site b's last tick (20) is strictly newer than site a's (10):
        // the merged summary's at-tick mass must be b's alone — keeping
        // a's stale tick-10 mass would subtract strictly-past items
        // from the merged landmark answer.
        let mut a = DominationEh::new(0.1, None);
        for t in 1..=10u64 {
            a.observe(t, 5);
        }
        let mut b = DominationEh::new(0.1, None);
        for t in 1..=20u64 {
            b.observe(t, 3);
        }
        a.merge_from(&b);
        // Landmark query at the merged tick: everything except the
        // 3 units at tick 20 is strictly past and counted exactly.
        let truth = (10 * 5 + 20 * 3 - 3) as f64;
        assert_eq!(td_decay::StreamAggregate::query(&a, 20), truth);
        // One tick later the burst becomes visible too.
        assert_eq!(td_decay::StreamAggregate::query(&a, 21), truth + 3.0);
    }

    #[test]
    fn merge_from_same_tick_sums_at_tick_mass() {
        let mut a = DominationEh::new(0.1, None);
        let mut b = DominationEh::new(0.1, None);
        for t in 1..=20u64 {
            a.observe(t, 2);
            b.observe(t, 7);
        }
        a.merge_from(&b);
        let truth = (19 * 2 + 19 * 7) as f64;
        assert_eq!(td_decay::StreamAggregate::query(&a, 20), truth);
    }

    #[test]
    fn at_tick_burst_does_not_leak_estimation_error() {
        // Small past mass, then a huge burst at the query tick: the
        // answer must stay within ε of the (small) past truth — the
        // burst is excluded before estimation, so its mass never
        // contributes estimation error.
        let eps = 0.1;
        let mut eh = DominationEh::new(eps, None);
        for t in 1..=50u64 {
            eh.observe(t, 1);
        }
        eh.observe(51, 1_000_000);
        let got = td_decay::StreamAggregate::query(&eh, 51);
        assert!((got - 50.0).abs() <= eps * 50.0 + 1e-9, "got={got}");
    }

    #[test]
    fn merge_from_empty_is_noop() {
        let mut a = DominationEh::new(0.1, None);
        a.observe(1, 5);
        let b = DominationEh::new(0.1, None);
        a.merge_from(&b);
        assert_eq!(a.live_total(), 5);
    }

    #[test]
    #[should_panic(expected = "different epsilon")]
    fn merge_from_rejects_mismatched_epsilon() {
        let mut a = DominationEh::new(0.1, None);
        let b = DominationEh::new(0.2, None);
        a.merge_from(&b);
    }

    #[test]
    fn zeros_are_free() {
        let mut eh = DominationEh::new(0.1, None);
        for t in 1..=1000 {
            eh.observe(t, 0);
        }
        assert_eq!(eh.num_buckets(), 0);
        assert_eq!(eh.live_total(), 0);
    }
}
