//! The literal Datar et al. Exponential Histogram for 0/1 streams.

use td_decay::storage::{bits_for_count, bits_for_timestamp, StorageAccounting};
use td_decay::{BucketColumns, ColumnsView, Time};

use crate::bucket::{estimate_strict_past_cols, estimate_window_cols, Bucket, Estimator};
use crate::WindowSketch;

/// The classic Exponential Histogram of Datar, Gionis, Indyk & Motwani
/// for 0/1 streams (paper §4.1).
///
/// Every arriving `1` opens a fresh size-1 bucket; when a size class
/// `2^p` exceeds its cap of `⌈1/(2ε)⌉ + 2` buckets, the two **oldest**
/// buckets of that class merge into one bucket of size `2^(p+1)`,
/// cascading upward. The resulting invariants (verified by this module's
/// tests and the crate's property tests):
///
/// * bucket sizes are powers of two, non-decreasing toward the past;
/// * each size class holds at most `cap` buckets;
/// * consequently there are `O(ε⁻¹ log N)` buckets and every window
///   estimate has relative error at most ε with the default
///   [`Estimator::Halved`] rule (the one-sided [`Estimator::Paper`] rule
///   of Eq. (2) doubles the bound but never underestimates).
///
/// Construct with `window = None` to keep the whole history live (the
/// mode used for infinite-horizon decay functions by `td-ceh`) or
/// `Some(W)` to expire buckets that leave a sliding window of `W` ticks.
///
/// # Examples
///
/// ```
/// use td_eh::{ClassicEh, WindowSketch};
/// let mut eh = ClassicEh::new(0.1, Some(100));
/// for t in 1..=1000 {
///     eh.observe(t, 1);
/// }
/// let est = eh.query_window(1001, 100);
/// assert!((est - 100.0).abs() <= 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct ClassicEh {
    epsilon: f64,
    window: Option<Time>,
    /// Max buckets per size class before the two oldest merge.
    cap_per_class: usize,
    /// Buckets, oldest first, in structure-of-arrays columns (see
    /// `td_decay::soa`). Counts are powers of two.
    buckets: BucketColumns,
    live_total: u64,
    last_t: Time,
    started: bool,
    /// Mass observed exactly at `last_t`, so the unified-aggregate
    /// `query(T)` can exclude items at `T` itself (§2.1).
    at_last: u64,
}

impl ClassicEh {
    /// A histogram targeting relative error `epsilon`, optionally
    /// expiring items older than `window` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]` or `window == Some(0)`.
    pub fn new(epsilon: f64, window: Option<Time>) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0,1], got {epsilon}"
        );
        assert!(window != Some(0), "window must be positive");
        let cap_per_class = (1.0 / (2.0 * epsilon)).ceil() as usize + 2;
        Self {
            epsilon,
            window,
            cap_per_class,
            buckets: BucketColumns::new(),
            live_total: 0,
            last_t: 0,
            started: false,
            at_last: 0,
        }
    }

    /// The configured window, if any.
    pub fn window(&self) -> Option<Time> {
        self.window
    }

    /// The per-size-class bucket cap (`⌈1/(2ε)⌉ + 2`).
    pub fn cap_per_class(&self) -> usize {
        self.cap_per_class
    }

    /// Number of live buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The live bucket list, oldest first (inspection and equivalence
    /// testing).
    pub fn buckets(&self) -> Vec<Bucket> {
        self.buckets
            .iter()
            .map(|(start, end, count)| Bucket { start, end, count })
            .collect()
    }

    /// The time of the most recent observation.
    pub fn last_time(&self) -> Time {
        self.last_t
    }

    /// Drops buckets that are entirely outside the window at time `now`.
    fn expire(&mut self, now: Time) {
        if let Some(w) = self.window {
            let cutoff = now.saturating_sub(w);
            while let Some((_, end, count)) = self.buckets.front() {
                if end < cutoff {
                    self.live_total -= count;
                    self.buckets.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Cascading canonicalization: while any size class exceeds the cap,
    /// merge the two oldest buckets of that class into the next class.
    fn canonicalize(&mut self) {
        loop {
            // Walk newest → oldest counting the current class run; the
            // first class found over cap is the lowest such class, and
            // the last two run members encountered are its two oldest.
            let mut class_size = 0u64;
            let mut run = 0usize;
            let mut overfull_at: Option<usize> = None;
            let counts = self.buckets.counts();
            for idx in (0..counts.len()).rev() {
                let c = counts[idx];
                if c != class_size {
                    debug_assert!(
                        c > class_size,
                        "sizes must be non-decreasing toward the past"
                    );
                    class_size = c;
                    run = 0;
                }
                run += 1;
                if run > self.cap_per_class {
                    overfull_at = Some(idx);
                    break;
                }
            }
            match overfull_at {
                Some(idx) => {
                    // idx is the oldest member of the overfull class
                    // (the run has exactly cap+1 members right after an
                    // insert); merge it with its newer neighbour.
                    let (o_start, o_end, o_count) = self.buckets.get(idx);
                    let (n_start, n_end, n_count) = self.buckets.get(idx + 1);
                    debug_assert_eq!(o_count, n_count);
                    self.buckets.set(
                        idx + 1,
                        o_start.min(n_start),
                        o_end.max(n_end),
                        o_count.saturating_add(n_count),
                    );
                    self.buckets.remove(idx);
                }
                None => break,
            }
        }
    }

    /// Estimates a window count with an explicit straddler rule,
    /// streaming the columns directly — no copy on any path.
    pub fn query_window_with(&self, t: Time, w: Time, estimator: Estimator) -> f64 {
        estimate_window_cols(
            self.buckets.starts(),
            self.buckets.ends(),
            self.buckets.counts(),
            t,
            w,
            estimator,
        )
    }
}

impl WindowSketch for ClassicEh {
    /// Ingests `f ∈ {0, 1}` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `f > 1` (use [`crate::DominationEh`] for bulk values)
    /// or if `t` precedes a previous observation.
    fn observe(&mut self, t: Time, f: u64) {
        assert!(f <= 1, "ClassicEh is for 0/1 streams; got value {f}");
        self.advance(t);
        if f == 0 {
            return;
        }
        self.buckets.push_back(t, t, 1);
        self.live_total += 1;
        self.at_last += 1;
        self.canonicalize();
    }

    /// Ingests a sorted burst of 0/1 items. The classic cascade must
    /// run once per unit insert (each `1` opens a size-1 bucket and the
    /// class caps are checked immediately), so only the clock advance,
    /// expiry, and monotonicity assert are amortized per distinct tick;
    /// the end state is bit-identical to the sequential loop.
    ///
    /// # Panics
    ///
    /// Panics if any value exceeds 1 or any time precedes its
    /// predecessor.
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let mut i = 0;
        while i < items.len() {
            let t = items[i].0;
            self.advance(t);
            while i < items.len() && items[i].0 == t {
                let f = items[i].1;
                assert!(f <= 1, "ClassicEh is for 0/1 streams; got value {f}");
                if f == 1 {
                    self.buckets.push_back(t, t, 1);
                    self.live_total += 1;
                    self.at_last += 1;
                    self.canonicalize();
                }
                i += 1;
            }
        }
    }

    fn advance(&mut self, t: Time) {
        if self.started {
            assert!(
                t >= self.last_t,
                "time went backwards: {t} < {}",
                self.last_t
            );
        }
        if !self.started || t > self.last_t {
            self.at_last = 0;
        }
        self.started = true;
        self.last_t = t;
        self.expire(t);
    }

    fn query_window(&self, t: Time, w: Time) -> f64 {
        self.query_window_with(t, w, Estimator::Halved)
    }

    fn live_total(&self) -> u64 {
        self.live_total
    }

    fn buckets(&self) -> Vec<Bucket> {
        ClassicEh::buckets(self)
    }

    fn columns(&self) -> ColumnsView<'_> {
        ColumnsView::from(&self.buckets)
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl td_decay::StreamAggregate for ClassicEh {
    fn observe(&mut self, t: Time, f: u64) {
        WindowSketch::observe(self, t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        WindowSketch::observe_batch(self, items)
    }
    fn batched_ingest_amortizes(&self) -> bool {
        true // clock advance + expiry amortized per distinct tick
    }
    fn advance(&mut self, t: Time) {
        WindowSketch::advance(self, t)
    }
    /// The live-total estimate: a window query spanning the whole
    /// elapsed stream (ages `1..=t`). Mass observed exactly at `t` is
    /// excluded (§2.1) *before* estimation — pure at-tick buckets are
    /// dropped whole and at-tick mass burst-merged into a past-spanning
    /// bucket is subtracted exactly — so the ε envelope applies to the
    /// strictly-past quantity being reported, not to past-plus-burst
    /// mass with a subtraction on top.
    fn query(&self, t: Time) -> f64 {
        if t == self.last_t && self.at_last > 0 {
            estimate_strict_past_cols(
                self.buckets.starts(),
                self.buckets.ends(),
                self.buckets.counts(),
                t,
                self.at_last,
                Estimator::Halved,
            )
        } else {
            self.query_window(t, t)
        }
    }
    /// # Panics
    ///
    /// Always: the classic power-of-two structure has no merge
    /// algorithm (merging breaks the size-class invariant).
    fn merge_from(&mut self, _other: &Self) {
        panic!("ClassicEh does not support merge_from; use DominationEh");
    }
    fn error_bound(&self) -> td_decay::ErrorBound {
        td_decay::ErrorBound::symmetric(self.epsilon)
    }
}

impl StorageAccounting for ClassicEh {
    fn storage_bits(&self) -> u64 {
        // Per bucket: one timestamp over the elapsed span plus a size-
        // class index (sizes are powers of two, so only the exponent is
        // stored).
        let span = self.last_t;
        self.buckets
            .counts()
            .iter()
            .map(|&c| {
                let class = 63 - c.leading_zeros() as u64;
                bits_for_timestamp(span) + bits_for_count(class)
            })
            .sum()
    }
}

/// Checkpoint tag for [`ClassicEh`].
const TAG_CLASSIC: u8 = 5;

impl td_decay::checkpoint::Checkpoint for ClassicEh {
    fn save_checkpoint(&self) -> Vec<u8> {
        use td_decay::checkpoint::CheckpointWriter;
        let mut w = CheckpointWriter::new(TAG_CLASSIC);
        w.put_f64(self.epsilon); // configuration pins
        match self.window {
            None => w.put_u8(0),
            Some(win) => {
                w.put_u8(1);
                w.put_u64(win);
            }
        }
        w.put_u64(self.live_total);
        w.put_u64(self.last_t);
        w.put_bool(self.started);
        w.put_u64(self.at_last);
        // Columns serialized in the original AoS field order (start,
        // end, count per bucket): byte-stable across the SoA refactor.
        w.put_u64(self.buckets.len() as u64);
        for (start, end, count) in self.buckets.iter() {
            w.put_u64(start);
            w.put_u64(end);
            w.put_u64(count);
        }
        w.seal()
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), td_decay::RestoreError> {
        use td_decay::checkpoint::{CheckpointReader, RestoreError};
        let mut r = CheckpointReader::open(bytes, TAG_CLASSIC)?;
        let eps = r.get_f64()?;
        let window = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u64()?),
            b => return Err(RestoreError::Invariant(format!("bad window tag {b}"))),
        };
        if eps.to_bits() != self.epsilon.to_bits() || window != self.window {
            return Err(RestoreError::Invariant(format!(
                "config mismatch: checkpoint (ε={eps}, window={window:?}), \
                 receiver (ε={}, window={:?})",
                self.epsilon, self.window
            )));
        }
        let live_total = r.get_u64()?;
        let last_t = r.get_u64()?;
        let started = r.get_bool()?;
        let at_last = r.get_u64()?;
        let n = r.get_u64()?;
        let mut buckets = BucketColumns::with_capacity(n as usize);
        let mut sum = 0u64;
        let mut run = 0usize;
        for i in 0..n {
            let start = r.get_u64()?;
            let end = r.get_u64()?;
            let count = r.get_u64()?;
            if start > end || end > last_t {
                return Err(RestoreError::Invariant(format!(
                    "bucket {i} spans [{start}, {end}] beyond clock {last_t}"
                )));
            }
            if !count.is_power_of_two() {
                return Err(RestoreError::Invariant(format!(
                    "bucket {i} count {count} is not a power of two"
                )));
            }
            if let Some((_, prev_end, prev_count)) = buckets.back() {
                if prev_end > start {
                    return Err(RestoreError::Invariant(format!(
                        "buckets {} and {i} overlap or run backwards",
                        i - 1
                    )));
                }
                if prev_count < count {
                    return Err(RestoreError::Invariant(
                        "bucket sizes decrease toward the past".into(),
                    ));
                }
                run = if prev_count == count { run + 1 } else { 1 };
            } else {
                run = 1;
            }
            if run > self.cap_per_class {
                return Err(RestoreError::Invariant(format!(
                    "size class {count} holds more than {} buckets",
                    self.cap_per_class
                )));
            }
            sum = sum.saturating_add(count);
            buckets.push_back(start, end, count);
        }
        r.finish()?;
        if sum != live_total {
            return Err(RestoreError::Invariant(format!(
                "bucket mass {sum} disagrees with live_total {live_total}"
            )));
        }
        self.buckets = buckets;
        self.live_total = live_total;
        self.last_t = last_t;
        self.started = started;
        self.at_last = at_last;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sizes are powers of two, non-decreasing toward the past, and no
    /// class exceeds the cap.
    fn assert_invariants(eh: &ClassicEh) {
        let counts: Vec<u64> = eh.buckets.counts().to_vec();
        for &c in &counts {
            assert!(c.is_power_of_two(), "count {c} not a power of 2");
        }
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "sizes decrease toward the past: {counts:?}");
        }
        let mut runs: Vec<(u64, usize)> = Vec::new();
        for &c in &counts {
            match runs.last_mut() {
                Some((size, n)) if *size == c => *n += 1,
                _ => runs.push((c, 1)),
            }
        }
        for &(size, n) in &runs {
            assert!(
                n <= eh.cap_per_class(),
                "class {size} holds {n} > cap {}",
                eh.cap_per_class()
            );
        }
        // Bucket intervals are disjoint and ordered.
        for pair in eh.buckets().windows(2) {
            assert!(pair[0].end <= pair[1].start);
            assert!(pair[0].start <= pair[0].end);
        }
    }

    #[test]
    fn dense_stream_invariants_and_accuracy() {
        let eps = 0.1;
        let mut eh = ClassicEh::new(eps, None);
        for t in 1..=20_000u64 {
            eh.observe(t, 1);
            if t % 997 == 0 {
                assert_invariants(&eh);
            }
        }
        assert_invariants(&eh);
        for w in [1u64, 10, 100, 1_000, 10_000, 19_999] {
            let est = eh.query_window(20_001, w);
            let truth = w as f64;
            assert!(
                (est - truth).abs() <= eps * truth + 1.0,
                "w={w}: est={est}, truth={truth}"
            );
        }
    }

    #[test]
    fn bucket_count_is_logarithmic() {
        let mut eh = ClassicEh::new(0.1, None);
        for t in 1..=(1u64 << 14) {
            eh.observe(t, 1);
        }
        let n14 = eh.num_buckets();
        for t in (1u64 << 14) + 1..=(1u64 << 18) {
            eh.observe(t, 1);
        }
        let n18 = eh.num_buckets();
        assert!(n18 <= n14 + 5 * eh.cap_per_class(), "n14={n14}, n18={n18}");
    }

    #[test]
    fn sparse_stream_accuracy() {
        let eps = 0.05;
        let mut eh = ClassicEh::new(eps, None);
        let mut ones: Vec<Time> = Vec::new();
        let mut x = 12345u64;
        for t in 1..=30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = (x % 10 < 3) as u64;
            eh.observe(t, f);
            if f == 1 {
                ones.push(t);
            }
        }
        for w in [100u64, 1_000, 29_999] {
            let truth = ones.iter().filter(|&&t| t >= 30_001 - w).count() as f64;
            let est = eh.query_window(30_001, w);
            assert!(
                (est - truth).abs() <= eps * truth + 1.0,
                "w={w}: est={est}, truth={truth}"
            );
        }
    }

    #[test]
    fn window_mode_expires_and_stays_accurate() {
        let eps = 0.1;
        let w = 500u64;
        let mut eh = ClassicEh::new(eps, Some(w));
        for t in 1..=10_000u64 {
            eh.observe(t, 1);
        }
        assert!(eh.live_total() <= 2 * w, "live={}", eh.live_total());
        let est = eh.query_window(10_001, w);
        assert!((est - w as f64).abs() <= eps * w as f64 + 1.0, "est={est}");
    }

    #[test]
    fn paper_estimator_never_underestimates() {
        let mut eh = ClassicEh::new(0.1, None);
        for t in 1..=5_000u64 {
            eh.observe(t, 1);
        }
        for w in [10u64, 100, 1_000, 4_999] {
            let est = eh.query_window_with(5_001, w, Estimator::Paper);
            assert!(est >= w as f64 - 1e-9, "w={w}: est={est}");
            assert!(
                est <= (1.0 + 2.0 * 0.1) * w as f64 + 1.0,
                "w={w}: est={est}"
            );
        }
    }

    #[test]
    fn zeros_do_not_create_buckets() {
        let mut eh = ClassicEh::new(0.1, None);
        for t in 1..=100 {
            eh.observe(t, 0);
        }
        assert_eq!(eh.num_buckets(), 0);
        assert_eq!(eh.query_window(101, 100), 0.0);
    }

    #[test]
    fn bursty_same_tick_arrivals() {
        // Many 1s at the same tick (the DCP model allows one item per
        // tick, but the structure must tolerate bursts for use by the
        // aggregates layer).
        let mut eh = ClassicEh::new(0.2, None);
        for _ in 0..100 {
            eh.observe(10, 1);
        }
        for _ in 0..50 {
            eh.observe(20, 1);
        }
        assert_eq!(eh.live_total(), 150);
        let est = eh.query_window(21, 5);
        assert!((est - 50.0).abs() <= 0.2 * 50.0 + 1.0, "est={est}");
    }

    #[test]
    fn at_tick_burst_does_not_leak_estimation_error() {
        // A handful of past items, then a burst at the query tick large
        // enough that ε·burst would dwarf the past count. The at-tick
        // mass — including any of it merged into past-spanning buckets
        // by the class cascade — must be removed exactly, keeping the
        // answer within ε of the strictly-past truth.
        let eps = 0.1;
        let mut eh = ClassicEh::new(eps, None);
        for t in 1..=40u64 {
            eh.observe(t, 1);
        }
        for _ in 0..4_000 {
            eh.observe(41, 1);
        }
        let got = td_decay::StreamAggregate::query(&eh, 41);
        assert!((got - 40.0).abs() <= eps * 40.0 + 1.0, "got={got}");
        // One tick later the burst is strictly past and fully visible.
        let after = td_decay::StreamAggregate::query(&eh, 42);
        assert!(
            (after - 4_040.0).abs() <= eps * 4_040.0 + 1.0,
            "after={after}"
        );
    }

    #[test]
    #[should_panic(expected = "0/1 streams")]
    fn rejects_bulk_values() {
        let mut eh = ClassicEh::new(0.1, None);
        eh.observe(1, 5);
    }

    #[test]
    fn storage_bits_scale_like_log_squared() {
        let mut eh = ClassicEh::new(0.1, None);
        for t in 1..=(1u64 << 10) {
            eh.observe(t, 1);
        }
        let b10 = eh.storage_bits();
        for t in (1u64 << 10) + 1..=(1u64 << 20) {
            eh.observe(t, 1);
        }
        let b20 = eh.storage_bits();
        let ratio = b20 as f64 / b10 as f64;
        assert!(ratio > 1.5 && ratio < 8.0, "ratio={ratio}");
    }
}
