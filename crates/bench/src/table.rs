//! Minimal fixed-width table printing for experiment output.

/// A simple right-aligned text table: header row plus data rows,
/// printed with column widths fitted to the content.
///
/// ```
/// use td_bench::Table;
/// let mut t = Table::new(&["N", "bits", "err"]);
/// t.row(&["1024".into(), "812".into(), "0.03".into()]);
/// let s = t.render();
/// assert!(s.contains("bits"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: append a row of displayable values.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// A titled [`Table`]: experiment summaries are sequences of named
/// sections, so the title-and-blank-line framing lives here instead of
/// being copy-pasted as `println!` pairs next to every table.
#[derive(Debug, Clone)]
pub struct Section {
    title: String,
    table: Table,
}

impl Section {
    /// A section with a title line and the given column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            table: Table::new(headers),
        }
    }

    /// Appends a data row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        self.table.row(cells);
    }

    /// Convenience: append a row of displayable values.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.table.push(cells);
    }

    /// Renders the framed section: blank line, title, blank line, table.
    pub fn render(&self) -> String {
        format!("\n{}\n\n{}", self.title, self.table.render())
    }

    /// Prints the rendered section to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.push(&[1000, 2]);
        t.push(&[1, 22222]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn section_frames_title_above_table() {
        let mut s = Section::new("Speedups", &["who", "x"]);
        s.push(&["fwd", "2.0"]);
        let r = s.render();
        assert!(r.starts_with("\nSpeedups\n\n"));
        assert!(r.contains("who"));
        assert!(r.contains("fwd"));
    }
}
