//! Host identification stamped into every benchmark JSON row.
//!
//! Throughput numbers are meaningless without the machine they were
//! measured on: the multi-core scaling rows of `e13_shard_scaling` in
//! particular invert their interpretation between a 1-core container
//! (shards time-slice one CPU; rows measure coordination overhead) and
//! a real multi-core host (rows measure speedup). Rather than relying
//! on a header field readers may drop when they copy single rows
//! around, every row carries the `host_parallelism` and CPU model it
//! was measured under.

/// The number of hardware threads the benchmark process may use
/// (`std::thread::available_parallelism`, so cgroup/affinity limits are
/// respected), with 1 as the conservative fallback.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The CPU model string from `/proc/cpuinfo` (`"unknown"` off Linux or
/// when the field is absent), JSON-safe: quotes and backslashes are
/// stripped rather than escaped.
pub fn cpu_model() -> String {
    let raw = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
    raw.lines()
        .find_map(|line| {
            let (key, value) = line.split_once(':')?;
            if key.trim() == "model name" {
                Some(value.trim().to_string())
            } else {
                None
            }
        })
        .unwrap_or_else(|| "unknown".to_string())
        .chars()
        .filter(|c| *c != '"' && *c != '\\')
        .collect()
}

/// The `"host_parallelism": …, "cpu": "…"` JSON fragment every
/// benchmark row embeds (no leading/trailing separators).
pub fn json_fragment() -> String {
    format!(
        "\"host_parallelism\": {}, \"cpu\": \"{}\"",
        host_parallelism(),
        cpu_model()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_is_positive() {
        assert!(host_parallelism() >= 1);
    }

    #[test]
    fn cpu_model_is_json_safe() {
        let m = cpu_model();
        assert!(!m.is_empty());
        assert!(!m.contains('"') && !m.contains('\\'));
    }

    #[test]
    fn fragment_shape() {
        let f = json_fragment();
        assert!(f.starts_with("\"host_parallelism\": "));
        assert!(f.contains("\"cpu\": \""));
    }
}
