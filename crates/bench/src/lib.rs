//! Shared infrastructure for the paper-reproduction experiment binaries
//! (`e1`–`e12`, see EXPERIMENTS.md) and the Criterion micro-benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod hostinfo;
pub mod table;

pub use fit::{fit_linear, fit_loglog, fit_vs_log_n, Fit};
pub use hostinfo::{cpu_model, host_parallelism};
pub use table::{Section, Table};
