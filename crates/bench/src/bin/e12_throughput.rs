//! E12 — update/query cost of every backend (the §4.2 amortized-cost
//! claims, in wall-clock form), plus the single-item vs batched ingest
//! comparison on a bursty stream. Criterion micro-benches give the
//! rigorous numbers (`cargo bench -p td-bench`); this binary prints a
//! one-page summary and writes `BENCH_throughput.json`.

use std::time::Instant;

use td_bench::Table;
use td_ceh::CascadedEh;
use td_counters::{ExactDecayedSum, ExpCounter, PolyExpCounter, QuantizedExpCounter};
use td_decay::{Exponential, Polynomial, StreamAggregate};
use td_stream::BernoulliStream;
use td_wbmh::Wbmh;

fn main() {
    println!("E12: backend throughput, 1e6-tick Bernoulli(0.5) stream\n");
    let n = 1_000_000u64;
    let stream: Vec<(u64, u64)> = BernoulliStream::new(0.5, 4).take(n as usize).collect();

    let mut table = Table::new(&["backend", "decay", "update ns/op", "query ns/op"]);

    // EXPD counter.
    {
        let mut c = ExpCounter::new(Exponential::new(0.001));
        let t0 = Instant::now();
        for &(t, f) in &stream {
            c.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..10_000u64 {
            acc += c.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 10_000.0;
        std::hint::black_box(acc);
        table.row(&[
            "exp-counter".into(),
            "EXPD(0.001)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    // Cascaded EH.
    {
        let mut c = CascadedEh::new(Polynomial::new(1.0), 0.05);
        let t0 = Instant::now();
        for &(t, f) in &stream {
            c.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..10_000u64 {
            acc += c.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 10_000.0;
        std::hint::black_box(acc);
        table.row(&[
            "ceh".into(),
            "POLYD(1)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    // WBMH.
    {
        let mut w = Wbmh::new(Polynomial::new(1.0), 0.05, 1 << 24);
        let t0 = Instant::now();
        for &(t, f) in &stream {
            w.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..10_000u64 {
            acc += w.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 10_000.0;
        std::hint::black_box(acc);
        table.row(&[
            "wbmh".into(),
            "POLYD(1)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    // Exact baseline (update cheap; query is the O(n) pass).
    {
        let mut e = ExactDecayedSum::new(Polynomial::new(1.0));
        let t0 = Instant::now();
        for &(t, f) in &stream {
            e.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..20u64 {
            acc += e.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 20.0;
        std::hint::black_box(acc);
        table.row(&[
            "exact".into(),
            "POLYD(1)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    table.print();
    println!(
        "\n(updates for all summaries are amortized O(1)-ish; the exact baseline's \
         query scans every live item — the cost the summaries exist to avoid)"
    );

    batched_vs_single();
}

/// A bursty multi-arrival stream: ~1e6 items over ~1e5 ticks, where
/// each tick carries a geometric-ish burst of same-tick items. Same-tick
/// runs are what `observe_batch` coalesces, so this is the shape the
/// batch API is for.
fn bursty_items(n: usize) -> Vec<(u64, u64)> {
    let mut items = Vec::with_capacity(n);
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut t = 0u64;
    while items.len() < n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t += 1 + x % 3;
        let burst = 1 + (x >> 17) % 20; // 1..=20 items at this tick
        for j in 0..burst {
            if items.len() == n {
                break;
            }
            items.push((t, (x >> 23).wrapping_add(j) % 8));
        }
    }
    items
}

fn time_ns_per_item(n: usize, f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as f64 / n as f64
}

/// Measures item-by-item `observe` against `observe_batch` (fed in
/// 4096-item chunks, as an ingest loop draining a buffer would) for one
/// backend, and checks the two ingests agree at query time. Best of
/// seven *consecutive* repeats per path with a fresh backend each time:
/// a single pass is at the mercy of container CPU-quota throttling and
/// page-fault storms (10-40× outliers on otherwise-identical runs),
/// and interleaving the two paths rep-by-rep turned out to wreck both
/// floors — alternating 16 MB allocation patterns kept every rep
/// paying allocator/page-cache churn, flattening a real 2× gap into
/// noise. Run all reps of one path, then all reps of the other.
fn measure<A: StreamAggregate>(
    name: &str,
    items: &[(u64, u64)],
    make: impl Fn() -> A,
) -> (String, f64, f64) {
    let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
    let mut single_ns = f64::INFINITY;
    let mut batched_ns = f64::INFINITY;
    let mut single_answer = 0.0;
    let mut batched_answer = 0.0;
    for _ in 0..7 {
        let mut single = make();
        single_ns = single_ns.min(time_ns_per_item(items.len(), || {
            for &(t, f) in items {
                single.observe(t, f);
            }
        }));
        single_answer = single.query(t_end);
    }
    for _ in 0..7 {
        let mut batched = make();
        batched_ns = batched_ns.min(time_ns_per_item(items.len(), || {
            for chunk in items.chunks(4096) {
                batched.observe_batch(chunk);
            }
        }));
        batched_answer = batched.query(t_end);
    }
    assert!(
        (single_answer - batched_answer).abs() <= 1e-9 * single_answer.abs().max(1.0),
        "{name}: batched ingest diverged ({single_answer} vs {batched_answer})"
    );
    (name.to_string(), single_ns, batched_ns)
}

fn batched_vs_single() {
    println!("\nSingle-item vs batched ingest, 1e6-item bursty stream (same-tick bursts)\n");
    let items = bursty_items(1_000_000);
    let exp = Exponential::new(0.001);
    let poly = Polynomial::new(1.0);

    let rows = [
        measure("exp-counter", &items, || ExpCounter::new(exp)),
        measure("quantized-exp", &items, || {
            QuantizedExpCounter::new(exp, 24)
        }),
        measure("polyexp-pipeline", &items, || PolyExpCounter::new(2, 0.001)),
        measure("ceh", &items, || CascadedEh::new(poly, 0.05)),
        measure("wbmh", &items, || Wbmh::new(poly, 0.05, 1 << 24)),
        measure("exact", &items, || ExactDecayedSum::new(poly)),
        // The conformance harness's store-everything oracle: its ingest
        // rate bounds the differential-testing overhead relative to the
        // backends it certifies (queries are O(n) and excluded here).
        measure("conformance-oracle", &items, || {
            td_conformance::Oracle::new(poly)
        }),
    ];

    let mut table = Table::new(&["backend", "single ns/item", "batched ns/item", "speedup"]);
    let mut json = String::from("[\n");
    for (i, (name, single_ns, batched_ns)) in rows.iter().enumerate() {
        let speedup = single_ns / batched_ns;
        table.row(&[
            name.clone(),
            format!("{single_ns:.1}"),
            format!("{batched_ns:.1}"),
            format!("{speedup:.2}x"),
        ]);
        json.push_str(&format!(
            "  {{\"backend\": \"{name}\", \"single_ns_per_item\": {single_ns:.2}, \
             \"batched_ns_per_item\": {batched_ns:.2}, \"speedup\": {speedup:.3}}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    table.print();

    // The oracle's batch path is a reserve-once append — if it ever
    // regresses below the single-item path again (it did: 0.72x before
    // the per-batch re-validation sweep was fused into the copy loop),
    // fail loudly here rather than silently publishing the regression.
    let (_, oracle_single, oracle_batched) = rows[rows.len() - 1].clone();
    assert!(
        oracle_batched <= oracle_single * 1.05,
        "conformance-oracle batched ingest ({oracle_batched:.1} ns/item) slower than \
         single-item ({oracle_single:.1} ns/item)"
    );

    let path = "BENCH_throughput.json";
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("\nwrote {path}");
}
