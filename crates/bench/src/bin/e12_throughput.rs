//! E12 — update/query cost of every backend (the §4.2 amortized-cost
//! claims, in wall-clock form). Criterion micro-benches give the
//! rigorous numbers (`cargo bench -p td-bench`); this binary prints a
//! one-page summary.

use std::time::Instant;

use td_bench::Table;
use td_ceh::CascadedEh;
use td_counters::{ExactDecayedSum, ExpCounter};
use td_decay::{Exponential, Polynomial};
use td_stream::BernoulliStream;
use td_wbmh::Wbmh;

fn main() {
    println!("E12: backend throughput, 1e6-tick Bernoulli(0.5) stream\n");
    let n = 1_000_000u64;
    let stream: Vec<(u64, u64)> = BernoulliStream::new(0.5, 4).take(n as usize).collect();

    let mut table = Table::new(&["backend", "decay", "update ns/op", "query ns/op"]);

    // EXPD counter.
    {
        let mut c = ExpCounter::new(Exponential::new(0.001));
        let t0 = Instant::now();
        for &(t, f) in &stream {
            c.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..10_000u64 {
            acc += c.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 10_000.0;
        std::hint::black_box(acc);
        table.row(&[
            "exp-counter".into(),
            "EXPD(0.001)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    // Cascaded EH.
    {
        let mut c = CascadedEh::new(Polynomial::new(1.0), 0.05);
        let t0 = Instant::now();
        for &(t, f) in &stream {
            c.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..10_000u64 {
            acc += c.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 10_000.0;
        std::hint::black_box(acc);
        table.row(&[
            "ceh".into(),
            "POLYD(1)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    // WBMH.
    {
        let mut w = Wbmh::new(Polynomial::new(1.0), 0.05, 1 << 24);
        let t0 = Instant::now();
        for &(t, f) in &stream {
            w.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..10_000u64 {
            acc += w.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 10_000.0;
        std::hint::black_box(acc);
        table.row(&[
            "wbmh".into(),
            "POLYD(1)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    // Exact baseline (update cheap; query is the O(n) pass).
    {
        let mut e = ExactDecayedSum::new(Polynomial::new(1.0));
        let t0 = Instant::now();
        for &(t, f) in &stream {
            e.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..20u64 {
            acc += e.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 20.0;
        std::hint::black_box(acc);
        table.row(&[
            "exact".into(),
            "POLYD(1)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    table.print();
    println!(
        "\n(updates for all summaries are amortized O(1)-ish; the exact baseline's \
         query scans every live item — the cost the summaries exist to avoid)"
    );
}
