//! E12 — update/query cost of every backend (the §4.2 amortized-cost
//! claims, in wall-clock form), plus the single-item vs batched ingest
//! comparison on a bursty stream. Criterion micro-benches give the
//! rigorous numbers (`cargo bench -p td-bench`); this binary prints a
//! one-page summary and writes `BENCH_throughput.json`.

use std::time::Instant;

use td_bench::{Section, Table};
use td_ceh::CascadedEh;
use td_counters::{ExactDecayedSum, ExpCounter, PolyExpCounter, QuantizedExpCounter};
use td_decay::{
    DecayFunction, Exponential, PolyExponential, Polynomial, StorageAccounting, StreamAggregate,
};
use td_forward::ForwardDecaySum;
use td_stream::BernoulliStream;
use td_wbmh::Wbmh;

fn main() {
    println!("E12: backend throughput, 1e6-tick Bernoulli(0.5) stream\n");
    let n = 1_000_000u64;
    let stream: Vec<(u64, u64)> = BernoulliStream::new(0.5, 4).take(n as usize).collect();

    let mut table = Table::new(&["backend", "decay", "update ns/op", "query ns/op"]);

    // EXPD counter.
    {
        let mut c = ExpCounter::new(Exponential::new(0.001));
        let t0 = Instant::now();
        for &(t, f) in &stream {
            c.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..10_000u64 {
            acc += c.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 10_000.0;
        std::hint::black_box(acc);
        table.row(&[
            "exp-counter".into(),
            "EXPD(0.001)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    // Cascaded EH.
    {
        let mut c = CascadedEh::new(Polynomial::new(1.0), 0.05);
        let t0 = Instant::now();
        for &(t, f) in &stream {
            c.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..10_000u64 {
            acc += c.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 10_000.0;
        std::hint::black_box(acc);
        table.row(&[
            "ceh".into(),
            "POLYD(1)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    // WBMH.
    {
        let mut w = Wbmh::new(Polynomial::new(1.0), 0.05, 1 << 24);
        let t0 = Instant::now();
        for &(t, f) in &stream {
            w.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..10_000u64 {
            acc += w.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 10_000.0;
        std::hint::black_box(acc);
        table.row(&[
            "wbmh".into(),
            "POLYD(1)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    // Exact baseline (update cheap; query is the O(n) pass).
    {
        let mut e = ExactDecayedSum::new(Polynomial::new(1.0));
        let t0 = Instant::now();
        for &(t, f) in &stream {
            e.observe(t, f);
        }
        let upd = t0.elapsed().as_nanos() as f64 / n as f64;
        let t0 = Instant::now();
        let mut acc = 0.0;
        for q in 0..20u64 {
            acc += e.query(n + 1 + q % 8);
        }
        let qry = t0.elapsed().as_nanos() as f64 / 20.0;
        std::hint::black_box(acc);
        table.row(&[
            "exact".into(),
            "POLYD(1)".into(),
            format!("{upd:.0}"),
            format!("{qry:.0}"),
        ]);
    }

    table.print();
    println!(
        "\n(updates for all summaries are amortized O(1)-ish; the exact baseline's \
         query scans every live item — the cost the summaries exist to avoid)"
    );

    let kernel_rows = kernel_speedups();
    let reorder_rows = reorder_overhead();
    let forward_rows = forward_vs_backward();
    batched_vs_single(&kernel_rows, &reorder_rows, &forward_rows);
}

/// ISSUE 8: forward decay vs the backward histograms, refereed per
/// decay family. The forward moment accumulators pay O(1) straight-line
/// FMA ingest for *any* decay function; the backward histograms pay
/// bucket maintenance. The gate makes the headline claim
/// self-enforcing: forward batched ingest must beat the fastest
/// backward histogram champion under both exponential and polynomial
/// decay (CEH is the exp champion; CEH and WBMH contest poly).
/// `TD_FORWARD_GATE_SLACK` widens the gate on noisy shared runners.
fn forward_vs_backward() -> Vec<(String, f64, f64, u64)> {
    let items = bursty_items(1_000_000);
    let exp = Exponential::new(0.001);
    let poly = Polynomial::new(1.0);

    fn measure_sized<A: StreamAggregate + StorageAccounting>(
        name: &str,
        items: &[(u64, u64)],
        make: impl Fn() -> A,
    ) -> (String, f64, f64, u64) {
        let (name, single_ns, batched_ns) = measure(name, items, &make);
        let mut b = make();
        for chunk in items.chunks(4096) {
            b.observe_batch(chunk);
        }
        (name, single_ns, batched_ns, b.storage_bits())
    }

    let exp_rows = vec![
        measure_sized("forward-sum/expd", &items, || ForwardDecaySum::new(exp)),
        measure_sized("ceh/expd", &items, || CascadedEh::new(exp, 0.05)),
    ];
    let poly_rows = vec![
        measure_sized("forward-sum/poly1", &items, || ForwardDecaySum::new(poly)),
        measure_sized("ceh/poly1", &items, || CascadedEh::new(poly, 0.05)),
        measure_sized("wbmh/poly1", &items, || Wbmh::new(poly, 0.05, 1 << 24)),
    ];

    let mut sec = Section::new(
        "Forward vs backward decay: same bursty stream, per decay family \
         (first row per family is the forward accumulator)",
        &[
            "backend",
            "single ns/item",
            "batched ns/item",
            "speedup",
            "storage bits",
        ],
    );
    for (name, single_ns, batched_ns, bits) in exp_rows.iter().chain(&poly_rows) {
        sec.row(&[
            name.clone(),
            format!("{single_ns:.1}"),
            format!("{batched_ns:.1}"),
            format!("{:.2}x", single_ns / batched_ns),
            bits.to_string(),
        ]);
    }
    sec.print();

    let slack: f64 = std::env::var("TD_FORWARD_GATE_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    for (family, rows) in [("expd", &exp_rows), ("poly1", &poly_rows)] {
        let fwd = &rows[0];
        let champ = rows[1..]
            .iter()
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .expect("every family has a backward champion");
        assert!(
            fwd.2 <= champ.2 * slack,
            "forward ingest lost the {family} referee: {:.2} ns/item vs backward \
             champion {} at {:.2} (slack {slack:.2}; set TD_FORWARD_GATE_SLACK to widen)",
            fwd.2,
            champ.0,
            champ.2,
        );
    }
    println!("\nforward-vs-backward gate passed (slack {slack:.2})");

    exp_rows.into_iter().chain(poly_rows).collect()
}

/// ISSUE 7: the bounded-lateness stage's ingest overhead. With
/// `allowed_lateness = 0` and an in-order batched feed, `push_batch`
/// takes its fast path (no heap; for this per-item backend, a fused
/// observe loop with the monotonicity compare folded in) and must stay
/// within 1.10× of raw batched ingest — self-enforced below, with
/// `TD_REORDER_OVERHEAD_SLACK` to widen on shared runners. Nonzero
/// bounds pay for real per-item heap buffering; measured for the
/// table/JSON but ungated (that cost is the feature, not a regression).
fn reorder_overhead() -> Vec<(String, f64, f64, f64)> {
    use td_reorder::{LatenessPolicy, Reorderer};

    let items = bursty_items(1_000_000);
    let exp = Exponential::new(0.001);
    let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
    const BOUNDS: [u64; 2] = [0, 64];

    // Interleave raw and staged reps (unlike `measure`, every path here
    // allocates only counter-sized state, so there is no alternating
    // allocation churn) — the gated quantity is a within-run *ratio*,
    // and pairing the reps keeps slow drift out of it.
    let mut raw_ns = f64::INFINITY;
    let mut staged_ns = [f64::INFINITY; BOUNDS.len()];
    for _ in 0..7 {
        let mut eng = ExpCounter::new(exp);
        raw_ns = raw_ns.min(time_ns_per_item(items.len(), || {
            for chunk in items.chunks(4096) {
                eng.observe_batch(chunk);
            }
        }));
        let raw_answer = eng.query(t_end);
        for (i, &lateness) in BOUNDS.iter().enumerate() {
            let mut r = Reorderer::new(
                ExpCounter::new(exp),
                Box::new(exp),
                lateness,
                LatenessPolicy::Reject,
            );
            staged_ns[i] = staged_ns[i].min(time_ns_per_item(items.len(), || {
                for chunk in items.chunks(4096) {
                    r.push_batch(0, chunk).expect("in-order feed is never late");
                }
            }));
            r.flush();
            let got = r.query(t_end);
            assert!(
                (got - raw_answer).abs() <= 1e-9 * raw_answer.abs().max(1.0),
                "reorder-fronted ingest diverged at lateness={lateness}: \
                 {got} vs raw {raw_answer}"
            );
        }
    }

    let rows: Vec<(String, f64, f64, f64)> = BOUNDS
        .iter()
        .zip(staged_ns)
        .map(|(&l, ns)| (format!("lateness={l}"), raw_ns, ns, ns / raw_ns))
        .collect();

    let mut sec = Section::new(
        "Reorder-stage overhead vs raw batched ingest (exp-counter, same stream)",
        &["stage", "raw ns/item", "staged ns/item", "overhead"],
    );
    for (name, raw, ns, over) in &rows {
        sec.row(&[
            name.clone(),
            format!("{raw:.1}"),
            format!("{ns:.1}"),
            format!("{over:.2}x"),
        ]);
    }
    sec.print();

    let slack: f64 = std::env::var("TD_REORDER_OVERHEAD_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.10);
    let zero = &rows[0];
    assert!(
        zero.3 <= slack,
        "reorder stage at lateness=0 costs {:.2}x raw batched ingest \
         ({:.1} vs {:.1} ns/item) — fast path regressed past the {slack:.2}x gate \
         (set TD_REORDER_OVERHEAD_SLACK to widen)",
        zero.3,
        zero.2,
        zero.1,
    );
    rows
}

/// Measures the chunked `weight_batch` kernels against the per-item
/// scalar `weight` loop they replace (DESIGN.md §12), over an age
/// distribution shaped like a live bucket column. The exp/poly closed
/// forms must clear 1.5× — that is the point of carrying hand-rolled
/// `exp`/`ln` chunk primitives instead of calling libm per bucket.
fn kernel_speedups() -> Vec<(String, f64, f64)> {
    const AGES: usize = 4096;
    const REPS: usize = 400;
    let ages: Vec<u64> = (0..AGES as u64).map(|i| 1 + (i * 37) % 100_000).collect();
    let mut out = vec![0.0f64; AGES];

    let mut measure = |name: &str, g: &dyn DecayFunction| -> (String, f64, f64) {
        // Keep the vtable opaque: the scalar baseline is the per-bucket
        // *dynamic* `weight` call a bucket-walk loop actually pays —
        // with thin LTO the optimizer otherwise devirtualizes and
        // vectorizes the loop, and the comparison stops measuring
        // dispatch at all.
        let g: &dyn DecayFunction = std::hint::black_box(g);
        let mut scalar_ns = f64::INFINITY;
        let mut batch_ns = f64::INFINITY;
        for _ in 0..7 {
            let t0 = Instant::now();
            for _ in 0..REPS {
                for (o, &a) in out.iter_mut().zip(&ages) {
                    *o = g.weight(a);
                }
                std::hint::black_box(&mut out);
            }
            scalar_ns = scalar_ns.min(t0.elapsed().as_nanos() as f64 / (AGES * REPS) as f64);
        }
        for _ in 0..7 {
            let t0 = Instant::now();
            for _ in 0..REPS {
                g.weight_batch(&ages, &mut out);
                std::hint::black_box(&mut out);
            }
            batch_ns = batch_ns.min(t0.elapsed().as_nanos() as f64 / (AGES * REPS) as f64);
        }
        (name.to_string(), scalar_ns, batch_ns)
    };

    let rows = vec![
        measure("expd", &Exponential::new(0.001)),
        measure("poly1", &Polynomial::new(1.0)),
        measure("poly2", &Polynomial::new(2.0)),
        measure("polyexp-k2", &PolyExponential::new(2, 0.001)),
    ];

    let mut sec = Section::new(
        "Decay-kernel dispatch: scalar `weight` loop vs chunked `weight_batch`",
        &["kernel", "scalar ns/item", "batch ns/item", "speedup"],
    );
    for (name, scalar_ns, batch_ns) in &rows {
        sec.row(&[
            name.clone(),
            format!("{scalar_ns:.2}"),
            format!("{batch_ns:.2}"),
            format!("{:.2}x", scalar_ns / batch_ns),
        ]);
    }
    sec.print();

    for (name, scalar_ns, batch_ns) in &rows {
        if name == "expd" || name == "poly1" {
            assert!(
                scalar_ns / batch_ns >= 1.5,
                "{name} weight_batch speedup {:.2}x below the 1.5x floor \
                 ({scalar_ns:.2} vs {batch_ns:.2} ns/item)",
                scalar_ns / batch_ns
            );
        }
    }
    rows
}

/// Reads the committed `BENCH_throughput.json` (if any) and returns the
/// baseline batched ns/item for `backend`. Substring parsing on
/// purpose: the repo vendors no JSON library, and the format is our
/// own writer's.
fn baseline_batched_ns(baseline: &str, backend: &str) -> Option<f64> {
    let tag = format!("\"backend\": \"{backend}\"");
    let row_start = baseline.find(&tag)?;
    let rest = &baseline[row_start..];
    let row_end = rest.find('}').unwrap_or(rest.len());
    let row = &rest[..row_end];
    let field = "\"batched_ns_per_item\": ";
    let v = &row[row.find(field)? + field.len()..];
    let end = v
        .find(|c: char| c != '.' && !c.is_ascii_digit())
        .unwrap_or(v.len());
    v[..end].parse().ok()
}

/// A bursty multi-arrival stream: ~1e6 items over ~1e5 ticks, where
/// each tick carries a geometric-ish burst of same-tick items. Same-tick
/// runs are what `observe_batch` coalesces, so this is the shape the
/// batch API is for.
fn bursty_items(n: usize) -> Vec<(u64, u64)> {
    let mut items = Vec::with_capacity(n);
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut t = 0u64;
    while items.len() < n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t += 1 + x % 3;
        let burst = 1 + (x >> 17) % 20; // 1..=20 items at this tick
        for j in 0..burst {
            if items.len() == n {
                break;
            }
            items.push((t, (x >> 23).wrapping_add(j) % 8));
        }
    }
    items
}

fn time_ns_per_item(n: usize, f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as f64 / n as f64
}

/// Measures item-by-item `observe` against `observe_batch` (fed in
/// 4096-item chunks, as an ingest loop draining a buffer would) for one
/// backend, and checks the two ingests agree at query time. Best of
/// seven *consecutive* repeats per path with a fresh backend each time:
/// a single pass is at the mercy of container CPU-quota throttling and
/// page-fault storms (10-40× outliers on otherwise-identical runs),
/// and interleaving the two paths rep-by-rep turned out to wreck both
/// floors — alternating 16 MB allocation patterns kept every rep
/// paying allocator/page-cache churn, flattening a real 2× gap into
/// noise. Run all reps of one path, then all reps of the other.
fn measure<A: StreamAggregate>(
    name: &str,
    items: &[(u64, u64)],
    make: impl Fn() -> A,
) -> (String, f64, f64) {
    let t_end = items.last().map(|&(t, _)| t).unwrap_or(1) + 1;
    let mut single_ns = f64::INFINITY;
    let mut batched_ns = f64::INFINITY;
    let mut single_answer = 0.0;
    let mut batched_answer = 0.0;
    for _ in 0..7 {
        let mut single = make();
        single_ns = single_ns.min(time_ns_per_item(items.len(), || {
            for &(t, f) in items {
                single.observe(t, f);
            }
        }));
        single_answer = single.query(t_end);
    }
    for _ in 0..7 {
        let mut batched = make();
        batched_ns = batched_ns.min(time_ns_per_item(items.len(), || {
            for chunk in items.chunks(4096) {
                batched.observe_batch(chunk);
            }
        }));
        batched_answer = batched.query(t_end);
    }
    assert!(
        (single_answer - batched_answer).abs() <= 1e-9 * single_answer.abs().max(1.0),
        "{name}: batched ingest diverged ({single_answer} vs {batched_answer})"
    );
    (name.to_string(), single_ns, batched_ns)
}

fn batched_vs_single(
    kernel_rows: &[(String, f64, f64)],
    reorder_rows: &[(String, f64, f64, f64)],
    forward_rows: &[(String, f64, f64, u64)],
) {
    let items = bursty_items(1_000_000);
    let exp = Exponential::new(0.001);
    let poly = Polynomial::new(1.0);

    let rows = [
        measure("exp-counter", &items, || ExpCounter::new(exp)),
        measure("quantized-exp", &items, || {
            QuantizedExpCounter::new(exp, 24)
        }),
        measure("polyexp-pipeline", &items, || PolyExpCounter::new(2, 0.001)),
        measure("ceh", &items, || CascadedEh::new(poly, 0.05)),
        measure("wbmh", &items, || Wbmh::new(poly, 0.05, 1 << 24)),
        measure("exact", &items, || ExactDecayedSum::new(poly)),
        // The conformance harness's store-everything oracle: its ingest
        // rate bounds the differential-testing overhead relative to the
        // backends it certifies (queries are O(n) and excluded here).
        measure("conformance-oracle", &items, || {
            td_conformance::Oracle::new(poly)
        }),
    ];

    let host = td_bench::hostinfo::json_fragment();
    let mut sec = Section::new(
        "Single-item vs batched ingest, 1e6-item bursty stream (same-tick bursts)",
        &["backend", "single ns/item", "batched ns/item", "speedup"],
    );
    let mut json = String::from("{\n  \"ingest\": [\n");
    for (i, (name, single_ns, batched_ns)) in rows.iter().enumerate() {
        let speedup = single_ns / batched_ns;
        sec.row(&[
            name.clone(),
            format!("{single_ns:.1}"),
            format!("{batched_ns:.1}"),
            format!("{speedup:.2}x"),
        ]);
        json.push_str(&format!(
            "    {{\"backend\": \"{name}\", \"single_ns_per_item\": {single_ns:.2}, \
             \"batched_ns_per_item\": {batched_ns:.2}, \"speedup\": {speedup:.3}, {host}}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"kernels\": [\n");
    for (i, (name, scalar_ns, batch_ns)) in kernel_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{name}\", \"scalar_ns_per_item\": {scalar_ns:.2}, \
             \"batch_ns_per_item\": {batch_ns:.2}, \"speedup\": {:.3}, {host}}}{}\n",
            scalar_ns / batch_ns,
            if i + 1 == kernel_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"reorder\": [\n");
    for (i, (name, raw_ns, staged_ns, overhead)) in reorder_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"stage\": \"{name}\", \"raw_batched_ns_per_item\": {raw_ns:.2}, \
             \"staged_ns_per_item\": {staged_ns:.2}, \"overhead\": {overhead:.3}, {host}}}{}\n",
            if i + 1 == reorder_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"forward\": [\n");
    for (i, (name, single_ns, batched_ns, bits)) in forward_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{name}\", \"single_ns_per_item\": {single_ns:.2}, \
             \"batched_ns_per_item\": {batched_ns:.2}, \"speedup\": {:.3}, \
             \"storage_bits\": {bits}, {host}}}{}\n",
            single_ns / batched_ns,
            if i + 1 == forward_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    sec.print();

    // The oracle's batch path is a reserve-once append — if it ever
    // regresses below the single-item path again (it did: 0.72x before
    // the per-batch re-validation sweep was fused into the copy loop),
    // fail loudly here rather than silently publishing the regression.
    let (_, oracle_single, oracle_batched) = rows[rows.len() - 1].clone();
    assert!(
        oracle_batched <= oracle_single * 1.05,
        "conformance-oracle batched ingest ({oracle_batched:.1} ns/item) slower than \
         single-item ({oracle_single:.1} ns/item)"
    );

    // Regression gate against the committed baseline: batched ingest
    // must not be >10% worse than the numbers in the repo's
    // BENCH_throughput.json (the file this run is about to replace).
    // CI sets TD_BENCH_BASELINE_SLACK to loosen the gate on shared
    // runners; the committed-baseline refresh is deliberate (rerun and
    // commit the new file), never silent.
    let path = "BENCH_throughput.json";
    let slack: f64 = std::env::var("TD_BENCH_BASELINE_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.10);
    if let Ok(baseline) = std::fs::read_to_string(path) {
        for (name, _, batched_ns) in &rows {
            if let Some(base) = baseline_batched_ns(&baseline, name) {
                assert!(
                    *batched_ns <= base * slack,
                    "{name} batched ingest regressed: {batched_ns:.2} ns/item vs committed \
                     baseline {base:.2} (slack {slack:.2}; set TD_BENCH_BASELINE_SLACK to widen)"
                );
            }
        }
        for (name, _, batched_ns, _) in forward_rows {
            if let Some(base) = baseline_batched_ns(&baseline, name) {
                assert!(
                    *batched_ns <= base * slack,
                    "{name} batched ingest regressed: {batched_ns:.2} ns/item vs committed \
                     baseline {base:.2} (slack {slack:.2}; set TD_BENCH_BASELINE_SLACK to widen)"
                );
            }
        }
        println!("\nbaseline check passed (slack {slack:.2})");
    } else {
        println!("\nno committed baseline found; skipping regression gate");
    }

    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("wrote {path}");
}
