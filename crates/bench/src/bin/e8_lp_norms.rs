//! E8 — §7.1: time-decaying L_p norms via Indyk stable sketches
//! cascaded through exponential-histogram buckets.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use td_aggregates::DecayedLpNorm;
use td_bench::Table;
use td_core::StorageAccounting;
use td_decay::{DecayFunction, Exponential, Polynomial, SlidingWindow, Time};

/// Zipf-ish coordinate sampler over d coordinates.
fn zipfish(rng: &mut StdRng, d: u64) -> u64 {
    let u: f64 = rng.random_range(1e-9..1.0);
    // Inverse-power sampling: coordinate ~ u^{-1} truncated to d.
    ((1.0 / u) as u64).min(d - 1)
}

fn exact_norm<G: DecayFunction>(g: &G, updates: &[(Time, u64, u64)], t: Time, p: f64) -> f64 {
    let mut h: HashMap<u64, f64> = HashMap::new();
    for &(ti, c, a) in updates {
        if ti < t {
            let w = g.weight(t - ti);
            if w > 0.0 {
                *h.entry(c).or_default() += w * a as f64;
            }
        }
    }
    h.values().map(|v| v.powf(p)).sum::<f64>().powf(1.0 / p)
}

fn run<G: DecayFunction + Clone>(name: &str, g: G, p: f64, rows: usize, table: &mut Table) {
    let d = 1_000_000u64;
    let n = 20_000u64;
    let mut lp = DecayedLpNorm::new(g.clone(), p, 0.1, rows, 12345);
    let mut updates = Vec::new();
    let mut rng = StdRng::seed_from_u64(777);
    for t in 1..=n {
        let coord = zipfish(&mut rng, d);
        let amount = 1 + rng.random_range(0..9u64);
        lp.observe(t, coord, amount);
        updates.push((t, coord, amount));
    }
    let est = lp.query(n + 1);
    let truth = exact_norm(&g, &updates, n + 1, p);
    let err = (est - truth).abs() / truth;
    table.row(&[
        name.to_string(),
        p.to_string(),
        rows.to_string(),
        format!("{truth:.1}"),
        format!("{est:.1}"),
        format!("{err:.3}"),
        lp.num_buckets().to_string(),
        lp.storage_bits().to_string(),
    ]);
}

fn main() {
    println!("E8: decayed L_p norms (Indyk sketch in EH buckets, §7.1)");
    println!("d=1e6 coordinates, 20000 zipf-ish updates; sketch error ~ 1/sqrt(L)\n");
    let mut table = Table::new(&[
        "decay", "p", "L", "exact", "estimate", "rel err", "buckets", "bits",
    ]);
    for rows in [31usize, 101, 301] {
        run(
            "SLIWIN(5000)",
            SlidingWindow::new(5_000),
            1.0,
            rows,
            &mut table,
        );
        run("POLYD(1)", Polynomial::new(1.0), 1.0, rows, &mut table);
        run(
            "EXPD(0.001)",
            Exponential::new(0.001),
            1.0,
            rows,
            &mut table,
        );
    }
    for p in [1.5, 2.0] {
        run(
            "SLIWIN(5000)",
            SlidingWindow::new(5_000),
            p,
            301,
            &mut table,
        );
        run("POLYD(1)", Polynomial::new(1.0), p, 301, &mut table);
        run("EXPD(0.001)", Exponential::new(0.001), p, 301, &mut table);
    }
    table.print();
    println!("\n(storage is o(d): the dense decayed vector would cost 64*d = 6.4e7 bits;\n the sketch costs O(L * eps^-1 log N) independent of d)");
}
