//! E2 — Lemma 3.1: exponential-decay storage/accuracy trade-offs.
//!
//! Measures (a) the Θ(log N) growth of the quantized EXPD counter's
//! storage, (b) estimate error as a function of mantissa width, and
//! (c) the timestamp-list algorithm's accuracy at its ⌈λ⁻¹ln(1/((1−e^{-λ})ε))⌉
//! retention budget.

use td_bench::{fit_linear, Table};
use td_core::{Exponential, StorageAccounting};
use td_counters::{ExactDecayedSum, QuantizedExpCounter, TimestampCounter};
use td_stream::BernoulliStream;

fn main() {
    println!("E2: EXPD storage & accuracy (Lemma 3.1)\n");

    // (a) + (b): quantized counter across N and mantissa width.
    let lambda = 0.01;
    let mut table = Table::new(&["N", "mantissa", "bits", "rel err"]);
    let mut ns = Vec::new();
    let mut bits_at_m16 = Vec::new();
    for exp in [8u32, 12, 16, 20] {
        let n = 1u64 << exp;
        for mantissa in [6u32, 10, 16, 24, 40] {
            let g = Exponential::new(lambda);
            let mut q = QuantizedExpCounter::new(g, mantissa);
            let mut exact = ExactDecayedSum::new(g);
            for (t, f) in BernoulliStream::new(0.5, 42).take(n as usize) {
                q.observe(t, f);
                exact.observe(t, f);
            }
            let truth = exact.query(n + 1);
            let err = (q.query(n + 1) - truth).abs() / truth;
            table.row(&[
                n.to_string(),
                mantissa.to_string(),
                q.storage_bits().to_string(),
                format!("{err:.2e}"),
            ]);
            if mantissa == 16 {
                ns.push(n);
                bits_at_m16.push(q.storage_bits());
            }
        }
    }
    table.print();
    // Lemma 3.1: total bits = const(ε, mantissa) + Θ(log N); the log N
    // term is the timestamp, so the per-doubling increment must be ~1.
    let xs: Vec<f64> = ns.iter().map(|&n| (n as f64).log2()).collect();
    let ys: Vec<f64> = bits_at_m16.iter().map(|&b| b as f64).collect();
    let (a, b) = fit_linear(&xs, &ys);
    println!(
        "\nfit (mantissa=16): bits ~ {a:.1} + {b:.2}*log2(N) — Lemma 3.1 predicts \
         slope ~1 (the timestamp term) over a constant ~2 quantized floats\n"
    );

    // (c): the timestamp-list algorithm.
    println!("Timestamp-list algorithm (C most recent items):");
    let mut t2 = Table::new(&[
        "lambda",
        "epsilon",
        "capacity C",
        "bits",
        "rel err",
        "<= eps",
    ]);
    for (lambda, eps) in [(1.0, 0.01), (0.5, 0.05), (0.1, 0.05), (0.05, 0.1)] {
        let g = Exponential::new(lambda);
        let mut c = TimestampCounter::new(g, eps);
        let mut exact = ExactDecayedSum::new(g);
        let n = 20_000u64;
        for (t, f) in BernoulliStream::new(0.7, 7).take(n as usize) {
            c.observe(t, f);
            exact.observe(t, f);
        }
        let truth = exact.query(n + 1);
        let err = (truth - c.query(n + 1)).abs() / truth;
        t2.row(&[
            lambda.to_string(),
            eps.to_string(),
            c.capacity().to_string(),
            c.storage_bits().to_string(),
            format!("{err:.2e}"),
            (err <= eps).to_string(),
        ]);
    }
    t2.print();
}
