//! E15 — the multi-tenant keyed registry at scale. Writes
//! `BENCH_registry.json`.
//!
//! The claims under test, each measured at 100k / 1M / 10M keys under
//! zipf and uniform key traffic:
//!
//! * **Hot-path ingest stays near raw forward decay.** Batched keyed
//!   ingest (hash lookup + slot-sorted slab walk) must cost at most
//!   3× a raw `ForwardDecaySum` ns/item on the zipf 100k working set —
//!   the registry's bookkeeping may not swallow the engine it
//!   multiplexes. The intercept is the *per-item* `observe` rate: each
//!   key is an independent accumulator, so the registry fundamentally
//!   cannot share one summary's same-timestamp batch amortization
//!   across distinct keys (the amortized `observe_batch` rate is
//!   reported alongside for scale). Gated (`TD_REGISTRY_GATE_SLACK`
//!   widens on noisy runners).
//! * **Bytes/key stays inside the slab budget.** Dense SoA columns +
//!   open-addressing index, no per-key `Box`: resident bytes per live
//!   key must stay ≤ 256 on the all-keys-touched uniform 1M row.
//!   Gated (same slack knob).
//! * **Lazy advance means building 10M keys needs no global sweep** —
//!   the 10M rows exist to prove ingest cost is flat in key count
//!   (modulo cache misses), not that anyone iterates the population.
//! * **Eviction sweeps are cheap.** The same trace with the
//!   decay-aware sweep on vs off, reported as an overhead ratio
//!   (ungated: the sweep *is* the feature).
//! * **Checkpoint save/recover moves whole slabs.** One segmented
//!   envelope per registry: MB/s out, keys/s back in.
//!
//! `TD_REGISTRY_MAX_KEYS` caps the key-count ladder (CI trims the 10M
//! row; the committed JSON carries it).

use std::time::Instant;

use td_bench::Table;
use td_decay::{Checkpoint, Exponential, StreamAggregate, Time};
use td_forward::ForwardDecaySum;
use td_registry::{KeyedRegistry, RegistryOptions};

const BATCH: usize = 512;
const LAMBDA: f64 = 0.01;

fn make_backend() -> ForwardDecaySum<Exponential> {
    ForwardDecaySum::new(Exponential::new(LAMBDA))
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Key traffic shape.
#[derive(Clone, Copy, PartialEq)]
enum Dist {
    /// Rank drawn log-uniformly: P(rank r) ∝ 1/r — the classic zipf
    /// head (a few keys take most traffic) with a long resident tail.
    Zipf,
    Uniform,
}

impl Dist {
    fn name(self) -> &'static str {
        match self {
            Dist::Zipf => "zipf",
            Dist::Uniform => "uniform",
        }
    }
}

/// Pre-generated keyed trace: `ops` observations in `BATCH`-sized
/// time-constant batches (each batch one tick later), keys drawn from
/// `dist` over `n_keys`, so the timed loop measures ingest alone.
fn keyed_trace(n_keys: u64, dist: Dist, ops: usize, seed: u64) -> Vec<(u64, Time, u64)> {
    let mut rng = XorShift(seed | 1);
    let ln_n = (n_keys as f64).ln();
    let mut items = Vec::with_capacity(ops);
    let mut t = 1u64;
    for i in 0..ops {
        if i % BATCH == 0 {
            t += 1;
        }
        let r = rng.next();
        let key = match dist {
            Dist::Uniform => r % n_keys,
            Dist::Zipf => {
                let u = (r >> 11) as f64 / (1u64 << 53) as f64;
                ((u * ln_n).exp() as u64).min(n_keys - 1)
            }
        };
        items.push((key, t, r % 100 + 1));
    }
    items
}

fn registry(n_keys: u64, eviction_threshold: f64) -> KeyedRegistry<ForwardDecaySum<Exponential>> {
    KeyedRegistry::new(
        RegistryOptions {
            expected_keys: n_keys as usize,
            eviction_threshold,
            sweep_per_ingest: 8,
            ..RegistryOptions::default()
        },
        make_backend,
    )
}

struct IngestRow {
    keys: u64,
    dist: Dist,
    ops: usize,
    ns_per_op: f64,
    live_keys: usize,
    bytes_per_key: f64,
}

/// Ingests a pre-generated trace through the batched keyed hot path.
fn ingest_row(
    n_keys: u64,
    dist: Dist,
    ops: usize,
) -> (IngestRow, KeyedRegistry<ForwardDecaySum<Exponential>>) {
    let trace = keyed_trace(n_keys, dist, ops, 0xE15 ^ n_keys);
    let mut reg = registry(n_keys, 0.0);
    let t0 = Instant::now();
    for chunk in trace.chunks(BATCH) {
        reg.observe_keyed_batch(chunk);
    }
    let ns = t0.elapsed().as_nanos() as f64 / trace.len() as f64;
    let stats = reg.stats();
    std::hint::black_box(reg.query_key(trace[0].0, trace.last().unwrap().1 + 1));
    (
        IngestRow {
            keys: n_keys,
            dist,
            ops,
            ns_per_op: ns,
            live_keys: stats.live_keys,
            bytes_per_key: stats.resident_bytes as f64 / stats.live_keys.max(1) as f64,
        },
        reg,
    )
}

/// Raw single-summary forward decay over the same `(t, f)` stream,
/// one `observe` per item — the per-item engine rate the keyed hot
/// path is gated against (per-key accumulators cannot share batch
/// amortization across keys).
fn raw_observe_ns(trace: &[(u64, Time, u64)]) -> f64 {
    let mut raw = make_backend();
    let t0 = Instant::now();
    for &(_, t, f) in trace {
        raw.observe(t, f);
    }
    let ns = t0.elapsed().as_nanos() as f64 / trace.len() as f64;
    std::hint::black_box(raw.query(trace.last().unwrap().1 + 1));
    ns
}

/// The same stream through one summary's `observe_batch` — the fully
/// amortized single-key rate, reported for scale (ungated).
fn raw_batch_ns(trace: &[(u64, Time, u64)]) -> f64 {
    let mut raw = make_backend();
    let batch: Vec<(Time, u64)> = trace.iter().map(|&(_, t, f)| (t, f)).collect();
    let t0 = Instant::now();
    for chunk in batch.chunks(BATCH) {
        raw.observe_batch(chunk);
    }
    let ns = t0.elapsed().as_nanos() as f64 / batch.len() as f64;
    std::hint::black_box(raw.query(batch.last().unwrap().0 + 1));
    ns
}

struct EvictionRow {
    keys: u64,
    threshold: f64,
    ns_per_op: f64,
    overhead: f64,
    evictions: u64,
    evicted_mass: f64,
    live_keys: usize,
}

/// Same zipf trace with the sweep off vs on: the on-row's ns/op over
/// the off-row's is the sweep overhead.
fn eviction_rows(n_keys: u64, ops: usize) -> Vec<EvictionRow> {
    let trace = keyed_trace(n_keys, Dist::Zipf, ops, 0x39EE ^ n_keys);
    let mut rows = Vec::new();
    let mut off_ns = 0.0;
    for threshold in [0.0, 1e-9] {
        let mut reg = registry(n_keys, threshold);
        let t0 = Instant::now();
        for chunk in trace.chunks(BATCH) {
            reg.observe_keyed_batch(chunk);
        }
        let ns = t0.elapsed().as_nanos() as f64 / trace.len() as f64;
        if threshold == 0.0 {
            off_ns = ns;
        }
        let stats = reg.stats();
        rows.push(EvictionRow {
            keys: n_keys,
            threshold,
            ns_per_op: ns,
            overhead: ns / off_ns,
            evictions: stats.evictions,
            evicted_mass: stats.evicted_mass,
            live_keys: stats.live_keys,
        });
    }
    rows
}

struct CheckpointRow {
    keys: usize,
    bytes: usize,
    save_ms: f64,
    save_mb_s: f64,
    recover_ms: f64,
    recover_keys_s: f64,
}

/// Whole-registry checkpoint: one envelope out, one restore back in.
fn checkpoint_row(reg: &KeyedRegistry<ForwardDecaySum<Exponential>>, n_keys: u64) -> CheckpointRow {
    let t0 = Instant::now();
    let bytes = reg.save_checkpoint();
    let save = t0.elapsed();
    let mut fresh = registry(n_keys, 0.0);
    let t1 = Instant::now();
    fresh.restore_checkpoint(&bytes).expect("clean restore");
    let recover = t1.elapsed();
    assert_eq!(fresh.len(), reg.len(), "restore resurrects every key");
    CheckpointRow {
        keys: reg.len(),
        bytes: bytes.len(),
        save_ms: save.as_secs_f64() * 1e3,
        save_mb_s: bytes.len() as f64 / 1e6 / save.as_secs_f64(),
        recover_ms: recover.as_secs_f64() * 1e3,
        recover_keys_s: reg.len() as f64 / recover.as_secs_f64(),
    }
}

fn main() {
    let host_parallelism = td_bench::host_parallelism();
    let cpu = td_bench::cpu_model();
    println!("E15: keyed registry at scale, cpu={cpu}\n");

    let max_keys: u64 = std::env::var("TD_REGISTRY_MAX_KEYS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000_000);
    let ladder: Vec<u64> = [100_000u64, 1_000_000, 10_000_000]
        .into_iter()
        .filter(|&k| k <= max_keys)
        .collect();
    assert!(!ladder.is_empty(), "TD_REGISTRY_MAX_KEYS below 100k");

    // Warm-up: the first timed region in the process otherwise pays
    // one-time costs (allocator pool faults, CPU frequency ramp) that
    // inflate its row by ~70% relative to an identical later run.
    std::hint::black_box(ingest_row(100_000, Dist::Zipf, 1_000_000));

    // Ingest ladder. Op count scales with the population so uniform
    // traffic actually instantiates (most of) it.
    let mut ingest_rows = Vec::new();
    let mut checkpoint_rows = Vec::new();
    for &n_keys in &ladder {
        let ops = (2 * n_keys as usize).max(2_000_000);
        for dist in [Dist::Zipf, Dist::Uniform] {
            let (row, reg) = ingest_row(n_keys, dist, ops);
            // Checkpoint throughput on the fully-populated uniform slab.
            if dist == Dist::Uniform {
                checkpoint_rows.push(checkpoint_row(&reg, n_keys));
            }
            ingest_rows.push(row);
        }
    }

    let mut table = Table::new(&[
        "keys",
        "traffic",
        "ops",
        "ingest ns/op",
        "live keys",
        "bytes/key",
    ]);
    for r in &ingest_rows {
        table.row(&[
            format!("{}", r.keys),
            r.dist.name().into(),
            format!("{}", r.ops),
            format!("{:.1}", r.ns_per_op),
            format!("{}", r.live_keys),
            format!("{:.0}", r.bytes_per_key),
        ]);
    }
    table.print();

    // Eviction sweep overhead on the 100k zipf trace.
    let eviction = eviction_rows(100_000, 2_000_000);
    let mut etable = Table::new(&[
        "threshold",
        "ns/op",
        "overhead",
        "evictions",
        "evicted mass",
        "live keys",
    ]);
    for r in &eviction {
        etable.row(&[
            format!("{:.0e}", r.threshold),
            format!("{:.1}", r.ns_per_op),
            format!("{:.2}x", r.overhead),
            format!("{}", r.evictions),
            format!("{:.3e}", r.evicted_mass),
            format!("{}", r.live_keys),
        ]);
    }
    println!("\nEviction sweep overhead (100k keys, zipf):\n");
    etable.print();

    let mut ctable = Table::new(&[
        "keys",
        "bytes",
        "save ms",
        "save MB/s",
        "recover ms",
        "recover keys/s",
    ]);
    for r in &checkpoint_rows {
        ctable.row(&[
            format!("{}", r.keys),
            format!("{}", r.bytes),
            format!("{:.1}", r.save_ms),
            format!("{:.0}", r.save_mb_s),
            format!("{:.1}", r.recover_ms),
            format!("{:.2e}", r.recover_keys_s),
        ]);
    }
    println!("\nWhole-registry checkpoint throughput:\n");
    ctable.print();

    // Gates. Raw intercept re-measured on the zipf 100k stream so the
    // ratio compares like with like.
    let slack: f64 = std::env::var("TD_REGISTRY_GATE_SLACK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let gate_trace = keyed_trace(100_000, Dist::Zipf, 2_000_000, 0xE15 ^ 100_000);
    let raw_ns = raw_observe_ns(&gate_trace);
    let raw_batch = raw_batch_ns(&gate_trace);
    let keyed_ns = ingest_rows
        .iter()
        .find(|r| r.keys == 100_000 && r.dist == Dist::Zipf)
        .unwrap()
        .ns_per_op;
    let ratio = keyed_ns / raw_ns;
    println!(
        "\nhot-path gate: keyed {keyed_ns:.1} ns/op vs raw forward observe {raw_ns:.1} ns/item \
         => {ratio:.2}x (limit 3.0x, slack {slack:.2}; single-key observe_batch amortizes to \
         {raw_batch:.1} ns/item)"
    );
    assert!(
        ratio <= 3.0 * slack,
        "keyed ingest {keyed_ns:.1} ns/op exceeds 3x raw forward decay {raw_ns:.1} ns/item \
         (ratio {ratio:.2}; set TD_REGISTRY_GATE_SLACK to widen)"
    );

    const BYTES_BUDGET: f64 = 256.0;
    let bytes_row = ingest_rows
        .iter()
        .filter(|r| r.dist == Dist::Uniform)
        .max_by_key(|r| r.keys)
        .unwrap();
    println!(
        "bytes/key gate: {:.0} bytes/key at {} uniform keys (budget {BYTES_BUDGET:.0}, \
         slack {slack:.2})",
        bytes_row.bytes_per_key, bytes_row.keys
    );
    assert!(
        bytes_row.bytes_per_key <= BYTES_BUDGET * slack,
        "{:.0} resident bytes/key exceeds the {BYTES_BUDGET:.0} budget \
         (set TD_REGISTRY_GATE_SLACK to widen)",
        bytes_row.bytes_per_key
    );
    println!("registry gates passed (slack {slack:.2})");

    let host = td_bench::hostinfo::json_fragment();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {host_parallelism},\n  \"cpu\": \"{cpu}\",\n  \"ingest\": [\n"
    ));
    for (i, r) in ingest_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"keys\": {}, \"traffic\": \"{}\", \"ops\": {}, \"ns_per_op\": {:.2}, \
             \"live_keys\": {}, \"bytes_per_key\": {:.1}, {host}}}{}\n",
            r.keys,
            r.dist.name(),
            r.ops,
            r.ns_per_op,
            r.live_keys,
            r.bytes_per_key,
            if i + 1 == ingest_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"eviction\": [\n");
    for (i, r) in eviction.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"keys\": {}, \"threshold\": {:e}, \"ns_per_op\": {:.2}, \
             \"overhead\": {:.3}, \"evictions\": {}, \"evicted_mass\": {:.3e}, \
             \"live_keys\": {}, {host}}}{}\n",
            r.keys,
            r.threshold,
            r.ns_per_op,
            r.overhead,
            r.evictions,
            r.evicted_mass,
            r.live_keys,
            if i + 1 == eviction.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"checkpoint\": [\n");
    for (i, r) in checkpoint_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"keys\": {}, \"bytes\": {}, \"save_ms\": {:.2}, \"save_mb_s\": {:.1}, \
             \"recover_ms\": {:.2}, \"recover_keys_s\": {:.3e}, {host}}}{}\n",
            r.keys,
            r.bytes,
            r.save_ms,
            r.save_mb_s,
            r.recover_ms,
            r.recover_keys_s,
            if i + 1 == checkpoint_rows.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"gates\": {{\"raw_observe_ns_per_item\": {raw_ns:.2}, \
         \"raw_batch_ns_per_item\": {raw_batch:.2}, \
         \"keyed_ns_per_op\": {keyed_ns:.2}, \"ratio\": {ratio:.3}, \"ratio_limit\": 3.0, \
         \"bytes_per_key\": {:.1}, \"bytes_budget\": {BYTES_BUDGET:.0}, \
         \"slack\": {slack:.2}, {host}}}\n}}\n",
        bytes_row.bytes_per_key
    ));

    let path = "BENCH_registry.json";
    std::fs::write(path, &json).expect("write BENCH_registry.json");
    println!("\nwrote {path}");
}
