//! E5 — the paper's §5 worked WBMH trace, regenerated and checked
//! against the quoted bucket structure: g(x) = 1/x², 1+ε = 5, one item
//! per tick from t = 0.

use td_bench::Table;
use td_decay::Polynomial;
use td_wbmh::Wbmh;

fn main() {
    println!("E5: WBMH worked trace (paper §5): g(x)=1/x^2, 1+eps=5\n");

    let mut h = Wbmh::new(Polynomial::new(2.0), 4.0, 1 << 20);
    println!(
        "region boundaries: b1={} b2={} b3={}   (paper: 3, 7, 16)",
        h.schedule().boundary(1),
        h.schedule().boundary(2),
        h.schedule().boundary(3),
    );
    println!(
        "seal period: {} (open bucket alternates width 1 and 2)\n",
        h.seal_period()
    );

    // The paper's quoted structure at each T, as item-time groups.
    let expected: &[(u64, &str)] = &[
        (1, "{0}"),
        (2, "{0,1}"),
        (3, "{0,1} {2}"),
        (4, "{0,1} {2,3}"),
        (6, "{0..3} {4,5}"),
        (8, "{0..3} {4,5} {6,7}"),
        (9, "{0..3} {4,5} {6,7} {8}"),
        (10, "{0..3} {4..7} {8,9}"),
    ];

    let mut table = Table::new(&["T", "buckets (item spans)", "paper", "match"]);
    let mut fed = 0u64;
    let mut all_match = true;
    for &(t_query, paper) in expected {
        while fed < t_query {
            h.observe(fed, 1);
            fed += 1;
        }
        h.advance(t_query);
        let got: Vec<String> = h
            .bucket_spans()
            .iter()
            .map(|b| {
                if b.start == b.end {
                    format!("{{{}}}", b.start)
                } else if b.end == b.start + 1 {
                    format!("{{{},{}}}", b.start, b.end)
                } else {
                    format!("{{{}..{}}}", b.start, b.end)
                }
            })
            .collect();
        let got = got.join(" ");
        let ok = got == paper;
        all_match &= ok;
        table.row(&[t_query.to_string(), got, paper.to_string(), ok.to_string()]);
    }
    table.print();
    println!(
        "\nall rows match the paper's trace: {}",
        if all_match { "YES" } else { "NO" }
    );
    if !all_match {
        std::process::exit(1);
    }
}
