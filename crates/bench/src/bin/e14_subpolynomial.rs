//! E14 — the §5 side claim: for **sub-polynomial** decay the WBMH
//! bucket count is *sub-logarithmic* in elapsed time ("WBMH beats CEHs
//! also for sub-polynomial decay, as the number of buckets of WBMH is
//! sub-logarithmic in elapsed time").
//!
//! Measured with `g(x) = 1/ln(e + x)`: the region count grows like
//! `log log N` (roughly constant increments as N squares), versus
//! `Θ(log N)` regions for POLYD and `Θ(log N)` buckets for the CEH.

use td_bench::Table;
use td_ceh::CascadedEh;
use td_core::StorageAccounting;
use td_counters::ExactDecayedSum;
use td_decay::{LogDecay, Polynomial, RegionSchedule};
use td_wbmh::Wbmh;

fn main() {
    println!("E14: sub-polynomial decay (LOGD: g = 1/ln(e+x)), eps=0.2\n");
    let eps = 0.2;

    // Region growth: LOGD vs POLYD as the horizon grows geometrically.
    println!("-- region count vs horizon --");
    let mut t1 = Table::new(&["log2(N)", "LOGD regions", "POLYD(1) regions"]);
    let mut prev_log = 0usize;
    let mut increments = Vec::new();
    for e in [8u32, 12, 16, 20, 24, 28] {
        let n = 1u64 << e;
        let rl = RegionSchedule::compute(&LogDecay::new(1), eps, n).num_regions();
        let rp = RegionSchedule::compute(&Polynomial::new(1.0), eps, n).num_regions();
        if prev_log > 0 {
            increments.push(rl - prev_log);
        }
        prev_log = rl;
        t1.row(&[e.to_string(), rl.to_string(), rp.to_string()]);
    }
    t1.print();
    println!(
        "LOGD increments per +4 in log2(N): {increments:?} — flattening (log log), \
         while POLYD adds a near-constant chunk per step (log)\n"
    );

    // Live structures: buckets and accuracy on a dense stream.
    println!("-- live WBMH vs CEH under LOGD --");
    let mut t2 = Table::new(&[
        "N",
        "wbmh buckets",
        "wbmh bits",
        "ceh buckets",
        "ceh bits",
        "wbmh rel err",
    ]);
    for e in [12u32, 16, 20] {
        let n = 1u64 << e;
        let g = LogDecay::new(1);
        let mut w = Wbmh::new(g, eps, 1 << 34);
        let mut c = CascadedEh::new(g, eps);
        let mut exact = ExactDecayedSum::new(g);
        for t in 1..=n {
            w.observe(t, 1);
            c.observe(t, 1);
            exact.observe(t, 1);
        }
        w.advance(n + 1);
        let truth = exact.query(n + 1);
        let err = (w.query(n + 1) - truth) / truth;
        t2.row(&[
            n.to_string(),
            w.num_buckets().to_string(),
            w.storage_bits().to_string(),
            c.num_buckets().to_string(),
            c.storage_bits().to_string(),
            format!("{err:+.4}"),
        ]);
    }
    t2.print();
    println!(
        "\n(WBMH holds a LOGD summary of a million ticks in a handful of buckets; \
         the CEH cannot exploit the flat decay and keeps its Theta(eps^-1 log N) buckets)"
    );
}
