//! E6 — Lemma 5.1: WBMH vs cascaded EH storage for polynomial decay
//! (the paper's headline quadratic gap), and WBMH's degeneracy for
//! exponential decay.

use td_bench::{fit_vs_log_n, Table};
use td_ceh::CascadedEh;
use td_core::StorageAccounting;
use td_decay::{Exponential, Polynomial, RegionSchedule};
use td_wbmh::Wbmh;

fn main() {
    println!("E6: WBMH vs CEH storage (Lemma 5.1)\n");
    let eps = 0.1;

    for alpha in [1.0, 2.0] {
        println!("-- POLYD({alpha}), eps={eps}, dense unit stream --");
        let mut table = Table::new(&[
            "N",
            "wbmh buckets",
            "wbmh bits (exact)",
            "wbmh bits (approx)",
            "ceh buckets",
            "ceh bits",
            "gap ceh/wbmh",
        ]);
        let mut ns = Vec::new();
        let (mut wb_apx, mut ce) = (Vec::new(), Vec::new());
        for exp in [10u32, 12, 14, 16, 18, 20] {
            let n = 1u64 << exp;
            let g = Polynomial::new(alpha);
            let mut w_exact = Wbmh::new(g, eps, 1 << 24);
            let mut w_apx = Wbmh::with_approx_counts(g, eps, 1 << 24, eps);
            let mut c = CascadedEh::new(g, eps);
            for t in 1..=n {
                w_exact.observe(t, 1);
                w_apx.observe(t, 1);
                c.observe(t, 1);
            }
            w_exact.advance(n + 1);
            w_apx.advance(n + 1);
            let gap = c.storage_bits() as f64 / w_apx.storage_bits() as f64;
            table.row(&[
                n.to_string(),
                w_apx.num_buckets().to_string(),
                w_exact.storage_bits().to_string(),
                w_apx.storage_bits().to_string(),
                c.num_buckets().to_string(),
                c.storage_bits().to_string(),
                format!("{gap:.2}"),
            ]);
            ns.push(n);
            wb_apx.push(w_apx.storage_bits());
            ce.push(c.storage_bits());
        }
        table.print();
        let fw = fit_vs_log_n(&ns, &wb_apx);
        let fc = fit_vs_log_n(&ns, &ce);
        println!(
            "fits: WBMH bits ~ (log2 N)^{:.2} (R^2={:.3});  CEH bits ~ (log2 N)^{:.2} (R^2={:.3})",
            fw.exponent, fw.r_squared, fc.exponent, fc.r_squared
        );
        println!(
            "paper: WBMH = O(log N . log log N) (exponent slightly above 1), \
             CEH = O(log^2 N) (exponent ~2)\n"
        );
    }

    // EXPD degeneracy: the region count is linear in the horizon.
    println!("-- EXPD degeneracy: WBMH region count vs horizon (paper: Theta(N)) --");
    let mut t2 = Table::new(&["horizon", "regions (EXPD 0.1)", "regions (POLYD 1)"]);
    for exp in [8u32, 10, 12, 14] {
        let n = 1u64 << exp;
        let re = RegionSchedule::compute(&Exponential::new(0.1), eps, n).num_regions();
        let rp = RegionSchedule::compute(&Polynomial::new(1.0), eps, n).num_regions();
        t2.row(&[n.to_string(), re.to_string(), rp.to_string()]);
    }
    t2.print();
    println!(
        "\n(EXPD regions double with the horizon — use the O(1)-word counter instead; \
         POLYD regions grow only logarithmically. D(g)={:.1e} vs {:.1e} at N=2^14.)",
        td_decay::properties::weight_ratio(&Exponential::new(0.1), 1 << 14),
        td_decay::properties::weight_ratio(&Polynomial::new(1.0), 1 << 14),
    );
}
