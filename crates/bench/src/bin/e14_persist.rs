//! E14p — td-persist durability tax and recovery speed. Writes
//! `BENCH_persist.json`.
//!
//! Two questions a deployment has to answer before turning durability
//! on:
//!
//! * **What does ingest pay per `SyncPolicy`?** One record per ingest
//!   call against real files (`DirStorage` in a temp dir, real
//!   `fsync`), versus the plain in-memory backend as the intercept.
//!   `EveryRecord` pays an fsync per call and is measured on a
//!   shorter stream; the group-commit policies amortize it.
//! * **How fast is recovery per WAL record?** Crash with an
//!   ever-longer un-checkpointed tail (no cadence checkpoints, so the
//!   whole history replays) and time `DurableAggregate::open`. The
//!   ns/record figure is what sizes `checkpoint_every_records`: tail
//!   length × that rate is your restart budget.
//!
//! fsync cost is wildly filesystem-dependent (tmpfs vs ext4 vs a
//! battery-backed controller), so every row carries the host stamp.

use std::time::Instant;

use td_bench::Table;
use td_counters::ExpCounter;
use td_decay::{Exponential, Time};
use td_persist::{
    DirStorage, DurabilityOptions, DurableAggregate, MemStorage, StoreOptions, SyncPolicy,
};

/// Same bursty generator as E12/E13: ~10 items per tick.
fn bursty_items(n: usize) -> Vec<(Time, u64)> {
    let mut items = Vec::with_capacity(n);
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut t = 0u64;
    while items.len() < n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t += 1 + x % 3;
        let burst = 1 + (x >> 17) % 20;
        for j in 0..burst {
            if items.len() == n {
                break;
            }
            items.push((t, (x >> 23).wrapping_add(j) % 8));
        }
    }
    items
}

fn make_backend() -> ExpCounter {
    ExpCounter::new(Exponential::new(0.001))
}

struct IngestRow {
    policy: String,
    items: usize,
    ns_per_item: f64,
}

/// One `observe` call per item — each call is one WAL record, so the
/// per-record sync policies bite exactly once per item.
fn ingest_ns_per_item(dir: &std::path::Path, sync: SyncPolicy, items: &[(Time, u64)]) -> f64 {
    let _ = std::fs::remove_dir_all(dir);
    let storage = DirStorage::open(dir).expect("open bench dir");
    let opts = DurabilityOptions {
        store: StoreOptions {
            segment_bytes: 1 << 20,
            sync,
        },
        checkpoint_every_records: 4096,
    };
    let (mut agg, _) =
        DurableAggregate::open(Box::new(storage), opts, make_backend).expect("fresh open");
    let t0 = Instant::now();
    for &(t, f) in items {
        agg.observe(t, f).expect("durable observe");
    }
    let ns = t0.elapsed().as_nanos() as f64 / items.len() as f64;
    std::hint::black_box(agg.query(items.last().unwrap().0 + 1));
    let _ = std::fs::remove_dir_all(dir);
    ns
}

fn baseline_ns_per_item(items: &[(Time, u64)]) -> f64 {
    let mut b = make_backend();
    let t0 = Instant::now();
    for &(t, f) in items {
        b.observe(t, f);
    }
    let ns = t0.elapsed().as_nanos() as f64 / items.len() as f64;
    std::hint::black_box(b.query(items.last().unwrap().0 + 1));
    ns
}

struct RecoveryRow {
    tail_records: usize,
    recover_ms: f64,
    ns_per_record: f64,
}

/// Logs `n` records with checkpoints disabled, crashes, and times the
/// full-tail replay. In-memory storage isolates parse+replay cost from
/// disk read speed.
fn recovery_row(items: &[(Time, u64)]) -> RecoveryRow {
    let opts = DurabilityOptions {
        store: StoreOptions {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::EveryN(1024),
        },
        checkpoint_every_records: u64::MAX,
    };
    let mem = MemStorage::new();
    {
        let (mut agg, _) =
            DurableAggregate::open(Box::new(mem.clone()), opts, make_backend).expect("fresh open");
        for &(t, f) in items {
            agg.observe(t, f).expect("durable observe");
        }
        agg.flush().expect("flush");
    }
    let dead = mem.crashed();
    let t0 = Instant::now();
    let (agg, stats) =
        DurableAggregate::open(Box::new(dead), opts, make_backend).expect("recovery");
    let elapsed = t0.elapsed();
    assert_eq!(
        stats.records_replayed,
        items.len() as u64,
        "full tail replays"
    );
    std::hint::black_box(agg.inner().query(items.last().unwrap().0 + 1));
    RecoveryRow {
        tail_records: items.len(),
        recover_ms: elapsed.as_secs_f64() * 1e3,
        ns_per_record: elapsed.as_nanos() as f64 / items.len() as f64,
    }
}

fn main() {
    let host_parallelism = td_bench::host_parallelism();
    let cpu = td_bench::cpu_model();
    println!("E14p: td-persist durability tax, cpu={cpu}\n");

    let dir = std::env::temp_dir().join(format!("e14_persist_{}", std::process::id()));

    // Ingest vs sync policy. EveryRecord pays a real fsync per call —
    // keep its stream short so the bench stays interactive.
    let long = bursty_items(50_000);
    let short = bursty_items(2_000);
    let mut ingest_rows = vec![IngestRow {
        policy: "none (in-memory)".into(),
        items: long.len(),
        ns_per_item: baseline_ns_per_item(&long),
    }];
    for (name, sync, items) in [
        ("EveryRecord", SyncPolicy::EveryRecord, &short),
        ("EveryN(64)", SyncPolicy::EveryN(64), &long),
        (
            "IntervalTicks(1024)",
            SyncPolicy::IntervalTicks(1024),
            &long,
        ),
    ] {
        ingest_rows.push(IngestRow {
            policy: name.into(),
            items: items.len(),
            ns_per_item: ingest_ns_per_item(&dir, sync, items),
        });
    }

    let mut table = Table::new(&["sync policy", "items", "ingest ns/item"]);
    for r in &ingest_rows {
        table.row(&[
            r.policy.clone(),
            format!("{}", r.items),
            format!("{:.0}", r.ns_per_item),
        ]);
    }
    table.print();

    // Recovery vs WAL tail length.
    let mut recovery_rows = Vec::new();
    for n in [1_000usize, 10_000, 100_000] {
        recovery_rows.push(recovery_row(&bursty_items(n)));
    }

    let mut rtable = Table::new(&["WAL tail (records)", "recover ms", "ns/record"]);
    for r in &recovery_rows {
        rtable.row(&[
            format!("{}", r.tail_records),
            format!("{:.2}", r.recover_ms),
            format!("{:.0}", r.ns_per_record),
        ]);
    }
    println!("\nRecovery time vs un-checkpointed WAL tail:\n");
    rtable.print();

    let host = td_bench::hostinfo::json_fragment();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {host_parallelism},\n  \"cpu\": \"{cpu}\",\n  \"ingest\": [\n"
    ));
    for (i, r) in ingest_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sync\": \"{}\", \"items\": {}, \"ns_per_item\": {:.1}, {host}}}{}\n",
            r.policy,
            r.items,
            r.ns_per_item,
            if i + 1 == ingest_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"recovery\": [\n");
    for (i, r) in recovery_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tail_records\": {}, \"recover_ms\": {:.3}, \"ns_per_record\": {:.1}, \
             {host}}}{}\n",
            r.tail_records,
            r.recover_ms,
            r.ns_per_record,
            if i + 1 == recovery_rows.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_persist.json";
    std::fs::write(path, &json).expect("write BENCH_persist.json");
    println!("\nwrote {path}");
}
