//! E13b — td-shard scaling: ingest throughput of the sharded serving
//! engine at 1/2/4/8 worker shards, and the query-side payoff of the
//! epoch-cached merged summary against merge-per-query on a read-heavy
//! (90/10) workload. Writes `BENCH_shard.json`.
//!
//! The ingest numbers are only meaningful relative to
//! `host_parallelism` (recorded in the JSON): on a single-core host the
//! worker threads time-slice one CPU and sharding cannot beat the
//! single-threaded backend, so treat the 1-shard row as the intercept
//! and the multi-shard rows as measuring coordination overhead. The
//! cached-vs-uncached query comparison is scheduling-independent —
//! the cache removes a per-query snapshot+merge regardless of cores.

use std::time::Instant;

use td_bench::Table;
use td_ceh::CascadedEh;
use td_counters::ExpCounter;
use td_decay::{Exponential, Polynomial, StreamAggregate, Time};
use td_shard::ShardedAggregate;
use td_wbmh::Wbmh;

const N_ITEMS: usize = 1_000_000;
const CHUNK: usize = 4096;
const QUERY_OPS: usize = 2_000;

/// Same bursty shape as E12: same-tick runs that `observe_batch`
/// coalesces, ~10 items per tick on average.
fn bursty_items(n: usize) -> Vec<(Time, u64)> {
    let mut items = Vec::with_capacity(n);
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut t = 0u64;
    while items.len() < n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t += 1 + x % 3;
        let burst = 1 + (x >> 17) % 20;
        for j in 0..burst {
            if items.len() == n {
                break;
            }
            items.push((t, (x >> 23).wrapping_add(j) % 8));
        }
    }
    items
}

struct IngestRow {
    backend: &'static str,
    shards: usize,
    items_per_sec: f64,
}

struct QueryRow {
    backend: &'static str,
    shards: usize,
    mode: &'static str,
    p50_ns: f64,
    p99_ns: f64,
}

/// Feeds the whole stream through a K-shard engine in `CHUNK`-item
/// batches and times ingest end-to-end *including drain*: the clock
/// stops only after a query forces the applied == submitted barrier.
/// Best of two passes (fresh engine each) to shed scheduler outliers.
fn ingest_items_per_sec<B>(shards: usize, items: &[(Time, u64)], make: impl Fn() -> B + Copy) -> f64
where
    B: StreamAggregate + Clone + Send + 'static,
{
    let t_end = items.last().map(|&(t, _)| t).unwrap_or(0) + 1;
    let mut best = 0.0f64;
    for _ in 0..2 {
        let mut engine = ShardedAggregate::new(shards, make);
        let t0 = Instant::now();
        for chunk in items.chunks(CHUNK) {
            engine.observe_batch(chunk);
        }
        std::hint::black_box(engine.query(t_end));
        let rate = items.len() as f64 / t0.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

/// Runs the 90/10 read-heavy phase on an already-loaded engine: out of
/// every ten ops, nine queries and one small ingest batch (which is
/// exactly what invalidates the epoch cache). Returns per-query
/// latencies in nanoseconds.
fn read_heavy_latencies<B>(engine: &mut ShardedAggregate<B>, mut t: Time, cached: bool) -> Vec<f64>
where
    B: StreamAggregate + Clone + Send + 'static,
{
    let mut lat = Vec::with_capacity(QUERY_OPS);
    let mut acc = 0.0;
    let mut i = 0usize;
    while lat.len() < QUERY_OPS {
        if i % 10 == 9 {
            t += 1;
            engine.observe_batch(&[(t, 3), (t, 5)]);
        } else {
            let t0 = Instant::now();
            acc += if cached {
                engine.query(t + 1)
            } else {
                engine.query_uncached(t + 1)
            };
            lat.push(t0.elapsed().as_nanos() as f64);
        }
        i += 1;
    }
    std::hint::black_box(acc);
    lat
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn bench_backend<B>(
    name: &'static str,
    items: &[(Time, u64)],
    make: impl Fn() -> B + Copy,
    ingest_rows: &mut Vec<IngestRow>,
    query_rows: &mut Vec<QueryRow>,
) where
    B: StreamAggregate + Clone + Send + 'static,
{
    for &shards in &[1usize, 2, 4, 8] {
        let rate = ingest_items_per_sec(shards, items, make);
        ingest_rows.push(IngestRow {
            backend: name,
            shards,
            items_per_sec: rate,
        });
    }

    // Query phase at the serving-typical shard count.
    let shards = 4;
    let t_end = items.last().map(|&(t, _)| t).unwrap_or(0);
    for (mode, cached) in [("cached", true), ("merge-per-query", false)] {
        let mut engine = ShardedAggregate::new(shards, make);
        for chunk in items.chunks(CHUNK) {
            engine.observe_batch(chunk);
        }
        let mut lat = read_heavy_latencies(&mut engine, t_end, cached);
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        query_rows.push(QueryRow {
            backend: name,
            shards,
            mode,
            p50_ns: percentile(&lat, 0.50),
            p99_ns: percentile(&lat, 0.99),
        });
    }
}

fn main() {
    let host_parallelism = td_bench::host_parallelism();
    let cpu = td_bench::cpu_model();
    println!(
        "E13b: td-shard scaling, 1e6-item bursty stream, \
         host_parallelism={host_parallelism}, cpu={cpu}\n"
    );

    let items = bursty_items(N_ITEMS);
    let mut ingest_rows = Vec::new();
    let mut query_rows = Vec::new();

    bench_backend(
        "exp-counter",
        &items,
        || ExpCounter::new(Exponential::new(0.001)),
        &mut ingest_rows,
        &mut query_rows,
    );
    bench_backend(
        "ceh",
        &items,
        || CascadedEh::new(Polynomial::new(1.0), 0.05),
        &mut ingest_rows,
        &mut query_rows,
    );
    bench_backend(
        "wbmh",
        &items,
        || Wbmh::new(Polynomial::new(1.0), 0.05, 1 << 24),
        &mut ingest_rows,
        &mut query_rows,
    );

    let mut table = Table::new(&["backend", "shards", "ingest Mitems/s", "vs 1 shard"]);
    for row in &ingest_rows {
        let base = ingest_rows
            .iter()
            .find(|r| r.backend == row.backend && r.shards == 1)
            .map(|r| r.items_per_sec)
            .unwrap_or(row.items_per_sec);
        table.row(&[
            row.backend.into(),
            format!("{}", row.shards),
            format!("{:.2}", row.items_per_sec / 1e6),
            format!("{:.2}x", row.items_per_sec / base),
        ]);
    }
    table.print();

    let mut qtable = Table::new(&["backend", "shards", "query mode", "p50 us", "p99 us"]);
    for row in &query_rows {
        qtable.row(&[
            row.backend.into(),
            format!("{}", row.shards),
            row.mode.into(),
            format!("{:.1}", row.p50_ns / 1e3),
            format!("{:.1}", row.p99_ns / 1e3),
        ]);
    }
    println!("\n90/10 read-heavy workload, epoch cache vs merge-per-query:\n");
    qtable.print();

    // Every row carries the host identity (see `td_bench::hostinfo`):
    // scaling rows copied out of context are otherwise uninterpretable.
    let host = td_bench::hostinfo::json_fragment();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {host_parallelism},\n  \"cpu\": \"{cpu}\",\n  \"ingest\": [\n"
    ));
    for (i, r) in ingest_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"shards\": {}, \"items_per_sec\": {:.0}, {host}}}{}\n",
            r.backend,
            r.shards,
            r.items_per_sec,
            if i + 1 == ingest_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"query\": [\n");
    for (i, r) in query_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"shards\": {}, \"mode\": \"{}\", \
             \"p50_ns\": {:.0}, \"p99_ns\": {:.0}, {host}}}{}\n",
            r.backend,
            r.shards,
            r.mode,
            r.p50_ns,
            r.p99_ns,
            if i + 1 == query_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_shard.json";
    std::fs::write(path, &json).expect("write BENCH_shard.json");
    println!("\nwrote {path}");

    // The cache's job on a read-heavy mix: most queries hit a merged
    // summary that is still valid, so p50 must sit well under the
    // snapshot+merge path. Checked for every backend.
    for backend in ["exp-counter", "ceh", "wbmh"] {
        let p50 = |mode: &str| {
            query_rows
                .iter()
                .find(|r| r.backend == backend && r.mode == mode)
                .map(|r| r.p50_ns)
                .expect("row exists")
        };
        let (c, u) = (p50("cached"), p50("merge-per-query"));
        println!(
            "{backend}: cached p50 {:.1}us vs merge-per-query p50 {:.1}us ({:.1}x)",
            c / 1e3,
            u / 1e3,
            u / c
        );
    }
}
