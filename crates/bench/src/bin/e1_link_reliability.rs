//! E1 — Figure 1 / §1.2: link-reliability ratings under SLIWIN, EXPD,
//! and POLYD decay.
//!
//! Reproduces the paper's motivating scenario: link L1 suffers a 5-hour
//! failure; 24 hours later link L2 suffers a 30-minute failure; nothing
//! else goes wrong. The *decayed demerit* (decaying sum of per-minute
//! failure indicators) rates each link; lower = more reliable.
//!
//! Expected shape (the paper's argument):
//! * SLIWIN forgets L1's failure once it leaves the window — L1 never
//!   rates worse than L2 after that, and both eventually rate 0;
//! * EXPD freezes the *ratio* of the two ratings once the failures have
//!   ended — whichever link is worse stays worse forever;
//! * POLYD lets L2 start out worse (recency) and lets L1 emerge worse
//!   later (severity) — the crossover neither of the other families can
//!   produce.

use td_bench::Table;
use td_core::{DecayedSum, Exponential, Polynomial, SlidingWindow, StorageAccounting};
use td_stream::link::{LinkTrace, DAY, HOUR};

struct Config {
    name: &'static str,
    build: fn() -> DecayedSum,
}

fn main() {
    let t0 = HOUR;
    let l1 = LinkTrace::paper_l1(t0);
    let l2 = LinkTrace::paper_l2(t0);
    // L2's failure starts at t0 + 24h and lasts 30 minutes; probe from
    // minutes after it ends out to 90 days.
    let l2_fail = t0 + DAY;
    let horizon = l2_fail + 90 * DAY + HOUR;

    let configs: Vec<Config> = vec![
        Config {
            name: "SLIWIN(12h)",
            build: || DecayedSum::new(SlidingWindow::new(12 * HOUR)),
        },
        Config {
            name: "SLIWIN(7d)",
            build: || DecayedSum::new(SlidingWindow::new(7 * DAY)),
        },
        Config {
            name: "EXPD(hl=6h)",
            build: || DecayedSum::new(Exponential::with_half_life(6 * HOUR)),
        },
        Config {
            name: "EXPD(hl=48h)",
            build: || DecayedSum::new(Exponential::with_half_life(48 * HOUR)),
        },
        Config {
            name: "POLYD(0.5)",
            build: || {
                DecayedSum::builder(Polynomial::new(0.5))
                    .epsilon(0.05)
                    .build()
            },
        },
        Config {
            name: "POLYD(1)",
            build: || {
                DecayedSum::builder(Polynomial::new(1.0))
                    .epsilon(0.05)
                    .build()
            },
        },
        Config {
            name: "POLYD(2)",
            build: || {
                DecayedSum::builder(Polynomial::new(2.0))
                    .epsilon(0.05)
                    .build()
            },
        },
    ];

    println!("E1: Figure 1 link-reliability ratings (decayed demerit; lower = more reliable)");
    println!("L1: 5h failure at t0={t0}min; L2: 30min failure at t0+24h; probing to day 90\n");

    // Probe offsets after the start of L2's failure: minutes/hours
    // first (the recency-dominated regime), then days (the
    // severity-dominated regime).
    let probes: Vec<(String, u64)> = vec![
        ("+35m".into(), 35),
        ("+2h".into(), 2 * HOUR),
        ("+6h".into(), 6 * HOUR),
        ("+12h".into(), 12 * HOUR),
        ("+1d".into(), DAY),
        ("+2d".into(), 2 * DAY),
        ("+3d".into(), 3 * DAY),
        ("+5d".into(), 5 * DAY),
        ("+8d".into(), 8 * DAY),
        ("+13d".into(), 13 * DAY),
        ("+21d".into(), 21 * DAY),
        ("+34d".into(), 34 * DAY),
        ("+55d".into(), 55 * DAY),
        ("+90d".into(), 90 * DAY),
    ];

    let mut summary = Table::new(&[
        "decay",
        "backend",
        "bits",
        "L2 worse at",
        "L1 worse at",
        "crossover",
    ]);

    for cfg in &configs {
        let mut s1 = (cfg.build)();
        let mut s2 = (cfg.build)();
        let mut table = Table::new(&["probe", "L1 rating", "L2 rating", "worse link"]);
        let mut probe_iter = probes.iter().peekable();
        let mut l2_worse_at: Option<String> = None;
        let mut l1_worse_after_l2: Option<String> = None;
        for t in 1..=horizon {
            s1.observe(t, l1.demerit(t));
            s2.observe(t, l2.demerit(t));
            if let Some(&(ref label, off)) = probe_iter.peek().copied() {
                if t == l2_fail + off {
                    let label = label.clone();
                    probe_iter.next();
                    let (r1, r2) = (s1.query(t + 1), s2.query(t + 1));
                    let worse = if r1 > r2 * 1.0001 {
                        "L1"
                    } else if r2 > r1 * 1.0001 {
                        "L2"
                    } else {
                        "--"
                    };
                    if worse == "L2" && l2_worse_at.is_none() {
                        l2_worse_at = Some(label.clone());
                    }
                    if worse == "L1" && l2_worse_at.is_some() && l1_worse_after_l2.is_none() {
                        l1_worse_after_l2 = Some(label.clone());
                    }
                    table.row(&[
                        label,
                        format!("{r1:.6e}"),
                        format!("{r2:.6e}"),
                        worse.to_string(),
                    ]);
                }
            }
        }
        println!("-- {} (backend: {}) --", cfg.name, s1.backend_name());
        table.print();
        println!();
        let crossover = match (&l2_worse_at, &l1_worse_after_l2) {
            (Some(_), Some(_)) => "YES",
            _ => "no",
        };
        summary.row(&[
            cfg.name.to_string(),
            s1.backend_name().to_string(),
            s1.storage_bits().to_string(),
            l2_worse_at.clone().unwrap_or_else(|| "never".into()),
            l1_worse_after_l2.clone().unwrap_or_else(|| "never".into()),
            crossover.to_string(),
        ]);
    }

    println!("== E1 summary (paper: crossover must appear ONLY for POLYD) ==");
    summary.print();
}
