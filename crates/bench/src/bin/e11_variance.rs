//! E11 — §7.3: time-decaying variance via the three-sums reduction,
//! including the documented cancellation regime.

use td_aggregates::DecayedVariance;
use td_bench::Table;
use td_decay::{DecayFunction, Polynomial, SlidingWindow, Time};
use td_stream::UniformValues;

fn exact_variance<G: DecayFunction>(g: &G, items: &[(Time, u64)], t: Time) -> f64 {
    let (mut w, mut s) = (0.0, 0.0);
    for &(ti, f) in items {
        if ti < t {
            let wt = g.weight(t - ti);
            w += wt;
            s += wt * f as f64;
        }
    }
    let a = s / w;
    items
        .iter()
        .filter(|&&(ti, _)| ti < t)
        .map(|&(ti, f)| g.weight(t - ti) * (f as f64 - a).powi(2))
        .sum()
}

fn run<G: DecayFunction + Clone>(name: &str, g: G, lo: u64, hi: u64, table: &mut Table) {
    let n = 5_000u64;
    let items: Vec<(Time, u64)> = UniformValues::new(lo, hi, 17).take(n as usize).collect();
    let mut v = DecayedVariance::ceh(g.clone(), 0.05);
    for &(t, f) in &items {
        v.observe(t, f);
    }
    let est = v.query(n + 1).expect("non-empty");
    let truth = exact_variance(&g, &items, n + 1);
    // Cancellation indicator: second moment over variance.
    let mean = items.iter().map(|&(_, f)| f as f64).sum::<f64>() / n as f64;
    let spread = (hi - lo) as f64 / (2.0 * mean.max(1.0));
    table.row(&[
        name.to_string(),
        format!("[{lo},{hi}]"),
        format!("{spread:.3}"),
        format!("{truth:.3e}"),
        format!("{est:.3e}"),
        format!("{:.3}", (est - truth).abs() / truth.max(1e-12)),
    ]);
}

fn main() {
    println!("E11: decayed variance via three decayed sums (§7.3)");
    println!("relative error degrades as values concentrate (the documented");
    println!("cancellation regime V << A^2*W; the paper defers the sharp fix to [4])\n");
    let mut table = Table::new(&[
        "decay",
        "value range",
        "rel spread",
        "exact V",
        "estimated V",
        "rel err",
    ]);
    // Well-spread values: solid estimates.
    run(
        "SLIWIN(1000)",
        SlidingWindow::new(1_000),
        0,
        100,
        &mut table,
    );
    run("POLYD(1)", Polynomial::new(1.0), 0, 100, &mut table);
    // Progressively concentrated values: cancellation bites.
    run(
        "SLIWIN(1000)",
        SlidingWindow::new(1_000),
        450,
        550,
        &mut table,
    );
    run(
        "SLIWIN(1000)",
        SlidingWindow::new(1_000),
        490,
        510,
        &mut table,
    );
    run(
        "SLIWIN(1000)",
        SlidingWindow::new(1_000),
        499,
        501,
        &mut table,
    );
    table.print();
}
