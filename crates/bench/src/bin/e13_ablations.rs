//! E13 — ablations over the design choices DESIGN.md calls out:
//!
//! 1. bucket-weighting estimators (paper's end-time rule vs midpoint /
//!    geometric variants);
//! 2. WBMH count mode (exact vs the §5 approximate-counter ladder);
//! 3. EH variant (classic powers-of-two vs domination rule);
//! 4. quantized bucket ages (the §5 closing remark) — accuracy vs
//!    boundary storage;
//! 5. distributed merging — one histogram vs k merged site histograms.

use td_bench::Table;
use td_ceh::{CascadedEh, CehEstimator};
use td_core::StorageAccounting;
use td_counters::ExactDecayedSum;
use td_decay::Polynomial;
use td_eh::{ClassicEh, DominationEh, WindowSketch};
use td_stream::BernoulliStream;
use td_wbmh::{Wbmh, WbmhEstimator};

fn main() {
    let n = 50_000u64;
    let g = Polynomial::new(1.0);
    let eps = 0.1;
    println!("E13: design-choice ablations (POLYD(1), eps={eps}, N={n})\n");

    // Shared stream + ground truth.
    let stream: Vec<(u64, u64)> = BernoulliStream::new(0.5, 77)
        .take(n as usize)
        .map(|(t, f)| (t, f * (1 + t % 3)))
        .collect();
    let mut exact = ExactDecayedSum::new(g);
    for &(t, f) in &stream {
        exact.observe(t, f);
    }
    let truth = exact.query(n + 1);

    // 1. Estimators.
    println!("-- 1. bucket-weighting estimators --");
    let mut ceh = CascadedEh::new(g, eps);
    let mut wbmh = Wbmh::new(g, eps, 1 << 24);
    for &(t, f) in &stream {
        ceh.observe(t, f);
        wbmh.observe(t, f);
    }
    wbmh.advance(n + 1);
    let mut t1 = Table::new(&["structure", "estimator", "rel err (signed)"]);
    let rel = |est: f64| (est - truth) / truth;
    t1.row(&[
        "ceh".into(),
        "paper (end time)".into(),
        format!("{:+.4}", rel(ceh.query_with(n + 1, CehEstimator::Paper))),
    ]);
    t1.row(&[
        "ceh".into(),
        "midpoint".into(),
        format!("{:+.4}", rel(ceh.query_with(n + 1, CehEstimator::Midpoint))),
    ]);
    t1.row(&[
        "wbmh".into(),
        "paper (end time)".into(),
        format!("{:+.4}", rel(wbmh.query_with(n + 1, WbmhEstimator::Paper))),
    ]);
    t1.row(&[
        "wbmh".into(),
        "geometric mean".into(),
        format!(
            "{:+.4}",
            rel(wbmh.query_with(n + 1, WbmhEstimator::Geometric))
        ),
    ]);
    t1.print();
    println!("(paper rule: one-sided overestimate; variants: two-sided, smaller)\n");

    // 2. WBMH count modes.
    println!("-- 2. WBMH count mode (Lemma 5.1's ladder) --");
    let mut w_apx = Wbmh::with_approx_counts(g, eps, 1 << 24, eps);
    for &(t, f) in &stream {
        w_apx.observe(t, f);
    }
    w_apx.advance(n + 1);
    let mut t2 = Table::new(&["counts", "rel err (signed)", "bits"]);
    t2.row(&[
        "exact".into(),
        format!("{:+.4}", rel(wbmh.query(n + 1))),
        wbmh.storage_bits().to_string(),
    ]);
    t2.row(&[
        "approx ladder".into(),
        format!("{:+.4}", rel(w_apx.query(n + 1))),
        w_apx.storage_bits().to_string(),
    ]);
    t2.print();
    println!("(the ladder trades a bounded extra error for the log log N bit budget)\n");

    // 3. EH variants (0/1 stream for the classic structure).
    println!("-- 3. EH variants on a 0/1 stream --");
    let mut classic = ClassicEh::new(eps, None);
    let mut dom = DominationEh::new(eps, None);
    let mut ones = Vec::new();
    for (t, f) in BernoulliStream::new(0.5, 78).take(n as usize) {
        classic.observe(t, f);
        dom.observe(t, f);
        if f == 1 {
            ones.push(t);
        }
    }
    let mut t3 = Table::new(&["variant", "buckets", "bits", "max window err"]);
    for (name, buckets, bits, q) in [
        (
            "classic (powers of 2)",
            classic.num_buckets(),
            classic.storage_bits(),
            &classic as &dyn WindowSketch,
        ),
        (
            "domination rule",
            dom.num_buckets(),
            dom.storage_bits(),
            &dom as &dyn WindowSketch,
        ),
    ] {
        let mut max_err: f64 = 0.0;
        let mut w = 8u64;
        while w < n {
            let tw: f64 = ones.iter().filter(|&&t| t >= n + 1 - w).count() as f64;
            if tw > 0.0 {
                max_err = max_err.max((q.query_window(n + 1, w) - tw).abs() / tw);
            }
            w *= 2;
        }
        t3.row(&[
            name.into(),
            buckets.to_string(),
            bits.to_string(),
            format!("{max_err:.4}"),
        ]);
    }
    t3.print();
    println!("(same guarantees; the domination rule additionally takes bulk values)\n");

    // 4. Quantized bucket ages (§5 closing remark).
    println!("-- 4. quantized bucket ages (boundary bits vs accuracy) --");
    let mut t4 = Table::new(&[
        "delta",
        "rel err (signed)",
        "boundary-quantized bits",
        "full bits",
    ]);
    for delta in [0.05, 0.25, 1.0] {
        t4.row(&[
            delta.to_string(),
            format!("{:+.4}", rel(ceh.query_quantized(n + 1, delta))),
            ceh.quantized_boundary_bits(delta, 1 << 40).to_string(),
            ceh.storage_bits().to_string(),
        ]);
    }
    t4.print();
    println!("(error grows like (1+delta)^alpha while boundary bits shrink)\n");

    // 5. Distributed merging.
    println!("-- 5. one histogram vs k merged site histograms --");
    let mut t5 = Table::new(&["k sites", "rel err (signed)", "buckets after merge"]);
    for k in [1usize, 2, 4, 8] {
        let mut sites: Vec<Wbmh<Polynomial>> = (0..k).map(|_| Wbmh::new(g, eps, 1 << 24)).collect();
        for (i, &(t, f)) in stream.iter().enumerate() {
            for (j, site) in sites.iter_mut().enumerate() {
                if i % k == j {
                    site.observe(t, f);
                } else {
                    site.advance(t);
                }
            }
        }
        for site in sites.iter_mut() {
            site.advance(n + 1);
        }
        let mut merged = sites.remove(0);
        for site in &sites {
            merged.merge_from(site);
        }
        t5.row(&[
            k.to_string(),
            format!("{:+.4}", rel(merged.query(n + 1))),
            merged.num_buckets().to_string(),
        ]);
    }
    t5.print();
    println!("(WBMH merging keeps the single-histogram band at any k)");
}
