//! E3 — the Exponential Histogram substrate (\[9\], paper §4.1): bucket
//! count O(ε⁻¹ log N), storage O(ε⁻¹ log² N), observed error ≤ ε.

use td_bench::{fit_vs_log_n, Table};
use td_core::StorageAccounting;
use td_eh::{ClassicEh, WindowSketch};
use td_stream::BernoulliStream;

fn main() {
    println!("E3: Exponential Histogram storage & accuracy ([9], used by Theorem 1)\n");

    let mut table = Table::new(&["epsilon", "N", "buckets", "bits", "max win err", "<= eps"]);
    let mut per_eps_fit = Table::new(&["epsilon", "bits ~ (log2 N)^e", "R^2"]);
    for eps in [0.5, 0.1, 0.05, 0.01] {
        let mut ns = Vec::new();
        let mut bits = Vec::new();
        for exp in [10u32, 12, 14, 16, 18, 20] {
            let n = 1u64 << exp;
            let mut eh = ClassicEh::new(eps, None);
            let mut ones: Vec<u64> = Vec::new();
            for (t, f) in BernoulliStream::new(0.4, 99).take(n as usize) {
                eh.observe(t, f);
                if f == 1 {
                    ones.push(t);
                }
            }
            // Max relative error over a sweep of windows.
            let mut max_err: f64 = 0.0;
            let mut w = 4u64;
            while w < n {
                let truth = ones.iter().filter(|&&t| t >= n + 1 - w).count() as f64;
                if truth > 0.0 {
                    let est = eh.query_window(n + 1, w);
                    max_err = max_err.max((est - truth).abs() / truth);
                }
                w *= 2;
            }
            table.row(&[
                eps.to_string(),
                n.to_string(),
                eh.num_buckets().to_string(),
                eh.storage_bits().to_string(),
                format!("{max_err:.3}"),
                (max_err <= eps).to_string(),
            ]);
            ns.push(n);
            bits.push(eh.storage_bits());
        }
        let fit = fit_vs_log_n(&ns, &bits);
        per_eps_fit.row(&[
            eps.to_string(),
            format!("{:.2}", fit.exponent),
            format!("{:.3}", fit.r_squared),
        ]);
    }
    table.print();
    println!("\nGrowth fits (paper: storage = Θ(ε⁻¹ log² N) → exponent ~2):");
    per_eps_fit.print();
}
