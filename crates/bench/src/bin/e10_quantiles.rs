//! E10 — §7.2: time-decaying approximate quantiles by repeated
//! independent selection. Measures the rank error |F_g(estimate) − p|
//! as a function of the repetition budget R.

use rand::rngs::StdRng;
use rand::SeedableRng;
use td_aggregates::DecayedQuantile;
use td_bench::Table;
use td_decay::{DecayFunction, Polynomial, SlidingWindow, Time};
use td_stream::DriftingValues;

/// The decayed CDF interval `[F(v⁻), F(v)]` of `v` among `items` at
/// time `t`. Under steep decay a single recent item can be an *atom*
/// carrying most of the mass, in which case `v` is a valid p-quantile
/// for every `p` inside its interval.
fn decayed_rank_interval<G: DecayFunction>(
    g: &G,
    items: &[(Time, u64)],
    t: Time,
    v: u64,
) -> (f64, f64) {
    let mut strictly_below = 0.0;
    let mut at_or_below = 0.0;
    let mut total = 0.0;
    for &(ti, f) in items {
        if ti < t {
            let w = g.weight(t - ti);
            total += w;
            if f < v {
                strictly_below += w;
            }
            if f <= v {
                at_or_below += w;
            }
        }
    }
    (strictly_below / total, at_or_below / total)
}

fn run<G: DecayFunction + Clone>(name: &str, g: G, r: usize, table: &mut Table) {
    let n = 2_000u64;
    let items: Vec<(Time, u64)> = DriftingValues::new(100.0, 900.0, n, 50, 31)
        .take(n as usize)
        .collect();
    let mut q = DecayedQuantile::new(g.clone(), 0.1, r, 555);
    for &(t, f) in &items {
        q.observe(t, f);
    }
    let mut rng = StdRng::seed_from_u64(99);
    for p in [0.25, 0.5, 0.9] {
        let est = q.query(n + 1, p, &mut rng).expect("non-empty");
        let (lo, hi) = decayed_rank_interval(&g, &items, n + 1, est);
        // Distance from p to the CDF interval the estimate covers.
        let err = if p < lo {
            lo - p
        } else if p > hi {
            p - hi
        } else {
            0.0
        };
        table.row(&[
            name.to_string(),
            r.to_string(),
            p.to_string(),
            est.to_string(),
            format!("[{lo:.2},{hi:.2}]"),
            format!("{err:.3}"),
        ]);
    }
}

fn main() {
    println!("E10: decayed approximate quantiles (§7.2)");
    println!("drifting values 100→900 over 2000 ticks; rank err should shrink ~1/sqrt(R)\n");
    let mut table = Table::new(&["decay", "R", "p", "estimate", "rank interval", "rank err"]);
    for r in [25usize, 75, 151] {
        run("POLYD(2)", Polynomial::new(2.0), r, &mut table);
    }
    run("SLIWIN(500)", SlidingWindow::new(500), 151, &mut table);
    run("POLYD(1)", Polynomial::new(1.0), 151, &mut table);
    table.print();
    println!(
        "\n(POLYD(2) weights recent items heavily, so its median sits near the \
         drifted-to values ~900; SLIWIN(500)'s sits at the window's mid-drift values)"
    );
}
