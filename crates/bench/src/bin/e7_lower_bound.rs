//! E7 — Theorem 2: the Ω(log N) lower bound for polynomially-decaying
//! counts, demonstrated constructively.
//!
//! Three measurements:
//! 1. the dominance ratios at every probe (must exceed 4 so that a
//!    1/4-accurate summary pins each secret bit) — including the
//!    reproduction finding that the paper's `k = 10` is too small;
//! 2. bit recovery through an actual WBMH summary (the information
//!    really is retained by our Θ̃(log N)-bit structure);
//! 3. the summary's storage compared with `r` (the information-theoretic
//!    floor: any summary answering all probes must hold ≥ r bits).

use td_bench::Table;
use td_core::StorageAccounting;
use td_decay::Polynomial;
use td_stream::LowerBoundFamily;
use td_wbmh::Wbmh;

fn secret_bits(r: usize, code: u64) -> Vec<u8> {
    (0..r).map(|i| 1 + ((code >> i) & 1) as u8).collect()
}

fn main() {
    println!("E7: Theorem 2 lower-bound family\n");

    // (1) dominance ratios.
    println!("-- dominance ratio own/(prefix+suffix) at each probe (need > 4) --");
    let mut t1 = Table::new(&["k", "alpha", "i", "ratio", "> 4"]);
    for &(k, alpha, r) in &[
        (10u64, 1.0, 5usize),
        (40, 1.0, 5),
        (72, 2.0, 8),
        (160, 3.0, 8),
    ] {
        // Worst-case secret: the probed bit is 1, neighbours 2.
        for i in 1..=r as u32 {
            let mut bits = vec![2u8; r];
            bits[i as usize - 1] = 1;
            let fam = LowerBoundFamily::new(k, alpha, bits);
            let ratio = fam.dominance_ratio(i);
            t1.row(&[
                k.to_string(),
                alpha.to_string(),
                i.to_string(),
                format!("{ratio:.2}"),
                (ratio > 4.0).to_string(),
            ]);
        }
    }
    t1.print();
    println!(
        "\nreproduction note: k=10 (the paper's suggestion) fails the >4 margin; \
         Eqs. (5)-(6) bound g(k^(2i/a)+k^(2j/a)) by g(2k^(2i/a)) which is reversed \
         for decreasing g (costs 2^alpha). k=40/72/160 restore it for alpha=1/2/3.\n"
    );

    // (2) recovery through a real WBMH summary.
    println!("-- secret recovery through a WBMH summary (alpha=1, k=40, r=5) --");
    let mut t2 = Table::new(&["secret", "recovered", "ok", "wbmh bits", "floor r"]);
    let r = 5;
    let mut all_ok = true;
    for code in [0b00000u64, 0b10101, 0b01010, 0b11111, 0b00111] {
        let bits = secret_bits(r, code);
        let fam = LowerBoundFamily::new(40, 1.0, bits.clone());
        let mut h = Wbmh::new(Polynomial::new(1.0), 0.05, u64::MAX / 4);
        for (t, c) in fam.arrivals() {
            h.observe(t, c);
        }
        let sums: Vec<f64> = (1..=r as u32).map(|i| h.query(fam.probe_time(i))).collect();
        let rec = fam.recover_bits(&sums);
        let ok = rec == bits;
        all_ok &= ok;
        t2.row(&[
            format!("{bits:?}"),
            format!("{rec:?}"),
            ok.to_string(),
            h.storage_bits().to_string(),
            r.to_string(),
        ]);
    }
    t2.print();
    println!(
        "\nall secrets recovered through the approximate summary: {}",
        if all_ok { "YES" } else { "NO" }
    );
    println!(
        "(any structure answering every probe within 25% must store >= r bits; \
         the WBMH stores Theta(log N . log log N) — within the log^O(1) envelope \
         of the Omega(log N) floor)"
    );
    if !all_ok {
        std::process::exit(1);
    }
}
