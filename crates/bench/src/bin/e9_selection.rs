//! E9 — §7.2: time-decaying random selection. Audits the empirical
//! selection distribution against the target g(T−t)/Σg(T−t') weights
//! (total-variation distance over independent rank streams) and the
//! MV/D list's logarithmic retention.

use rand::rngs::StdRng;
use rand::SeedableRng;
use td_aggregates::DecayedSampler;
use td_bench::Table;
use td_decay::{DecayFunction, Exponential, Polynomial, SlidingWindow};
use td_sketch::MvdList;

fn audit<G: DecayFunction + Clone>(name: &str, g: G, table: &mut Table) {
    let n = 80u64;
    let t_query = n + 1;
    let trials = 4_000u64;
    let mut hits = vec![0u32; n as usize + 1];
    let mut retained_total = 0usize;
    for seed in 0..trials {
        let mut s: DecayedSampler<G, u64> = DecayedSampler::new(g.clone(), 0.05, seed);
        for t in 1..=n {
            s.observe(t, t);
        }
        retained_total += s.retained();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        if let Some(v) = s.sample(t_query, &mut rng) {
            hits[v as usize] += 1;
        }
    }
    let weights: Vec<f64> = (1..=n).map(|t| g.weight(t_query - t)).collect();
    let z: f64 = weights.iter().sum();
    let mut tv = 0.0;
    for t in 1..=n as usize {
        let p_emp = hits[t] as f64 / trials as f64;
        let p_true = weights[t - 1] / z;
        tv += (p_emp - p_true).abs();
    }
    tv /= 2.0;
    table.row(&[
        name.to_string(),
        trials.to_string(),
        format!("{tv:.3}"),
        format!("{:.1}", retained_total as f64 / trials as f64),
        format!("{:.1}", (n as f64).ln()),
    ]);
}

fn main() {
    println!("E9: decayed random selection (§7.2)");
    println!("n=80 items, 4000 independent rank streams; TV = total variation to target\n");
    let mut table = Table::new(&["decay", "trials", "TV dist", "avg retained", "ln n"]);
    audit("POLYD(1)", Polynomial::new(1.0), &mut table);
    audit("POLYD(2)", Polynomial::new(2.0), &mut table);
    audit("SLIWIN(40)", SlidingWindow::new(40), &mut table);
    audit("EXPD(0.05)", Exponential::new(0.05), &mut table);
    table.print();

    // MV/D retention across stream lengths.
    println!("\nMV/D retention (expected H_n ~ ln n + 0.577):");
    let mut t2 = Table::new(&["n", "avg retained (40 seeds)", "H_n"]);
    for n in [100u64, 1_000, 10_000, 100_000] {
        let mut total = 0usize;
        for seed in 0..40 {
            let mut l: MvdList<()> = MvdList::with_seed(seed);
            for t in 1..=n {
                l.observe(t, ());
            }
            total += l.len();
        }
        t2.row(&[
            n.to_string(),
            format!("{:.1}", total as f64 / 40.0),
            format!("{:.1}", (n as f64).ln() + 0.5772),
        ]);
    }
    t2.print();
}
