//! E4 — Theorem 1: the cascaded EH gives a (1+ε) one-sided estimate for
//! *any* decay function from a single histogram.

use td_bench::Table;
use td_ceh::{CascadedEh, CehEstimator};
use td_core::StorageAccounting;
use td_counters::ExactDecayedSum;
use td_decay::{
    ClosureDecay, DecayFunction, Exponential, Polynomial, ShiftedPolynomial, SlidingWindow,
};
use td_stream::BurstyStream;

fn audit<G: DecayFunction + Clone>(name: &str, g: G, eps: f64, n: u64, table: &mut Table) {
    let mut ceh = CascadedEh::new(g.clone(), eps);
    let mut exact = ExactDecayedSum::new(g);
    let mut max_over: f64 = 0.0; // (est − truth)/truth, must be in [0, ε]
    let mut min_over: f64 = f64::INFINITY;
    let mut mid_err: f64 = 0.0; // |midpoint − truth|/truth
    let mut probes = 0u32;
    for (t, f) in BurstyStream::new(0.01, 0.05, 5).take(n as usize) {
        ceh.observe(t, f);
        exact.observe(t, f);
        if t % 997 == 0 {
            let truth = exact.query(t + 1);
            if truth > 0.0 {
                let over = (ceh.query(t + 1) - truth) / truth;
                max_over = max_over.max(over);
                min_over = min_over.min(over);
                let mid = ceh.query_with(t + 1, CehEstimator::Midpoint);
                mid_err = mid_err.max((mid - truth).abs() / truth);
                probes += 1;
            }
        }
    }
    table.row(&[
        name.to_string(),
        probes.to_string(),
        format!("{min_over:.4}"),
        format!("{max_over:.4}"),
        (min_over >= -1e-9 && max_over <= eps + 1e-9).to_string(),
        format!("{mid_err:.4}"),
        ceh.num_buckets().to_string(),
        ceh.storage_bits().to_string(),
    ]);
}

fn main() {
    let eps = 0.1;
    let n = 60_000u64;
    println!("E4: cascaded EH under arbitrary decay (Theorem 1), eps={eps}, N={n}");
    println!("(one-sided bound: 0 <= (est-truth)/truth <= eps at every probe)\n");
    let mut table = Table::new(&[
        "decay",
        "probes",
        "min over",
        "max over",
        "in [0,eps]",
        "midpoint err",
        "buckets",
        "bits",
    ]);
    audit("EXPD(0.001)", Exponential::new(0.001), eps, n, &mut table);
    audit("POLYD(1)", Polynomial::new(1.0), eps, n, &mut table);
    audit("POLYD(2)", Polynomial::new(2.0), eps, n, &mut table);
    audit(
        "POLYD(0.5,s=100)",
        ShiftedPolynomial::new(0.5, 100),
        eps,
        n,
        &mut table,
    );
    audit("SLIWIN(4096)", SlidingWindow::new(4096), eps, n, &mut table);
    let stair = ClosureDecay::new(|age| match age {
        0..=99 => 1.0,
        100..=999 => 0.4,
        1000..=9999 => 0.1,
        _ => 0.01,
    })
    .with_name("STAIRCASE");
    audit("STAIRCASE", stair, eps, n, &mut table);
    // A cliff-free but non-smooth decay: log-spaced plateaus.
    let sqrtish =
        ClosureDecay::new(|age| 1.0 / (1.0 + (age as f64).sqrt())).with_name("1/(1+sqrt)");
    audit("1/(1+sqrt(x))", sqrtish, eps, n, &mut table);
    table.print();
    println!("\n(The same histogram also answers all decays at once: query_many.)");
}
