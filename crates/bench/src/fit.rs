//! Least-squares growth-rate fitting for the storage experiments.
//!
//! The paper's claims are asymptotic (`Θ(log N)`, `Θ(log² N)`,
//! `O(log N · log log N)`); the experiments verify them by fitting the
//! measured storage against `log N` on a log-log scale: storage
//! `≈ c·(log N)^e` shows up as slope `e`.

/// A fitted power law `y ≈ c · x^e`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// The exponent `e` (the slope on the log-log scale).
    pub exponent: f64,
    /// The multiplier `c`.
    pub coefficient: f64,
    /// Coefficient of determination of the log-log regression.
    pub r_squared: f64,
}

/// Fits `y ≈ c·x^e` by ordinary least squares on `(ln x, ln y)`.
///
/// # Panics
///
/// Panics if fewer than two points are given or any coordinate is
/// non-positive.
pub fn fit_loglog(xs: &[f64], ys: &[f64]) -> Fit {
    assert!(xs.len() == ys.len() && xs.len() >= 2, "need >= 2 points");
    assert!(
        xs.iter().chain(ys.iter()).all(|&v| v > 0.0),
        "log-log fit needs positive coordinates"
    );
    let n = xs.len() as f64;
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|x| (x - mx).powi(2)).sum();
    let syy: f64 = ly.iter().map(|y| (y - my).powi(2)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Fit {
        exponent: slope,
        coefficient: intercept.exp(),
        r_squared,
    }
}

/// Fits `y ≈ a + b·x` by ordinary least squares.
///
/// # Panics
///
/// Panics if fewer than two points are given.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert!(xs.len() == ys.len() && xs.len() >= 2, "need >= 2 points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let b = sxy / sxx;
    (my - b * mx, b)
}

/// Fits measured storage against `log₂ N`: returns the exponent `e` in
/// `bits ≈ c·(log₂ N)^e`. `Θ(log N)` structures fit `e ≈ 1`,
/// `Θ(log² N)` structures `e ≈ 2`, and the WBMH's
/// `O(log N·log log N)` lands in between.
pub fn fit_vs_log_n(ns: &[u64], bits: &[u64]) -> Fit {
    let xs: Vec<f64> = ns.iter().map(|&n| (n as f64).log2()).collect();
    let ys: Vec<f64> = bits.iter().map(|&b| b as f64).collect();
    fit_loglog(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_known_power_law() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x.powf(1.7)).collect();
        let fit = fit_loglog(&xs, &ys);
        assert!((fit.exponent - 1.7).abs() < 1e-9);
        assert!((fit.coefficient - 3.5).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn distinguishes_log_from_log_squared() {
        let ns: Vec<u64> = (8..=24).map(|e| 1u64 << e).collect();
        let linear: Vec<u64> = ns.iter().map(|&n| 40 * (n as f64).log2() as u64).collect();
        let quad: Vec<u64> = ns
            .iter()
            .map(|&n| (5.0 * (n as f64).log2().powi(2)) as u64)
            .collect();
        let f1 = fit_vs_log_n(&ns, &linear);
        let f2 = fit_vs_log_n(&ns, &quad);
        assert!((f1.exponent - 1.0).abs() < 0.05, "{f1:?}");
        assert!((f2.exponent - 2.0).abs() < 0.05, "{f2:?}");
    }

    #[test]
    #[should_panic(expected = "positive coordinates")]
    fn rejects_zeroes() {
        let _ = fit_loglog(&[1.0, 2.0], &[0.0, 1.0]);
    }
}
