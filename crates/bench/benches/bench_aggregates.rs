//! Criterion benches for the composite aggregates: average, variance,
//! decayed sampling, and quantiles.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use td_aggregates::{DecayedAverage, DecayedQuantile, DecayedSampler, DecayedVariance};
use td_decay::Polynomial;

fn bench_aggregates(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregates");

    group.bench_function("average_observe_10k", |b| {
        b.iter_batched(
            || DecayedAverage::ceh(Polynomial::new(1.0), 0.1),
            |mut a| {
                for t in 1..=10_000u64 {
                    a.observe(t, t % 100);
                }
                a
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.bench_function("variance_observe_10k", |b| {
        b.iter_batched(
            || DecayedVariance::ceh(Polynomial::new(1.0), 0.1),
            |mut v| {
                for t in 1..=10_000u64 {
                    v.observe(t, t % 100);
                }
                v
            },
            criterion::BatchSize::SmallInput,
        );
    });

    // Sampler: build once, bench the draw.
    let mut sampler: DecayedSampler<_, u64> = DecayedSampler::new(Polynomial::new(1.0), 0.1, 3);
    for t in 1..=100_000u64 {
        sampler.observe(t, t);
    }
    group.bench_function("sampler_draw_100k_items", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(sampler.sample(100_001, &mut rng)));
    });

    // Quantile query at R = 75.
    let mut q: DecayedQuantile<_, u64> = DecayedQuantile::new(Polynomial::new(1.0), 0.1, 75, 5);
    for t in 1..=10_000u64 {
        q.observe(t, t % 1000);
    }
    group.bench_function("quantile_query_r75", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(q.query(10_001, 0.5, &mut rng)));
    });

    group.finish();
}

criterion_group!(benches, bench_aggregates);
criterion_main!(benches);
