//! Criterion benches for the counter algorithms: the Eq. 1 EXPD
//! counter, its quantized variant, the Lemma 3.1 timestamp list, the
//! polyexponential pipeline, and Morris counting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use td_counters::{
    ExpCounter, MorrisCounter, PolyExpCounter, QuantizedExpCounter, TimestampCounter,
};
use td_decay::Exponential;

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counters_observe_10k");
    group.bench_function("exp_counter", |b| {
        b.iter_batched(
            || ExpCounter::new(Exponential::new(0.01)),
            |mut s| {
                for t in 1..=10_000u64 {
                    s.observe(t, 1 + t % 3);
                }
                s
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("quantized_exp_counter_m16", |b| {
        b.iter_batched(
            || QuantizedExpCounter::new(Exponential::new(0.01), 16),
            |mut s| {
                for t in 1..=10_000u64 {
                    s.observe(t, 1 + t % 3);
                }
                s
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("timestamp_counter", |b| {
        b.iter_batched(
            || TimestampCounter::new(Exponential::new(0.05), 0.05),
            |mut s| {
                for t in 1..=10_000u64 {
                    s.observe(t, 1 + t % 3);
                }
                s
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("polyexp_counter_k3", |b| {
        b.iter_batched(
            || PolyExpCounter::new(3, 0.01),
            |mut s| {
                for t in 1..=10_000u64 {
                    s.observe(t, 1 + t % 3);
                }
                s
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("morris_counter", |b| {
        b.iter_batched(
            || MorrisCounter::with_seed(0.1, 7),
            |mut s| {
                s.add(10_000);
                black_box(s.estimate())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
