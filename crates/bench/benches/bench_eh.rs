//! Criterion benches for the Exponential Histogram substrate: insertion
//! throughput and window-query latency across ε and N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_eh::{ClassicEh, DominationEh, WindowSketch};

fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("eh_observe_10k");
    for eps in [0.1, 0.01] {
        group.bench_with_input(BenchmarkId::new("classic", eps), &eps, |b, &eps| {
            b.iter_batched(
                || ClassicEh::new(eps, None),
                |mut eh| {
                    for t in 1..=10_000u64 {
                        eh.observe(t, 1);
                    }
                    eh
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("domination", eps), &eps, |b, &eps| {
            b.iter_batched(
                || DominationEh::new(eps, None),
                |mut eh| {
                    for t in 1..=10_000u64 {
                        eh.observe(t, 1 + t % 5);
                    }
                    eh
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("eh_query_window");
    for n in [10_000u64, 1_000_000] {
        let mut eh = ClassicEh::new(0.05, None);
        for t in 1..=n {
            eh.observe(t, 1);
        }
        group.bench_with_input(BenchmarkId::new("classic", n), &n, |b, &n| {
            b.iter(|| black_box(eh.query_window(n + 1, black_box(n / 3))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observe, bench_query);
criterion_main!(benches);
