//! Criterion benches for the randomized substrates: stable-variate
//! generation, sketch accumulation, L_p queries, and MV/D maintenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_aggregates::DecayedLpNorm;
use td_decay::SlidingWindow;
use td_sketch::{MvdList, StableSketcher};

fn bench_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch");

    for p in [1.0, 1.5, 2.0] {
        let sk = StableSketcher::new(p, 64, 9);
        group.bench_with_input(BenchmarkId::new("accumulate_64rows", p), &p, |b, _| {
            let mut acc = vec![0.0f64; 64];
            let mut coord = 0u64;
            b.iter(|| {
                coord = coord.wrapping_add(101);
                sk.accumulate(&mut acc, black_box(coord), 3.0);
            });
        });
    }

    group.bench_function("mvd_observe_10k", |b| {
        b.iter_batched(
            || MvdList::<u64>::with_seed(4),
            |mut l| {
                for t in 1..=10_000u64 {
                    l.observe(t, t);
                }
                l
            },
            criterion::BatchSize::SmallInput,
        );
    });

    // L_p norm end-to-end: observe and query.
    group.bench_function("lp_norm_observe_1k_L31", |b| {
        b.iter_batched(
            || DecayedLpNorm::new(SlidingWindow::new(100_000), 1.0, 0.1, 31, 7),
            |mut lp| {
                for t in 1..=1_000u64 {
                    lp.observe(t, t % 997, 2);
                }
                lp
            },
            criterion::BatchSize::SmallInput,
        );
    });
    let mut lp = DecayedLpNorm::new(SlidingWindow::new(100_000), 1.0, 0.1, 101, 8);
    for t in 1..=50_000u64 {
        lp.observe(t, t % 997, 2);
    }
    group.bench_function("lp_norm_query_L101", |b| {
        b.iter(|| black_box(lp.query(50_001)));
    });

    group.finish();
}

criterion_group!(benches, bench_sketch);
criterion_main!(benches);
