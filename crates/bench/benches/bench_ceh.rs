//! Criterion benches for the cascaded EH: observe/query across decay
//! families, plus the multi-decay `query_many` amortization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_ceh::CascadedEh;
use td_decay::{DecayFunction, Exponential, Polynomial, SlidingWindow};

fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("ceh_observe_10k");
    group.bench_function("polyd1_eps05", |b| {
        b.iter_batched(
            || CascadedEh::new(Polynomial::new(1.0), 0.05),
            |mut s| {
                for t in 1..=10_000u64 {
                    s.observe(t, 1 + t % 3);
                }
                s
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_observe_batch(c: &mut Criterion) {
    // Bursty ingest: 10k items over ~2.5k ticks, fed one-by-one vs
    // through `observe_batch` (which expires/asserts once per distinct
    // tick and coalesces same-tick mass).
    let mut items = Vec::with_capacity(10_000);
    let mut t = 0u64;
    while items.len() < 10_000 {
        t += 1;
        for j in 0..4u64 {
            items.push((t, 1 + (t + j) % 3));
        }
    }
    let mut group = c.benchmark_group("ceh_ingest_10k_bursty");
    group.bench_function("single", |b| {
        b.iter_batched(
            || CascadedEh::new(Polynomial::new(1.0), 0.05),
            |mut s| {
                for &(t, f) in &items {
                    s.observe(t, f);
                }
                s
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("batched", |b| {
        b.iter_batched(
            || CascadedEh::new(Polynomial::new(1.0), 0.05),
            |mut s| {
                s.observe_batch(&items);
                s
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("ceh_query");
    for n in [10_000u64, 1_000_000] {
        let mut s = CascadedEh::new(Polynomial::new(1.0), 0.05);
        for t in 1..=n {
            s.observe(t, 1);
        }
        group.bench_with_input(BenchmarkId::new("single", n), &n, |b, &n| {
            b.iter(|| black_box(s.query(black_box(n + 1))));
        });
        let g1 = Polynomial::new(2.0);
        let g2 = Exponential::new(0.001);
        let g3 = SlidingWindow::new(n / 2);
        let decays: Vec<&dyn DecayFunction> = vec![&g1, &g2, &g3];
        group.bench_with_input(BenchmarkId::new("many_x3", n), &n, |b, &n| {
            b.iter(|| black_box(s.query_many(black_box(n + 1), &decays)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observe, bench_observe_batch, bench_query);
criterion_main!(benches);
