//! Criterion benches for the weight-based merging histogram: insertion
//! throughput (exact vs approximate counters) and query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_decay::Polynomial;
use td_wbmh::Wbmh;

fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("wbmh_observe_10k");
    for eps in [0.2, 0.05] {
        group.bench_with_input(BenchmarkId::new("exact_counts", eps), &eps, |b, &eps| {
            b.iter_batched(
                || Wbmh::new(Polynomial::new(1.0), eps, 1 << 24),
                |mut h| {
                    for t in 1..=10_000u64 {
                        h.observe(t, 1);
                    }
                    h
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("approx_counts", eps), &eps, |b, &eps| {
            b.iter_batched(
                || Wbmh::with_approx_counts(Polynomial::new(1.0), eps, 1 << 24, eps),
                |mut h| {
                    for t in 1..=10_000u64 {
                        h.observe(t, 1);
                    }
                    h
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_observe_batch(c: &mut Criterion) {
    // Bursty ingest: 10k items over ~2.5k ticks, fed one-by-one vs
    // through `observe_batch` (which advances the clock once per
    // distinct tick).
    let mut items = Vec::with_capacity(10_000);
    let mut t = 0u64;
    while items.len() < 10_000 {
        t += 1;
        for j in 0..4u64 {
            items.push((t, 1 + j % 2));
        }
    }
    let mut group = c.benchmark_group("wbmh_ingest_10k_bursty");
    group.bench_function("single", |b| {
        b.iter_batched(
            || Wbmh::new(Polynomial::new(1.0), 0.05, 1 << 24),
            |mut h| {
                for &(t, f) in &items {
                    h.observe(t, f);
                }
                h
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("batched", |b| {
        b.iter_batched(
            || Wbmh::new(Polynomial::new(1.0), 0.05, 1 << 24),
            |mut h| {
                h.observe_batch(&items);
                h
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("wbmh_query");
    for n in [10_000u64, 300_000] {
        let mut h = Wbmh::new(Polynomial::new(1.0), 0.05, 1 << 24);
        for t in 1..=n {
            h.observe(t, 1);
        }
        h.advance(n + 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(h.query(black_box(n + 1))));
        });
    }
    group.finish();
}

fn bench_schedule(c: &mut Criterion) {
    c.bench_function("wbmh_region_schedule_2pow24", |b| {
        b.iter(|| {
            black_box(td_decay::RegionSchedule::compute(
                &Polynomial::new(1.0),
                0.05,
                1 << 24,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_observe,
    bench_observe_batch,
    bench_query,
    bench_schedule
);
criterion_main!(benches);
