//! Morris approximate counting (paper §1, ref. \[16\]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use td_decay::storage::{bits_for_count, StorageAccounting};

/// A Morris counter: approximate counting of `n` events in
/// `O(log log n)` bits.
///
/// The paper's introduction uses Morris counting to set the stage: a
/// *non-decaying* sum needs only Θ(log log N) bits approximately, so the
/// Θ(log N) (EXPD) and Θ(log² N) (SLIWIN) decayed-sum bounds are
/// exponentially and doubly-exponentially worse — decay is what makes
/// the problem hard.
///
/// The counter stores an exponent `X` and increments it with probability
/// `b^{-X}` for a base `b = 1 + 2ε²`; the estimate `(b^X − 1)/(b − 1)`
/// is unbiased with relative standard deviation about ε.
///
/// # Examples
///
/// ```
/// use td_counters::MorrisCounter;
/// let mut c = MorrisCounter::with_seed(0.05, 42);
/// for _ in 0..100_000 {
///     c.increment();
/// }
/// let rel = (c.estimate() - 100_000.0).abs() / 100_000.0;
/// assert!(rel < 0.2, "rel={rel}");
/// ```
#[derive(Debug, Clone)]
pub struct MorrisCounter {
    /// The stored exponent X — the only state that counts toward
    /// storage.
    exponent: u32,
    base: f64,
    /// Probability of incrementing at the current exponent, kept in sync
    /// with `exponent` to avoid a `powi` per event.
    p_increment: f64,
    rng: StdRng,
}

impl MorrisCounter {
    /// A Morris counter with relative accuracy target `epsilon`, seeded
    /// from the OS.
    pub fn new(epsilon: f64) -> Self {
        Self::with_seed(epsilon, rand::rng().random())
    }

    /// A deterministic Morris counter (for tests and experiments).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]`.
    pub fn with_seed(epsilon: f64, seed: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0,1], got {epsilon}"
        );
        let base = 1.0 + 2.0 * epsilon * epsilon;
        Self {
            exponent: 0,
            base,
            p_increment: 1.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Counts one event.
    pub fn increment(&mut self) {
        if self.rng.random::<f64>() < self.p_increment {
            self.exponent += 1;
            self.p_increment /= self.base;
        }
    }

    /// Counts `n` events (n independent probabilistic increments).
    pub fn add(&mut self, n: u64) {
        for _ in 0..n {
            self.increment();
        }
    }

    /// The unbiased estimate `(b^X − 1)/(b − 1)` of the event count.
    pub fn estimate(&self) -> f64 {
        (self.base.powi(self.exponent as i32) - 1.0) / (self.base - 1.0)
    }

    /// The stored exponent X (storage is `⌈log₂(X+1)⌉ ≈ log log n` bits).
    pub fn exponent(&self) -> u32 {
        self.exponent
    }
}

impl StorageAccounting for MorrisCounter {
    fn storage_bits(&self) -> u64 {
        // Only the exponent is per-stream state; base/RNG are shared
        // configuration.
        bits_for_count(self.exponent as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_is_approximately_unbiased() {
        // Average 60 independent counters over n = 20_000 events.
        let n = 20_000u64;
        let mut sum = 0.0;
        let runs = 60;
        for seed in 0..runs {
            let mut c = MorrisCounter::with_seed(0.1, seed);
            c.add(n);
            sum += c.estimate();
        }
        let mean = sum / runs as f64;
        let rel = (mean - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "mean={mean}, rel={rel}");
    }

    #[test]
    fn storage_is_loglog() {
        let mut c = MorrisCounter::with_seed(0.25, 7);
        c.add(1_000_000);
        // X ≈ log_b(n·(b−1)) ≈ 80 for ε=0.25 → ~7 bits, versus 20 bits
        // for an exact counter.
        assert!(c.storage_bits() <= 12, "bits={}", c.storage_bits());
        assert!(c.storage_bits() < bits_for_count(1_000_000));
    }

    #[test]
    fn zero_events_zero_estimate() {
        let c = MorrisCounter::with_seed(0.1, 1);
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.exponent(), 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = MorrisCounter::with_seed(0.1, 99);
        let mut b = MorrisCounter::with_seed(0.1, 99);
        a.add(5000);
        b.add(5000);
        assert_eq!(a.exponent(), b.exponent());
    }
}
