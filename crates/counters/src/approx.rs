//! Bounded-precision approximate counts (paper §5).
//!
//! The WBMH storage bound relies on keeping each bucket count *only
//! approximately*: a count is held as a floating-point value whose
//! mantissa width is bounded, and every merge rounds the sum back to that
//! width. The paper's refinement makes the width depend on the *depth* of
//! the merge in the summation tree: rounding at depth `i` uses
//! `β_i = ε / i²` (so `Σ β_i < ε·π²/6` converges and `N` need not be
//! known in advance), for `log(1/β_i) = log(1/ε) + 2·log(i)` mantissa
//! bits.

use td_decay::storage::{bits_for_quantized_float, StorageAccounting};

/// Rounds `x` to `bits` significant mantissa bits (round-to-nearest).
///
/// `bits = 0` is clamped to 1 (a bare power of two); values that are
/// zero, infinite, or NaN pass through unchanged.
///
/// ```
/// use td_counters::approx::round_to_mantissa;
/// assert_eq!(round_to_mantissa(1023.0, 4), 1024.0);
/// assert_eq!(round_to_mantissa(100.0, 52), 100.0);
/// assert_eq!(round_to_mantissa(0.0, 3), 0.0);
/// ```
pub fn round_to_mantissa(x: f64, bits: u32) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let bits = bits.clamp(1, 52);
    // Scale so the value lies in [2^(bits-1), 2^bits), round to an
    // integer there, and scale back.
    let e = x.abs().log2().floor() as i32;
    let shift = bits as i32 - 1 - e;
    let scaled = x * (shift as f64).exp2();
    scaled.round() * (-shift as f64).exp2()
}

/// A non-negative count stored with bounded mantissa precision and a
/// merge-depth tag, implementing the §5 adaptive rounding ladder.
///
/// An exact count enters at depth 0; [`ApproxCount::merge`] of two counts
/// takes depth `max(d_a, d_b) + 1` and rounds to
/// `⌈log₂(1/β_depth)⌉ = ⌈log₂(1/ε) + 2·log₂(depth)⌉` mantissa bits. By
/// the telescoping argument of §5 the stored value is within
/// `Π_{i<=depth}(1 + β_i) <= 1 + ε·π²/6` of the true sum — the unit tests
/// and the WBMH property tests verify the bound empirically.
///
/// # Examples
///
/// ```
/// use td_counters::ApproxCount;
/// let a = ApproxCount::exact(1000, 0.01);
/// let b = ApproxCount::exact(999, 0.01);
/// let c = ApproxCount::merge(&a, &b);
/// let err = (c.value() - 1999.0).abs() / 1999.0;
/// assert!(err <= 0.01 * 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxCount {
    value: f64,
    depth: u32,
    epsilon: f64,
}

impl ApproxCount {
    /// An exact count at merge depth 0.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not finite and strictly positive.
    pub fn exact(count: u64, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be finite and positive, got {epsilon}"
        );
        Self {
            value: count as f64,
            depth: 0,
            epsilon,
        }
    }

    /// A zero count (identity for [`ApproxCount::merge`]).
    pub fn zero(epsilon: f64) -> Self {
        Self::exact(0, epsilon)
    }

    /// Reassembles a count from snapshot parts (see
    /// `td-wbmh::WbmhSnapshot`). The value is trusted to be a previously
    /// rounded output of this ladder at the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not finite/positive or `value` is
    /// negative/non-finite.
    pub fn from_parts(value: f64, depth: u32, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be finite and positive, got {epsilon}"
        );
        assert!(
            value.is_finite() && value >= 0.0,
            "count value must be finite and non-negative, got {value}"
        );
        Self {
            value,
            depth,
            epsilon,
        }
    }

    /// The stored (rounded) value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The merge depth: the height of the summation tree that produced
    /// this count.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The mantissa width (bits) used when rounding at depth `i` with
    /// parameter `epsilon`: `⌈log₂(i²/ε)⌉`, clamped to `[1, 52]`.
    pub fn mantissa_bits_at(epsilon: f64, depth: u32) -> u32 {
        if depth == 0 {
            return 52; // exact entries are not rounded
        }
        let beta = epsilon / (depth as f64 * depth as f64);
        ((1.0 / beta).log2().ceil() as i64).clamp(1, 52) as u32
    }

    /// Adds `count` fresh (depth-0) items into this count *without*
    /// increasing the depth: absorbing raw arrivals into an open bucket
    /// is exact (only merges round).
    pub fn absorb(&mut self, count: u64) {
        self.value += count as f64;
    }

    /// Merges two counts: sums the values, takes depth
    /// `max(d_a, d_b) + 1`, and rounds to the ladder width for that
    /// depth.
    ///
    /// # Panics
    ///
    /// Panics if the two counts were built with different `epsilon`
    /// (mixing ladders voids the telescoping error bound).
    pub fn merge(a: &Self, b: &Self) -> Self {
        assert!(
            (a.epsilon - b.epsilon).abs() < f64::EPSILON,
            "cannot merge ApproxCounts with different epsilon ({} vs {})",
            a.epsilon,
            b.epsilon
        );
        let depth = a.depth.max(b.depth) + 1;
        let bits = Self::mantissa_bits_at(a.epsilon, depth);
        Self {
            value: round_to_mantissa(a.value + b.value, bits),
            depth,
            epsilon: a.epsilon,
        }
    }

    /// The worst-case relative error bound accumulated so far:
    /// `Π_{i=1..depth} (1 + ε/i²) − 1`.
    pub fn error_bound(&self) -> f64 {
        let mut bound = 1.0;
        for i in 1..=self.depth {
            bound *= 1.0 + self.epsilon / (i as f64 * i as f64);
        }
        bound - 1.0
    }
}

impl StorageAccounting for ApproxCount {
    fn storage_bits(&self) -> u64 {
        // Mantissa at the current depth's ladder width plus exponent bits
        // for magnitudes up to 2^64 (counts are bounded by elapsed time ×
        // max value, and the exponent cost is the log log N term of
        // Lemma 5.1).
        let bits = Self::mantissa_bits_at(self.epsilon, self.depth.max(1));
        bits_for_quantized_float(bits as u64, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_preserves_magnitude() {
        for bits in 1..=52 {
            let x = 123456789.0f64;
            let r = round_to_mantissa(x, bits);
            let rel = (r - x).abs() / x;
            assert!(
                rel <= (-(bits as f64 - 1.0)).exp2(),
                "bits={bits}: rel={rel}"
            );
        }
    }

    #[test]
    fn rounding_idempotent() {
        for bits in [1, 4, 10, 23] {
            let x = round_to_mantissa(987654.321, bits);
            assert_eq!(round_to_mantissa(x, bits), x, "bits={bits}");
        }
    }

    #[test]
    fn rounding_handles_subnormal_range() {
        let tiny = f64::MIN_POSITIVE * 8.0;
        let r = round_to_mantissa(tiny, 3);
        assert!(r > 0.0 && r.is_finite());
    }

    #[test]
    fn exact_entries_are_exact() {
        let a = ApproxCount::exact(u32::MAX as u64, 0.1);
        assert_eq!(a.value(), u32::MAX as f64);
        assert_eq!(a.depth(), 0);
        assert_eq!(a.error_bound(), 0.0);
    }

    #[test]
    fn merge_error_stays_within_ladder_bound() {
        // Balanced binary merge of 2^12 counts of 3: depth 12.
        let eps = 0.05;
        let mut layer: Vec<ApproxCount> = (0..4096).map(|_| ApproxCount::exact(3, eps)).collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|c| ApproxCount::merge(&c[0], &c[1]))
                .collect();
        }
        let total = layer[0];
        let truth = 3.0 * 4096.0;
        let rel = (total.value() - truth).abs() / truth;
        assert!(
            rel <= total.error_bound() + 1e-12,
            "rel={rel}, bound={}",
            total.error_bound()
        );
        // The ladder bound itself is ≤ ε·π²/6.
        assert!(total.error_bound() <= eps * std::f64::consts::PI.powi(2) / 6.0 + 1e-12);
    }

    #[test]
    fn skewed_merge_chain() {
        // Left-deep chain of 1000 merges — depth grows linearly, the
        // ladder keeps the product bounded.
        let eps = 0.02;
        let mut acc = ApproxCount::exact(1, eps);
        for _ in 0..1000 {
            acc = ApproxCount::merge(&acc, &ApproxCount::exact(1, eps));
        }
        let truth = 1001.0;
        let rel = (acc.value() - truth).abs() / truth;
        assert!(rel <= acc.error_bound() + 1e-12, "rel={rel}");
        assert!(acc.error_bound() < eps * 2.0);
    }

    #[test]
    fn absorb_is_exact() {
        let mut a = ApproxCount::exact(0, 0.5);
        for _ in 0..1000 {
            a.absorb(1);
        }
        assert_eq!(a.value(), 1000.0);
        assert_eq!(a.depth(), 0);
    }

    #[test]
    fn storage_grows_with_depth_only_logarithmically() {
        let eps = 0.01;
        let shallow = ApproxCount::mantissa_bits_at(eps, 1);
        let deep = ApproxCount::mantissa_bits_at(eps, 1 << 20);
        // 2·log2(2^20) = 40 extra bits over the depth-1 width.
        assert_eq!(deep - shallow, 40);
    }

    #[test]
    #[should_panic(expected = "different epsilon")]
    fn merge_rejects_mixed_ladders() {
        let a = ApproxCount::exact(1, 0.1);
        let b = ApproxCount::exact(1, 0.2);
        let _ = ApproxCount::merge(&a, &b);
    }
}
