//! Counter-based summaries and exact baselines for time-decaying sums.
//!
//! This crate hosts everything in the paper that is *not* a histogram:
//!
//! * [`ewma::ExpCounter`] — the classic exponential-decay counter
//!   `C ← f + e^{-λ} C` (paper Eq. 1), in exact-f64 and
//!   quantized-precision variants (the Θ(log N)-bit algorithm of
//!   Lemma 3.1);
//! * [`timestamps::TimestampCounter`] — Lemma 3.1's alternative
//!   algorithm: keep the `C` most recent item timestamps, with the
//!   `t + λ⁻¹ ln v` value-shift trick for non-binary values (paper
//!   footnote 3);
//! * [`pipeline::PolyExpCounter`] — polyexponential decay
//!   `p_k(x) e^{-λx}` via `k + 1` pipelined exponential counters (paper
//!   §3.4; Brown's double/triple exponential smoothing for `k = 2, 3`);
//! * [`morris::MorrisCounter`] — Morris approximate counting in
//!   `O(log log n)` bits (paper §1, ref. \[16\]), the baseline showing the
//!   exponential gap between undecayed and decayed counting;
//! * [`approx::ApproxCount`] — the bounded-mantissa counters with the
//!   adaptive `β_i = ε/i²` rounding ladder of §5, used by WBMH buckets;
//! * [`exact::ExactDecayedSum`] — the store-everything ground truth that
//!   every experiment audits against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod ewma;
pub mod exact;
pub mod morris;
pub mod pipeline;
pub mod timestamps;

pub use approx::ApproxCount;
pub use ewma::{ExpCounter, QuantizedExpCounter};
pub use exact::ExactDecayedSum;
pub use morris::MorrisCounter;
pub use pipeline::PolyExpCounter;
pub use timestamps::TimestampCounter;
