//! The store-everything ground truth.

use std::collections::VecDeque;

use td_decay::storage::{bits_for_count, bits_for_timestamp, StorageAccounting};
use td_decay::{DecayFunction, Time};

/// An exact decayed sum that stores every item — the Ω(N)-storage
/// baseline (Lemmas 3.1 and 3.2 show this is unavoidable for exactness)
/// and the ground truth that every approximation experiment audits
/// against.
///
/// Items with zero weight (ages past the horizon of `g`) are pruned
/// lazily, so for finite-horizon decays (sliding windows) the live set
/// stays bounded by the window length.
///
/// # Examples
///
/// ```
/// use td_counters::ExactDecayedSum;
/// use td_decay::Polynomial;
/// let mut s = ExactDecayedSum::new(Polynomial::new(1.0));
/// s.observe(1, 10);
/// s.observe(3, 1);
/// // S(4) = 10·g(3) + 1·g(1) = 10/3 + 1
/// assert!((s.query(4) - (10.0 / 3.0 + 1.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ExactDecayedSum<G> {
    decay: G,
    /// Observed `(time, total value at that time)` pairs, oldest first.
    items: VecDeque<(Time, u64)>,
    last_t: Time,
    started: bool,
}

impl<G: DecayFunction> ExactDecayedSum<G> {
    /// An empty exact sum under decay `g`.
    pub fn new(decay: G) -> Self {
        Self {
            decay,
            items: VecDeque::new(),
            last_t: 0,
            started: false,
        }
    }

    /// The decay function being tracked.
    pub fn decay(&self) -> &G {
        &self.decay
    }

    /// Ingests an item of value `f` at time `t` (non-decreasing `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously observed time.
    pub fn observe(&mut self, t: Time, f: u64) {
        self.advance(t);
        if f == 0 {
            return;
        }
        match self.items.back_mut() {
            Some((bt, bf)) if *bt == t => *bf = bf.saturating_add(f),
            _ => self.items.push_back((t, f)),
        }
    }

    /// Ingests a burst of `(time, value)` items, sorted by
    /// non-decreasing time — identical end state to sequential
    /// [`observe`](Self::observe) calls, but each distinct tick costs
    /// one clock advance / prune and at most one deque push: same-tick
    /// mass is coalesced before it touches the store.
    ///
    /// # Panics
    ///
    /// Panics if any time precedes its predecessor.
    pub fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let mut i = 0;
        while i < items.len() {
            let t = items[i].0;
            self.advance(t);
            let mut mass = 0u64;
            while i < items.len() && items[i].0 == t {
                mass = mass.saturating_add(items[i].1);
                i += 1;
            }
            if mass == 0 {
                continue;
            }
            match self.items.back_mut() {
                Some((bt, bf)) if *bt == t => *bf = bf.saturating_add(mass),
                _ => self.items.push_back((t, mass)),
            }
        }
    }

    /// Advances the clock to `t` without ingesting mass, pruning items
    /// that fell past the decay horizon.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously observed time.
    pub fn advance(&mut self, t: Time) {
        if self.started {
            assert!(
                t >= self.last_t,
                "time went backwards: {t} < {}",
                self.last_t
            );
        }
        self.started = true;
        self.last_t = t;
        self.prune(t);
    }

    /// Drops items that can never again carry positive weight.
    fn prune(&mut self, now: Time) {
        if let Some(h) = self.decay.horizon() {
            while let Some(&(t, _)) = self.items.front() {
                // The item's age only grows; once past the horizon its
                // weight is 0 forever.
                if now.saturating_sub(t) > h {
                    self.items.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Merges another exact sum's items into this one (the baseline's
    /// distributed operation — trivially exact).
    pub fn merge_from(&mut self, other: &ExactDecayedSum<G>) {
        let mut merged: VecDeque<(Time, u64)> =
            VecDeque::with_capacity(self.items.len() + other.items.len());
        let mut a = self.items.iter().copied().peekable();
        let mut b = other.items.iter().copied().peekable();
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => x.0 <= y.0,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (t, f) = if take_a {
                a.next().expect("peeked")
            } else {
                b.next().expect("peeked")
            };
            match merged.back_mut() {
                Some((bt, bf)) if *bt == t => *bf = bf.saturating_add(f),
                _ => merged.push_back((t, f)),
            }
        }
        self.items = merged;
        self.last_t = self.last_t.max(other.last_t);
        self.started |= other.started;
        self.prune(self.last_t);
    }

    /// The exact decayed sum `S_g(T) = Σ_{t_i < T} f_i · g(T − t_i)`.
    pub fn query(&self, t: Time) -> f64 {
        self.items
            .iter()
            .filter(|&&(ti, _)| ti < t)
            .map(|&(ti, f)| f as f64 * self.decay.weight(t - ti))
            .sum()
    }

    /// The exact decayed count of *items* (each item weighted by `g`
    /// regardless of value): the denominator of the decaying average
    /// (Problem 2.2) when fed `(t, 1)` per item.
    pub fn query_weight_total(&self, t: Time) -> f64 {
        self.items
            .iter()
            .filter(|&&(ti, _)| ti < t)
            .map(|&(ti, f)| f as f64 * self.decay.weight(t - ti))
            .sum()
    }

    /// Number of live (non-pruned) arrival times.
    pub fn live_items(&self) -> usize {
        self.items.len()
    }
}

impl<G: DecayFunction> td_decay::StreamAggregate for ExactDecayedSum<G> {
    fn observe(&mut self, t: Time, f: u64) {
        ExactDecayedSum::observe(self, t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        ExactDecayedSum::observe_batch(self, items)
    }
    fn batched_ingest_amortizes(&self) -> bool {
        true // reserve-once append (2× over per-item pushes in e12)
    }
    fn advance(&mut self, t: Time) {
        ExactDecayedSum::advance(self, t)
    }
    fn query(&self, t: Time) -> f64 {
        ExactDecayedSum::query(self, t)
    }
    fn merge_from(&mut self, other: &Self) {
        ExactDecayedSum::merge_from(self, other)
    }
}

impl<G: DecayFunction> StorageAccounting for ExactDecayedSum<G> {
    fn storage_bits(&self) -> u64 {
        // Each live item: one timestamp + one exact value.
        self.items
            .iter()
            .map(|&(t, f)| bits_for_timestamp(t) + bits_for_count(f))
            .sum()
    }
}

/// Checkpoint tag for [`ExactDecayedSum`].
const TAG_EXACT: u8 = 4;

impl<G: DecayFunction> td_decay::checkpoint::Checkpoint for ExactDecayedSum<G> {
    fn save_checkpoint(&self) -> Vec<u8> {
        use td_decay::checkpoint::{fingerprint, CheckpointWriter};
        let mut w = CheckpointWriter::new(TAG_EXACT);
        w.put_u64(fingerprint(&self.decay.describe())); // configuration pin
        w.put_u64(self.last_t);
        w.put_bool(self.started);
        w.put_u64(self.items.len() as u64);
        for &(t, f) in &self.items {
            w.put_u64(t);
            w.put_u64(f);
        }
        w.seal()
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), td_decay::RestoreError> {
        use td_decay::checkpoint::{fingerprint, CheckpointReader, RestoreError};
        let mut r = CheckpointReader::open(bytes, TAG_EXACT)?;
        let fp = r.get_u64()?;
        if fp != fingerprint(&self.decay.describe()) {
            return Err(RestoreError::Invariant(format!(
                "decay mismatch: receiver is {}",
                self.decay.describe()
            )));
        }
        let last_t = r.get_u64()?;
        let started = r.get_bool()?;
        let n = r.get_u64()?;
        let mut items = std::collections::VecDeque::with_capacity(n as usize);
        let mut prev: Option<Time> = None;
        for _ in 0..n {
            let t = r.get_u64()?;
            let f = r.get_u64()?;
            if let Some(p) = prev {
                if t <= p {
                    return Err(RestoreError::Invariant(format!(
                        "item times not strictly increasing: {t} after {p}"
                    )));
                }
            }
            if t > last_t {
                return Err(RestoreError::Invariant(format!(
                    "item at {t} newer than checkpoint clock {last_t}"
                )));
            }
            if f == 0 {
                return Err(RestoreError::Invariant("zero-mass item".into()));
            }
            prev = Some(t);
            items.push_back((t, f));
        }
        r.finish()?;
        if !started && (last_t != 0 || !items.is_empty()) {
            return Err(RestoreError::Invariant(
                "unstarted sum carries state".into(),
            ));
        }
        self.items = items;
        self.last_t = last_t;
        self.started = started;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_decay::{Exponential, Polynomial, SlidingWindow};

    #[test]
    fn simple_weighted_sum() {
        let mut s = ExactDecayedSum::new(SlidingWindow::new(5));
        for t in 1..=10 {
            s.observe(t, 1);
        }
        // At T = 11, ages 1..=10; window keeps ages <= 5 → items t=6..10.
        assert_eq!(s.query(11), 5.0);
    }

    #[test]
    fn excludes_items_at_query_time() {
        let mut s = ExactDecayedSum::new(Exponential::new(0.5));
        s.observe(4, 3);
        assert_eq!(s.query(4), 0.0);
        assert!(s.query(5) > 0.0);
    }

    #[test]
    fn prunes_beyond_horizon() {
        let mut s = ExactDecayedSum::new(SlidingWindow::new(10));
        for t in 1..=1000 {
            s.observe(t, 1);
        }
        assert!(s.live_items() <= 11);
        assert_eq!(s.query(1001), 10.0);
    }

    #[test]
    fn no_pruning_for_infinite_support() {
        let mut s = ExactDecayedSum::new(Polynomial::new(2.0));
        for t in 1..=100 {
            s.observe(t, 1);
        }
        assert_eq!(s.live_items(), 100);
    }

    #[test]
    fn merges_same_tick_values() {
        let mut s = ExactDecayedSum::new(Polynomial::new(1.0));
        s.observe(7, 2);
        s.observe(7, 3);
        assert_eq!(s.live_items(), 1);
        assert!((s.query(8) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_from_interleaves() {
        let g = Polynomial::new(1.0);
        let mut a = ExactDecayedSum::new(g);
        let mut b = ExactDecayedSum::new(g);
        let mut whole = ExactDecayedSum::new(g);
        for t in 1..=100u64 {
            whole.observe(t, t % 5);
            if t % 2 == 0 {
                a.observe(t, t % 5);
            } else {
                b.observe(t, t % 5);
            }
        }
        a.merge_from(&b);
        assert_eq!(a.query(101), whole.query(101));
        assert_eq!(a.live_items(), whole.live_items());
    }

    #[test]
    fn storage_grows_linearly() {
        let mut s = ExactDecayedSum::new(Polynomial::new(1.0));
        for t in 1..=64 {
            s.observe(t, 1);
        }
        let b64 = s.storage_bits();
        for t in 65..=128 {
            s.observe(t, 1);
        }
        assert!(s.storage_bits() > b64 + 64); // at least a bit per item
    }
}
