//! Polyexponential decay via pipelined exponential counters (paper §3.4).

use td_decay::storage::{bits_for_timestamp, StorageAccounting};
use td_decay::Time;

/// Tracks decay by `g(x) = x^k e^{-λx} / k!` — and, via
/// [`PolyExpCounter::query_poly`], by any `p_k(x) e^{-λx}` — using
/// `k + 1` pipelined exponential counters (paper §3.4).
///
/// The state is the vector `M_j(T) = Σ_i f_i (T−t_i)^j e^{-λ(T−t_i)}/j!`
/// for `j = 0..=k`. Advancing time by `Δ` is the triangular linear map
///
/// ```text
/// M_j(T+Δ) = e^{-λΔ} · Σ_{m=0}^{j} M_m(T) · Δ^{j−m}/(j−m)!
/// ```
///
/// which for `k = 2, 3` is exactly Brown's double/triple exponential
/// smoothing pipeline (the paper's historical note). Everything is
/// exact up to f64 arithmetic — no histogram needed — so the storage is
/// `k + 1` words.
///
/// # Examples
///
/// ```
/// use td_counters::PolyExpCounter;
/// let mut c = PolyExpCounter::new(2, 0.1);
/// c.observe(5, 3);
/// // weight of age 10: 10² e^{-1} / 2
/// let want = 3.0 * 100.0 * (-1.0f64).exp() / 2.0;
/// assert!((c.query(15) - want).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PolyExpCounter {
    k: u32,
    lambda: f64,
    /// `m[j] = M_j`, referenced at `upto`, over items strictly older
    /// than `upto`.
    m: Vec<f64>,
    /// Raw value sum of items observed exactly at `upto`.
    at_upto: f64,
    upto: Time,
    started: bool,
    /// Advance-map applications so far. The map is all positive
    /// multiply-adds, so each application perturbs the state by at most
    /// `(k+2)` ulps relative — the basis of the certified f64 envelope.
    advances: u64,
}

impl PolyExpCounter {
    /// A counter for `g(x) = x^k e^{-λx}/k!`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite/positive or `k > 20`.
    pub fn new(k: u32, lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "rate must be finite and positive, got {lambda}"
        );
        assert!(k <= 20, "degree {k} too large (max 20)");
        Self {
            k,
            lambda,
            m: vec![0.0; k as usize + 1],
            at_upto: 0.0,
            upto: 0,
            started: false,
            advances: 0,
        }
    }

    /// The polynomial degree k.
    pub fn degree(&self) -> u32 {
        self.k
    }

    /// Applies the pipelined advance-by-Δ map to a state vector.
    fn advance_vec(m: &mut [f64], lambda: f64, delta: f64) {
        let fade = (-lambda * delta).exp();
        // In-place from the top: new m[j] uses old m[0..=j].
        for j in (0..m.len()).rev() {
            let mut acc = m[j];
            let mut pow = 1.0;
            for step in 1..=j {
                pow *= delta / step as f64; // Δ^step / step!
                acc += m[j - step] * pow;
            }
            m[j] = acc * fade;
        }
    }

    /// Ingests an item of value `f` at time `t` (non-decreasing `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously observed time.
    pub fn observe(&mut self, t: Time, f: u64) {
        self.advance(t);
        self.at_upto += f as f64;
    }

    /// Ingests a burst of `(time, value)` items, sorted by
    /// non-decreasing time — bit-identical to sequential
    /// [`observe`](Self::observe) calls, but the triangular advance map
    /// runs once per *distinct tick* instead of being re-checked per
    /// item.
    ///
    /// # Panics
    ///
    /// Panics if any time precedes its predecessor.
    pub fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let mut i = 0;
        while i < items.len() {
            let t = items[i].0;
            self.advance(t); // one pipeline advance per distinct tick
            while i < items.len() && items[i].0 == t {
                self.at_upto += items[i].1 as f64;
                i += 1;
            }
        }
    }

    /// Moves the reference point forward to `t` without ingesting,
    /// folding pending age-0 mass and applying the advance-by-Δ map.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously observed time.
    pub fn advance(&mut self, t: Time) {
        if !self.started {
            self.started = true;
            self.upto = t;
            return;
        }
        assert!(t >= self.upto, "time went backwards: {t} < {}", self.upto);
        if t > self.upto {
            // Fold the pending age-0 items, then advance.
            self.m[0] += self.at_upto;
            Self::advance_vec(&mut self.m, self.lambda, (t - self.upto) as f64);
            self.at_upto = 0.0;
            self.upto = t;
            self.advances += 1;
        }
    }

    /// The full advanced state vector at query time `t` (items at `t`
    /// excluded).
    fn state_at(&self, t: Time) -> Vec<f64> {
        assert!(
            t >= self.upto,
            "query time {t} precedes last observation {}",
            self.upto
        );
        let mut m = self.m.clone();
        if t > self.upto {
            m[0] += self.at_upto;
            Self::advance_vec(&mut m, self.lambda, (t - self.upto) as f64);
        }
        m
    }

    /// Merges another pipeline's state into this one (distributed
    /// sites): both `M` vectors are advanced to the later reference
    /// time and added — exact, because the advance map is linear.
    ///
    /// # Panics
    ///
    /// Panics if the degrees or rates differ.
    pub fn merge_from(&mut self, other: &PolyExpCounter) {
        assert_eq!(self.k, other.k, "degrees differ");
        assert!(
            (self.lambda - other.lambda).abs() < f64::EPSILON,
            "rates differ"
        );
        if !other.started {
            return;
        }
        if !self.started {
            *self = other.clone();
            return;
        }
        let t = self.upto.max(other.upto);
        // Advance self in place.
        if t > self.upto {
            self.m[0] += self.at_upto;
            Self::advance_vec(&mut self.m, self.lambda, (t - self.upto) as f64);
            self.at_upto = 0.0;
            self.upto = t;
        }
        // Advance a copy of other and add.
        let mut om = other.m.clone();
        let mut o_at = other.at_upto;
        if t > other.upto {
            om[0] += o_at;
            Self::advance_vec(&mut om, other.lambda, (t - other.upto) as f64);
            o_at = 0.0;
        }
        for (a, b) in self.m.iter_mut().zip(om.iter()) {
            *a += b;
        }
        self.at_upto += o_at;
        self.advances += other.advances + 1;
    }

    /// The decaying sum under `g(x) = x^k e^{-λx}/k!`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last observed time.
    pub fn query(&self, t: Time) -> f64 {
        if !self.started {
            return 0.0;
        }
        self.state_at(t)[self.k as usize]
    }

    /// The decaying sum under `p(x) e^{-λx}` for
    /// `p(x) = Σ_j coeffs[j] · x^j` (at most degree `k`):
    /// `S = Σ_j coeffs[j] · j! · M_j`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() > k + 1` or the query time precedes the
    /// last observation.
    pub fn query_poly(&self, t: Time, coeffs: &[f64]) -> f64 {
        assert!(
            coeffs.len() <= self.k as usize + 1,
            "polynomial degree {} exceeds pipeline degree {}",
            coeffs.len().saturating_sub(1),
            self.k
        );
        if !self.started {
            return 0.0;
        }
        let m = self.state_at(t);
        let mut fact = 1.0;
        let mut total = 0.0;
        for (j, &a) in coeffs.iter().enumerate() {
            if j > 0 {
                fact *= j as f64;
            }
            total += a * fact * m[j];
        }
        total
    }
}

impl StorageAccounting for PolyExpCounter {
    fn storage_bits(&self) -> u64 {
        // k + 2 accumulators plus the reference timestamp.
        (self.m.len() as u64 + 1) * 64 + bits_for_timestamp(self.upto)
    }
}

impl td_decay::StreamAggregate for PolyExpCounter {
    fn observe(&mut self, t: Time, f: u64) {
        PolyExpCounter::observe(self, t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        PolyExpCounter::observe_batch(self, items)
    }
    fn batched_ingest_amortizes(&self) -> bool {
        true // one k-vector advance per distinct tick, not per item
    }
    fn advance(&mut self, t: Time) {
        PolyExpCounter::advance(self, t)
    }
    fn query(&self, t: Time) -> f64 {
        PolyExpCounter::query(self, t)
    }
    fn merge_from(&mut self, other: &Self) {
        PolyExpCounter::merge_from(self, other)
    }
    fn error_bound(&self) -> td_decay::ErrorBound {
        // Exact up to compounded f64 rounding: each advance is a chain
        // of positive multiply-adds (no cancellation), ≤ (k+2) ulps.
        let per = (self.k as f64 + 2.0) * f64::EPSILON;
        td_decay::ErrorBound::symmetric((self.advances as f64 * per.ln_1p()).exp_m1())
    }
}

/// Checkpoint tag for [`PolyExpCounter`].
const TAG_POLYEXP: u8 = 3;

impl td_decay::checkpoint::Checkpoint for PolyExpCounter {
    fn save_checkpoint(&self) -> Vec<u8> {
        use td_decay::checkpoint::CheckpointWriter;
        let mut w = CheckpointWriter::new(TAG_POLYEXP);
        w.put_u32(self.k); // configuration pins
        w.put_f64(self.lambda);
        for &m in &self.m {
            w.put_f64(m);
        }
        w.put_f64(self.at_upto);
        w.put_u64(self.upto);
        w.put_bool(self.started);
        w.put_u64(self.advances);
        w.seal()
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), td_decay::RestoreError> {
        use td_decay::checkpoint::{CheckpointReader, RestoreError};
        let mut r = CheckpointReader::open(bytes, TAG_POLYEXP)?;
        let k = r.get_u32()?;
        let lambda = r.get_f64()?;
        if k != self.k || lambda.to_bits() != self.lambda.to_bits() {
            return Err(RestoreError::Invariant(format!(
                "pipeline config mismatch: checkpoint (k={k}, λ={lambda}), \
                 receiver (k={}, λ={})",
                self.k, self.lambda
            )));
        }
        let mut m = Vec::with_capacity(k as usize + 1);
        for _ in 0..=k {
            let v = r.get_f64()?;
            if !v.is_finite() || v < 0.0 {
                return Err(RestoreError::Invariant(format!(
                    "non-finite accumulator {v}"
                )));
            }
            m.push(v);
        }
        let at_upto = r.get_f64()?;
        if !at_upto.is_finite() || at_upto < 0.0 {
            return Err(RestoreError::Invariant(format!(
                "non-finite pending mass {at_upto}"
            )));
        }
        let upto = r.get_u64()?;
        let started = r.get_bool()?;
        let advances = r.get_u64()?;
        r.finish()?;
        self.m = m;
        self.at_upto = at_upto;
        self.upto = upto;
        self.started = started;
        self.advances = advances;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactDecayedSum;
    use td_decay::PolyExponential;

    #[test]
    fn degree_zero_matches_exponential_counter() {
        use crate::ewma::ExpCounter;
        use td_decay::Exponential;
        let mut p = PolyExpCounter::new(0, 0.3);
        let mut e = ExpCounter::new(Exponential::new(0.3));
        for t in 1..=300u64 {
            let f = t % 4;
            p.observe(t, f);
            e.observe(t, f);
        }
        assert!((p.query(350) - e.query(350)).abs() < 1e-9);
    }

    #[test]
    fn matches_exact_for_k_up_to_4() {
        for k in 0..=4u32 {
            let lambda = 0.07;
            let g = PolyExponential::new(k, lambda);
            let mut c = PolyExpCounter::new(k, lambda);
            let mut exact = ExactDecayedSum::new(g);
            let mut t = 0;
            for step in 0..400u64 {
                t += 1 + step % 3;
                let f = step % 6;
                c.observe(t, f);
                exact.observe(t, f);
            }
            for q in [t + 1, t + 10, t + 100] {
                let (got, want) = (c.query(q), exact.query(q));
                let scale = want.abs().max(1e-9);
                assert!(
                    (got - want).abs() / scale < 1e-6,
                    "k={k} q={q}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn query_poly_combines_basis() {
        // p(x) = 2 + 3x with λ = 0.2, vs exact sums of the same weight.
        let lambda = 0.2;
        let mut c = PolyExpCounter::new(1, lambda);
        let mut items: Vec<(u64, u64)> = Vec::new();
        for t in 1..=100u64 {
            let f = 1 + t % 3;
            c.observe(t, f);
            items.push((t, f));
        }
        let q = 150u64;
        let want: f64 = items
            .iter()
            .map(|&(t, f)| {
                let x = (q - t) as f64;
                f as f64 * (2.0 + 3.0 * x) * (-lambda * x).exp()
            })
            .sum();
        let got = c.query_poly(q, &[2.0, 3.0]);
        assert!((got - want).abs() / want.abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn merge_from_matches_whole_stream() {
        let (k, lambda) = (3u32, 0.04);
        let mut whole = PolyExpCounter::new(k, lambda);
        let mut a = PolyExpCounter::new(k, lambda);
        let mut b = PolyExpCounter::new(k, lambda);
        let mut x = 11u64;
        for t in 1..=1_500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 7;
            whole.observe(t, f);
            if x.is_multiple_of(3) {
                a.observe(t, f);
            } else {
                b.observe(t, f);
            }
        }
        a.merge_from(&b);
        let (m, w) = (a.query(1_600), whole.query(1_600));
        assert!((m - w).abs() <= 1e-9 * w.abs().max(1.0), "{m} vs {w}");
    }

    #[test]
    fn excludes_items_at_query_time() {
        let mut c = PolyExpCounter::new(2, 0.5);
        c.observe(10, 4);
        assert_eq!(c.query(10), 0.0);
        assert!(c.query(12) > 0.0);
    }

    #[test]
    fn empty_is_zero() {
        let c = PolyExpCounter::new(3, 0.1);
        assert_eq!(c.query(42), 0.0);
        assert_eq!(c.query_poly(42, &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds pipeline degree")]
    fn rejects_overlong_polynomial() {
        let c = PolyExpCounter::new(1, 0.1);
        let _ = c.query_poly(1, &[1.0, 2.0, 3.0]);
    }
}
