//! Lemma 3.1's timestamp-list algorithm for exponential decay.

use std::collections::VecDeque;

use td_decay::storage::{bits_for_quantized_float, StorageAccounting};
use td_decay::{Exponential, Time};

/// The Θ(log N)-bit EXPD algorithm from the upper-bound half of
/// Lemma 3.1: track the time stamps of the `C` most recent items, where
/// `C = ⌈λ⁻¹ ln(1 / ((1 − e^{-λ}) ε))⌉` — everything older contributes
/// at most an ε fraction of any sum that contains a full recent window.
///
/// Non-binary values use the paper's footnote-3 trick: an item of value
/// `v` at time `t` is stored as a *virtual* unit item at time
/// `t + λ⁻¹ ln v`, which contributes the identical amount
/// `e^{-λ(T - t)} v` to the decaying sum.
///
/// The guarantee is one-sided (the estimate never exceeds the truth and
/// loses at most the tail mass `e^{-λ·a_C} / (1 − e^{-λ})`, where `a_C`
/// is the age of the oldest kept item). On streams dense enough that the
/// kept items span weight down to `(1−e^{-λ})ε`, this is a relative-ε
/// estimate — experiment E2 measures it.
///
/// # Examples
///
/// ```
/// use td_counters::TimestampCounter;
/// use td_decay::Exponential;
/// let mut c = TimestampCounter::new(Exponential::new(0.5), 0.01);
/// for t in 1..=100 {
///     c.observe(t, 1);
/// }
/// let got = c.query(101);
/// let want: f64 = (1..=100u64).map(|t| (-0.5 * (101 - t) as f64).exp()).sum();
/// assert!((got - want).abs() / want < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct TimestampCounter {
    decay: Exponential,
    epsilon: f64,
    /// Maximum number of retained (virtual) timestamps.
    capacity: usize,
    /// Virtual timestamps, oldest first. Fractional because of the
    /// value-shift trick.
    stamps: VecDeque<f64>,
    last_t: Time,
    started: bool,
}

impl TimestampCounter {
    /// A counter for `decay` with target relative error `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn new(decay: Exponential, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        let lambda = decay.lambda();
        // C = ⌈λ⁻¹ ln(1/((1 − e^{-λ}) ε))⌉, clamped to at least 1.
        let c = ((1.0 / ((1.0 - (-lambda).exp()) * epsilon)).ln() / lambda).ceil();
        let capacity = if c.is_finite() && c >= 1.0 {
            c as usize
        } else {
            1
        };
        Self {
            decay,
            epsilon,
            capacity,
            stamps: VecDeque::with_capacity(capacity.min(1 << 20)),
            last_t: 0,
            started: false,
        }
    }

    /// The retained-item budget `C` from Lemma 3.1.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured target error ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Ingests an item of value `f` at time `t`.
    ///
    /// A value `v > 1` is recorded as a unit item at virtual time
    /// `t + λ⁻¹ ln v`; zero values are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously observed time.
    pub fn observe(&mut self, t: Time, f: u64) {
        if self.started {
            assert!(
                t >= self.last_t,
                "time went backwards: {t} < {}",
                self.last_t
            );
        }
        self.started = true;
        self.last_t = t;
        if f == 0 {
            return;
        }
        let virtual_t = t as f64 + (f as f64).ln() / self.decay.lambda();
        // Keep the deque sorted by virtual time: a large value can jump
        // ahead of previously-stored virtual stamps.
        let pos = self.stamps.partition_point(|&s| s <= virtual_t);
        self.stamps.insert(pos, virtual_t);
        while self.stamps.len() > self.capacity {
            self.stamps.pop_front();
        }
    }

    /// The decaying-sum estimate at time `T` (items at `T` excluded per
    /// the §2.1 convention — virtual stamps from values at earlier real
    /// times may exceed `T` and still count).
    pub fn query(&self, t: Time) -> f64 {
        let lambda = self.decay.lambda();
        self.stamps
            .iter()
            .map(|&s| (-lambda * (t as f64 - s)).exp())
            .sum()
    }
}

impl StorageAccounting for TimestampCounter {
    fn storage_bits(&self) -> u64 {
        // Each virtual stamp: a quantized float with enough precision to
        // resolve single ticks over the elapsed span.
        let span_bits = td_decay::storage::bits_for_timestamp(self.last_t);
        self.stamps.len() as u64 * bits_for_quantized_float(span_bits, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactDecayedSum;

    #[test]
    fn capacity_formula() {
        // λ = 1, ε = 0.01: C = ⌈ln(1/((1−e⁻¹)·0.01))⌉ = ⌈ln(158.2)⌉ = 6.
        let c = TimestampCounter::new(Exponential::new(1.0), 0.01);
        assert_eq!(c.capacity(), 6);
    }

    #[test]
    fn dense_binary_stream_within_epsilon() {
        for (lambda, eps) in [(1.0, 0.01), (0.5, 0.05), (0.2, 0.1)] {
            let g = Exponential::new(lambda);
            let mut c = TimestampCounter::new(g, eps);
            let mut exact = ExactDecayedSum::new(g);
            for t in 1..=500u64 {
                c.observe(t, 1);
                exact.observe(t, 1);
            }
            let (got, want) = (c.query(501), exact.query(501));
            assert!(got <= want * (1.0 + 1e-9), "never overestimates");
            assert!(
                (want - got) / want <= eps,
                "lambda={lambda} eps={eps}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn value_shift_trick_is_exact_per_item() {
        // A single item of value 8 at t=10 must contribute exactly
        // 8·e^{-λ(T−10)}.
        let g = Exponential::new(0.25);
        let mut c = TimestampCounter::new(g, 0.01);
        c.observe(10, 8);
        let want = 8.0 * (-0.25f64 * 5.0).exp();
        assert!((c.query(15) - want).abs() < 1e-12);
    }

    #[test]
    fn values_keep_deque_sorted() {
        let g = Exponential::new(0.1);
        let mut c = TimestampCounter::new(g, 0.05);
        let mut exact = ExactDecayedSum::new(g);
        // Alternating huge and tiny values: virtual times interleave.
        for t in 1..=200u64 {
            let f = if t % 2 == 0 { 1000 } else { 1 };
            c.observe(t, f);
            exact.observe(t, f);
        }
        let (got, want) = (c.query(201), exact.query(201));
        assert!((want - got).abs() / want <= 0.05, "{got} vs {want}");
        // Internal order invariant.
        let v: Vec<f64> = c.stamps.iter().copied().collect();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn storage_is_bounded_by_capacity() {
        let g = Exponential::new(0.5);
        let mut c = TimestampCounter::new(g, 0.01);
        for t in 1..=10_000u64 {
            c.observe(t, 1);
        }
        assert!(c.stamps.len() <= c.capacity());
    }
}
