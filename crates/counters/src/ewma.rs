//! The classic exponential-decay counter (paper Eq. 1, §3.1).

use td_decay::checkpoint::{Checkpoint, CheckpointReader, CheckpointWriter, RestoreError};
use td_decay::storage::{bits_for_quantized_float, bits_for_timestamp, StorageAccounting};
use td_decay::{Exponential, Time};

use crate::approx::round_to_mantissa;

/// The classic EXPD counter: `C ← f + e^{-λ} C` (paper Eq. 1).
///
/// Tracks the decaying sum `S(T) = Σ_{t_i < T} f_i · e^{-λ(T - t_i)}`
/// exactly (up to f64 arithmetic) in O(1) words. The quantized sibling
/// [`QuantizedExpCounter`] restricts the mantissa to show Lemma 3.1's
/// Θ(log N)-bit storage claim.
///
/// Following the paper's query convention (§2.1), `query(T)` sums over
/// items **strictly before** `T`; items observed *at* `T` enter the sum
/// only for later query times. Observation times must be non-decreasing.
///
/// # Examples
///
/// ```
/// use td_counters::ExpCounter;
/// use td_decay::Exponential;
/// let mut c = ExpCounter::new(Exponential::new(0.5));
/// c.observe(1, 1);
/// c.observe(2, 1);
/// // S(3) = e^{-0.5·2} + e^{-0.5·1}
/// let expect = (-1.0f64).exp() + (-0.5f64).exp();
/// assert!((c.query(3) - expect).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ExpCounter {
    decay: Exponential,
    /// Decayed sum of items strictly older than `upto`, referenced at
    /// time `upto`.
    sum_before: f64,
    /// Raw sum of values observed exactly at `upto`.
    at_upto: f64,
    upto: Time,
    started: bool,
}

impl ExpCounter {
    /// An empty counter for the given exponential decay.
    pub fn new(decay: Exponential) -> Self {
        Self {
            decay,
            sum_before: 0.0,
            at_upto: 0.0,
            upto: 0,
            started: false,
        }
    }

    /// The decay function being tracked.
    pub fn decay(&self) -> Exponential {
        self.decay
    }

    /// Ingests an item of value `f` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously observed time (the stream
    /// model is ordered arrivals, §2).
    pub fn observe(&mut self, t: Time, f: u64) {
        self.advance(t);
        self.at_upto += f as f64;
    }

    /// Ingests a burst of `(time, value)` items, sorted by
    /// non-decreasing time — bit-identical to sequential
    /// [`observe`](Self::observe) calls, but the `e^{-λΔ}` rescale runs
    /// once per *distinct tick* instead of being re-checked per item.
    ///
    /// # Panics
    ///
    /// Panics if any time precedes its predecessor (within the batch or
    /// against earlier observations).
    pub fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let mut i = 0;
        while i < items.len() {
            let t = items[i].0;
            self.advance(t); // one rescale per distinct tick
            while i < items.len() && items[i].0 == t {
                self.at_upto += items[i].1 as f64;
                i += 1;
            }
        }
    }

    /// Moves the reference point forward to `t` without ingesting,
    /// applying the pending `e^{-λΔ}` fade.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously observed time.
    pub fn advance(&mut self, t: Time) {
        if !self.started {
            self.started = true;
            self.upto = t;
            return;
        }
        assert!(t >= self.upto, "time went backwards: {} < {}", t, self.upto);
        if t > self.upto {
            let fade = (-self.decay.lambda() * (t - self.upto) as f64).exp();
            self.sum_before = (self.sum_before + self.at_upto) * fade;
            self.at_upto = 0.0;
            self.upto = t;
        }
    }

    /// Merges another counter's state into this one (distributed
    /// sites over disjoint substreams): both states are brought to the
    /// later of the two reference times and the decayed masses add —
    /// exact, because exponential decay composes multiplicatively.
    ///
    /// # Panics
    ///
    /// Panics if the decay rates differ.
    pub fn merge_from(&mut self, other: &ExpCounter) {
        assert!(
            (self.decay.lambda() - other.decay.lambda()).abs() < f64::EPSILON,
            "cannot merge counters with different rates"
        );
        if !other.started {
            return;
        }
        if !self.started {
            *self = other.clone();
            return;
        }
        let t = self.upto.max(other.upto);
        self.advance(t);
        // Bring the other counter's mass to the common reference time.
        let fade = (-self.decay.lambda() * (t - other.upto) as f64).exp();
        if t > other.upto {
            self.sum_before += (other.sum_before + other.at_upto) * fade;
        } else {
            self.sum_before += other.sum_before;
            self.at_upto += other.at_upto;
        }
    }

    /// The decaying sum `S(T) = Σ_{t_i < T} f_i e^{-λ(T - t_i)}`.
    ///
    /// # Panics
    ///
    /// Panics if `T` precedes the last observed time.
    pub fn query(&self, t: Time) -> f64 {
        if !self.started {
            return 0.0;
        }
        assert!(
            t >= self.upto,
            "query time {} precedes last observation {}",
            t,
            self.upto
        );
        let base = if t > self.upto {
            self.sum_before + self.at_upto
        } else {
            self.sum_before
        };
        base * (-self.decay.lambda() * (t - self.upto) as f64).exp()
    }
}

impl StorageAccounting for ExpCounter {
    fn storage_bits(&self) -> u64 {
        // Two f64 accumulators plus the reference timestamp.
        2 * 64 + bits_for_timestamp(self.upto)
    }
}

impl td_decay::StreamAggregate for ExpCounter {
    fn observe(&mut self, t: Time, f: u64) {
        ExpCounter::observe(self, t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        ExpCounter::observe_batch(self, items)
    }
    fn advance(&mut self, t: Time) {
        ExpCounter::advance(self, t)
    }
    fn query(&self, t: Time) -> f64 {
        ExpCounter::query(self, t)
    }
    fn merge_from(&mut self, other: &Self) {
        ExpCounter::merge_from(self, other)
    }
}

/// [`ExpCounter`] with an explicitly bounded mantissa.
///
/// After every state change the accumulator is rounded to
/// `mantissa_bits` significant bits, so the whole per-stream state is
/// `mantissa + exponent + timestamp` bits — the Θ(log N) upper bound of
/// Lemma 3.1 made concrete. With `m` mantissa bits, `n` sequential
/// updates keep the relative error within roughly `n · 2^{-m}`
/// (experiment E2 measures the actual accuracy-vs-bits trade-off).
#[derive(Debug, Clone)]
pub struct QuantizedExpCounter {
    inner: ExpCounter,
    mantissa_bits: u32,
    /// Rounding events applied so far — each compounds at most one
    /// `2^{-m}` relative error into the accumulator, so the certified
    /// envelope is `(1 + 2^{-m})^roundings − 1` (Lemma 3.1's
    /// accuracy-for-bits trade made stateful).
    roundings: u64,
}

impl QuantizedExpCounter {
    /// A quantized counter with the given mantissa width (clamped to
    /// `[1, 52]`).
    pub fn new(decay: Exponential, mantissa_bits: u32) -> Self {
        Self {
            inner: ExpCounter::new(decay),
            mantissa_bits: mantissa_bits.clamp(1, 52),
            roundings: 0,
        }
    }

    /// The mantissa width in bits.
    pub fn mantissa_bits(&self) -> u32 {
        self.mantissa_bits
    }

    /// Ingests an item of value `f` at time `t`, then rounds the state.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously observed time.
    pub fn observe(&mut self, t: Time, f: u64) {
        self.inner.observe(t, f);
        self.inner.sum_before = round_to_mantissa(self.inner.sum_before, self.mantissa_bits);
        self.inner.at_upto = round_to_mantissa(self.inner.at_upto, self.mantissa_bits);
        self.roundings += 1;
    }

    /// Ingests a burst of `(time, value)` items, sorted by
    /// non-decreasing time.
    ///
    /// Amortized twice over: the `e^{-λΔ}` rescale *and* the mantissa
    /// rounding each run once per distinct tick instead of once per
    /// item. Because same-tick mass accumulates un-rounded before the
    /// single rounding, a batched result can differ from the sequential
    /// one by at most the roundings skipped — i.e. batching is slightly
    /// *more* accurate, never worse.
    ///
    /// # Panics
    ///
    /// Panics if any time precedes its predecessor.
    pub fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let mut i = 0;
        while i < items.len() {
            let t = items[i].0;
            self.inner.advance(t);
            while i < items.len() && items[i].0 == t {
                self.inner.at_upto += items[i].1 as f64;
                i += 1;
            }
            self.inner.sum_before = round_to_mantissa(self.inner.sum_before, self.mantissa_bits);
            self.inner.at_upto = round_to_mantissa(self.inner.at_upto, self.mantissa_bits);
            self.roundings += 1;
        }
    }

    /// Moves the reference point forward to `t` without ingesting (see
    /// [`ExpCounter::advance`]), re-rounding the faded accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously observed time.
    pub fn advance(&mut self, t: Time) {
        self.inner.advance(t);
        self.inner.sum_before = round_to_mantissa(self.inner.sum_before, self.mantissa_bits);
        self.inner.at_upto = round_to_mantissa(self.inner.at_upto, self.mantissa_bits);
        self.roundings += 1;
    }

    /// The decaying sum estimate (see [`ExpCounter::query`]).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last observed time.
    pub fn query(&self, t: Time) -> f64 {
        self.inner.query(t)
    }

    /// Merges another quantized counter (see [`ExpCounter::merge_from`]),
    /// re-rounding the result to this counter's mantissa.
    ///
    /// # Panics
    ///
    /// Panics if the decay rates differ.
    pub fn merge_from(&mut self, other: &QuantizedExpCounter) {
        self.inner.merge_from(&other.inner);
        self.inner.sum_before = round_to_mantissa(self.inner.sum_before, self.mantissa_bits);
        self.inner.at_upto = round_to_mantissa(self.inner.at_upto, self.mantissa_bits);
        self.roundings += other.roundings + 1;
    }
}

impl StorageAccounting for QuantizedExpCounter {
    fn storage_bits(&self) -> u64 {
        // One quantized accumulator pair + the timestamp. Exponent range:
        // magnitudes from e^{-λN} up to N·maxvalue; 2^±1024 covers f64.
        2 * bits_for_quantized_float(self.mantissa_bits as u64, 1024)
            + bits_for_timestamp(self.inner.upto)
    }
}

impl td_decay::StreamAggregate for QuantizedExpCounter {
    fn observe(&mut self, t: Time, f: u64) {
        QuantizedExpCounter::observe(self, t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        QuantizedExpCounter::observe_batch(self, items)
    }
    fn batched_ingest_amortizes(&self) -> bool {
        true // mantissa rounding runs once per distinct tick (8× in e12)
    }
    fn advance(&mut self, t: Time) {
        QuantizedExpCounter::advance(self, t)
    }
    fn query(&self, t: Time) -> f64 {
        QuantizedExpCounter::query(self, t)
    }
    fn merge_from(&mut self, other: &Self) {
        QuantizedExpCounter::merge_from(self, other)
    }
    fn error_bound(&self) -> td_decay::ErrorBound {
        // Each rounding perturbs the state by ≤ 2^{-m} relative, and
        // the perturbations compound: (1 + 2^{-m})^n − 1.
        let per = (-(self.mantissa_bits as f64)).exp2();
        td_decay::ErrorBound::symmetric((self.roundings as f64 * per.ln_1p()).exp_m1())
    }
}

/// Checkpoint tag for [`ExpCounter`].
const TAG_EXP: u8 = 1;
/// Checkpoint tag for [`QuantizedExpCounter`].
const TAG_QEXP: u8 = 2;

/// Writes the four per-stream fields shared by both counter flavours.
fn write_exp_state(w: &mut CheckpointWriter, c: &ExpCounter) {
    w.put_f64(c.decay.lambda()); // configuration pin
    w.put_f64(c.sum_before);
    w.put_f64(c.at_upto);
    w.put_u64(c.upto);
    w.put_bool(c.started);
}

/// Reads and validates the shared counter fields into `c`.
fn read_exp_state(r: &mut CheckpointReader<'_>, c: &mut ExpCounter) -> Result<(), RestoreError> {
    let lambda = r.get_f64()?;
    if lambda.to_bits() != c.decay.lambda().to_bits() {
        return Err(RestoreError::Invariant(format!(
            "decay rate mismatch: checkpoint λ={lambda}, receiver λ={}",
            c.decay.lambda()
        )));
    }
    let sum_before = r.get_f64()?;
    let at_upto = r.get_f64()?;
    let upto = r.get_u64()?;
    let started = r.get_bool()?;
    for v in [sum_before, at_upto] {
        if !v.is_finite() || v < 0.0 {
            return Err(RestoreError::Invariant(format!(
                "non-finite or negative sum {v}"
            )));
        }
    }
    if !started && (sum_before != 0.0 || at_upto != 0.0 || upto != 0) {
        return Err(RestoreError::Invariant(
            "unstarted counter carries state".into(),
        ));
    }
    c.sum_before = sum_before;
    c.at_upto = at_upto;
    c.upto = upto;
    c.started = started;
    Ok(())
}

impl Checkpoint for ExpCounter {
    fn save_checkpoint(&self) -> Vec<u8> {
        let mut w = CheckpointWriter::new(TAG_EXP);
        write_exp_state(&mut w, self);
        w.seal()
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let mut r = CheckpointReader::open(bytes, TAG_EXP)?;
        read_exp_state(&mut r, self)?;
        r.finish()
    }
}

impl Checkpoint for QuantizedExpCounter {
    fn save_checkpoint(&self) -> Vec<u8> {
        let mut w = CheckpointWriter::new(TAG_QEXP);
        w.put_u32(self.mantissa_bits); // configuration pin
        w.put_u64(self.roundings);
        write_exp_state(&mut w, &self.inner);
        w.seal()
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let mut r = CheckpointReader::open(bytes, TAG_QEXP)?;
        let m = r.get_u32()?;
        if m != self.mantissa_bits {
            return Err(RestoreError::Invariant(format!(
                "mantissa width mismatch: checkpoint {m}, receiver {}",
                self.mantissa_bits
            )));
        }
        self.roundings = r.get_u64()?;
        read_exp_state(&mut r, &mut self.inner)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactDecayedSum;

    #[test]
    fn matches_exact_baseline() {
        let g = Exponential::new(0.1);
        let mut c = ExpCounter::new(g);
        let mut exact = ExactDecayedSum::new(g);
        let mut t = 0;
        for step in 0..500u64 {
            t += 1 + step % 3; // irregular arrival times
            let f = step % 5;
            c.observe(t, f);
            exact.observe(t, f);
            let q = t + 1 + step % 7;
            let (got, want) = (c.query(q), exact.query(q));
            assert!(
                (got - want).abs() <= 1e-9 * want.max(1.0),
                "t={q}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn query_excludes_items_at_query_time() {
        let mut c = ExpCounter::new(Exponential::new(1.0));
        c.observe(5, 7);
        assert_eq!(c.query(5), 0.0);
        assert!((c.query(6) - 7.0 * (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_is_zero() {
        let c = ExpCounter::new(Exponential::new(0.5));
        assert_eq!(c.query(100), 0.0);
    }

    #[test]
    fn recurrence_form_matches_paper_eq_1() {
        // S(t) = f(t) + e^{-λ} S(t−1), with query(T) = S(T−1) decayed one
        // tick: drive both forms over a dense 0/1 stream.
        let lambda = 0.3f64;
        let fade = (-lambda).exp();
        let mut s = 0.0;
        let mut c = ExpCounter::new(Exponential::new(lambda));
        for t in 0..200u64 {
            let f = (t * 7 % 3 == 0) as u64;
            s = f as f64 + fade * s; // paper Eq. 1 at time t
            c.observe(t, f);
            // paper S_EXPD(t) includes items at t with weight 1; our
            // query(t+1) sees them with weight e^{-λ}: compare there.
            assert!((c.query(t + 1) - s * fade).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_unordered_arrivals() {
        let mut c = ExpCounter::new(Exponential::new(0.5));
        c.observe(10, 1);
        c.observe(9, 1);
    }

    #[test]
    fn quantized_error_shrinks_with_mantissa() {
        let g = Exponential::new(0.05);
        let mut exact = ExactDecayedSum::new(g);
        let mut coarse = QuantizedExpCounter::new(g, 8);
        let mut fine = QuantizedExpCounter::new(g, 30);
        for t in 1..=2000u64 {
            let f = 1 + t % 4;
            exact.observe(t, f);
            coarse.observe(t, f);
            fine.observe(t, f);
        }
        let want = exact.query(2001);
        let err = |got: f64| (got - want).abs() / want;
        assert!(err(fine.query(2001)) < err(coarse.query(2001)).max(1e-12));
        assert!(err(fine.query(2001)) < 1e-6);
        assert!(err(coarse.query(2001)) < 0.05);
    }

    #[test]
    fn merge_from_is_exact() {
        let g = Exponential::new(0.02);
        let mut whole = ExpCounter::new(g);
        let mut a = ExpCounter::new(g);
        let mut b = ExpCounter::new(g);
        let mut x = 5u64;
        for t in 1..=2_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 9;
            whole.observe(t, f);
            if x.is_multiple_of(2) {
                a.observe(t, f);
            } else {
                b.observe(t, f);
            }
        }
        a.merge_from(&b);
        let (m, w) = (a.query(2_001), whole.query(2_001));
        assert!((m - w).abs() <= 1e-9 * w.max(1.0), "{m} vs {w}");
    }

    #[test]
    fn merge_from_empty_sides() {
        let g = Exponential::new(0.1);
        let mut a = ExpCounter::new(g);
        let empty = ExpCounter::new(g);
        a.observe(3, 7);
        a.merge_from(&empty);
        assert!((a.query(4) - 7.0 * (-0.1f64).exp()).abs() < 1e-12);
        let mut b = ExpCounter::new(g);
        b.merge_from(&a);
        assert!((b.query(4) - a.query(4)).abs() < 1e-12);
    }

    #[test]
    fn quantized_storage_is_logarithmic() {
        let c = QuantizedExpCounter::new(Exponential::new(0.1), 16);
        let full = ExpCounter::new(Exponential::new(0.1));
        assert!(c.storage_bits() < full.storage_bits());
    }
}
