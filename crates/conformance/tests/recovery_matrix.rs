//! The kill-at-any-byte recovery matrix: every checkpoint-capable
//! backend × decay pairing in `default_recovery_matrix`, against the
//! seeded scenario catalogue.
//!
//! What a green run certifies (see `td_conformance::recovery`):
//!
//! * recovery from a store damaged at **any** byte — truncated there,
//!   or with a bit flipped there — either reconstructs exactly a
//!   whole-call prefix of the logged history or refuses with a typed
//!   `RestoreError`; never a panic, never silently wrong state;
//! * whatever was recovered, replaying the remainder of the stream
//!   lands every subsequent answer inside the summary's own certified
//!   envelope of the exact oracle;
//! * the undamaged store always recovers completely (fsync-per-record
//!   means zero loss), ruling out refuse-everything trivia.
//!
//! Tier-1 keeps one backend at stride 1 (genuinely every byte) and
//! sweeps the full matrix at a prime stride; the nightly exhaustive
//! job (`-- --ignored`) runs every case at stride 1 over more seeds
//! and longer streams. Failures print a one-line
//! `recovery failure: ...` repro.

use td_conformance::{catalogue, default_recovery_matrix, is_time_ordered};

/// Every byte of every durable file, on the cheapest exact backend —
/// the full guarantee, continuously exercised in tier-1.
#[test]
fn kill_at_every_byte_exact_exp() {
    let matrix = default_recovery_matrix();
    let case = matrix
        .iter()
        .find(|c| c.name == "exact/exp")
        .expect("exact/exp is in the matrix");
    for sc in catalogue(0xD1E, 40) {
        if !is_time_ordered(&sc) {
            continue;
        }
        let report = case.run(&sc, 1).unwrap_or_else(|f| panic!("{f}"));
        // Truncation + bit flip at every byte offset.
        assert_eq!(report.sweeps, 2 * report.durable_bytes, "{}", sc.name);
        assert!(report.recovered > 0, "{}: nothing ever recovered", sc.name);
        assert!(report.refused > 0, "{}: nothing ever refused", sc.name);
    }
}

/// The full matrix at a prime stride: every backend family meets every
/// scenario family, hitting all byte-region classes (headers, seqs,
/// lengths, payloads, checksums, checkpoint envelopes, manifest).
#[test]
fn recovery_matrix_tier1() {
    for case in default_recovery_matrix() {
        for sc in catalogue(0xA11CE, 60) {
            if !is_time_ordered(&sc) {
                continue;
            }
            let report = case.run(&sc, 7).unwrap_or_else(|f| panic!("{f}"));
            assert!(
                report.recovered > 0,
                "{} on {}: no damage point ever recovered",
                case.name,
                sc.name
            );
        }
    }
}

/// The nightly job: every case × every family × several seeds, longer
/// streams, stride 1 — the literal kill-at-every-byte certification.
/// On failure the panic message is the replayable repro line.
#[test]
#[ignore = "exhaustive kill-at-every-byte sweep; run in the nightly CI job"]
fn recovery_matrix_exhaustive_kill_at_every_byte() {
    for seed in [0x1u64, 0x5EED, 0xDEAD_BEEF] {
        for case in default_recovery_matrix() {
            for sc in catalogue(seed, 120) {
                if !is_time_ordered(&sc) {
                    continue;
                }
                let report = case.run(&sc, 1).unwrap_or_else(|f| panic!("{f}"));
                assert_eq!(report.sweeps, 2 * report.durable_bytes);
            }
        }
    }
}
