//! Property tests of recovery determinism (`td-persist`).
//!
//! Two properties, over every time-ordered family in the scenario
//! catalogue, a seeded crash point, and a seeded checkpoint cadence:
//!
//! * **Double recovery is bit-identical.** Opening the same crashed
//!   bytes twice yields the same `RecoveryStats` and byte-identical
//!   state (compared through `save_checkpoint`, the full state
//!   serialization). Recovery has no hidden nondeterminism — no
//!   iteration-order, time, or address dependence.
//! * **Recover-then-ingest matches a never-crashed twin.** A summary
//!   that ingests a prefix, dies (fsync-per-record, so the prefix is
//!   fully durable), recovers, and then ingests the suffix answers
//!   every probe `to_bits`-identically to a twin that lived through
//!   the whole stream. Replay reproduces the exact call shape of the
//!   original ingest, so this holds bit-for-bit even for amortizing
//!   sketches, not merely within ε.

use proptest::prelude::*;
use td_ceh::CascadedEh;
use td_conformance::{catalogue, is_time_ordered, Op, Scenario};
use td_counters::ExactDecayedSum;
use td_decay::checkpoint::Checkpoint;
use td_decay::{Exponential, StreamAggregate, Time};
use td_persist::{DurabilityOptions, DurableAggregate, MemStorage, StoreOptions, SyncPolicy};

fn opts(checkpoint_every_records: u64) -> DurabilityOptions {
    DurabilityOptions {
        store: StoreOptions {
            // Tiny segments force rotation + multi-segment recovery.
            segment_bytes: 512,
            sync: SyncPolicy::EveryRecord,
        },
        checkpoint_every_records,
    }
}

fn apply<B: StreamAggregate + ?Sized>(b: &mut B, op: &Op) {
    match op {
        Op::Observe(t, f) => b.observe(*t, *f),
        Op::ObserveBatch(items) => b.observe_batch(items),
        Op::Advance(t) => b.advance(*t),
        Op::Query(_) => {}
    }
}

fn apply_durable<B: StreamAggregate + Checkpoint>(d: &mut DurableAggregate<B>, op: &Op) {
    match op {
        Op::Observe(t, f) => d.observe(*t, *f).expect("mem storage never fails"),
        Op::ObserveBatch(items) => d.observe_batch(items).expect("mem storage never fails"),
        Op::Advance(t) => d.advance(*t).expect("mem storage never fails"),
        Op::Query(_) => {}
    }
}

/// Runs both properties for one backend family on one scenario.
fn check<B, F>(make: F, scenario: &Scenario, split_pct: usize, cadence: u64, label: &str)
where
    B: StreamAggregate + Checkpoint,
    F: Fn() -> B + Copy,
{
    let ops: Vec<&Op> = scenario
        .ops
        .iter()
        .filter(|op| !matches!(op, Op::Query(_)))
        .collect();
    let split = ops.len() * split_pct / 100;
    let t_end = scenario.max_time();
    let probes: [Time; 3] = [t_end + 1, t_end + 17, t_end + 160];

    // The doomed run: prefix only, then the process dies.
    let mem = MemStorage::new();
    {
        let (mut doomed, _) =
            DurableAggregate::open(Box::new(mem.clone()), opts(cadence), make).expect("fresh open");
        for op in &ops[..split] {
            apply_durable(&mut doomed, op);
        }
    }
    let dead = mem.crashed();

    // Property 1: double recovery, bit-identical.
    let (mut recovered, stats_a) =
        DurableAggregate::open(Box::new(dead.clone()), opts(cadence), make)
            .unwrap_or_else(|e| panic!("{label}/{}: recovery A failed: {e}", scenario.name));
    let (second, stats_b) = DurableAggregate::open(Box::new(dead), opts(cadence), make)
        .unwrap_or_else(|e| panic!("{label}/{}: recovery B failed: {e}", scenario.name));
    assert_eq!(
        stats_a, stats_b,
        "{label}/{}: two recoveries reported different stats",
        scenario.name
    );
    assert_eq!(
        recovered.inner().save_checkpoint(),
        second.inner().save_checkpoint(),
        "{label}/{}: two recoveries produced different state bytes",
        scenario.name
    );

    // fsync-per-record + clean crash: nothing may be lost.
    let total_prefix: u64 = ops[..split]
        .iter()
        .map(|op| match op {
            Op::Observe(..) | Op::Advance(_) => 1,
            Op::ObserveBatch(items) => items.len() as u64,
            Op::Query(_) => 0,
        })
        .sum();
    assert_eq!(
        stats_a.entries_applied, total_prefix,
        "{label}/{}: lossless crash lost entries",
        scenario.name
    );

    // Property 2: recover-then-ingest == never-crashed twin, to_bits.
    let mut twin = make();
    for op in &ops[..split] {
        apply(&mut twin, op);
    }
    for op in &ops[split..] {
        apply_durable(&mut recovered, op);
        apply(&mut twin, op);
    }
    for t in probes {
        let a = recovered.query(t);
        let b = twin.query(t);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}/{}: split {split_pct}% cadence {cadence}: recovered \
             query({t}) = {a} but the never-crashed twin says {b}",
            scenario.name
        );
    }
}

proptest! {
    /// Both determinism properties across the catalogue's families, an
    /// exact backend and a Theorem-1 sketch, seeded crash points and
    /// checkpoint cadences.
    #[test]
    fn recovery_is_deterministic_and_matches_the_never_crashed_twin(
        seed in 0u64..1_000_000,
        split_pct in 0usize..101,
        cadence in 1u64..32,
        pick in 0usize..2,
    ) {
        for scenario in catalogue(seed, 60) {
            if !is_time_ordered(&scenario) {
                continue;
            }
            match pick {
                0 => check(
                    || ExactDecayedSum::new(Exponential::new(0.01)),
                    &scenario,
                    split_pct,
                    cadence,
                    "exact/exp",
                ),
                _ => check(
                    || CascadedEh::new(Exponential::new(0.01), 0.1),
                    &scenario,
                    split_pct,
                    cadence,
                    "ceh/exp",
                ),
            }
        }
    }
}
