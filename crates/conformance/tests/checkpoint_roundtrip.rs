//! Checkpoint round-trip conformance for every checkpointable backend
//! in the workspace, across the six seeded scenario families.
//!
//! Two contracts:
//!
//! * **Round-trip is bit-identical.** `restore(save(b))` onto an
//!   identically-configured fresh instance reproduces the state
//!   exactly: the restored instance re-saves to the *same bytes*,
//!   answers queries with the *same f64 bits*, and accounts the same
//!   `storage_bits` — not merely "close", identical.
//! * **Corruption is always detected.** Any single-bit flip anywhere in
//!   the checkpoint (every bit for small checkpoints, a seeded sample
//!   for large ones) is rejected with `RestoreError::Checksum` —
//!   checked via [`certify_corruption_detected`], which also rejects
//!   decode orders that would read unverified bytes.

use td_ceh::CascadedEh;
use td_conformance::{catalogue, certify_corruption_detected, corruption_offsets, Op, Scenario};
use td_core::{BackendChoice, DecayedSum};
use td_counters::{ExactDecayedSum, ExpCounter, PolyExpCounter, QuantizedExpCounter};
use td_decay::checkpoint::Checkpoint;
use td_decay::{DecayFunction, Exponential, Polynomial, SlidingWindow, StreamAggregate, Time};
use td_eh::{ClassicEh, DominationEh};
use td_forward::{ForwardDecaySum, ForwardDecayVariance};
use td_wbmh::Wbmh;

const WBMH_MAX_AGE: Time = 1 << 41;

/// One checkpointable backend under test: a factory for
/// identically-configured instances, a value clamp for
/// restricted-domain backends, and a horizon cap for finite-`max_age`
/// ones.
struct RtCase {
    name: &'static str,
    value_cap: Option<u64>,
    max_time: Option<Time>,
    make: Box<dyn Fn() -> Box<dyn Checkpoint>>,
}

fn rt(name: &'static str, make: impl Fn() -> Box<dyn Checkpoint> + 'static) -> RtCase {
    RtCase {
        name,
        value_cap: None,
        max_time: None,
        make: Box::new(make),
    }
}

fn boxed<G: DecayFunction + 'static>(g: G) -> Box<dyn DecayFunction> {
    Box::new(g)
}

/// Every backend with a `Checkpoint` impl, same configurations as the
/// conformance matrix.
fn cases() -> Vec<RtCase> {
    vec![
        rt("exp-counter", || {
            Box::new(ExpCounter::new(Exponential::new(0.01)))
        }),
        rt("quantized-exp/m20", || {
            Box::new(QuantizedExpCounter::new(Exponential::new(0.01), 20))
        }),
        rt("polyexp-pipeline/k2", || {
            Box::new(PolyExpCounter::new(2, 0.03))
        }),
        rt("exact/exp", || {
            Box::new(ExactDecayedSum::new(boxed(Exponential::new(0.01))))
        }),
        rt("exact/sliding256", || {
            Box::new(ExactDecayedSum::new(boxed(SlidingWindow::new(256))))
        }),
        rt("domination-eh", || Box::new(DominationEh::new(0.1, None))),
        RtCase {
            value_cap: Some(1),
            ..rt("classic-eh", || Box::new(ClassicEh::new(0.1, None)))
        },
        rt("ceh/exp", || {
            Box::new(CascadedEh::new(boxed(Exponential::new(0.01)), 0.1))
        }),
        RtCase {
            max_time: Some(WBMH_MAX_AGE / 2),
            ..rt("wbmh/poly1", || {
                Box::new(Wbmh::new(boxed(Polynomial::new(1.0)), 0.1, WBMH_MAX_AGE))
            })
        },
        rt("core-auto/exp", || {
            Box::new(
                DecayedSum::builder(Exponential::new(0.01))
                    .epsilon(0.1)
                    .backend(BackendChoice::Auto)
                    .build(),
            )
        }),
        rt("core-auto/poly1", || {
            Box::new(
                DecayedSum::builder(Polynomial::new(1.0))
                    .epsilon(0.1)
                    .backend(BackendChoice::Auto)
                    .build(),
            )
        }),
        rt("forward-sum/exp", || {
            Box::new(ForwardDecaySum::new(Exponential::new(0.01)))
        }),
        rt("forward-sum/exp-rotating", || {
            Box::new(ForwardDecaySum::new(Exponential::new(0.01)).with_rotation_exponent(2.0))
        }),
        RtCase {
            max_time: Some(td_forward::DEFAULT_MAX_TIME),
            ..rt("forward-sum/poly1", || {
                Box::new(ForwardDecaySum::new(Polynomial::new(1.0)))
            })
        },
        RtCase {
            max_time: Some(td_forward::DEFAULT_MAX_TIME),
            ..rt("forward-variance/poly1", || {
                Box::new(ForwardDecayVariance::new(Polynomial::new(1.0)))
            })
        },
    ]
}

fn replay(b: &mut dyn Checkpoint, scenario: &Scenario, cap: Option<u64>) {
    let cap = cap.unwrap_or(u64::MAX);
    for op in &scenario.ops {
        match op {
            Op::Observe(t, f) => b.observe(*t, (*f).min(cap)),
            Op::ObserveBatch(items) => {
                let capped: Vec<(Time, u64)> =
                    items.iter().map(|&(t, f)| (t, f.min(cap))).collect();
                b.observe_batch(&capped);
            }
            Op::Advance(t) => b.advance(*t),
            Op::Query(_) => {}
        }
    }
}

#[test]
fn roundtrip_is_bit_identical_across_the_catalogue() {
    for case in cases() {
        for seed in [1u64, 7, 23] {
            for scenario in catalogue(seed, 160) {
                if let Some(limit) = case.max_time {
                    if scenario.max_time() > limit {
                        continue;
                    }
                }
                let mut original = (case.make)();
                replay(&mut *original, &scenario, case.value_cap);
                let bytes = original.save_checkpoint();

                let mut restored = (case.make)();
                restored.restore_checkpoint(&bytes).unwrap_or_else(|e| {
                    panic!(
                        "{} on `{}` seed {:#x}: clean restore failed: {e}",
                        case.name, scenario.name, scenario.seed
                    )
                });

                assert_eq!(
                    restored.save_checkpoint(),
                    bytes,
                    "{} on `{}` seed {:#x}: restored state re-saves differently",
                    case.name,
                    scenario.name,
                    scenario.seed
                );
                assert_eq!(
                    original.storage_bits(),
                    restored.storage_bits(),
                    "{} on `{}` seed {:#x}: storage accounting diverged",
                    case.name,
                    scenario.name,
                    scenario.seed
                );
                for dt in [1u64, 5, 1000] {
                    let t = scenario.max_time() + dt;
                    assert_eq!(
                        original.query(t).to_bits(),
                        restored.query(t).to_bits(),
                        "{} on `{}` seed {:#x}: answers diverged at t={t}",
                        case.name,
                        scenario.name,
                        scenario.seed
                    );
                }
            }
        }
    }
}

#[test]
fn every_single_bit_corruption_is_rejected_as_checksum() {
    for case in cases() {
        // One representative non-trivial state per backend (bursty
        // family: real bucket structure, multiple classes).
        let scenario = catalogue(5, 160)
            .into_iter()
            .filter(|s| case.max_time.is_none_or(|limit| s.max_time() <= limit))
            .nth(1)
            .expect("catalogue has families within the horizon");
        let mut b = (case.make)();
        replay(&mut *b, &scenario, case.value_cap);
        let bytes = b.save_checkpoint();
        // Every bit for small checkpoints, a 256-offset seeded sample
        // for large ones; fresh restore target per offset so a corrupt
        // restore cannot contaminate the next probe.
        let offsets = corruption_offsets(0xC0DE ^ bytes.len() as u64, bytes.len(), 256);
        certify_corruption_detected(case.name, &bytes, offsets, |corrupt| {
            (case.make)().restore_checkpoint(corrupt)
        })
        .unwrap_or_else(|repro| panic!("{repro}"));
    }
}

/// Cross-configuration restores must be rejected as typed errors, not
/// silently mis-adopted: a checkpoint is only valid on an identically-
/// configured instance.
#[test]
fn config_mismatch_is_a_typed_error() {
    let mut a = CascadedEh::new(boxed(Exponential::new(0.01)), 0.1);
    a.observe(5, 3);
    let bytes = a.save_checkpoint();
    let mut wrong_decay = CascadedEh::new(boxed(Exponential::new(0.02)), 0.1);
    assert!(
        wrong_decay.restore_checkpoint(&bytes).is_err(),
        "restore onto a different decay must be rejected"
    );
    let mut counter = ExpCounter::new(Exponential::new(0.01));
    counter.observe(5, 3);
    let mut other = QuantizedExpCounter::new(Exponential::new(0.01), 20);
    assert!(
        other
            .restore_checkpoint(&counter.save_checkpoint())
            .is_err(),
        "restore across backend kinds must be rejected (wrong tag)"
    );
    let mut fwd = ForwardDecaySum::new(Exponential::new(0.01));
    fwd.observe(5, 3);
    let fwd_bytes = fwd.save_checkpoint();
    let mut wrong_lambda = ForwardDecaySum::new(Exponential::new(0.02));
    assert!(
        wrong_lambda.restore_checkpoint(&fwd_bytes).is_err(),
        "forward restore onto a different decay must be rejected"
    );
    let mut wrong_rotation =
        ForwardDecaySum::new(Exponential::new(0.01)).with_rotation_exponent(2.0);
    assert!(
        wrong_rotation.restore_checkpoint(&fwd_bytes).is_err(),
        "forward restore onto a different rotation threshold must be rejected"
    );
    let mut wrong_kind = ForwardDecayVariance::new(Exponential::new(0.01));
    assert!(
        wrong_kind.restore_checkpoint(&fwd_bytes).is_err(),
        "forward restore across moment kinds must be rejected (wrong tag)"
    );
}
