//! The registry conformance matrix: every registry backend family ×
//! scenario family, fanned across keys by the deterministic key
//! stream and certified per-key against the `HashMap<key, Oracle>`
//! twin (see `td_conformance::registry`).
//!
//! Tier-1 (`cargo test -p td-conformance`) runs a small seed set; the
//! exhaustive sweep (`-- --ignored`, picked up by the weekly
//! `conformance-exhaustive` CI cron) turns up seeds, stream lengths,
//! and key fan-outs. Failures print a replayable
//! `(family, seed, n_keys, key, tick)` repro.

use td_conformance::{catalogue, certify_registry, default_registry_matrix, Oracle};
use td_decay::Exponential;
use td_forward::ForwardDecaySum;
use td_registry::{KeyedRegistry, RegistryOptions};

/// Runs the registry matrix over `seeds` × `n`-length scenarios,
/// returning every failure's replayable description.
fn sweep(seeds: &[u64], n: usize) -> Vec<String> {
    let matrix = default_registry_matrix();
    let mut failures = Vec::new();
    let mut runs = 0usize;
    for &seed in seeds {
        for sc in catalogue(seed, n) {
            for case in &matrix {
                match case.run(&sc) {
                    None => {} // horizon-capped case, scenario skipped
                    Some(Ok(stats)) => {
                        runs += 1;
                        assert!(
                            stats.queries > 0,
                            "{}/{}: no queries ran",
                            case.name,
                            sc.name
                        );
                        assert!(
                            stats.key_checks >= stats.queries,
                            "{}/{}: fewer key checks than queries",
                            case.name,
                            sc.name
                        );
                    }
                    Some(Err(f)) => failures.push(f.to_string()),
                }
            }
        }
    }
    assert!(runs > 0, "registry sweep ran no cases");
    failures
}

#[test]
fn tier1_registry_matrix_within_envelope() {
    let failures = sweep(&[1, 2], 160);
    assert!(
        failures.is_empty(),
        "{} registry conformance failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The eviction-enabled case must actually evict somewhere in tier-1,
/// or its envelope-widening arm is dead code.
#[test]
fn tier1_evicting_case_actually_evicts() {
    let matrix = default_registry_matrix();
    let case = matrix
        .iter()
        .find(|c| c.name.contains("evicting"))
        .expect("matrix carries an eviction case");
    let mut evictions = 0u64;
    for seed in 0..4u64 {
        for sc in catalogue(seed, 400) {
            if let Some(Ok(stats)) = case.run(&sc) {
                evictions += stats.evictions;
            }
        }
    }
    assert!(
        evictions > 0,
        "eviction case swept {evictions} keys across tier-1 seeds — widened-envelope arm untested"
    );
}

#[test]
#[ignore = "exhaustive sweep: run with `cargo test -p td-conformance -- --ignored`"]
fn exhaustive_registry_many_seeds_long_streams() {
    let seeds: Vec<u64> = (0..16).collect();
    let failures = sweep(&seeds, 1_000);
    assert!(
        failures.is_empty(),
        "{} registry conformance failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Exhaustive reprise with the key fan-out and sweep pressure turned
/// up: many keys (so most slots hold little mass), a hot eviction
/// threshold, and a sweep that visits every slot almost every call.
#[test]
#[ignore = "exhaustive sweep: run with `cargo test -p td-conformance -- --ignored`"]
fn exhaustive_registry_high_fanout_hot_eviction() {
    let mut failures = Vec::new();
    for seed in 0..12u64 {
        for sc in catalogue(seed, 800) {
            for &n_keys in &[3u64, 64, 257] {
                let mut reg = KeyedRegistry::new(
                    RegistryOptions {
                        expected_keys: 8,
                        eviction_threshold: 1e-5,
                        sweep_per_ingest: 64,
                        record_evictions: false,
                        ..RegistryOptions::default()
                    },
                    || ForwardDecaySum::new(Exponential::new(0.05)),
                );
                if let Err(f) = certify_registry(
                    &mut reg,
                    &|| Oracle::new(Box::new(Exponential::new(0.05))),
                    &sc,
                    n_keys,
                    "registry/forward-sum-exp-hot",
                ) {
                    failures.push(f.to_string());
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} registry conformance failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
