//! Property (ISSUE 10 satellite): **the keyed registry is
//! indistinguishable from a naive `HashMap<key, B>` twin**.
//!
//! A seeded keyed trace (singles, locality-sorted batches, lazy
//! advances) replays into a `KeyedRegistry<B>` and into one
//! independent backend per key, mirroring the registry's exact ingest
//! call shapes (a batch's per-key run of one item becomes `observe`,
//! longer runs become `observe_batch`). Every per-key answer must be
//! **bit-identical** — the slab, the open-addressing index, lazy
//! advance, and batch regrouping may not perturb a single ULP — for
//! three backend families, with a checkpoint/restore cut mid-trace,
//! and across slot reuse when eviction retires and resurrects keys.

use std::collections::HashMap;

use proptest::prelude::*;
use td_counters::ExpCounter;
use td_decay::{Checkpoint, Exponential, Polynomial, StreamAggregate, Time};
use td_forward::ForwardDecaySum;
use td_registry::{KeyedRegistry, RegistryOptions};

/// One op of a keyed trace.
#[derive(Debug, Clone)]
enum KOp {
    One(u64, Time, u64),
    Batch(Vec<(u64, Time, u64)>),
    Advance(Time),
}

/// Deterministic keyed trace: times non-decreasing, keys fanned by a
/// xorshift stream. `family` picks the op mix: 0 = singles only,
/// 1 = batch-heavy, 2 = advance-heavy (long lazy gaps).
fn keyed_trace(seed: u64, n_keys: u64, n: usize, family: usize) -> Vec<KOp> {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut t = 1u64;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let r = step();
        t += r % 4;
        match (family, r % 10) {
            (1, 0..=5) => {
                // Batch of 2..=17 items, times non-decreasing inside.
                let len = 2 + (step() % 16) as usize;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    let s = step();
                    t += s % 2;
                    items.push((s % n_keys, t, s % 1000 + 1));
                }
                ops.push(KOp::Batch(items));
            }
            (2, 0..=2) => {
                t += 50 + step() % 200;
                ops.push(KOp::Advance(t));
            }
            _ => {
                let s = step();
                ops.push(KOp::One(s % n_keys, t, s % 1000 + 1));
            }
        }
    }
    ops
}

/// Applies one op to the naive twin, mirroring the registry's ingest
/// call shapes exactly: batches group into per-key runs (the registry
/// sorts by slot, so each key's items in a batch form one run in
/// arrival order), and one-item runs go through `observe`.
fn twin_apply<B: StreamAggregate>(twins: &mut HashMap<u64, B>, make: &impl Fn() -> B, op: &KOp) {
    match op {
        KOp::One(k, t, f) => twins.entry(*k).or_insert_with(make).observe(*t, *f),
        KOp::Batch(items) => {
            let mut runs: Vec<(u64, Vec<(Time, u64)>)> = Vec::new();
            for &(k, t, f) in items {
                match runs.iter_mut().find(|(rk, _)| *rk == k) {
                    Some((_, run)) => run.push((t, f)),
                    None => runs.push((k, vec![(t, f)])),
                }
            }
            for (k, run) in runs {
                let b = twins.entry(k).or_insert_with(make);
                if run.len() == 1 {
                    b.observe(run[0].0, run[0].1);
                } else {
                    b.observe_batch(&run);
                }
            }
        }
        KOp::Advance(_) => {
            // Lazy: the registry touches no slot on advance, so the
            // twin backends must not be advanced either.
        }
    }
}

fn reg_apply<B: StreamAggregate>(reg: &mut KeyedRegistry<B>, op: &KOp) {
    match op {
        KOp::One(k, t, f) => reg.observe_keyed(*k, *t, *f),
        KOp::Batch(items) => reg.observe_keyed_batch(items),
        KOp::Advance(t) => reg.advance_clock(*t),
    }
}

fn last_time(ops: &[KOp]) -> Time {
    ops.iter()
        .map(|op| match op {
            KOp::One(_, t, _) => *t,
            KOp::Batch(items) => items.last().map(|&(_, t, _)| t).unwrap_or(0),
            KOp::Advance(t) => *t,
        })
        .max()
        .unwrap_or(1)
}

/// Replays `ops` into both sides (no eviction) and demands
/// bit-identical per-key answers at several probe times. With
/// `cut = Some(i)`, the registry is checkpointed and restored into a
/// fresh instance after op `i` — the restored slab must continue
/// bit-for-bit.
fn check_twin<B>(
    make: impl Fn() -> B + Send + Sync + Clone + 'static,
    ops: &[KOp],
    n_keys: u64,
    cut: Option<usize>,
) where
    B: StreamAggregate + Checkpoint + 'static,
{
    let opts = RegistryOptions {
        expected_keys: 8, // force index growth mid-trace
        ..RegistryOptions::default()
    };
    let mut reg = KeyedRegistry::new(opts.clone(), make.clone());
    let mut twins: HashMap<u64, B> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        reg_apply(&mut reg, op);
        twin_apply(&mut twins, &make, op);
        if cut == Some(i) {
            let bytes = reg.save_checkpoint();
            let mut fresh = KeyedRegistry::new(opts.clone(), make.clone());
            fresh
                .restore_checkpoint(&bytes)
                .expect("clean checkpoint restores");
            reg = fresh;
        }
    }
    let last = last_time(ops);
    for probe in [last + 1, last + 7, last + 60] {
        for k in 0..n_keys {
            let got = reg.query_key(k, probe).estimate;
            let want = twins.get(&k).map_or(0.0, |b| b.query(probe));
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "key {} at q={}: registry {} vs twin {}",
                k,
                probe,
                got,
                want
            );
        }
    }
    prop_assert_eq!(reg.len(), twins.len(), "resident key count diverged");
}

proptest! {
    /// Three backend families × three trace families: never-evicted
    /// keys answer bit-identically to their standalone twins.
    #[test]
    fn registry_is_bit_identical_to_naive_twin(
        seed in 0u64..1_000_000,
        n_keys in 1u64..40,
        family in 0usize..3,
    ) {
        let ops = keyed_trace(seed, n_keys, 300, family);
        check_twin(
            || ForwardDecaySum::new(Exponential::new(0.02)),
            &ops, n_keys, None,
        );
        check_twin(
            || ForwardDecaySum::new(Polynomial::new(1.0)),
            &ops, n_keys, None,
        );
        check_twin(
            || ExpCounter::new(Exponential::new(0.05)),
            &ops, n_keys, None,
        );
    }

    /// A checkpoint/restore cut anywhere in the trace is invisible:
    /// the restored slab continues bit-for-bit.
    #[test]
    fn checkpoint_cut_mid_trace_is_invisible(
        seed in 0u64..1_000_000,
        n_keys in 1u64..24,
        family in 0usize..3,
        cut_pct in 0usize..100,
    ) {
        let ops = keyed_trace(seed, n_keys, 200, family);
        let cut = Some(ops.len() * cut_pct / 100);
        check_twin(
            || ForwardDecaySum::new(Exponential::new(0.02)),
            &ops, n_keys, cut,
        );
        check_twin(
            || ExpCounter::new(Exponential::new(0.05)),
            &ops, n_keys, cut,
        );
    }

    /// Slot reuse is safe: under aggressive eviction, retired slots are
    /// recycled for new keys, yet every key the sweep never touched
    /// still answers bit-identically, and resurrected keys restart
    /// from a fresh state (answer ≤ twin, which kept full history).
    #[test]
    fn slot_reuse_under_eviction_never_corrupts_survivors(
        seed in 0u64..1_000_000,
        n_keys in 4u64..48,
    ) {
        // Advance-heavy traces + fast decay => keys decay to dust and
        // the sweep retires them.
        let ops = keyed_trace(seed, n_keys, 300, 2);
        let make = || ForwardDecaySum::new(Exponential::new(0.2));
        let mut reg = KeyedRegistry::new(
            RegistryOptions {
                expected_keys: 4,
                eviction_threshold: 1e-3,
                sweep_per_ingest: 8,
                record_evictions: true,
                ..RegistryOptions::default()
            },
            make,
        );
        let mut twins: HashMap<u64, ForwardDecaySum<Exponential>> = HashMap::new();
        for op in &ops {
            reg_apply(&mut reg, op);
            twin_apply(&mut twins, &make, op);
        }
        let evicted: std::collections::HashSet<u64> =
            reg.eviction_log().iter().copied().collect();
        prop_assert_eq!(reg.evictions() as usize, reg.eviction_log().len());
        let probe = last_time(&ops) + 1;
        let slack = reg.evicted_mass();
        for k in 0..n_keys {
            let got = reg.query_key(k, probe).estimate;
            let want = twins.get(&k).map_or(0.0, |b| b.query(probe));
            if !evicted.contains(&k) {
                prop_assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "never-evicted key {} corrupted by slot reuse",
                    k
                );
            } else {
                // Evicted (possibly resurrected) keys only ever *lose*
                // mass, and never more than the accounted slack.
                prop_assert!(
                    got <= want + 1e-9 * want.abs().max(1.0),
                    "evicted key {} answers {} above its twin {}",
                    k, got, want
                );
                prop_assert!(
                    want - got <= slack + 1e-9 * want.abs().max(1.0),
                    "evicted key {} lost {} but only {} is accounted",
                    k, want - got, slack
                );
            }
        }
    }
}
