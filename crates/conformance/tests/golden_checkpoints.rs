//! Golden `TDCP` checkpoint fixtures: envelope bytes captured from a
//! known-good build are committed under `tests/golden/` and every later
//! build must either restore them **exactly** (re-save reproduces the
//! same bytes, queries answer with the same f64 bits) or reject them
//! with the *typed* version error `RestoreError::Version(_)` — never a
//! silent mis-restore.
//!
//! This pins the on-disk format across representation refactors: a
//! build is free to change its in-memory layout (e.g. AoS → SoA bucket
//! columns) only if it keeps serializing the same field order, and is
//! free to bump the envelope version only if old envelopes fail typed.
//!
//! Regenerate fixtures (only when intentionally re-baselining, from a
//! build whose format is the one being pinned):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p td-conformance --test golden_checkpoints
//! ```

use std::fs;
use std::path::PathBuf;

use td_ceh::CascadedEh;
use td_conformance::{catalogue, Op, Scenario};
use td_core::{BackendChoice, DecayedSum};
use td_counters::{ExactDecayedSum, ExpCounter, PolyExpCounter, QuantizedExpCounter};
use td_decay::checkpoint::{Checkpoint, RestoreError};
use td_decay::{DecayFunction, Exponential, Polynomial, SlidingWindow, Time};
use td_eh::{ClassicEh, DominationEh};
use td_forward::{ForwardDecaySum, ForwardDecayVariance};
use td_wbmh::Wbmh;

const WBMH_MAX_AGE: Time = 1 << 41;

/// Query times are `scenario.max_time() + dt` for these offsets; the
/// manifest records the answer bits for each.
const QUERY_OFFSETS: [u64; 3] = [1, 5, 1000];

struct GoldenCase {
    name: &'static str,
    value_cap: Option<u64>,
    max_time: Option<Time>,
    make: Box<dyn Fn() -> Box<dyn Checkpoint>>,
}

fn gc(name: &'static str, make: impl Fn() -> Box<dyn Checkpoint> + 'static) -> GoldenCase {
    GoldenCase {
        name,
        value_cap: None,
        max_time: None,
        make: Box::new(make),
    }
}

fn boxed<G: DecayFunction + 'static>(g: G) -> Box<dyn DecayFunction> {
    Box::new(g)
}

/// Mirror of the `checkpoint_roundtrip` case list: every checkpointable
/// backend in the workspace, identically configured.
fn cases() -> Vec<GoldenCase> {
    vec![
        gc("exp-counter", || {
            Box::new(ExpCounter::new(Exponential::new(0.01)))
        }),
        gc("quantized-exp/m20", || {
            Box::new(QuantizedExpCounter::new(Exponential::new(0.01), 20))
        }),
        gc("polyexp-pipeline/k2", || {
            Box::new(PolyExpCounter::new(2, 0.03))
        }),
        gc("exact/exp", || {
            Box::new(ExactDecayedSum::new(boxed(Exponential::new(0.01))))
        }),
        gc("exact/sliding256", || {
            Box::new(ExactDecayedSum::new(boxed(SlidingWindow::new(256))))
        }),
        gc("domination-eh", || Box::new(DominationEh::new(0.1, None))),
        GoldenCase {
            value_cap: Some(1),
            ..gc("classic-eh", || Box::new(ClassicEh::new(0.1, None)))
        },
        gc("ceh/exp", || {
            Box::new(CascadedEh::new(boxed(Exponential::new(0.01)), 0.1))
        }),
        GoldenCase {
            max_time: Some(WBMH_MAX_AGE / 2),
            ..gc("wbmh/poly1", || {
                Box::new(Wbmh::new(boxed(Polynomial::new(1.0)), 0.1, WBMH_MAX_AGE))
            })
        },
        gc("core-auto/exp", || {
            Box::new(
                DecayedSum::builder(Exponential::new(0.01))
                    .epsilon(0.1)
                    .backend(BackendChoice::Auto)
                    .build(),
            )
        }),
        gc("core-auto/poly1", || {
            Box::new(
                DecayedSum::builder(Polynomial::new(1.0))
                    .epsilon(0.1)
                    .backend(BackendChoice::Auto)
                    .build(),
            )
        }),
        gc("forward-sum/exp", || {
            Box::new(ForwardDecaySum::new(Exponential::new(0.01)))
        }),
        GoldenCase {
            max_time: Some(td_forward::DEFAULT_MAX_TIME),
            ..gc("forward-sum/poly1", || {
                Box::new(ForwardDecaySum::new(Polynomial::new(1.0)))
            })
        },
        GoldenCase {
            max_time: Some(td_forward::DEFAULT_MAX_TIME),
            ..gc("forward-variance/poly1", || {
                Box::new(ForwardDecayVariance::new(Polynomial::new(1.0)))
            })
        },
    ]
}

fn replay(b: &mut dyn Checkpoint, scenario: &Scenario, cap: Option<u64>) {
    let cap = cap.unwrap_or(u64::MAX);
    for op in &scenario.ops {
        match op {
            Op::Observe(t, f) => b.observe(*t, (*f).min(cap)),
            Op::ObserveBatch(items) => {
                let capped: Vec<(Time, u64)> =
                    items.iter().map(|&(t, f)| (t, f.min(cap))).collect();
                b.observe_batch(&capped);
            }
            Op::Advance(t) => b.advance(*t),
            Op::Query(_) => {}
        }
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"))
}

fn fixture_stem(case_name: &str, scenario: &Scenario) -> String {
    format!("{}__{}", case_name.replace('/', "_"), scenario.name)
}

/// The scenarios each fixture replays: two structurally distinct
/// families from the deterministic catalogue (index 1 is the bursty
/// family — real bucket structure, multiple classes — index 3 exercises
/// boundary alignment), filtered by the backend's horizon.
fn fixture_scenarios(case: &GoldenCase) -> Vec<Scenario> {
    catalogue(5, 160)
        .into_iter()
        .filter(|s| case.max_time.is_none_or(|limit| s.max_time() <= limit))
        .enumerate()
        .filter(|(i, _)| *i == 1 || *i == 3)
        .map(|(_, s)| s)
        .collect()
}

/// Manifest: line 1 `storage_bits=<u64>`, then one `q <t> <bits>` line
/// per query offset. Plain text so diffs are reviewable.
fn manifest_for(b: &mut dyn Checkpoint, scenario: &Scenario) -> String {
    let mut out = format!("storage_bits={}\n", b.storage_bits());
    for dt in QUERY_OFFSETS {
        let t = scenario.max_time() + dt;
        out.push_str(&format!("q {} {}\n", t, b.query(t).to_bits()));
    }
    out
}

#[test]
fn golden_fixtures_restore_exactly_or_fail_typed() {
    let dir = golden_dir();
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    if regen {
        fs::create_dir_all(&dir).expect("create golden dir");
    }

    for case in cases() {
        for scenario in fixture_scenarios(&case) {
            let stem = fixture_stem(case.name, &scenario);
            let env_path = dir.join(format!("{stem}.tdcp"));
            let man_path = dir.join(format!("{stem}.manifest"));

            if regen {
                let mut b = (case.make)();
                replay(&mut *b, &scenario, case.value_cap);
                fs::write(&env_path, b.save_checkpoint()).expect("write fixture envelope");
                fs::write(&man_path, manifest_for(&mut *b, &scenario)).expect("write manifest");
                continue;
            }

            let bytes = fs::read(&env_path).unwrap_or_else(|e| {
                panic!(
                    "missing golden fixture {} ({e}); regenerate with GOLDEN_REGEN=1 \
                     only from a build whose checkpoint format is the pinned one",
                    env_path.display()
                )
            });
            let manifest = fs::read_to_string(&man_path)
                .unwrap_or_else(|e| panic!("missing manifest {} ({e})", man_path.display()));

            let mut restored = (case.make)();
            match restored.restore_checkpoint(&bytes) {
                Ok(()) => {
                    // Accepted ⇒ must round-trip bit-exactly.
                    assert_eq!(
                        restored.save_checkpoint(),
                        bytes,
                        "{}: golden envelope `{}` restored but re-saves to \
                         different bytes — silent format drift",
                        case.name,
                        stem
                    );
                    let mut lines = manifest.lines();
                    let sb_line = lines.next().expect("manifest storage_bits line");
                    let storage_bits: u64 = sb_line
                        .strip_prefix("storage_bits=")
                        .expect("manifest header")
                        .parse()
                        .expect("storage_bits u64");
                    assert_eq!(
                        restored.storage_bits(),
                        storage_bits,
                        "{}: storage accounting diverged from golden `{}`",
                        case.name,
                        stem
                    );
                    for line in lines {
                        let mut parts = line.split_whitespace();
                        assert_eq!(parts.next(), Some("q"), "manifest query line");
                        let t: u64 = parts.next().unwrap().parse().unwrap();
                        let want = f64::from_bits(parts.next().unwrap().parse().unwrap());
                        let got = restored.query(t);
                        // State (envelope bytes, storage_bits) must match
                        // exactly; query *answers* are additionally allowed
                        // the documented batch-kernel drift (the chunked
                        // exp/poly kernels are within a few ULP of the
                        // scalar closed forms the fixtures were recorded
                        // with — see `td_decay::soa::KERNEL_REL_ERROR` and
                        // DESIGN.md §12). 1e-12 relative is ~4 decimal
                        // orders above that bound and ~3 below any ε.
                        let ok = got.to_bits() == want.to_bits()
                            || (got - want).abs() <= 1e-12 * want.abs();
                        assert!(
                            ok,
                            "{}: query answer at t={t} diverged from golden `{}` \
                             (got {got}, want {want})",
                            case.name, stem
                        );
                    }
                }
                // The only acceptable rejection of a well-formed golden
                // envelope is the typed version error (deliberate
                // format bump). Checksum/Truncated/Invariant here would
                // mean the reader broke on valid bytes.
                Err(RestoreError::Version(_)) => {}
                Err(e) => panic!(
                    "{}: golden envelope `{}` rejected with non-version error {e:?} — \
                     a valid committed checkpoint must restore or fail Version",
                    case.name, stem
                ),
            }
        }
    }
}
