//! SoA-equivalence certification: the structure-of-arrays refactor of
//! every histogram backend is **bit-identical** — bucket lists and
//! query answers — to the pre-refactor array-of-structs code.
//!
//! The reference models in this file are transcribed *verbatim* from
//! the pre-refactor sources (`git show` of the commit preceding the
//! SoA migration): `RefDom`/`RefClassic` carry the `VecDeque<Bucket>`
//! maintenance loops exactly as they were, and query through the
//! still-present AoS estimators `estimate_window`/`estimate_strict_past`
//! (whose column twins are separately unit-pinned as bitwise equal).
//! `RefWbmh` carries the pre-refactor fold/seal/merge machinery with
//! the division-form cell test and the always-run merge pass (the
//! production `next_merge_at` skip must be observable-state-neutral,
//! which these lock-step runs certify).
//!
//! Every scenario family in the conformance catalogue drives the real
//! backend and its reference twin through the same ops; at every
//! `Query` op and at stream end the test asserts
//!
//! * identical bucket lists (`buckets()` / `snapshot()` equality), and
//! * identical query answers at the `to_bits` level for the EH
//!   backends, whose query path is contractually bit-stable; the WBMH
//!   query (whose summation regrouped chunk-wise by design) is pinned
//!   bitwise against the same `dot_counts`/`dot_mass` kernels applied
//!   to the reference state, and within 1e-12 relative of the
//!   pre-refactor gather + `weight_batch` + sequential-sum evaluation.

use std::collections::VecDeque;

use proptest::prelude::*;
use td_conformance::{catalogue, Op, Scenario};
use td_counters::ApproxCount;
use td_decay::soa::{dot_counts, dot_mass};
use td_decay::{DecayFunction, Exponential, Polynomial, RegionSchedule, StreamAggregate, Time};
use td_eh::bucket::{estimate_strict_past, estimate_window};
use td_eh::{Bucket, ClassicEh, DominationEh, Estimator, WindowSketch};
use td_wbmh::{Wbmh, WbmhSnapshot};

// ---------------------------------------------------------------------
// RefDom — pre-refactor DominationEh, verbatim.
// ---------------------------------------------------------------------

struct RefDom {
    epsilon: f64,
    window: Option<Time>,
    buckets: VecDeque<Bucket>,
    live_total: u64,
    last_t: Time,
    started: bool,
    inserts_since_merge: usize,
    at_last: u64,
}

impl RefDom {
    fn new(epsilon: f64, window: Option<Time>) -> Self {
        Self {
            epsilon,
            window,
            buckets: VecDeque::new(),
            live_total: 0,
            last_t: 0,
            started: false,
            inserts_since_merge: 0,
            at_last: 0,
        }
    }

    fn expire(&mut self, now: Time) {
        if let Some(w) = self.window {
            let cutoff = now.saturating_sub(w);
            while let Some(front) = self.buckets.front() {
                if front.end < cutoff {
                    self.live_total -= front.count;
                    self.buckets.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    fn canonicalize(&mut self) {
        if self.buckets.len() < 2 {
            return;
        }
        let mut idx = self.buckets.len() - 1;
        let mut suffix: f64 = 0.0;
        while idx > 0 {
            let newer = self.buckets[idx];
            let older = self.buckets[idx - 1];
            let combined = older.count + newer.count;
            let mixes_at_tick = newer.end == self.last_t && older.end < newer.end;
            if !mixes_at_tick && (combined as f64) <= self.epsilon * suffix {
                self.buckets[idx - 1] = older.merge_with(&newer);
                self.buckets.remove(idx);
                idx -= 1;
            } else {
                suffix += newer.count as f64;
                idx -= 1;
            }
        }
    }

    fn add_mass(&mut self, t: Time, f: u64) {
        match self.buckets.back_mut() {
            Some(b) if b.start == t && b.end == t => {
                b.count = b.count.saturating_add(f);
            }
            _ => {
                self.buckets.push_back(Bucket::unit(t, f));
                self.inserts_since_merge += 1;
                if self.inserts_since_merge >= (self.buckets.len() / 4).max(8) {
                    self.canonicalize();
                    self.inserts_since_merge = 0;
                }
            }
        }
        self.live_total = self.live_total.saturating_add(f);
        self.at_last = self.at_last.saturating_add(f);
    }

    fn observe(&mut self, t: Time, f: u64) {
        self.advance(t);
        if f == 0 {
            return;
        }
        self.add_mass(t, f);
    }

    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let mut i = 0;
        while i < items.len() {
            let t = items[i].0;
            self.advance(t);
            let mut opened = false;
            let mut rest = 0u64;
            while i < items.len() && items[i].0 == t {
                let f = items[i].1;
                if f > 0 {
                    if opened {
                        rest = rest.saturating_add(f);
                    } else {
                        self.add_mass(t, f);
                        opened = true;
                    }
                }
                i += 1;
            }
            if rest > 0 {
                if let Some(b) = self.buckets.back_mut() {
                    b.count = b.count.saturating_add(rest);
                }
                self.live_total = self.live_total.saturating_add(rest);
                self.at_last = self.at_last.saturating_add(rest);
            }
        }
    }

    fn advance(&mut self, t: Time) {
        if self.started {
            assert!(t >= self.last_t);
        }
        if !self.started || t > self.last_t {
            self.at_last = 0;
        }
        self.started = true;
        self.last_t = t;
        self.expire(t);
    }

    /// Pre-refactor `StreamAggregate::query`, through the AoS
    /// estimators that still exist untouched in `td_eh::bucket`.
    fn query(&self, t: Time) -> f64 {
        let all: Vec<Bucket> = self.buckets.iter().copied().collect();
        if t == self.last_t && self.at_last > 0 {
            estimate_strict_past(&all, t, self.at_last, Estimator::Halved)
        } else {
            estimate_window(&all, t, t, Estimator::Halved)
        }
    }

    fn buckets(&self) -> Vec<Bucket> {
        self.buckets.iter().copied().collect()
    }
}

// ---------------------------------------------------------------------
// RefClassic — pre-refactor ClassicEh, verbatim.
// ---------------------------------------------------------------------

struct RefClassic {
    window: Option<Time>,
    cap_per_class: usize,
    buckets: VecDeque<Bucket>,
    live_total: u64,
    last_t: Time,
    started: bool,
    at_last: u64,
}

impl RefClassic {
    fn new(epsilon: f64, window: Option<Time>) -> Self {
        let cap_per_class = (1.0 / (2.0 * epsilon)).ceil() as usize + 2;
        Self {
            window,
            cap_per_class,
            buckets: VecDeque::new(),
            live_total: 0,
            last_t: 0,
            started: false,
            at_last: 0,
        }
    }

    fn expire(&mut self, now: Time) {
        if let Some(w) = self.window {
            let cutoff = now.saturating_sub(w);
            while let Some(front) = self.buckets.front() {
                if front.end < cutoff {
                    self.live_total -= front.count;
                    self.buckets.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    fn canonicalize(&mut self) {
        loop {
            let mut class_size = 0u64;
            let mut run = 0usize;
            let mut overfull_at: Option<usize> = None;
            for idx in (0..self.buckets.len()).rev() {
                let c = self.buckets[idx].count;
                if c != class_size {
                    class_size = c;
                    run = 0;
                }
                run += 1;
                if run > self.cap_per_class {
                    overfull_at = Some(idx);
                    break;
                }
            }
            match overfull_at {
                Some(idx) => {
                    let older = self.buckets[idx];
                    let newer = self.buckets[idx + 1];
                    self.buckets[idx + 1] = older.merge_with(&newer);
                    self.buckets.remove(idx);
                }
                None => break,
            }
        }
    }

    fn observe(&mut self, t: Time, f: u64) {
        assert!(f <= 1);
        self.advance(t);
        if f == 0 {
            return;
        }
        self.buckets.push_back(Bucket::unit(t, 1));
        self.live_total += 1;
        self.at_last += 1;
        self.canonicalize();
    }

    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let mut i = 0;
        while i < items.len() {
            let t = items[i].0;
            self.advance(t);
            while i < items.len() && items[i].0 == t {
                let f = items[i].1;
                assert!(f <= 1);
                if f == 1 {
                    self.buckets.push_back(Bucket::unit(t, 1));
                    self.live_total += 1;
                    self.at_last += 1;
                    self.canonicalize();
                }
                i += 1;
            }
        }
    }

    fn advance(&mut self, t: Time) {
        if self.started {
            assert!(t >= self.last_t);
        }
        if !self.started || t > self.last_t {
            self.at_last = 0;
        }
        self.started = true;
        self.last_t = t;
        self.expire(t);
    }

    fn query(&self, t: Time) -> f64 {
        let all: Vec<Bucket> = self.buckets.iter().copied().collect();
        if t == self.last_t && self.at_last > 0 {
            estimate_strict_past(&all, t, self.at_last, Estimator::Halved)
        } else {
            estimate_window(&all, t, t, Estimator::Halved)
        }
    }

    fn buckets(&self) -> Vec<Bucket> {
        self.buckets.iter().copied().collect()
    }
}

// ---------------------------------------------------------------------
// RefWbmh — pre-refactor Wbmh maintenance, verbatim (division-form
// cell test, accumulator merge pass, no `next_merge_at` skip: the
// throttled pass always runs, which the skip must be equivalent to).
// ---------------------------------------------------------------------

#[derive(Clone)]
enum RefCount {
    Exact(u64),
    Approx(ApproxCount),
}

impl RefCount {
    fn value(&self) -> f64 {
        match self {
            RefCount::Exact(c) => *c as f64,
            RefCount::Approx(a) => a.value(),
        }
    }

    fn depth(&self) -> u32 {
        match self {
            RefCount::Exact(_) => 0,
            RefCount::Approx(a) => a.depth(),
        }
    }

    fn absorb(&mut self, f: u64) {
        match self {
            RefCount::Exact(c) => *c = c.saturating_add(f),
            RefCount::Approx(a) => a.absorb(f),
        }
    }

    fn merge(&self, other: &Self) -> Self {
        match (self, other) {
            (RefCount::Exact(a), RefCount::Exact(b)) => RefCount::Exact(a.saturating_add(*b)),
            (RefCount::Approx(a), RefCount::Approx(b)) => {
                RefCount::Approx(ApproxCount::merge(a, b))
            }
            _ => unreachable!("count modes never mix"),
        }
    }
}

#[derive(Clone)]
struct RefBucket {
    start: Time,
    end: Time,
    first_item: Time,
    last_item: Time,
    count: RefCount,
}

struct RefWbmh<G> {
    decay: G,
    schedule: RegionSchedule,
    seal_period: Time,
    merge_beyond_schedule: bool,
    count_epsilon: Option<f64>,
    buckets: VecDeque<RefBucket>,
    open: Option<RefBucket>,
    pending: Option<(Time, u64)>,
    seals_since_pass: usize,
    last_t: Time,
    started: bool,
}

impl<G: DecayFunction> RefWbmh<G> {
    fn new(decay: G, epsilon: f64, max_age: Time, count_epsilon: Option<f64>) -> Self {
        let schedule = RegionSchedule::compute(&decay, epsilon, max_age);
        let seal_period = schedule.seal_period();
        let last = schedule.boundary(schedule.num_regions() - 1);
        let merge_beyond_schedule = decay.weight(last) == 0.0;
        Self {
            decay,
            schedule,
            seal_period,
            merge_beyond_schedule,
            count_epsilon,
            buckets: VecDeque::new(),
            open: None,
            pending: None,
            seals_since_pass: 0,
            last_t: 0,
            started: false,
        }
    }

    fn fresh_count(&self, f: u64) -> RefCount {
        match self.count_epsilon {
            None => RefCount::Exact(f),
            Some(eps) => {
                let mut a = ApproxCount::zero(eps);
                a.absorb(f);
                RefCount::Approx(a)
            }
        }
    }

    fn fold_pending(&mut self) {
        let Some((t, f)) = self.pending.take() else {
            return;
        };
        let cell = t / self.seal_period;
        match &mut self.open {
            Some(open) if open.start / self.seal_period == cell => {
                open.last_item = t;
                open.count.absorb(f);
            }
            _ => {
                if let Some(done) = self.open.take() {
                    self.buckets.push_back(done);
                    self.seals_since_pass += 1;
                }
                self.open = Some(RefBucket {
                    start: cell * self.seal_period,
                    end: cell * self.seal_period + self.seal_period - 1,
                    first_item: t,
                    last_item: t,
                    count: self.fresh_count(f),
                });
            }
        }
    }

    fn may_merge(&self, a: &RefBucket, c: &RefBucket, now: Time) -> bool {
        let union_end = a.end.max(c.end);
        let union_start = a.start.min(c.start);
        if union_end >= now {
            return false;
        }
        let newest_age = now - union_end;
        let oldest_age = now - union_start;
        let region = self.schedule.region_of(newest_age);
        match self.schedule.region_span(region) {
            (_, Some(end)) => oldest_age <= end,
            (_, None) => self.merge_beyond_schedule,
        }
    }

    fn merge_pass(&mut self, now: Time) -> bool {
        let mut merged_any = false;
        let buckets = std::mem::take(&mut self.buckets);
        let mut out: VecDeque<RefBucket> = VecDeque::with_capacity(buckets.len());
        let mut iter = buckets.into_iter();
        let Some(mut acc) = iter.next() else {
            return false;
        };
        for c in iter {
            if self.may_merge(&acc, &c, now) {
                acc = RefBucket {
                    start: acc.start.min(c.start),
                    end: acc.end.max(c.end),
                    first_item: acc.first_item.min(c.first_item),
                    last_item: acc.last_item.max(c.last_item),
                    count: acc.count.merge(&c.count),
                };
                merged_any = true;
            } else {
                out.push_back(acc);
                acc = c;
            }
        }
        out.push_back(acc);
        self.buckets = out;
        merged_any
    }

    fn seal_by_clock(&mut self, now: Time) {
        if let Some(open) = &self.open {
            if now > open.end {
                let done = self.open.take().expect("checked above");
                self.buckets.push_back(done);
                self.seals_since_pass += 1;
            }
        }
    }

    fn advance_inner(&mut self, t: Time, force_pass: bool) {
        if self.started {
            assert!(t >= self.last_t);
        }
        self.started = true;
        if let Some((pt, _)) = self.pending {
            if pt < t {
                self.fold_pending();
            }
        }
        self.seal_by_clock(t);
        if force_pass || self.seals_since_pass >= (self.buckets.len() / 8).max(4) {
            self.merge_pass(t);
            self.seals_since_pass = 0;
        }
        self.last_t = t;
    }

    fn advance(&mut self, t: Time) {
        self.advance_inner(t, true);
    }

    fn observe(&mut self, t: Time, f: u64) {
        self.advance_inner(t, false);
        if f == 0 {
            return;
        }
        match &mut self.pending {
            Some((pt, pf)) if *pt == t => *pf = pf.saturating_add(f),
            _ => self.pending = Some((t, f)),
        }
    }

    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let mut i = 0;
        while i < items.len() {
            let t = items[i].0;
            self.advance_inner(t, false);
            let mut mass = 0u64;
            while i < items.len() && items[i].0 == t {
                mass = mass.saturating_add(items[i].1);
                i += 1;
            }
            if mass == 0 {
                continue;
            }
            match &mut self.pending {
                Some((pt, pf)) if *pt == t => *pf = pf.saturating_add(mass),
                _ => self.pending = Some((t, mass)),
            }
        }
    }

    /// The refactored query evaluation (same `dot_counts`/`dot_mass`
    /// kernels, open-bucket and pending scalar terms) applied to the
    /// *reference* state: matching the real backend bitwise proves the
    /// zero-gather column path computes exactly what the kernels
    /// compute on independently maintained pre-refactor state.
    fn query(&self, t: Time) -> f64 {
        let mut ends: Vec<Time> = Vec::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut mass: Vec<f64> = Vec::new();
        for b in &self.buckets {
            if b.last_item >= t {
                continue;
            }
            ends.push(b.last_item);
            match &b.count {
                RefCount::Exact(c) => exact.push(*c),
                RefCount::Approx(a) => mass.push(a.value()),
            }
        }
        let mut total = if self.count_epsilon.is_none() {
            dot_counts(&self.decay, t, &ends, &exact)
        } else {
            dot_mass(&self.decay, t, &ends, &mass)
        };
        if let Some(open) = &self.open {
            if open.last_item < t {
                total += open.count.value() * self.decay.weight(t - open.last_item);
            }
        }
        if let Some((pt, pf)) = self.pending {
            if pt < t {
                total += pf as f64 * self.decay.weight(t - pt);
            }
        }
        total
    }

    /// The pre-refactor query evaluation, verbatim: gather ages and
    /// counts into columns, one `weight_batch` over the whole gather
    /// (open bucket included), sequential sum.
    fn query_pre_refactor(&self, t: Time) -> f64 {
        let mut end_ages: Vec<Time> = Vec::new();
        let mut counts: Vec<f64> = Vec::new();
        {
            let mut gather = |b: &RefBucket| {
                let eff_end = b.end.min(b.last_item);
                if eff_end >= t {
                    return;
                }
                end_ages.push(t - eff_end);
                counts.push(b.count.value());
            };
            for b in &self.buckets {
                gather(b);
            }
            if let Some(open) = &self.open {
                gather(open);
            }
        }
        let mut w_end = vec![0.0; end_ages.len()];
        self.decay.weight_batch(&end_ages, &mut w_end);
        let mut total: f64 = counts.iter().zip(&w_end).map(|(c, w)| c * w).sum();
        if let Some((pt, pf)) = self.pending {
            if pt < t {
                total += pf as f64 * self.decay.weight(t - pt);
            }
        }
        total
    }

    /// Snapshot in the production encoding, for whole-state equality.
    fn snapshot(&self) -> WbmhSnapshot {
        let encode = |b: &RefBucket| {
            (
                b.start,
                b.end,
                b.first_item,
                b.last_item,
                b.count.value(),
                b.count.depth(),
            )
        };
        let mut buckets: Vec<_> = self.buckets.iter().map(encode).collect();
        let has_open = self.open.is_some();
        if let Some(open) = &self.open {
            buckets.push(encode(open));
        }
        WbmhSnapshot {
            last_t: self.last_t,
            buckets,
            has_open,
            pending: self.pending,
            seals_since_pass: self.seals_since_pass,
        }
    }
}

// ---------------------------------------------------------------------
// Lock-step drivers.
// ---------------------------------------------------------------------

fn check_dom(scn: &Scenario, window: Option<Time>) {
    let mut real = DominationEh::new(0.1, window);
    let mut rf = RefDom::new(0.1, window);
    let ctx = |t: Time| format!("dom window={window:?} scenario={} t={t}", scn.name);
    for op in &scn.ops {
        match op {
            Op::Observe(t, f) => {
                WindowSketch::observe(&mut real, *t, *f);
                rf.observe(*t, *f);
            }
            Op::ObserveBatch(items) => {
                WindowSketch::observe_batch(&mut real, items);
                rf.observe_batch(items);
            }
            Op::Advance(t) => {
                WindowSketch::advance(&mut real, *t);
                rf.advance(*t);
            }
            Op::Query(t) => {
                let a = StreamAggregate::query(&real, *t);
                let b = rf.query(*t);
                assert_eq!(a.to_bits(), b.to_bits(), "query diverged: {}", ctx(*t));
                assert_eq!(
                    WindowSketch::buckets(&real),
                    rf.buckets(),
                    "buckets diverged: {}",
                    ctx(*t)
                );
                assert_eq!(real.live_total(), rf.live_total, "{}", ctx(*t));
            }
        }
    }
    assert_eq!(
        WindowSketch::buckets(&real),
        rf.buckets(),
        "end state: {}",
        scn.name
    );
}

fn check_classic(scn: &Scenario, window: Option<Time>) {
    let mut real = ClassicEh::new(0.1, window);
    let mut rf = RefClassic::new(0.1, window);
    let ctx = |t: Time| format!("classic window={window:?} scenario={} t={t}", scn.name);
    for op in &scn.ops {
        // ClassicEh is a 0/1 structure: cap the scenario's bulk values.
        match op {
            Op::Observe(t, f) => {
                WindowSketch::observe(&mut real, *t, (*f).min(1));
                rf.observe(*t, (*f).min(1));
            }
            Op::ObserveBatch(items) => {
                let capped: Vec<(Time, u64)> = items.iter().map(|&(t, f)| (t, f.min(1))).collect();
                WindowSketch::observe_batch(&mut real, &capped);
                rf.observe_batch(&capped);
            }
            Op::Advance(t) => {
                WindowSketch::advance(&mut real, *t);
                rf.advance(*t);
            }
            Op::Query(t) => {
                let a = StreamAggregate::query(&real, *t);
                let b = rf.query(*t);
                assert_eq!(a.to_bits(), b.to_bits(), "query diverged: {}", ctx(*t));
                assert_eq!(
                    WindowSketch::buckets(&real),
                    rf.buckets(),
                    "buckets diverged: {}",
                    ctx(*t)
                );
                assert_eq!(real.live_total(), rf.live_total, "{}", ctx(*t));
            }
        }
    }
    assert_eq!(
        WindowSketch::buckets(&real),
        rf.buckets(),
        "end state: {}",
        scn.name
    );
}

fn check_wbmh<G: DecayFunction + Clone>(
    scn: &Scenario,
    decay: G,
    epsilon: f64,
    max_age: Time,
    count_epsilon: Option<f64>,
) {
    let mut real = match count_epsilon {
        None => Wbmh::new(decay.clone(), epsilon, max_age),
        Some(ce) => Wbmh::with_approx_counts(decay.clone(), epsilon, max_age, ce),
    };
    let mut rf = RefWbmh::new(decay.clone(), epsilon, max_age, count_epsilon);
    let ctx = |t: Time| {
        format!(
            "wbmh {} eps={epsilon} approx={count_epsilon:?} scenario={} t={t}",
            decay.describe(),
            scn.name
        )
    };
    for op in &scn.ops {
        match op {
            Op::Observe(t, f) => {
                real.observe(*t, *f);
                rf.observe(*t, *f);
            }
            Op::ObserveBatch(items) => {
                real.observe_batch(items);
                rf.observe_batch(items);
            }
            Op::Advance(t) => {
                real.advance(*t);
                rf.advance(*t);
            }
            Op::Query(t) => {
                let a = real.query(*t);
                let b = rf.query(*t);
                assert_eq!(a.to_bits(), b.to_bits(), "query diverged: {}", ctx(*t));
                assert_eq!(
                    real.snapshot(),
                    rf.snapshot(),
                    "state diverged: {}",
                    ctx(*t)
                );
                // The chunk-regrouped kernel sum stays within summation
                // slop of the pre-refactor whole-gather evaluation.
                let pre = rf.query_pre_refactor(*t);
                assert!(
                    (a - pre).abs() <= 1e-12 * pre.abs().max(1.0),
                    "drifted from pre-refactor evaluation: {} ({a} vs {pre})",
                    ctx(*t)
                );
            }
        }
    }
    assert_eq!(real.snapshot(), rf.snapshot(), "end state: {}", scn.name);
}

// ---------------------------------------------------------------------
// The property: lock-step equality over every scenario family.
// ---------------------------------------------------------------------

const WBMH_MAX_AGE: Time = 1 << 41;

proptest! {
    #[test]
    fn soa_backends_match_pre_refactor_aos(
        seed in 0u64..1_000_000,
        pick in 0usize..4,
    ) {
        for scn in catalogue(seed, 150) {
            match pick {
                0 => {
                    check_dom(&scn, None);
                    check_dom(&scn, Some(257));
                }
                1 => {
                    check_classic(&scn, None);
                    check_classic(&scn, Some(257));
                }
                // The WBMH schedule is precomputed to WBMH_MAX_AGE;
                // skip the one family whose clock outruns it (same cap
                // the certifier applies).
                2 if scn.max_time() <= WBMH_MAX_AGE / 2 => {
                    check_wbmh(&scn, Polynomial::new(1.0), 0.1, WBMH_MAX_AGE, None);
                    check_wbmh(&scn, Polynomial::new(2.0), 0.3, WBMH_MAX_AGE, None);
                }
                3 if scn.max_time() <= WBMH_MAX_AGE / 2 => {
                    check_wbmh(&scn, Exponential::new(0.01), 0.2, WBMH_MAX_AGE, None);
                    check_wbmh(&scn, Polynomial::new(1.0), 0.1, WBMH_MAX_AGE, Some(0.05));
                }
                _ => {}
            }
        }
    }
}
