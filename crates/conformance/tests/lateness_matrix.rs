//! The lateness matrix (ISSUE 7): every backend × decay pair behind a
//! `td-reorder` bounded-lateness stage, fed the out-of-arrival-order
//! families under **both** policies, certified against an independent
//! watermark simulation and exact ground truth.
//!
//! Tier-1 (`cargo test -p td-conformance`) runs a small seed set; the
//! exhaustive sweep (`-- --ignored`) turns up seeds, stream lengths,
//! and lateness bounds. Failures print the same replayable `(family,
//! seed, tick)` repro the in-order certifier uses.

use td_conformance::{
    certify_lateness, default_lateness_matrix, has_late_arrivals, late_arrival_catalogue,
};
use td_reorder::LatenessPolicy;

/// Runs the full lateness matrix over `seeds` × `n`-length arrival
/// streams at each `bound`, returning every failure's replayable
/// description.
fn sweep(seeds: &[u64], n: usize, bounds: &[u64]) -> Vec<String> {
    let matrix = default_lateness_matrix();
    let mut failures = Vec::new();
    let mut runs = 0usize;
    let mut late_streams = 0usize;
    for &seed in seeds {
        for &bound in bounds {
            for stream in late_arrival_catalogue(seed, n, bound) {
                if has_late_arrivals(&stream) {
                    late_streams += 1;
                }
                for case in &matrix {
                    for policy in [LatenessPolicy::Reject, LatenessPolicy::Fold] {
                        match certify_lateness(case, &stream, policy) {
                            Ok(stats) => {
                                runs += 1;
                                assert!(
                                    stats.queries > 0,
                                    "{}/{:?}/{}: no queries ran",
                                    case.name,
                                    policy,
                                    stream.name
                                );
                            }
                            Err(f) => failures.push(f.to_string()),
                        }
                    }
                }
            }
        }
    }
    assert!(runs > 0, "lateness sweep ran no cases");
    assert!(
        late_streams > 0,
        "lateness sweep exercised no genuinely late arrivals"
    );
    failures
}

#[test]
fn tier1_lateness_matrix_all_backends_both_policies_within_envelope() {
    let failures = sweep(&[1, 2], 160, &[6]);
    assert!(
        failures.is_empty(),
        "{} lateness conformance failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
#[ignore = "exhaustive lateness sweep: run with `cargo test -p td-conformance -- --ignored`"]
fn exhaustive_lateness_many_seeds_long_streams_varied_bounds() {
    let seeds: Vec<u64> = (0..12).collect();
    let failures = sweep(&seeds, 800, &[1, 6, 40]);
    assert!(
        failures.is_empty(),
        "{} lateness conformance failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Acceptance probe: a backend that silently *accepts* beyond-bound
/// mass into its answer (instead of rejecting or folding-with-widening)
/// must be caught. We simulate it by certifying a `Reject` run whose
/// stage is handed a looser bound than the simulation assumes — the
/// stage accepts items the certifier predicts late, and the fate
/// mismatch panics with the replayable repro.
#[test]
fn a_stage_with_the_wrong_bound_is_caught() {
    use td_conformance::LateStream;

    let matrix = default_lateness_matrix();
    let case = &matrix[0]; // exact/exp: tightest envelope, no slack to hide in
    let stream = late_arrival_catalogue(7, 200, 4)
        .into_iter()
        .find(|s| s.name == "late-heavy-tail")
        .expect("heavy-tail family exists");
    assert!(has_late_arrivals(&stream));

    // Same arrivals, but the certifier is told the bound is looser than
    // the one the family was tuned for: its simulation now predicts
    // *on-time* for items the family pushed beyond the tight bound —
    // while a stage honoring the loose bound agrees. Consistency holds.
    let loose = LateStream {
        bound: 400,
        ..stream.clone()
    };
    certify_lateness(case, &loose, LatenessPolicy::Reject).expect("loose bound certifies");

    // And with the tight bound the certifier demands rejections — a
    // stage that failed to reject would panic the fate check. Here the
    // stage is correct, so the run certifies *with* rejections.
    let report = certify_lateness(case, &stream, LatenessPolicy::Reject)
        .expect("tight bound certifies with rejections");
    assert!(report.queries > 0);
}
