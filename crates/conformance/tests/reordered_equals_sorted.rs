//! Property (ISSUE 7, satellite): **reordered equals sorted.** Any
//! within-bound shuffle of any scenario family's observations, pushed
//! through a `td-reorder` stage, must be indistinguishable — released
//! stream element-for-element, answers bit-for-bit — from a sorted
//! replay of the same items into the same backend.
//!
//! Two layers:
//!
//! * a recording backend proves the released stream *is* the stable
//!   sort of the arrival sequence (same items, same order, and
//!   non-decreasing timestamps enforced on every call — the "bit-for-bit
//!   non-decreasing invariant downstream");
//! * every backend in the lateness matrix then answers queries with
//!   `to_bits`-identical f64s under the shuffled-and-reordered feed vs
//!   the sorted feed — not "within the envelope": *identical*.

use proptest::prelude::*;
use td_conformance::{catalogue, BoxedAgg, Op, Rng};
use td_decay::{StorageAccounting, StreamAggregate, Time};
use td_reorder::{LatenessPolicy, Reorderer};

/// Flattens a scenario's observations to `(t, f)` items, dropping
/// queries and advances (the stage drives the inner clock itself).
fn items_of(ops: &[Op]) -> Vec<(Time, u64)> {
    let mut items = Vec::new();
    for op in ops {
        match op {
            Op::Observe(t, f) => items.push((*t, *f)),
            Op::ObserveBatch(batch) => items.extend_from_slice(batch),
            _ => {}
        }
    }
    items
}

/// A within-bound shuffle: each item is delayed by at most `bound`
/// arrival keys, so no arrival can ever be late (the watermark when it
/// arrives is at most its own timestamp — see `late_uniform_within`).
fn shuffle_within_bound(items: &[(Time, u64)], bound: u64, rng: &mut Rng) -> Vec<(Time, u64)> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    let keys: Vec<Time> = items
        .iter()
        .map(|&(t, _)| t + rng.below(bound + 1))
        .collect();
    order.sort_by_key(|&i| keys[i]);
    order.into_iter().map(|i| items[i]).collect()
}

/// A backend that records exactly what reaches it and enforces the
/// non-decreasing contract on every single call.
#[derive(Clone, Default)]
struct Recorder {
    items: Vec<(Time, u64)>,
    last_t: Time,
}

impl StorageAccounting for Recorder {
    fn storage_bits(&self) -> u64 {
        (self.items.len() * 128) as u64
    }
}

impl StreamAggregate for Recorder {
    fn observe(&mut self, t: Time, f: u64) {
        assert!(
            t >= self.last_t,
            "released stream went backwards: {t} after {}",
            self.last_t
        );
        self.last_t = t;
        self.items.push((t, f));
    }
    fn advance(&mut self, t: Time) {
        assert!(
            t >= self.last_t,
            "clock went backwards: {t} after {}",
            self.last_t
        );
        self.last_t = t;
    }
    fn query(&self, _t: Time) -> f64 {
        0.0
    }
    fn merge_from(&mut self, _other: &Self) {
        unimplemented!()
    }
}

proptest! {
    /// Layer 1: the released stream is the stable sort of the arrivals,
    /// for every family in the catalogue.
    #[test]
    fn released_stream_is_the_stable_sort(
        seed in 0u64..1_000_000,
        bound_pick in 0usize..3,
    ) {
        let bound = [2u64, 7, 23][bound_pick];
        for scenario in catalogue(seed, 80) {
            let items = items_of(&scenario.ops);
            if items.is_empty() {
                continue;
            }
            let mut rng = Rng::new(seed ^ 0xB0);
            let arrivals = shuffle_within_bound(&items, bound, &mut rng);

            let mut r = Reorderer::with_sources(
                Recorder::default(),
                Box::new(td_decay::Constant),
                bound,
                LatenessPolicy::Reject,
                3,
            );
            for &(t, f) in &arrivals {
                let source = rng.below(3) as usize;
                prop_assert!(
                    r.push(source, t, f).is_ok(),
                    "{} seed {seed} bound {bound}: within-bound arrival (t={t}) went late",
                    scenario.name
                );
            }
            r.flush();

            let mut sorted = arrivals.clone();
            sorted.sort_by_key(|&(t, _)| t); // stable: arrival order within a tick
            prop_assert_eq!(
                &r.inner().items,
                &sorted,
                "{} seed {} bound {}: released stream != stable sort",
                scenario.name,
                seed,
                bound
            );
        }
    }

    /// Layer 2: every backend in the lateness matrix answers with
    /// bit-identical f64s under the reordered feed vs a sorted per-item
    /// replay — across all families, bounds, and query offsets.
    #[test]
    fn reordered_equals_sorted_for_every_backend(
        seed in 0u64..1_000_000,
        bound_pick in 0usize..3,
        case_pick in 0usize..10,
    ) {
        let bound = [2u64, 7, 23][bound_pick];
        let matrix = td_conformance::default_lateness_matrix();
        let case = &matrix[case_pick % matrix.len()];
        for scenario in catalogue(seed, 80) {
            let items = items_of(&scenario.ops);
            if items.is_empty() {
                continue;
            }
            let mut rng = Rng::new(seed ^ 0xB1);
            let arrivals = shuffle_within_bound(&items, bound, &mut rng);

            let (backend, rdecay, _tdecay) = case.fresh();
            let mut r = Reorderer::with_sources(
                BoxedAgg(backend),
                rdecay,
                bound,
                LatenessPolicy::Reject,
                3,
            );
            for &(t, f) in &arrivals {
                let source = rng.below(3) as usize;
                prop_assert!(r.push(source, t, f).is_ok());
            }
            r.flush();

            let (direct, _rd, _td) = case.fresh();
            let mut direct = BoxedAgg(direct);
            let mut sorted = arrivals.clone();
            sorted.sort_by_key(|&(t, _)| t);
            for &(t, f) in &sorted {
                direct.observe(t, f);
            }

            // Probes start at the clock (both replicas sit at t_max):
            // some backends (WBMH) refuse to look further back.
            let t_max = scenario.max_time();
            for q in [t_max, t_max + 1, t_max + 7, t_max + 100] {
                prop_assert_eq!(
                    r.query(q).to_bits(),
                    direct.query(q).to_bits(),
                    "{}+{} seed {} bound {}: answers diverged at q={} \
                     (reordered {} vs sorted {})",
                    case.name,
                    scenario.name,
                    seed,
                    bound,
                    q,
                    r.query(q),
                    direct.query(q)
                );
            }
        }
    }
}
