//! Property tests of the td-shard serving engine against the
//! single-threaded backends it wraps.
//!
//! Two properties:
//!
//! * **Envelope containment.** For every scenario family in the
//!   catalogue, a `ShardedAggregate` over K worker shards replaying
//!   the *same interleaved stream* as a single-shard backend answers
//!   every query (a) within its own merged `error_bound()` of the
//!   oracle truth, and (b) within the merge-widened envelope of the
//!   single backend's answer — both centered estimates are certified
//!   around the same true decayed sum, so their ratio is confined to
//!   `[(1−l_m)/(1+u_1), (1+u_m)/(1−l_1)]`.
//! * **Shutdown-mid-batch drain.** Tearing the engine down via
//!   `into_merged` immediately after pushing batches — no barrier, no
//!   query, workers still mid-drain — loses nothing: the folded
//!   summary carries exactly the mass an exact single-threaded counter
//!   accumulated from the same items.

use proptest::prelude::*;
use td_ceh::CascadedEh;
use td_conformance::{catalogue, FaultInjector, FaultMode, FaultPlan, Op, Oracle, Scenario};
use td_counters::{ExactDecayedSum, ExpCounter};
use td_decay::{DecayFunction, ErrorBound, Exponential, Polynomial, StreamAggregate, Time};
use td_shard::{ShardHealth, ShardedAggregate, SupervisorOptions};
use td_wbmh::Wbmh;

/// Matches the certifier's f64 summation-order tolerance, scaled up a
/// touch because three replicas (sharded, single, oracle) sum the same
/// stream in three different orders.
fn slop(v: f64) -> f64 {
    1e-7 * v.abs().max(1.0)
}

/// The restart property injects hundreds of expected panics; keep their
/// backtraces out of the test output. Real failures still print.
fn quiet_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// The envelope of `est_sharded` *around the single backend's answer*:
/// with `est_s ∈ [v(1−l_m), v(1+u_m)]` and `est_1 ∈ [v(1−l_1), v(1+u_1)]`
/// for the same non-negative truth `v`, the ratio `est_s / est_1` lies in
/// `[(1−l_m)/(1+u_1), (1+u_m)/(1−l_1)]`.
fn combined_envelope(merged: ErrorBound, single: ErrorBound) -> Option<ErrorBound> {
    if !merged.is_bounded() || !single.is_bounded() || single.lower >= 1.0 {
        return None;
    }
    Some(ErrorBound {
        lower: 1.0 - (1.0 - merged.lower) / (1.0 + single.upper),
        upper: (1.0 + merged.upper) / (1.0 - single.lower) - 1.0,
    })
}

/// Replays `scenario` into a K-shard engine, a single backend, and the
/// brute-force oracle in lock-step, checking both containment claims at
/// every query.
fn check_scenario<B>(
    make: &dyn Fn() -> B,
    oracle_decay: Box<dyn DecayFunction>,
    k: usize,
    scenario: &Scenario,
    label: &str,
) where
    B: StreamAggregate + Clone + Send + 'static,
{
    let mut sharded = ShardedAggregate::new(k, make);
    let mut single = make();
    let mut oracle = Oracle::new(oracle_decay);
    for op in &scenario.ops {
        match op {
            Op::Observe(t, f) => {
                sharded.observe(*t, *f);
                single.observe(*t, *f);
                oracle.observe(*t, *f);
            }
            Op::ObserveBatch(items) => {
                sharded.observe_batch(items);
                single.observe_batch(items);
                oracle.observe_batch(items);
            }
            Op::Advance(t) => {
                sharded.advance(*t);
                single.advance(*t);
                oracle.advance(*t);
            }
            Op::Query(t) => {
                let est_s = sharded.query(*t);
                let bound_m = sharded.error_bound();
                let est_1 = single.query(*t);
                let truth = oracle.decayed_sum(*t);
                assert!(
                    bound_m.admits(est_s, truth, slop(truth)),
                    "{label} x{k} vs oracle: {} seed {} t={t}: est {est_s} \
                     outside {bound_m:?} around {truth}",
                    scenario.name,
                    scenario.seed,
                );
                if let Some(env) = combined_envelope(bound_m, single.error_bound()) {
                    assert!(
                        env.admits(est_s, est_1, slop(est_1)),
                        "{label} x{k} vs single: {} seed {} t={t}: sharded {est_s} \
                         outside {env:?} around single-shard {est_1}",
                        scenario.name,
                        scenario.seed,
                    );
                }
            }
        }
    }
}

proptest! {
    /// K-shard engines agree with their single-shard counterpart on
    /// every family in the scenario catalogue, for an exact backend
    /// (ExpCounter), a Theorem-1 sketch (CEH), and WBMH.
    #[test]
    fn sharded_within_merged_envelope_of_single(
        seed in 0u64..1_000_000,
        k in 2usize..5,
        pick in 0usize..3,
    ) {
        for scenario in catalogue(seed, 80) {
            match pick {
                0 => check_scenario(
                    &|| ExpCounter::new(Exponential::new(0.01)),
                    Box::new(Exponential::new(0.01)),
                    k,
                    &scenario,
                    "exp-counter",
                ),
                1 => check_scenario(
                    &|| CascadedEh::new(Exponential::new(0.01), 0.1),
                    Box::new(Exponential::new(0.01)),
                    k,
                    &scenario,
                    "ceh/exp",
                ),
                _ => check_scenario(
                    &|| Wbmh::new(Polynomial::new(1.0), 0.1, 1 << 41),
                    Box::new(Polynomial::new(1.0)),
                    k,
                    &scenario,
                    "wbmh/poly1",
                ),
            }
        }
    }

    /// Shutdown mid-batch drains everything: `into_merged` without any
    /// barrier or query must account for every submitted item, even
    /// with a tiny ring forcing the coordinator to block on full
    /// buffers right up to the teardown.
    #[test]
    fn shutdown_mid_batch_loses_nothing(
        k in 2usize..5,
        batches in collection::vec((1u64..50, 1u64..9), 1..20),
    ) {
        let mut engine = ShardedAggregate::with_options(
            k,
            td_shard::Partitioner::RoundRobin,
            64, // tiny ring: teardown happens with items still queued
            || ExactDecayedSum::new(td_decay::Constant),
        );
        let mut expected = 0u64;
        let mut t: Time = 0;
        for &(dt, per_item) in &batches {
            t += dt;
            let items: Vec<(Time, u64)> = (0..97).map(|_| (t, per_item)).collect();
            expected += 97 * per_item;
            engine.observe_batch(&items);
        }
        // No barrier, no query: workers are mid-drain right here.
        let merged = engine.into_merged().expect("no shard failed");
        let got = merged.query(t + 1);
        prop_assert!(
            (got - expected as f64).abs() < 1e-6,
            "dropped mass: merged {got} vs submitted {expected}"
        );
    }

    /// Supervised restart is lossless: a worker that panics on its Kth
    /// applied batch (seeded victim, seeded trigger), restores its
    /// per-chunk checkpoint, and replays, ends up serving *exactly* the
    /// answers of an identical engine that never failed — same shard
    /// count, same routing, same backends, so the only admissible
    /// difference is f64 noise. The post-recovery engine must also
    /// report itself fully healed (no degraded shards, exactly one
    /// restart, zero lost mass).
    #[test]
    fn supervised_restart_matches_the_never_failed_run(
        seed in 0u64..1_000_000,
        k in 2usize..5,
        fire_after in 3u64..30,
        pick in 0usize..16,
    ) {
        let scenarios = catalogue(seed, 120);
        let scenario = &scenarios[pick % scenarios.len()];
        let items: u64 = scenario.ops.iter().map(|op| match op {
            Op::Observe(..) => 1,
            Op::ObserveBatch(b) => b.len() as u64,
            _ => 0,
        }).sum();
        // Round-robin gives the victim ~1/k of the stream; skip plans
        // whose trigger could never trip. (The vendored proptest shim
        // runs cases in a loop, so `continue` is its `prop_assume`.)
        if items < (fire_after + 2) * k as u64 {
            continue;
        }

        quiet_injected_panics();
        let plan = FaultPlan {
            seed,
            victim: (seed as usize) % k,
            panic_after_items: fire_after,
            mode: FaultMode::Restart,
        };
        let injector = FaultInjector::new(plan);
        let mut faulted = ShardedAggregate::supervised(
            k,
            SupervisorOptions::default(),
            injector.factory(|| ExpCounter::new(Exponential::new(0.01))),
        );
        let mut clean = ShardedAggregate::new(k, || ExpCounter::new(Exponential::new(0.01)));

        for op in &scenario.ops {
            match op {
                Op::Observe(t, f) => {
                    faulted.observe(*t, *f);
                    clean.observe(*t, *f);
                }
                Op::ObserveBatch(items) => {
                    faulted.observe_batch(items);
                    clean.observe_batch(items);
                }
                Op::Advance(t) => {
                    faulted.advance(*t);
                    clean.advance(*t);
                }
                Op::Query(t) => {
                    let ans = faulted.try_query(*t).expect("barrier must not wedge");
                    let want = clean.query(*t);
                    prop_assert!(
                        (ans.value - want).abs() <= want.abs() * 1e-9 + 1e-9,
                        "{} seed {:#x} t={t}: faulted {} vs never-failed {want} \
                         (degraded {:?})",
                        scenario.name, scenario.seed, ans.value, ans.degraded
                    );
                }
            }
        }
        let t_end = scenario.max_time() + 7;
        let ans = faulted.try_query(t_end).expect("barrier must not wedge");
        let want = clean.query(t_end);
        prop_assert!(
            (ans.value - want).abs() <= want.abs() * 1e-9 + 1e-9,
            "terminal: faulted {} vs never-failed {want}", ans.value
        );
        prop_assert!(ans.degraded.is_empty(), "healed engine reported degraded");
        prop_assert!(injector.fired(), "trigger sized to the stream must fire");
        let stats = faulted.shard_stats();
        prop_assert_eq!(stats[plan.victim].restarts, 1);
        prop_assert_eq!(stats[plan.victim].lost_mass, 0);
        prop_assert!(stats.iter().all(|s| s.health == ShardHealth::Live));
    }
}
