//! The conformance matrix: every backend × decay × scenario family,
//! certified against the exact oracle within the envelope each backend
//! itself reports through `StreamAggregate::error_bound`.
//!
//! Tier-1 (`cargo test -p td-conformance`) runs a small seed set;
//! the exhaustive sweep (`-- --ignored`) turns up seeds and stream
//! lengths. Failures print a replayable `(family, seed, tick)` repro.

use td_conformance::{
    catalogue, certify_sharded, default_matrix, run_scenario, scenario, Oracle, Scenario, TruthKind,
};
use td_decay::{DecayFunction, Polynomial, SlidingWindow, StreamAggregate};
use td_wbmh::Wbmh;

/// Runs the full matrix over `seeds` × `n`-length scenarios, returning
/// every failure's replayable description.
fn sweep(seeds: &[u64], n: usize) -> Vec<String> {
    let matrix = default_matrix();
    let mut failures = Vec::new();
    let mut runs = 0usize;
    for &seed in seeds {
        for sc in catalogue(seed, n) {
            for case in &matrix {
                match case.run(&sc) {
                    None => {} // horizon-capped backend, scenario skipped
                    Some(Ok(stats)) => {
                        runs += 1;
                        assert!(
                            stats.queries > 0,
                            "{}/{}: no queries ran",
                            case.name,
                            sc.name
                        );
                    }
                    Some(Err(f)) => failures.push(f.to_string()),
                }
            }
        }
    }
    assert!(runs > 0, "matrix sweep ran no cases");
    failures
}

#[test]
fn tier1_matrix_all_backends_within_envelope() {
    let failures = sweep(&[1, 2], 160);
    assert!(
        failures.is_empty(),
        "{} conformance failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
#[ignore = "exhaustive sweep: run with `cargo test -p td-conformance -- --ignored`"]
fn exhaustive_matrix_many_seeds_long_streams() {
    let seeds: Vec<u64> = (0..16).collect();
    let failures = sweep(&seeds, 1_000);
    assert!(
        failures.is_empty(),
        "{} conformance failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The exhaustive forward-decay sweep (ISSUE 8): every `forward-*`
/// matrix case (plus the sharded composition) over the full seed set
/// and long streams, and the same backends re-run with the rotation
/// threshold forced low so thousands of landmark rotations happen
/// mid-scenario. Picked up by the weekly `conformance-exhaustive` CI
/// cron alongside the matrix sweep above.
#[test]
#[ignore = "exhaustive sweep: run with `cargo test -p td-conformance -- --ignored`"]
fn exhaustive_forward_sweep() {
    use td_decay::Exponential;
    use td_forward::ForwardDecaySum;

    let matrix: Vec<_> = default_matrix()
        .into_iter()
        .filter(|c| c.name.contains("forward"))
        .collect();
    assert!(matrix.len() >= 7, "forward cases missing from the matrix");
    let mut failures = Vec::new();
    for seed in 0..16u64 {
        for sc in catalogue(seed, 1_000) {
            for case in &matrix {
                if let Some(Err(f)) = case.run(&sc) {
                    failures.push(f.to_string());
                }
            }
            // Rotation-heavy reprise: half a nat per rotation forces a
            // rescale roughly every 50 ticks at λ = 0.01.
            let mut backend =
                ForwardDecaySum::new(Exponential::new(0.01)).with_rotation_exponent(0.5);
            let mut oracle: td_conformance::DynOracle =
                Oracle::new(Box::new(Exponential::new(0.01)));
            if let Err(f) = run_scenario(
                &mut backend,
                &mut oracle,
                TruthKind::Sum,
                None,
                &sc,
                "forward-sum/exp-rot0.5",
            ) {
                failures.push(f.to_string());
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} forward conformance failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Satellite: the empty/at-tick query convention, pinned across every
/// backend in the matrix. A summary that has never observed anything
/// answers 0.0, and an item observed exactly at the query tick is not
/// yet visible (§2.1) — uniformly, with no per-backend exceptions.
#[test]
fn empty_and_at_tick_query_convention_is_uniform() {
    for case in default_matrix() {
        let (mut backend, _oracle) = case.fresh();
        assert_eq!(
            backend.query(5),
            0.0,
            "{}: never-observed summary must answer 0.0",
            case.name
        );
        let f = 3u64.min(case.value_cap.unwrap_or(u64::MAX));
        backend.observe(7, f);
        assert_eq!(
            backend.query(7),
            0.0,
            "{}: an item at the query tick must be invisible (§2.1)",
            case.name
        );
        if !matches!(case.truth, TruthKind::Variance { .. }) {
            assert!(
                backend.query(8) > 0.0,
                "{}: the same item must be visible one tick later",
                case.name
            );
        }
    }
}

/// Satellite: the ε-sweep regression. For ε ∈ {0.5, 0.1, 0.01} the
/// observed worst-case relative error must stay within ε, and storage
/// must grow no faster than the theorem curves — Theorem 1's
/// `O(ε⁻¹ log² N)` for the cascaded EH and Lemma 5.1's logarithmic
/// bucket count for WBMH — checked as growth *ratios* so the test has
/// no magic absolute constants.
#[test]
fn eps_sweep_error_and_storage_track_the_theorems() {
    use td_ceh::CascadedEh;

    let epsilons = [0.5, 0.1, 0.01];
    let sc = scenario::uniform(3, 800);

    let mut ceh_bits = Vec::new();
    let mut wbmh_bits = Vec::new();
    for &eps in &epsilons {
        let mut ceh = CascadedEh::new(SlidingWindow::new(512), eps);
        let mut oracle: td_conformance::DynOracle = Oracle::new(Box::new(SlidingWindow::new(512)));
        let stats = run_scenario(
            &mut ceh,
            &mut oracle,
            TruthKind::Sum,
            None,
            &sc,
            "ceh-sweep",
        )
        .unwrap_or_else(|f| panic!("{f}"));
        assert!(
            stats.max_rel_err <= eps,
            "ceh eps={eps}: observed max rel err {} exceeds ε",
            stats.max_rel_err
        );
        ceh_bits.push(stats.final_storage_bits as f64);

        let mut wbmh = Wbmh::new(Polynomial::new(1.0), eps, 1 << 30);
        let mut oracle: td_conformance::DynOracle = Oracle::new(Box::new(Polynomial::new(1.0)));
        let stats = run_scenario(
            &mut wbmh,
            &mut oracle,
            TruthKind::Sum,
            None,
            &sc,
            "wbmh-sweep",
        )
        .unwrap_or_else(|f| panic!("{f}"));
        assert!(
            stats.max_rel_err <= eps,
            "wbmh eps={eps}: observed max rel err {} exceeds ε",
            stats.max_rel_err
        );
        wbmh_bits.push(stats.final_storage_bits as f64);
    }

    // Tightening ε from 0.5 to 0.01 is a 50× budget increase; Theorem 1
    // storage is linear in 1/ε (times polylog factors already present
    // at both ends), so the growth ratio must stay well under 50 with
    // polylog headroom. WBMH's bucket count is ~log_{1+ε} of the weight
    // range — also at most linear in 1/ε.
    let budget_ratio = epsilons[0] / epsilons[2]; // 50×
    for (name, bits) in [("ceh", &ceh_bits), ("wbmh", &wbmh_bits)] {
        assert!(
            bits[2] <= bits[0] * budget_ratio * 1.5,
            "{name}: storage grew faster than the 1/ε theorem curve: {bits:?}"
        );
        assert!(
            bits[0] <= bits[2],
            "{name}: storage should not shrink as ε tightens: {bits:?}"
        );
    }
}

/// Acceptance: deliberately corrupting one bucket inside a backend
/// must make the certifier fail — and the failure must carry the
/// replayable seed and scenario name.
#[test]
fn corrupting_one_bucket_is_caught_with_replayable_seed() {
    let sc = scenario::uniform(42, 400);
    let decay = Polynomial::new(1.0);
    let mut wbmh = Wbmh::new(decay, 0.1, 1 << 30);
    let mut oracle: td_conformance::DynOracle = Oracle::new(Box::new(decay));
    for op in &sc.ops {
        match op {
            scenario::Op::Observe(t, f) => {
                wbmh.observe(*t, *f);
                oracle.observe(*t, *f);
            }
            scenario::Op::ObserveBatch(items) => {
                wbmh.observe_batch(items);
                oracle.observe_batch(items);
            }
            scenario::Op::Advance(t) => {
                wbmh.advance(*t);
                StreamAggregate::advance(&mut oracle, *t);
            }
            scenario::Op::Query(_) => {}
        }
    }
    let probe = sc.max_time() + 1;

    // Corrupt the bucket contributing the most decayed mass at the
    // probe time (so the perturbation cannot hide in the envelope).
    let mut snap = wbmh.snapshot();
    assert!(
        snap.buckets.len() > 1,
        "need several buckets to corrupt one"
    );
    let victim = (0..snap.buckets.len())
        .max_by(|&a, &b| {
            let share = |i: usize| {
                let (_, _, _, last_item, count, _) = snap.buckets[i];
                count * decay.weight(probe.saturating_sub(last_item).max(1))
            };
            share(a).partial_cmp(&share(b)).unwrap()
        })
        .unwrap();
    snap.buckets[victim].4 *= 50.0;
    let mut corrupted = Wbmh::restore(decay, 0.1, 1 << 30, None, &snap);

    let queries_only = Scenario {
        name: sc.name.clone(),
        seed: sc.seed,
        ops: vec![scenario::Op::Query(probe)],
    };
    let err = run_scenario(
        &mut corrupted,
        &mut oracle,
        TruthKind::Sum,
        None,
        &queries_only,
        "wbmh/poly1-corrupted",
    )
    .expect_err("a corrupted bucket must fail certification");
    assert_eq!(err.seed, 42, "failure must carry the scenario seed");
    assert_eq!(err.scenario, "uniform");
    assert_eq!(err.query_time, probe);
    let msg = err.to_string();
    assert!(
        msg.contains("0x2a") && msg.contains("uniform"),
        "repro line must name seed and family: {msg}"
    );

    // Sanity: the uncorrupted histogram certifies the same query.
    let pristine_err = run_scenario(
        &mut wbmh,
        &mut oracle,
        TruthKind::Sum,
        None,
        &queries_only,
        "wbmh/poly1",
    );
    assert!(pristine_err.is_ok(), "pristine histogram must certify");
}

/// Distributed (§6): shard-then-merge answers certify against the
/// whole-stream oracle under the merged (widened) envelope.
#[test]
fn sharded_ingestion_certifies_after_merge() {
    use td_ceh::CascadedEh;
    use td_counters::ExpCounter;
    use td_decay::Exponential;
    use td_eh::DominationEh;

    let sc = scenario::bursty(9, 200);

    certify_sharded(
        || CascadedEh::new(Exponential::new(0.01), 0.1),
        Box::new(Exponential::new(0.01)),
        &sc,
        3,
        None,
        "ceh/exp",
        |a, b| a.merge_from(b),
    )
    .unwrap_or_else(|f| panic!("{f}"));

    certify_sharded(
        || ExpCounter::new(Exponential::new(0.01)),
        Box::new(Exponential::new(0.01)),
        &sc,
        3,
        None,
        "exp-counter",
        |a, b| a.merge_from(b),
    )
    .unwrap_or_else(|f| panic!("{f}"));

    certify_sharded(
        || DominationEh::new(0.1, None),
        Box::new(td_decay::Constant),
        &sc,
        3,
        None,
        "domination-eh/landmark",
        |a, b| a.merge_from(b),
    )
    .unwrap_or_else(|f| panic!("{f}"));

    certify_sharded(
        || Wbmh::new(Polynomial::new(1.0), 0.1, 1 << 30),
        Box::new(Polynomial::new(1.0)),
        &sc,
        3,
        None,
        "wbmh/poly1",
        |a, b| a.merge_from(b),
    )
    .unwrap_or_else(|f| panic!("{f}"));

    certify_sharded(
        || td_forward::ForwardDecaySum::new(Exponential::new(0.01)),
        Box::new(Exponential::new(0.01)),
        &sc,
        3,
        None,
        "forward-sum/exp",
        |a, b| a.merge_from(b),
    )
    .unwrap_or_else(|f| panic!("{f}"));
}
