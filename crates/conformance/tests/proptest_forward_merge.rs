//! Property (ISSUE 8 satellite): **forward-decay merge is associative**
//! across deliberately unequal landmarks.
//!
//! Three shards ingest disjoint time-sliced substreams with the
//! rotation threshold forced low, so each shard's landmark ends up
//! somewhere different. Merging `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` must
//! agree with each other and with a whole-stream replay — within the
//! merged accumulators' own reported envelopes around the oracle truth,
//! exactly how the sharded serving engine is certified.

use proptest::prelude::*;
use td_conformance::Oracle;
use td_decay::{Exponential, Polynomial, StreamAggregate, Time};
use td_forward::ForwardDecaySum;

/// Deterministic stream: mild gaps with occasional silences, so a low
/// rotation threshold forces many rotations at different points in each
/// shard's slice.
fn stream(seed: u64, n: usize) -> Vec<(Time, u64)> {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut t = 1u64;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t += if x.is_multiple_of(11) {
            40 + x % 60
        } else {
            x % 4
        };
        items.push((t, (x >> 33) % 1000));
    }
    items
}

proptest! {
    #[test]
    fn three_way_merge_is_associative_across_unequal_landmarks(
        seed in 0u64..1_000_000,
        lam_m in 1usize..4,
        cut_a in 20usize..40,
        cut_b in 50usize..70,
    ) {
        let lambda = 0.1 * lam_m as f64;
        let items = stream(seed, 600);
        let n = items.len();
        let (ca, cb) = (n * cut_a / 100, n * cut_b / 100);
        let mk = || {
            ForwardDecaySum::new(Exponential::new(lambda)).with_rotation_exponent(1.0)
        };

        let mut a = mk();
        let mut b = mk();
        let mut c = mk();
        a.observe_batch(&items[..ca]);
        b.observe_batch(&items[ca..cb]);
        c.observe_batch(&items[cb..]);
        prop_assert!(
            a.landmark() != b.landmark() || b.landmark() != c.landmark(),
            "shards converged to one landmark ({}, {}, {}) — not the adversarial case",
            a.landmark(), b.landmark(), c.landmark()
        );

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);

        let mut oracle = Oracle::new(Exponential::new(lambda));
        oracle.observe_batch(&items);

        let last = items.last().unwrap().0;
        for probe in [last, last + 1, last + 33] {
            let truth = oracle.decayed_sum(probe);
            let slop = 1e-9 * truth.abs().max(1.0);
            for (tag, m) in [("left", &left), ("right", &right)] {
                let est = m.query(probe);
                prop_assert!(est.is_finite());
                prop_assert!(
                    m.error_bound().admits(est, truth, slop),
                    "{tag} assoc order at q={probe}: {est} outside envelope of {truth}"
                );
            }
            // The two association orders agree tightly with each other.
            let (l, r) = (left.query(probe), right.query(probe));
            prop_assert!(
                (l - r).abs() <= 1e-9 * l.abs().max(1.0),
                "association orders diverged at q={probe}: {l} vs {r}"
            );
        }
    }

    /// Fixed-landmark (polynomial) shards share `L = 0` by construction:
    /// merge in any order is plain moment addition and must match the
    /// forward-mode oracle.
    #[test]
    fn fixed_landmark_merge_matches_forward_oracle(
        seed in 0u64..1_000_000,
        cut in 25usize..75,
    ) {
        let items = stream(seed ^ 0x77, 400);
        let cut = items.len() * cut / 100;
        let g = Polynomial::new(1.0);
        let mut a = ForwardDecaySum::new(g);
        let mut b = ForwardDecaySum::new(g);
        a.observe_batch(&items[..cut]);
        b.observe_batch(&items[cut..]);
        let mut merged = a.clone();
        merged.merge_from(&b);

        let mut oracle = Oracle::forward(g, 0);
        oracle.observe_batch(&items);
        let probe = items.last().unwrap().0 + 5;
        let truth = oracle.decayed_sum(probe);
        let est = merged.query(probe);
        prop_assert!(
            merged
                .error_bound()
                .admits(est, truth, 1e-9 * truth.abs().max(1.0)),
            "merged fixed-landmark sum {est} outside envelope of {truth}"
        );
    }
}
