//! Golden on-disk durability fixtures: a complete `td-persist` store —
//! WAL segment(s), checkpoint envelope, manifest — captured from a
//! known-good build is committed under `tests/golden/persist/` and
//! every later build must either recover it **exactly** (same entry
//! count, same query bits) or refuse it with the *typed*
//! `RestoreError::Version(_)` — never a silent mis-recovery.
//!
//! This pins the durable format end to end: the 32-byte WAL record
//! header and entry packing, the `ckpt-*.tdcp` envelope (including
//! `PERSIST_FORMAT_VERSION`), and the `manifest.tdcp` pointer file. A
//! build may change in-memory layout freely, but the bytes it writes
//! and the bytes it accepts are contract.
//!
//! Regenerate fixtures (only when deliberately re-baselining the
//! on-disk format, from a build whose format is the one being pinned):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p td-conformance --test golden_persist
//! ```

use std::fs;
use std::path::PathBuf;

use td_ceh::CascadedEh;
use td_conformance::{catalogue, Op, Scenario};
use td_counters::ExactDecayedSum;
use td_decay::checkpoint::{Checkpoint, RestoreError};
use td_decay::{Exponential, StreamAggregate, Time};
use td_persist::{
    DurabilityOptions, DurableAggregate, MemStorage, Storage, StoreOptions, SyncPolicy,
    PERSIST_FORMAT_VERSION,
};

const QUERY_OFFSETS: [u64; 3] = [1, 5, 1000];

/// `(entries_applied, query bits at the probe ticks)` from a live run.
type DriveResult = (u64, Vec<(Time, u64)>);
/// Query closure over the recovered backend.
type QueryFn = Box<dyn Fn(Time) -> f64>;
/// Durable replay of one scenario into a fresh store.
type RunFn = Box<dyn Fn(MemStorage, &Scenario) -> DriveResult>;

/// Fixed tuning for every fixture: small segments force rotation (so
/// the fixture pins multi-segment recovery), and a cadence co-prime to
/// the scenario's record count leaves both a checkpoint *and* a live
/// WAL tail on disk — the fixture pins the record format too.
fn opts() -> DurabilityOptions {
    DurabilityOptions {
        store: StoreOptions {
            segment_bytes: 1024,
            sync: SyncPolicy::EveryRecord,
        },
        checkpoint_every_records: 17,
    }
}

struct GoldenCase {
    name: &'static str,
    run: RunFn,
}

/// Ingests the scenario durably and returns `(entries_applied, query
/// bits at the probe ticks)` from the live (pre-crash) aggregate.
fn drive<B, F>(make: F, storage: MemStorage, scenario: &Scenario) -> DriveResult
where
    B: StreamAggregate + Checkpoint,
    F: FnOnce() -> B,
{
    let (mut agg, _) = DurableAggregate::open(Box::new(storage), opts(), make).expect("fresh open");
    let mut entries = 0u64;
    for op in &scenario.ops {
        match op {
            Op::Observe(t, f) => {
                agg.observe(*t, *f).expect("mem append");
                entries += 1;
            }
            Op::ObserveBatch(items) => {
                agg.observe_batch(items).expect("mem append");
                entries += items.len() as u64;
            }
            Op::Advance(t) => {
                agg.advance(*t).expect("mem append");
                entries += 1;
            }
            Op::Query(_) => {}
        }
    }
    let queries = QUERY_OFFSETS
        .iter()
        .map(|dt| {
            let t = scenario.max_time() + dt;
            (t, agg.query(t).to_bits())
        })
        .collect();
    (entries, queries)
}

fn cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            name: "exact/exp",
            run: Box::new(|storage, sc| {
                drive(|| ExactDecayedSum::new(Exponential::new(0.01)), storage, sc)
            }),
        },
        GoldenCase {
            name: "ceh/exp",
            run: Box::new(|storage, sc| {
                drive(|| CascadedEh::new(Exponential::new(0.01), 0.1), storage, sc)
            }),
        },
    ]
}

/// Opening the fixture store must use the same backend constructors.
fn reopen(
    name: &str,
    storage: MemStorage,
) -> Result<(QueryFn, td_persist::RecoveryStats), RestoreError> {
    match name {
        "exact/exp" => {
            let (agg, stats) = DurableAggregate::open(Box::new(storage), opts(), || {
                ExactDecayedSum::new(Exponential::new(0.01))
            })?;
            Ok((Box::new(move |t| agg.inner().query(t)), stats))
        }
        "ceh/exp" => {
            let (agg, stats) = DurableAggregate::open(Box::new(storage), opts(), || {
                CascadedEh::new(Exponential::new(0.01), 0.1)
            })?;
            Ok((Box::new(move |t| agg.inner().query(t)), stats))
        }
        other => panic!("unknown golden case {other}"),
    }
}

/// The bursty family: multi-class bucket structure, batch and scalar
/// ingest, long enough at n=160 to rotate 1 KiB segments and cross
/// several checkpoint cadences.
fn fixture_scenario() -> Scenario {
    catalogue(5, 160).into_iter().nth(1).expect("bursty family")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/persist"))
}

#[test]
fn golden_store_recovers_exactly_or_fails_typed() {
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    let scenario = fixture_scenario();

    for case in cases() {
        let dir = golden_dir().join(case.name.replace('/', "_"));
        let expect_path = dir.join("expect.manifest");

        if regen {
            fs::create_dir_all(&dir).expect("create fixture dir");
            // Clear stale files so the fixture is exactly one store.
            for entry in fs::read_dir(&dir).expect("read fixture dir") {
                fs::remove_file(entry.expect("dir entry").path()).expect("clear stale fixture");
            }
            let mem = MemStorage::new();
            let (entries, queries) = (case.run)(mem.clone(), &scenario);
            let mut expect = format!("format_version={PERSIST_FORMAT_VERSION}\n");
            expect.push_str(&format!("entries={entries}\n"));
            for (name, bytes) in mem.crashed().durable_files() {
                expect.push_str(&format!("f {} {}\n", name, bytes.len()));
                fs::write(dir.join(&name), bytes).expect("write fixture file");
            }
            for (t, bits) in queries {
                expect.push_str(&format!("q {t} {bits}\n"));
            }
            fs::write(&expect_path, expect).expect("write expect.manifest");
            continue;
        }

        let expect = fs::read_to_string(&expect_path).unwrap_or_else(|e| {
            panic!(
                "missing golden store fixture {} ({e}); regenerate with GOLDEN_REGEN=1 \
                 only from a build whose on-disk format is the pinned one",
                expect_path.display()
            )
        });
        let mut pinned_version = None;
        let mut want_entries = None;
        let mut queries: Vec<(Time, u64)> = Vec::new();
        let mem = MemStorage::new();
        for line in expect.lines() {
            if let Some(v) = line.strip_prefix("format_version=") {
                pinned_version = Some(v.parse::<u32>().expect("format_version u32"));
            } else if let Some(v) = line.strip_prefix("entries=") {
                want_entries = Some(v.parse::<u64>().expect("entries u64"));
            } else if let Some(rest) = line.strip_prefix("f ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("file name");
                let len: usize = parts.next().expect("file len").parse().expect("len usize");
                let bytes = fs::read(dir.join(name)).unwrap_or_else(|e| {
                    panic!("golden store file {name} listed in manifest but unreadable: {e}")
                });
                assert_eq!(
                    bytes.len(),
                    len,
                    "{}: fixture file {name} resized",
                    case.name
                );
                mem.write_atomic(name, &bytes).expect("load fixture file");
            } else if let Some(rest) = line.strip_prefix("q ") {
                let mut parts = rest.split_whitespace();
                let t: Time = parts.next().unwrap().parse().unwrap();
                let bits: u64 = parts.next().unwrap().parse().unwrap();
                queries.push((t, bits));
            }
        }
        let pinned_version = pinned_version.expect("expect.manifest format_version line");
        let want_entries = want_entries.expect("expect.manifest entries line");

        match reopen(case.name, mem) {
            Ok((query, stats)) => {
                // Accepted ⇒ the fixture's version must be the current
                // one, recovery must be lossless (the fixture was synced
                // per record and closed cleanly), and every recorded
                // answer must reproduce bit-for-bit.
                assert_eq!(
                    pinned_version, PERSIST_FORMAT_VERSION,
                    "{}: reader accepted a fixture pinned at a different \
                     format version — version gate is broken",
                    case.name
                );
                assert!(
                    stats.crash_tail.is_none(),
                    "{}: clean fixture read as torn",
                    case.name
                );
                assert_eq!(
                    stats.entries_applied, want_entries,
                    "{}: golden store recovered a different entry count",
                    case.name
                );
                for (t, want) in queries {
                    let got = query(t);
                    assert_eq!(
                        got.to_bits(),
                        want,
                        "{}: query({t}) after golden recovery = {got}, want {} — \
                         recovered state drifted from the pinned format",
                        case.name,
                        f64::from_bits(want)
                    );
                }
            }
            // A deliberate format bump may refuse old stores, but only
            // with the typed version error, and only when the pinned
            // version really is older.
            Err(RestoreError::Version(v)) => {
                assert_ne!(
                    pinned_version, PERSIST_FORMAT_VERSION,
                    "{}: current-version fixture refused as Version({v})",
                    case.name
                );
            }
            Err(e) => panic!(
                "{}: golden store rejected with non-version error {e} — a valid \
                 committed store must recover or fail Version",
                case.name
            ),
        }
    }
}
