//! The fault-injection matrix: every [`FaultMode`] × backend pairing in
//! [`default_fault_matrix`], replayed against the seeded scenario
//! catalogue, lock-step with the exact oracle.
//!
//! What a green run certifies (see `td_conformance::fault`):
//!
//! * every answer the engine served — healthy, mid-failure, degraded —
//!   sat inside its self-reported (widened) envelope of the oracle
//!   truth;
//! * restarted shards healed completely (no degradation, no lost mass,
//!   envelope back to the plain merged bound);
//! * quarantined and checkpoint-corrupted shards were served from
//!   checkpoints, listed as degraded, and every corruption was
//!   *detected* as a checksum failure — never silently restored.
//!
//! Tier-1 runs a bounded sweep; the exhaustive sweep (more seeds,
//! longer streams, a full per-victim × per-offset grid) is behind
//! `cargo test -p td-conformance --test fault_matrix -- --ignored`.
//! Failures print a one-line `fault-injection failure: ...` repro.

use std::sync::Once;

use td_conformance::{
    catalogue, certify_corruption_detected, certify_faulted_reordered, corruption_offsets,
    default_fault_matrix, late_arrival_catalogue, FaultMode, FaultPlan, Op, Scenario,
};
use td_decay::checkpoint::Checkpoint;
use td_decay::StreamAggregate;

/// The injected panics are expected; keep their backtraces out of the
/// test output so a real failure stays visible. Anything that is not an
/// injected fault still prints through the default hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// Total observation count of a scenario — used to skip (seed, plan)
/// pairs whose stream is too short to ever trip the victim's trigger.
fn observed_items(s: &Scenario) -> u64 {
    s.ops
        .iter()
        .map(|op| match op {
            Op::Observe(..) => 1,
            Op::ObserveBatch(items) => items.len() as u64,
            _ => 0,
        })
        .sum()
}

fn sweep(seeds: &[u64], scenario_len: usize) {
    quiet_injected_panics();
    let mut ran = 0usize;
    for case in default_fault_matrix() {
        for &seed in seeds {
            for scenario in catalogue(seed, scenario_len) {
                // Round-robin gives the victim ~1/shards of the stream;
                // leave a margin so the trigger provably trips.
                let need = (case.plan.panic_after_items + 2) * case.shards as u64;
                if observed_items(&scenario) < need {
                    continue;
                }
                let report = case
                    .run(&scenario)
                    .unwrap_or_else(|repro| panic!("{repro}"));
                assert!(report.queries > 0, "{}: no queries checked", case.name);
                if !matches!(case.plan.mode, FaultMode::Restart) {
                    // The terminal probe runs after the fault, so at
                    // least one answer must have been served degraded.
                    assert!(
                        report.degraded_queries > 0,
                        "{}: fault fired but nothing was served degraded",
                        case.name
                    );
                }
                ran += 1;
            }
        }
    }
    assert!(
        ran >= seeds.len() * 6,
        "sweep was mostly vacuous: {ran} runs"
    );
}

#[test]
fn tier1_fault_matrix() {
    sweep(&[3, 11], 160);
}

/// A decode-order canary in tier-1 time: a real (non-trivial) EH
/// checkpoint with every one of a seeded batch of single-bit flips must
/// be rejected as a checksum failure specifically.
#[test]
fn tier1_corruption_canary() {
    let mut eh = td_eh::DominationEh::new(0.1, None);
    // One non-trivial family (times are scenario-local, so only one
    // scenario can feed a single backend).
    let sc = catalogue(9, 160).swap_remove(1);
    for op in &sc.ops {
        match op {
            Op::Observe(t, f) => eh.observe(*t, *f),
            Op::ObserveBatch(items) => eh.observe_batch(items),
            Op::Advance(t) => eh.advance(*t),
            Op::Query(_) => {}
        }
    }
    let bytes = eh.save_checkpoint();
    let offsets = corruption_offsets(0xD00D, bytes.len(), 256);
    certify_corruption_detected("domination-eh", &bytes, offsets, |c| {
        td_eh::DominationEh::new(0.1, None).restore_checkpoint(c)
    })
    .unwrap_or_else(|repro| panic!("{repro}"));
    // And the pristine bytes still restore cleanly.
    let mut fresh = td_eh::DominationEh::new(0.1, None);
    fresh
        .restore_checkpoint(&bytes)
        .expect("uncorrupted checkpoint must restore");
    assert_eq!(fresh.query(1 << 50), eh.query(1 << 50));
}

/// ISSUE 7 satellite: the shard panic fires while the reorder stage in
/// front of the engine still holds buffered out-of-order items. A
/// restart must replay everything losslessly end-to-end; a quarantine
/// must list the victim, account the at-risk mass, and serve the
/// post-panic releases (including the mass buffered at panic time)
/// inside a widened envelope. `certify_faulted_reordered` additionally
/// rejects any run where the stage happened to be empty at the panic —
/// a green run is never vacuous.
fn reordered_fault_sweep(seeds: &[u64], n: usize) {
    quiet_injected_panics();
    use td_counters::{ExactDecayedSum, ExpCounter};
    use td_decay::{Constant, Exponential};

    let mut ran = 0usize;
    for &seed in seeds {
        for stream in late_arrival_catalogue(seed, n, 8) {
            for (victim, mode) in [(1, FaultMode::Restart), (0, FaultMode::Quarantine)] {
                let plan = FaultPlan {
                    seed,
                    victim,
                    panic_after_items: 10,
                    mode,
                };
                certify_faulted_reordered(
                    plan,
                    &stream,
                    3,
                    || Box::new(Constant),
                    "reordered/exact-constant",
                    || ExactDecayedSum::new(Constant),
                )
                .unwrap_or_else(|repro| panic!("{repro}"));
                certify_faulted_reordered(
                    plan,
                    &stream,
                    3,
                    || Box::new(Exponential::new(0.01)),
                    "reordered/exp-counter",
                    || ExpCounter::new(Exponential::new(0.01)),
                )
                .unwrap_or_else(|repro| panic!("{repro}"));
                ran += 2;
            }
        }
    }
    assert!(ran >= seeds.len() * 8, "reordered sweep was mostly vacuous");
}

#[test]
fn tier1_reordered_fault_matrix() {
    reordered_fault_sweep(&[3, 11], 200);
}

/// The nightly sweep: every case × many seeds × longer streams. Run
/// with `-- --ignored`; on failure the panic message is the replayable
/// repro (CI lifts it into the job summary).
#[test]
#[ignore = "exhaustive fault sweep; run in the nightly CI job"]
fn exhaustive_fault_sweep() {
    sweep(&[0, 1, 2, 5, 7, 13, 42, 99, 1234, 0xBEEF], 400);
}

/// Nightly: the reorder-stage fault sweep at scale.
#[test]
#[ignore = "exhaustive reordered fault sweep; run in the nightly CI job"]
fn exhaustive_reordered_fault_sweep() {
    reordered_fault_sweep(&[0, 1, 2, 5, 7, 13, 42, 99], 600);
}
