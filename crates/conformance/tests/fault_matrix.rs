//! The fault-injection matrix: every [`FaultMode`] × backend pairing in
//! [`default_fault_matrix`], replayed against the seeded scenario
//! catalogue, lock-step with the exact oracle.
//!
//! What a green run certifies (see `td_conformance::fault`):
//!
//! * every answer the engine served — healthy, mid-failure, degraded —
//!   sat inside its self-reported (widened) envelope of the oracle
//!   truth;
//! * restarted shards healed completely (no degradation, no lost mass,
//!   envelope back to the plain merged bound);
//! * quarantined and checkpoint-corrupted shards were served from
//!   checkpoints, listed as degraded, and every corruption was
//!   *detected* as a checksum failure — never silently restored.
//!
//! Tier-1 runs a bounded sweep; the exhaustive sweep (more seeds,
//! longer streams, a full per-victim × per-offset grid) is behind
//! `cargo test -p td-conformance --test fault_matrix -- --ignored`.
//! Failures print a one-line `fault-injection failure: ...` repro.

use std::sync::Once;

use td_conformance::{
    catalogue, certify_corruption_detected, corruption_offsets, default_fault_matrix, FaultMode,
    Op, Scenario,
};
use td_decay::checkpoint::Checkpoint;
use td_decay::StreamAggregate;

/// The injected panics are expected; keep their backtraces out of the
/// test output so a real failure stays visible. Anything that is not an
/// injected fault still prints through the default hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// Total observation count of a scenario — used to skip (seed, plan)
/// pairs whose stream is too short to ever trip the victim's trigger.
fn observed_items(s: &Scenario) -> u64 {
    s.ops
        .iter()
        .map(|op| match op {
            Op::Observe(..) => 1,
            Op::ObserveBatch(items) => items.len() as u64,
            _ => 0,
        })
        .sum()
}

fn sweep(seeds: &[u64], scenario_len: usize) {
    quiet_injected_panics();
    let mut ran = 0usize;
    for case in default_fault_matrix() {
        for &seed in seeds {
            for scenario in catalogue(seed, scenario_len) {
                // Round-robin gives the victim ~1/shards of the stream;
                // leave a margin so the trigger provably trips.
                let need = (case.plan.panic_after_items + 2) * case.shards as u64;
                if observed_items(&scenario) < need {
                    continue;
                }
                let report = case
                    .run(&scenario)
                    .unwrap_or_else(|repro| panic!("{repro}"));
                assert!(report.queries > 0, "{}: no queries checked", case.name);
                if !matches!(case.plan.mode, FaultMode::Restart) {
                    // The terminal probe runs after the fault, so at
                    // least one answer must have been served degraded.
                    assert!(
                        report.degraded_queries > 0,
                        "{}: fault fired but nothing was served degraded",
                        case.name
                    );
                }
                ran += 1;
            }
        }
    }
    assert!(
        ran >= seeds.len() * 6,
        "sweep was mostly vacuous: {ran} runs"
    );
}

#[test]
fn tier1_fault_matrix() {
    sweep(&[3, 11], 160);
}

/// A decode-order canary in tier-1 time: a real (non-trivial) EH
/// checkpoint with every one of a seeded batch of single-bit flips must
/// be rejected as a checksum failure specifically.
#[test]
fn tier1_corruption_canary() {
    let mut eh = td_eh::DominationEh::new(0.1, None);
    // One non-trivial family (times are scenario-local, so only one
    // scenario can feed a single backend).
    let sc = catalogue(9, 160).swap_remove(1);
    for op in &sc.ops {
        match op {
            Op::Observe(t, f) => eh.observe(*t, *f),
            Op::ObserveBatch(items) => eh.observe_batch(items),
            Op::Advance(t) => eh.advance(*t),
            Op::Query(_) => {}
        }
    }
    let bytes = eh.save_checkpoint();
    let offsets = corruption_offsets(0xD00D, bytes.len(), 256);
    certify_corruption_detected("domination-eh", &bytes, offsets, |c| {
        td_eh::DominationEh::new(0.1, None).restore_checkpoint(c)
    })
    .unwrap_or_else(|repro| panic!("{repro}"));
    // And the pristine bytes still restore cleanly.
    let mut fresh = td_eh::DominationEh::new(0.1, None);
    fresh
        .restore_checkpoint(&bytes)
        .expect("uncorrupted checkpoint must restore");
    assert_eq!(fresh.query(1 << 50), eh.query(1 << 50));
}

/// The nightly sweep: every case × many seeds × longer streams. Run
/// with `-- --ignored`; on failure the panic message is the replayable
/// repro (CI lifts it into the job summary).
#[test]
#[ignore = "exhaustive fault sweep; run in the nightly CI job"]
fn exhaustive_fault_sweep() {
    sweep(&[0, 1, 2, 5, 7, 13, 42, 99, 1234, 0xBEEF], 400);
}
