//! Lateness as a first-class conformance dimension (ISSUE 7): seeded
//! out-of-**arrival**-order stream families and a certifier that runs
//! them through a [`Reorderer`]-fronted backend in lock-step with an
//! independently simulated watermark and an exact truth computation.
//!
//! The existing scenario families ([`crate::scenario`]) stress
//! *generation-time* skew but always ingest sorted ops, as the
//! [`StreamAggregate`] contract demands. The families here are arrival
//! sequences: items carry their true timestamps but show up out of
//! order, and only the bounded-lateness stage (`td-reorder`) stands
//! between them and the backend. The certifier verifies, per arrival
//! and per query:
//!
//! * the stage's watermark tracks an independent prefix-max simulation
//!   (`W = max_seen − allowed_lateness`) exactly;
//! * every arrival's fate (on-time / rejected / folded) matches what
//!   the simulation predicts — beyond-bound items never silently alter
//!   an answer;
//! * under [`LatenessPolicy::Reject`], answers equal the oracle of the
//!   accepted substream inside the backend's own envelope ("loses
//!   exactly the rejected mass"), and the rejected mass is accounted
//!   to the item in [`td_reorder::ReorderStats::rejected_mass`];
//! * under [`LatenessPolicy::Fold`], answers are checked against the
//!   truth of **all** items at their *true* timestamps, and must sit
//!   inside the *widened* envelope the stage itself certifies.
//!
//! Violations surface as the same replayable [`Failure`] the in-order
//! certifier uses: family name, seed, and first failing query tick.

use td_decay::{DecayFunction, ErrorBound, StorageAccounting, StreamAggregate, Time};
use td_reorder::{LatenessPolicy, Reorderer};

use crate::certify::{DynAggregate, Failure, RunStats};
use crate::scenario::Rng;

/// One out-of-order arrival: an item with true timestamp `t` and value
/// `f` showing up on ingest source `source` at this position of the
/// arrival sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// The ingest source (per-source reorder buffer) the item arrives
    /// on.
    pub source: usize,
    /// The item's true timestamp.
    pub t: Time,
    /// The item's value.
    pub f: u64,
}

/// A seeded out-of-arrival-order stream: the lateness counterpart of
/// [`crate::Scenario`]. Regenerating the named family at `seed` always
/// reproduces the same arrival sequence.
#[derive(Debug, Clone)]
pub struct LateStream {
    /// Family name (goes into [`Failure`] repros).
    pub name: String,
    /// The seed the family was generated from.
    pub seed: u64,
    /// How many ingest sources the arrivals are spread over.
    pub sources: usize,
    /// The `allowed_lateness` this family is tuned against: the
    /// within-bound family never crosses it, the knife-edge families
    /// sit exactly on either side of it.
    pub bound: u64,
    /// Mid-stream queries fire after every this-many arrivals.
    pub checkpoint_every: usize,
    /// The arrival sequence.
    pub arrivals: Vec<Arrival>,
}

impl LateStream {
    /// Largest true timestamp in the stream (0 when empty).
    pub fn max_time(&self) -> Time {
        self.arrivals.iter().map(|a| a.t).max().unwrap_or(0)
    }
}

/// Tail-free skew: every item's arrival delay is at most `bound`, so
/// (provably) no arrival is ever late — the watermark when an item
/// arrives is at most its own timestamp. The family certifies that
/// in-bound reordering is *exact*: same released stream as a stable
/// sort, no widening, no rejections.
pub fn late_uniform_within(seed: u64, n: usize, bound: u64) -> LateStream {
    let mut rng = Rng::new(seed ^ 0x7);
    let sources = 3usize;
    let mut items: Vec<(Time, u64, u64)> = Vec::with_capacity(n); // (t, delay, f)
    let mut t: Time = 1;
    for _ in 0..n {
        t += rng.range(1, 3);
        items.push((t, rng.below(bound + 1), 1 + rng.below(6)));
    }
    // Arrival order: stable sort by (t + delay). An item arriving at
    // key `t + d ≤ t + bound` can only see max_seen ≤ its own key, so
    // W ≤ t: never late.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| items[i].0 + items[i].1);
    let arrivals = order
        .into_iter()
        .map(|i| Arrival {
            source: rng.below(sources as u64) as usize,
            t: items[i].0,
            f: items[i].2,
        })
        .collect();
    LateStream {
        name: "late-uniform-within".into(),
        seed,
        sources,
        bound,
        checkpoint_every: 16,
        arrivals,
    }
}

/// Heavy-tail delay distribution: most items trail the frontier by a
/// small skew, but a geometric tail throws some far beyond the bound —
/// the family that actually exercises the Reject/Fold policies on
/// genuinely late mass.
pub fn late_heavy_tail(seed: u64, n: usize, bound: u64) -> LateStream {
    let mut rng = Rng::new(seed ^ 0x8);
    let sources = 3usize;
    let mut items: Vec<(Time, u64, u64)> = Vec::with_capacity(n);
    let mut t: Time = 1;
    for _ in 0..n {
        t += rng.range(1, 3);
        // ~1 in 6 items draws from the tail: delay in
        // (bound, 3·bound + 1] — far enough past the watermark to be
        // late with near-certainty under the dense frontier.
        let delay = if rng.below(6) == 0 {
            bound + 1 + rng.below(2 * bound + 1)
        } else {
            rng.below(bound / 2 + 1)
        };
        items.push((t, delay, 1 + rng.below(6)));
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| items[i].0 + items[i].1);
    let arrivals = order
        .into_iter()
        .map(|i| Arrival {
            source: rng.below(sources as u64) as usize,
            t: items[i].0,
            f: items[i].2,
        })
        .collect();
    LateStream {
        name: "late-heavy-tail".into(),
        seed,
        sources,
        bound,
        checkpoint_every: 16,
        arrivals,
    }
}

/// Knife-edge adversarial, inside: after each frontier advance, echo an
/// item at **exactly** the watermark (`t = max_seen − bound`). The `t
/// == W` edge is on-time by contract; one off-by-one in the stage's
/// comparison and this family rejects half its mass.
pub fn late_just_inside(seed: u64, n: usize, bound: u64) -> LateStream {
    knife_edge(seed ^ 0x9, n, bound, 0, "late-just-inside")
}

/// Knife-edge adversarial, outside: the echo sits at `W − 1`, one tick
/// below the watermark — late by the narrowest possible margin, every
/// time. Under `Reject` all echoes bounce; under `Fold` each is folded
/// with the smallest nonzero weight gap.
pub fn late_just_outside(seed: u64, n: usize, bound: u64) -> LateStream {
    knife_edge(seed ^ 0xA, n, bound, 1, "late-just-outside")
}

fn knife_edge(rng_seed: u64, n: usize, bound: u64, below_w: u64, name: &str) -> LateStream {
    let mut rng = Rng::new(rng_seed);
    let sources = 2usize;
    let mut arrivals = Vec::with_capacity(n);
    // Start the frontier far enough out that W − below_w never
    // underflows.
    let mut frontier: Time = bound + below_w + 2;
    while arrivals.len() < n {
        frontier += rng.range(1, 4);
        arrivals.push(Arrival {
            source: 0,
            t: frontier,
            f: 1 + rng.below(6),
        });
        if arrivals.len() < n {
            // The echo, pinned to the watermark the frontier item just
            // set: W = frontier − bound.
            arrivals.push(Arrival {
                source: 1,
                t: frontier - bound - below_w,
                f: 1 + rng.below(6),
            });
        }
    }
    LateStream {
        name: name.into(),
        seed: rng_seed,
        sources,
        bound,
        checkpoint_every: 16,
        arrivals,
    }
}

/// The full lateness catalogue at one seed: every named arrival family
/// the certifier runs, tuned to `bound` ticks of allowed lateness.
pub fn late_arrival_catalogue(seed: u64, n: usize, bound: u64) -> Vec<LateStream> {
    vec![
        late_uniform_within(seed, n, bound),
        late_heavy_tail(seed, n, bound),
        late_just_inside(seed, n, bound),
        late_just_outside(seed, n, bound),
    ]
}

/// An object-safe backend adapter: [`Reorderer`] is generic over a
/// sized `StreamAggregate`, the matrix hands out `Box<dyn
/// StreamAggregate>`. Merging is never exercised on the lateness path
/// (and cannot be forwarded through `dyn`), so `merge_from` is
/// deliberately unimplemented.
pub struct BoxedAgg(pub DynAggregate);

impl td_decay::storage::StorageAccounting for BoxedAgg {
    fn storage_bits(&self) -> u64 {
        self.0.storage_bits()
    }
}

impl StreamAggregate for BoxedAgg {
    fn observe(&mut self, t: Time, f: u64) {
        self.0.observe(t, f);
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        self.0.observe_batch(items);
    }
    fn batched_ingest_amortizes(&self) -> bool {
        self.0.batched_ingest_amortizes()
    }
    fn advance(&mut self, t: Time) {
        self.0.advance(t);
    }
    fn query(&self, t: Time) -> f64 {
        self.0.query(t)
    }
    fn merge_from(&mut self, _other: &Self) {
        unimplemented!("lateness certification never merges backends")
    }
    fn error_bound(&self) -> ErrorBound {
        self.0.error_bound()
    }
}

/// One backend × decay row of the lateness matrix. The `make` closure
/// returns the backend plus **two** boxed copies of its decay: one is
/// consumed by the [`Reorderer`] (it owns its decay to price fold
/// risk), the other computes ground truth.
pub struct LatenessCase {
    /// Display name (`backend/decay` convention, as in the in-order
    /// matrix).
    pub name: &'static str,
    /// Clamp for observed values (restricted-domain backends).
    pub value_cap: Option<u64>,
    #[allow(clippy::type_complexity)]
    make: Box<dyn Fn() -> (DynAggregate, Box<dyn DecayFunction>, Box<dyn DecayFunction>)>,
}

impl LatenessCase {
    /// A full-domain decayed-sum lateness case.
    #[allow(clippy::type_complexity)]
    pub fn sum(
        name: &'static str,
        make: impl Fn() -> (DynAggregate, Box<dyn DecayFunction>, Box<dyn DecayFunction>) + 'static,
    ) -> Self {
        LatenessCase {
            name,
            value_cap: None,
            make: Box::new(make),
        }
    }

    /// Builder-style value clamp.
    pub fn with_value_cap(mut self, cap: u64) -> Self {
        self.value_cap = Some(cap);
        self
    }

    /// A fresh `(backend, reorder decay, truth decay)` triple.
    #[allow(clippy::type_complexity)]
    pub fn fresh(&self) -> (DynAggregate, Box<dyn DecayFunction>, Box<dyn DecayFunction>) {
        (self.make)()
    }
}

/// `Σ f · g(T − t)` over the accountable items, §2.1 strict past.
fn truth_at(decay: &dyn DecayFunction, items: &[(Time, u64)], t: Time) -> f64 {
    items
        .iter()
        .filter(|&&(ti, _)| ti < t)
        .map(|&(ti, f)| f as f64 * decay.weight(t - ti))
        .sum()
}

fn slop(truth: f64) -> f64 {
    1e-9 * truth.abs().max(1.0)
}

#[allow(clippy::too_many_arguments)]
fn check_query(
    r: &Reorderer<BoxedAgg>,
    q: Time,
    decay: &dyn DecayFunction,
    truth_items: &[(Time, u64)],
    stats: &mut RunStats,
    backend: &str,
    stream: &LateStream,
) -> Result<(), Box<Failure>> {
    let (est, bound) = r.query_with_bound(q);
    let expected = truth_at(decay, truth_items, q);
    stats.queries += 1;
    if expected.abs() > 1e-9 {
        stats.max_rel_err = stats
            .max_rel_err
            .max((est - expected).abs() / expected.abs());
    }
    if bound.admits(est, expected, slop(expected)) {
        Ok(())
    } else {
        Err(Box::new(Failure {
            backend: backend.to_string(),
            scenario: stream.name.clone(),
            seed: stream.seed,
            query_time: q,
            expected,
            got: est,
            bound,
        }))
    }
}

/// Replays `stream` through a [`Reorderer`]-fronted backend and
/// certifies it, arrival by arrival, against an independent watermark
/// simulation and an exact truth computation (see the module docs for
/// the per-policy accountability rules).
///
/// Returns the same [`RunStats`] / [`Failure`] surface as the in-order
/// certifier. Harness-invariant violations — the stage's watermark
/// diverging from the simulation, or an arrival's fate contradicting
/// the prediction — panic with the replayable `(family, seed)` repro,
/// since they indicate a broken *stage*, not a broken envelope.
pub fn certify_lateness(
    case: &LatenessCase,
    stream: &LateStream,
    policy: LatenessPolicy,
) -> Result<RunStats, Box<Failure>> {
    let cap = case.value_cap.unwrap_or(u64::MAX);
    let bound = stream.bound;
    let (backend, reorder_decay, truth_decay) = case.fresh();
    let mut r = Reorderer::with_sources(
        BoxedAgg(backend),
        reorder_decay,
        bound,
        policy,
        stream.sources,
    );
    let backend_name = format!("{}+{:?}", case.name, policy);

    // Independent simulation state: prefix-max watermark plus the item
    // set each answer is accountable for.
    let mut max_seen: Time = 0;
    let mut wm: Time = 0;
    let mut truth_items: Vec<(Time, u64)> = Vec::new();
    let mut rejected_mass: u64 = 0;
    let mut saw_late = false;
    let mut stats = RunStats::default();

    for (i, a) in stream.arrivals.iter().enumerate() {
        let f = a.f.min(cap);
        let predicted_late = a.t < wm;
        let res = r.push(a.source, a.t, f);
        match (predicted_late, policy) {
            (false, _) => {
                assert!(
                    res.is_ok(),
                    "{backend_name} on `{}` (seed {:#x}): on-time arrival #{i} \
                     (t={}, W={wm}) was refused: {res:?}",
                    stream.name,
                    stream.seed,
                    a.t,
                );
                truth_items.push((a.t, f));
                max_seen = max_seen.max(a.t);
                wm = max_seen.saturating_sub(bound);
            }
            (true, LatenessPolicy::Reject) => {
                saw_late = true;
                let err = res.expect_err(
                    "beyond-bound arrival accepted under Reject — \
                     silent alteration of the answer",
                );
                assert_eq!(
                    (err.time, err.value, err.watermark),
                    (a.t, f, wm),
                    "{backend_name} on `{}` (seed {:#x}): LatenessError \
                     mis-describes arrival #{i}",
                    stream.name,
                    stream.seed,
                );
                rejected_mass += f;
                // Rejected items leave the accountable set untouched:
                // Reject loses exactly the rejected mass.
            }
            (true, LatenessPolicy::Fold) => {
                saw_late = true;
                assert!(
                    res.is_ok(),
                    "{backend_name} on `{}` (seed {:#x}): Fold refused late \
                     arrival #{i}: {res:?}",
                    stream.name,
                    stream.seed,
                );
                // Folded mass stays accountable at its TRUE timestamp;
                // the widened envelope must absorb the weight gap.
                truth_items.push((a.t, f));
            }
        }
        assert_eq!(
            r.watermark(),
            wm,
            "{backend_name} on `{}` (seed {:#x}): watermark diverged from the \
             prefix-max simulation after arrival #{i}",
            stream.name,
            stream.seed,
        );

        if (i + 1) % stream.checkpoint_every == 0 {
            // Queries at the watermark edge and one past it: buffered
            // (not yet released) items all have t > W ≥ q − 1, so they
            // are invisible to the truth at q too — backend and truth
            // see the same item set.
            for q in [wm, wm + 1] {
                check_query(
                    &r,
                    q,
                    &*truth_decay,
                    &truth_items,
                    &mut stats,
                    &backend_name,
                    stream,
                )?;
            }
        }
    }

    // Drain: everything buffered releases, the watermark snaps to the
    // global max.
    r.flush();
    assert_eq!(
        r.watermark(),
        max_seen,
        "flush did not finalize the watermark"
    );
    for q in [max_seen + 1, max_seen + 13] {
        check_query(
            &r,
            q,
            &*truth_decay,
            &truth_items,
            &mut stats,
            &backend_name,
            stream,
        )?;
    }

    // Accounting: the stage's self-reported tallies match the
    // simulation exactly — rejected mass is never silently dropped or
    // double-counted.
    let rstats = r.stats();
    assert_eq!(
        rstats.rejected_mass, rejected_mass,
        "rejected-mass accounting diverged"
    );
    if policy == LatenessPolicy::Reject {
        assert_eq!(rstats.folded_mass, 0, "Reject must never fold");
    } else {
        assert_eq!(rstats.rejected_mass, 0, "Fold must never reject");
    }
    assert_eq!(rstats.buffered_items, 0, "flush left items buffered");
    let _ = saw_late; // families differ; callers assert tail presence where it matters
    stats.final_storage_bits = r.inner().storage_bits();
    Ok(stats)
}

/// Whether `stream` contains at least one arrival the prefix-max
/// simulation predicts to be late under `bound`. Used by the matrix
/// tests to prove the tail families actually exercise the policies.
pub fn has_late_arrivals(stream: &LateStream) -> bool {
    let mut max_seen: Time = 0;
    let mut wm: Time = 0;
    let mut late = false;
    for a in &stream.arrivals {
        if a.t < wm {
            late = true;
        } else {
            max_seen = max_seen.max(a.t);
            wm = max_seen.saturating_sub(stream.bound);
        }
    }
    late
}

/// The default lateness matrix: one row per backend × decay pair, each
/// run under both policies by the matrix tests. Mirrors the in-order
/// [`crate::default_matrix`] naming.
pub fn default_lateness_matrix() -> Vec<LatenessCase> {
    use td_ceh::CascadedEh;
    use td_core::{BackendChoice, DecayedSum};
    use td_counters::{ExactDecayedSum, ExpCounter, QuantizedExpCounter};
    use td_decay::{Constant, Exponential, Polynomial, SlidingWindow};
    use td_eh::DominationEh;
    use td_shard::ShardedAggregate;
    use td_wbmh::Wbmh;

    const WBMH_MAX_AGE: Time = 1 << 41;

    fn boxed<G: DecayFunction + 'static>(g: G) -> Box<dyn DecayFunction> {
        Box::new(g)
    }

    vec![
        LatenessCase::sum("exact/exp", || {
            (
                Box::new(ExactDecayedSum::new(boxed(Exponential::new(0.01)))),
                boxed(Exponential::new(0.01)),
                boxed(Exponential::new(0.01)),
            )
        }),
        LatenessCase::sum("exact/sliding256", || {
            (
                Box::new(ExactDecayedSum::new(boxed(SlidingWindow::new(256)))),
                boxed(SlidingWindow::new(256)),
                boxed(SlidingWindow::new(256)),
            )
        }),
        LatenessCase::sum("exp-counter", || {
            (
                Box::new(ExpCounter::new(Exponential::new(0.01))),
                boxed(Exponential::new(0.01)),
                boxed(Exponential::new(0.01)),
            )
        }),
        LatenessCase::sum("quantized-exp/m20", || {
            (
                Box::new(QuantizedExpCounter::new(Exponential::new(0.01), 20)),
                boxed(Exponential::new(0.01)),
                boxed(Exponential::new(0.01)),
            )
        }),
        LatenessCase::sum("ceh/exp", || {
            (
                Box::new(CascadedEh::new(boxed(Exponential::new(0.01)), 0.1)),
                boxed(Exponential::new(0.01)),
                boxed(Exponential::new(0.01)),
            )
        }),
        LatenessCase::sum("ceh/poly1", || {
            (
                Box::new(CascadedEh::new(boxed(Polynomial::new(1.0)), 0.1)),
                boxed(Polynomial::new(1.0)),
                boxed(Polynomial::new(1.0)),
            )
        }),
        LatenessCase::sum("wbmh/poly1", || {
            (
                Box::new(Wbmh::new(boxed(Polynomial::new(1.0)), 0.1, WBMH_MAX_AGE)),
                boxed(Polynomial::new(1.0)),
                boxed(Polynomial::new(1.0)),
            )
        }),
        // Constant decay: folding is *exact* (zero weight gap) — the
        // envelope must not widen at all.
        LatenessCase::sum("domination-eh/landmark", || {
            (
                Box::new(DominationEh::new(0.1, None)),
                boxed(Constant),
                boxed(Constant),
            )
        }),
        LatenessCase::sum("core-auto/exp", || {
            (
                Box::new(
                    DecayedSum::builder(Exponential::new(0.01))
                        .epsilon(0.1)
                        .backend(BackendChoice::Auto)
                        .build(),
                ),
                boxed(Exponential::new(0.01)),
                boxed(Exponential::new(0.01)),
            )
        }),
        // The forward-decay family behind the reorder stage. Lateness
        // truth is evaluated under backward decay, so only the
        // exponential configuration fits (forward ≡ backward there);
        // non-exponential forward decays answer a different model and
        // are certified by the forward-mode oracle in `default_matrix`.
        LatenessCase::sum("forward-sum/exp", || {
            (
                Box::new(td_forward::ForwardDecaySum::new(Exponential::new(0.01))),
                boxed(Exponential::new(0.01)),
                boxed(Exponential::new(0.01)),
            )
        }),
        // The reorder→shard path: the stage in front of the threaded
        // serving engine, as deployed.
        LatenessCase::sum("sharded-exp-counter/x3", || {
            (
                Box::new(ShardedAggregate::new(3, || {
                    ExpCounter::new(Exponential::new(0.01))
                })),
                boxed(Exponential::new(0.01)),
                boxed(Exponential::new(0.01)),
            )
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_deterministic() {
        for (a, b) in late_arrival_catalogue(42, 120, 8)
            .into_iter()
            .zip(late_arrival_catalogue(42, 120, 8))
        {
            assert_eq!(a.arrivals, b.arrivals, "{} not deterministic", a.name);
        }
    }

    #[test]
    fn uniform_within_never_goes_late() {
        for seed in [1, 7, 99] {
            let s = late_uniform_within(seed, 200, 6);
            assert!(
                !has_late_arrivals(&s),
                "within-bound family produced a late arrival at seed {seed}"
            );
        }
    }

    #[test]
    fn tail_and_knife_edge_families_do_go_late() {
        for seed in [1, 7, 99] {
            assert!(has_late_arrivals(&late_heavy_tail(seed, 200, 6)));
            assert!(has_late_arrivals(&late_just_outside(seed, 200, 6)));
        }
    }

    #[test]
    fn just_inside_sits_exactly_on_the_watermark() {
        // Every echo is on-time (t == W), and would be late if the
        // bound were one tick tighter — the family really is on the
        // knife edge.
        let s = late_just_inside(5, 100, 6);
        assert!(!has_late_arrivals(&s), "just-inside echoes went late");
        let tightened = LateStream {
            bound: s.bound - 1,
            ..s.clone()
        };
        assert!(
            has_late_arrivals(&tightened),
            "just-inside echoes are not on the edge"
        );
    }
}
