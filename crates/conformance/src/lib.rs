//! Differential conformance harness for the workspace's time-decayed
//! summaries (Cohen & Strauss, PODS 2003).
//!
//! Seven pieces, composed by the test matrices in `tests/matrix.rs`,
//! `tests/fault_matrix.rs`, `tests/recovery_matrix.rs`, and
//! `tests/registry_matrix.rs`:
//!
//! * [`oracle`] — brute-force references that retain every `(t_i, f_i)`
//!   and evaluate `Σ f_i · g(T − t_i)` directly: ground truth for
//!   decayed sum/count/average/variance, L_p norms, and the
//!   selection/quantile distributions of §7.
//! * [`scenario`] — a deterministic, seeded generator of named stream
//!   families (uniform, bursty, long-silence, boundary-aligned, the
//!   Theorem 2 adversarial bursts, batch-boundary stressors) plus the
//!   shard-split transform for distributed (§6) checks. No wall clock:
//!   a `(family, seed)` pair always reproduces the same ops.
//! * [`certify`] — the ε-certifier, replaying scenarios into a backend
//!   and the oracle in lock-step and checking every query against the
//!   envelope the backend itself certifies through
//!   [`td_decay::StreamAggregate::error_bound`]. Violations surface as
//!   a [`Failure`] carrying the replayable `(family, seed, tick)`
//!   repro.
//! * [`lateness`] — out-of-**arrival**-order stream families and the
//!   bounded-lateness certifier: seeded arrival sequences (tail-skew
//!   and watermark knife-edge adversaries) replayed through a
//!   `td-reorder` stage in front of each backend, checked against an
//!   independent watermark simulation under both lateness policies.
//! * [`fault`] — deterministic fault injection for the sharded serving
//!   engine: seeded [`FaultPlan`]s that panic a victim worker
//!   mid-stream (with restart, quarantine, or checkpoint-corruption
//!   outcomes), replayed lock-step against the oracle to prove every
//!   degraded answer sits inside its self-reported widened envelope
//!   and every corrupted checkpoint is *detected*, never silently
//!   restored.
//! * [`recovery`] — kill-at-any-byte durability certification for the
//!   `td-persist` store: a doomed run logs a scenario prefix, the
//!   store is damaged (truncated or bit-flipped) at every byte offset,
//!   and recovery must either refuse with a typed `RestoreError` or
//!   reconstruct a whole-call prefix whose remainder replays lock-step
//!   inside the backend's own certified envelope of the exact oracle.
//! * [`registry`] — multi-key conformance for `td-registry`: a seeded
//!   scenario fanned across keys by a deterministic key stream,
//!   replayed lock-step against a `HashMap<key, exact Oracle>` twin;
//!   every per-key answer must sit inside the registry's self-reported
//!   envelope, eviction-widened where the decay-aware sweep has
//!   retired keys.
//!
//! Run the tier-1 matrix with `cargo test -p td-conformance`; the
//! exhaustive sweep (more seeds, longer streams) is behind
//! `cargo test -p td-conformance -- --ignored`.

pub mod certify;
pub mod fault;
pub mod lateness;
pub mod oracle;
pub mod recovery;
pub mod registry;
pub mod scenario;

pub use certify::{
    certify_sharded, default_matrix, run_scenario, DynAggregate, DynOracle, Failure, MatrixCase,
    RunStats, TruthKind,
};
pub use fault::{
    certify_corruption_detected, certify_faulted, certify_faulted_reordered, corruption_offsets,
    default_fault_matrix, FaultCase, FaultInjector, FaultMode, FaultPlan, FaultReport,
    FaultyBackend,
};
pub use lateness::{
    certify_lateness, default_lateness_matrix, has_late_arrivals, late_arrival_catalogue, Arrival,
    BoxedAgg, LateStream, LatenessCase,
};
pub use oracle::{CoordOracle, Oracle};
pub use recovery::{
    certify_recovery, default_recovery_matrix, is_time_ordered, Damage, RecoveryCase,
    RecoveryFailure, RecoveryReport,
};
pub use registry::{
    certify_registry, default_registry_matrix, RegistryCase, RegistryFailure, RegistryRunStats,
};
pub use scenario::{catalogue, out_of_order, Op, Rng, Scenario, SkewExtent};
