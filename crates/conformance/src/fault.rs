//! Deterministic fault injection for the sharded serving engine.
//!
//! No wall clock anywhere: a [`FaultPlan`] is a pure function of its
//! fields (seed, victim, trigger point, mode), the trigger counts
//! *applied observations* on the victim shard (not time), and the
//! scenario replay is the same seeded op sequence the rest of the
//! conformance harness uses — so a failing case is replayable from the
//! one-line repro in its error message.
//!
//! Three pieces:
//!
//! * [`FaultInjector`] / [`FaultyBackend`] — a transparent wrapper over
//!   any checkpointable backend that panics inside the victim worker
//!   when its cumulative applied-item count crosses the trigger, and
//!   (in [`FaultMode::CorruptCheckpoint`]) flips a seeded bit in every
//!   checkpoint the victim saves.
//! * [`certify_faulted`] — replays a scenario into a supervised
//!   [`ShardedAggregate`] with the fault armed, lock-step against the
//!   exact oracle, proving that **every** answer the engine serves —
//!   before, during, and after the failure — sits inside its own
//!   self-reported (possibly widened) envelope, and that the engine's
//!   terminal state matches the mode: restarted shards heal back to
//!   the un-widened merged envelope, quarantined and corrupted shards
//!   are served from checkpoints with the victim listed as degraded.
//! * [`certify_corruption_detected`] — the restore side of the
//!   contract: every seeded single-bit flip of a checkpoint must be
//!   rejected with a typed [`RestoreError`], never silently restored.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use td_decay::checkpoint::{Checkpoint, RestoreError};
use td_decay::{DecayFunction, ErrorBound, StorageAccounting, StreamAggregate, Time};
use td_shard::{ShardHealth, ShardedAggregate, SupervisorOptions};

use crate::lateness::LateStream;
use crate::oracle::Oracle;
use crate::scenario::{Op, Scenario};

/// What the injected fault does to the victim shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// One panic; the supervisor restores the last checkpoint, replays
    /// the failed chunk, and the shard heals. Expected terminal state:
    /// all shards live, no degradation, envelope back to the plain
    /// merged bound.
    Restart,
    /// One panic with the restart budget set to zero: the shard is
    /// quarantined and every later answer is served degraded, from the
    /// victim's last checkpoint, inside a widened envelope.
    Quarantine,
    /// One panic, but every checkpoint the victim saved had one bit
    /// flipped at a seeded offset. The restore must *detect* the
    /// corruption (checksum), the shard quarantines, and the victim's
    /// whole submitted mass goes at risk — never silently wrong.
    CorruptCheckpoint {
        /// Which bit to flip, modulo the checkpoint length in bits.
        bit_offset: u64,
    },
}

/// A fully deterministic description of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Identifies the plan in repro messages (and seeds derived
    /// offsets); does not otherwise affect behavior.
    pub seed: u64,
    /// Which shard's worker dies (0-based).
    pub victim: usize,
    /// The victim panics when its cumulative applied observation count
    /// crosses this threshold. Counted per item, not per batch, so the
    /// trigger point is independent of chunking/timing.
    pub panic_after_items: u64,
    /// What happens around the panic.
    pub mode: FaultMode,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FaultPlan {{ seed: {:#x}, victim: {}, panic_after_items: {}, mode: {:?} }}",
            self.seed, self.victim, self.panic_after_items, self.mode
        )
    }
}

/// Shared trigger state for one armed fault.
struct FaultState {
    /// Items applied by the victim so far.
    applied: AtomicU64,
    /// Ensures the panic fires exactly once (so the post-restore replay
    /// of the same chunk goes through).
    fired: AtomicBool,
    /// Instance counter: the engine's `make` closure is called once for
    /// the coordinator's template backend and then once per shard, in
    /// order, so instance `v + 1` is shard `v`'s worker-owned backend.
    instances: AtomicUsize,
}

/// Arms one [`FaultPlan`] and hands out [`FaultyBackend`] wrappers that
/// carry it into the engine's worker threads.
pub struct FaultInjector {
    plan: FaultPlan,
    state: FaultState,
}

impl FaultInjector {
    /// Arms `plan`.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultInjector {
            plan,
            state: FaultState {
                applied: AtomicU64::new(0),
                fired: AtomicBool::new(false),
                instances: AtomicUsize::new(0),
            },
        })
    }

    /// Whether the armed panic has fired.
    pub fn fired(&self) -> bool {
        self.state.fired.load(Ordering::SeqCst)
    }

    /// Wraps a backend factory so each constructed backend knows its
    /// instance index. Pass the result to
    /// [`ShardedAggregate::supervised`].
    pub fn factory<B, F>(self: &Arc<Self>, make: F) -> impl Fn() -> FaultyBackend<B>
    where
        F: Fn() -> B,
    {
        let injector = Arc::clone(self);
        move || {
            let instance = injector.state.instances.fetch_add(1, Ordering::SeqCst);
            FaultyBackend {
                inner: make(),
                injector: Arc::clone(&injector),
                instance,
            }
        }
    }

    /// True when `instance` is the victim shard's worker-owned backend.
    fn is_victim(&self, instance: usize) -> bool {
        instance == self.plan.victim + 1
    }
}

/// A transparent wrapper that injects the armed fault of its
/// [`FaultInjector`] into the victim shard's ingest path.
///
/// Clones keep their instance identity — harmless, because the engine
/// only calls `observe_batch` (the trigger site) on worker-owned
/// originals, never on coordinator-side snapshots or restore targets.
pub struct FaultyBackend<B> {
    inner: B,
    injector: Arc<FaultInjector>,
    instance: usize,
}

impl<B: Clone> Clone for FaultyBackend<B> {
    fn clone(&self) -> Self {
        FaultyBackend {
            inner: self.inner.clone(),
            injector: Arc::clone(&self.injector),
            instance: self.instance,
        }
    }
}

impl<B: StorageAccounting> StorageAccounting for FaultyBackend<B> {
    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }
}

impl<B: StreamAggregate + Clone> StreamAggregate for FaultyBackend<B> {
    fn observe(&mut self, t: Time, f: u64) {
        self.inner.observe(t, f)
    }

    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        if self.injector.is_victim(self.instance) {
            let st = &self.injector.state;
            let before = st.applied.fetch_add(items.len() as u64, Ordering::SeqCst);
            if before + items.len() as u64 >= self.injector.plan.panic_after_items
                && !st.fired.swap(true, Ordering::SeqCst)
            {
                panic!("injected fault: {}", self.injector.plan);
            }
        }
        self.inner.observe_batch(items)
    }

    fn batched_ingest_amortizes(&self) -> bool {
        self.inner.batched_ingest_amortizes()
    }

    fn advance(&mut self, t: Time) {
        self.inner.advance(t)
    }

    fn query(&self, t: Time) -> f64 {
        self.inner.query(t)
    }

    fn merge_from(&mut self, other: &Self) {
        self.inner.merge_from(&other.inner)
    }

    fn error_bound(&self) -> ErrorBound {
        self.inner.error_bound()
    }
}

impl<B: StreamAggregate + Checkpoint + Clone> Checkpoint for FaultyBackend<B> {
    fn save_checkpoint(&self) -> Vec<u8> {
        let mut bytes = self.inner.save_checkpoint();
        if let FaultMode::CorruptCheckpoint { bit_offset } = self.injector.plan.mode {
            if self.injector.is_victim(self.instance) && !bytes.is_empty() {
                let bit = bit_offset % (bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
        }
        bytes
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.inner.restore_checkpoint(bytes)
    }
}

/// Everything [`certify_faulted`] measured on a clean run.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Queries checked against the oracle.
    pub queries: usize,
    /// How many of them were served degraded (victim listed).
    pub degraded_queries: usize,
    /// Worst observed relative error across queries with nonzero truth.
    pub max_rel_err: f64,
    /// The terminal answer's envelope.
    pub final_bound: ErrorBound,
}

fn slop(truth: f64) -> f64 {
    1e-9 * truth.abs().max(1.0)
}

fn fail(plan: &FaultPlan, scenario: &Scenario, backend_name: &str, t: Time, why: String) -> String {
    format!(
        "fault-injection failure: backend `{backend_name}` under {plan} on scenario \
         `{}` (seed {:#x}) at t = {t}: {why}. Replay: regenerate family `{}` with \
         seed {:#x}, arm the same plan, and query at t = {t}.",
        scenario.name, scenario.seed, scenario.name, scenario.seed,
    )
}

/// Replays `scenario` into a supervised `shards`-way engine with `plan`
/// armed, lock-step against the exact oracle of `oracle_decay`, and
/// proves the fault-tolerance contract:
///
/// 1. **Every answer is certified.** Each query's value sits inside the
///    envelope the engine itself reports for it — healthy, mid-failure,
///    or degraded. A widened envelope that fails to cover the truth is
///    a violation, exactly like a healthy envelope that does.
/// 2. **The fault actually fires** (a plan whose trigger is past the
///    victim's share of the stream proves nothing and is rejected).
/// 3. **The terminal state matches the mode** — see [`FaultMode`].
///
/// Returns a replayable one-line repro on the first violation.
pub fn certify_faulted<B, F>(
    plan: FaultPlan,
    scenario: &Scenario,
    shards: usize,
    oracle_decay: Box<dyn DecayFunction>,
    backend_name: &str,
    make: F,
) -> Result<FaultReport, String>
where
    B: StreamAggregate + Checkpoint + Clone + Send + 'static,
    F: Fn() -> B,
{
    assert!(plan.victim < shards, "victim must be a real shard");
    let opts = SupervisorOptions {
        max_restarts: match plan.mode {
            FaultMode::Quarantine => 0,
            _ => SupervisorOptions::default().max_restarts,
        },
        ..SupervisorOptions::default()
    };
    let injector = FaultInjector::new(plan);
    let mut engine = ShardedAggregate::supervised(shards, opts, injector.factory(make));
    let mut oracle: Oracle<Box<dyn DecayFunction>> = Oracle::new(oracle_decay);

    let mut report = FaultReport {
        queries: 0,
        degraded_queries: 0,
        max_rel_err: 0.0,
        final_bound: ErrorBound::unbounded(),
    };
    let check = |engine: &ShardedAggregate<FaultyBackend<B>>,
                 oracle: &Oracle<Box<dyn DecayFunction>>,
                 t: Time,
                 report: &mut FaultReport|
     -> Result<(), String> {
        let ans = engine
            .try_query(t)
            .map_err(|e| fail(&plan, scenario, backend_name, t, format!("{e}")))?;
        let truth = oracle.decayed_sum(t);
        if !ans.bound.admits(ans.value, truth, slop(truth)) {
            return Err(fail(
                &plan,
                scenario,
                backend_name,
                t,
                format!(
                    "answer {} outside its self-reported envelope {:?} around oracle \
                     truth {} (degraded: {:?})",
                    ans.value, ans.bound, truth, ans.degraded
                ),
            ));
        }
        report.queries += 1;
        if ans.degraded.contains(&plan.victim) {
            report.degraded_queries += 1;
        }
        if truth.abs() > 1e-9 {
            report.max_rel_err = report
                .max_rel_err
                .max((ans.value - truth).abs() / truth.abs());
        }
        report.final_bound = ans.bound;
        Ok(())
    };

    for op in &scenario.ops {
        match op {
            Op::Observe(t, f) => {
                engine.observe(*t, *f);
                oracle.observe(*t, *f);
            }
            Op::ObserveBatch(items) => {
                engine.observe_batch(items);
                oracle.observe_batch(items);
            }
            Op::Advance(t) => {
                engine.advance(*t);
                oracle.advance(*t);
            }
            Op::Query(t) => check(&engine, &oracle, *t, &mut report)?,
        }
    }
    // Terminal probe strictly after everything, once the engine has
    // settled into the mode's expected end state.
    let t_end = scenario.max_time() + 7;
    check(&engine, &oracle, t_end, &mut report)?;

    if !injector.fired() {
        return Err(fail(
            &plan,
            scenario,
            backend_name,
            t_end,
            "the armed fault never fired — the plan's trigger is past the victim's \
             share of the stream, so this run certified nothing"
                .to_string(),
        ));
    }

    let stats = engine.shard_stats();
    let victim = &stats[plan.victim];
    match plan.mode {
        FaultMode::Restart => {
            if victim.restarts < 1 || victim.health != ShardHealth::Live {
                return Err(fail(
                    &plan,
                    scenario,
                    backend_name,
                    t_end,
                    format!("expected a healed restart, got {victim:?}"),
                ));
            }
            // Healed means *fully* healed: the terminal answer must be
            // un-degraded and its envelope the plain merged bound, with
            // no widening left over (checkpoint-per-chunk restarts are
            // lossless).
            let ans = engine
                .try_query(t_end)
                .map_err(|e| fail(&plan, scenario, backend_name, t_end, format!("{e}")))?;
            if !ans.degraded.is_empty() || victim.lost_mass != 0 {
                return Err(fail(
                    &plan,
                    scenario,
                    backend_name,
                    t_end,
                    format!(
                        "restart must heal completely: degraded {:?}, lost_mass {}",
                        ans.degraded, victim.lost_mass
                    ),
                ));
            }
            report.final_bound = ans.bound;
        }
        FaultMode::Quarantine => {
            if victim.health != ShardHealth::Quarantined {
                return Err(fail(
                    &plan,
                    scenario,
                    backend_name,
                    t_end,
                    format!("expected quarantine, got {victim:?}"),
                ));
            }
            let ans = engine
                .try_query(t_end)
                .map_err(|e| fail(&plan, scenario, backend_name, t_end, format!("{e}")))?;
            if !ans.degraded.contains(&plan.victim) {
                return Err(fail(
                    &plan,
                    scenario,
                    backend_name,
                    t_end,
                    format!(
                        "quarantined victim missing from degraded list {:?}",
                        ans.degraded
                    ),
                ));
            }
        }
        FaultMode::CorruptCheckpoint { .. } => {
            if victim.health != ShardHealth::Quarantined {
                return Err(fail(
                    &plan,
                    scenario,
                    backend_name,
                    t_end,
                    format!("corrupted checkpoint must quarantine, got {victim:?}"),
                ));
            }
            // The corruption must have been *detected* — the restore
            // failure (checksum) is recorded on the shard, and the
            // degraded answer must not have folded the corrupt bytes.
            let noted = victim
                .last_panic
                .as_deref()
                .is_some_and(|p| p.contains("checksum"));
            if !noted {
                return Err(fail(
                    &plan,
                    scenario,
                    backend_name,
                    t_end,
                    format!(
                        "corruption was not detected as a checksum failure: {:?}",
                        victim.last_panic
                    ),
                ));
            }
        }
    }
    Ok(report)
}

/// The reorder-stage extension of [`certify_faulted`] (ISSUE 7,
/// satellite): the shard panic fires **while items are still buffered
/// in the bounded-lateness stage** in front of the engine — the
/// deployment shape where a worker dies mid-stream with in-flight
/// out-of-order mass that has not yet been released downstream.
///
/// Replays a [`LateStream`] (arrival order, `Reject` policy) through
/// `Reorderer<ShardedAggregate<FaultyBackend<B>>>` with `plan` armed,
/// lock-step against an independent watermark simulation and exact
/// truth, and proves:
///
/// 1. **Every answer is certified** — healthy, mid-failure, degraded —
///    inside the envelope the engine itself reports, against the truth
///    of the *accepted* substream (rejected mass is lost by contract,
///    never silently).
/// 2. **The fault fires with the stage non-empty**: at the first
///    barrier after the panic, the reorder buffers still hold items —
///    otherwise the run proves nothing about the buffered-mass path
///    and is rejected as vacuous.
/// 3. **Completeness tracks the published watermark**: every answer's
///    `complete_up_to` equals the stage's watermark at the barrier,
///    including after the failure.
/// 4. **The terminal state matches the mode**: a restart heals with
///    zero lost mass and un-degraded terminal answers (the buffered
///    items replayed losslessly through the recovered shard); a
///    quarantine lists the victim as degraded, prices the victim's
///    uncovered mass into a widened lower envelope, and serves
///    post-quarantine releases (including the mass that was buffered at
///    panic time) from the surviving shards.
///
/// `CorruptCheckpoint` plans are not meaningful here (the corruption
/// path is checkpoint-level, not stage-level) and are rejected.
pub fn certify_faulted_reordered<B, F>(
    plan: FaultPlan,
    stream: &LateStream,
    shards: usize,
    make_decay: fn() -> Box<dyn DecayFunction>,
    backend_name: &str,
    make: F,
) -> Result<FaultReport, String>
where
    B: StreamAggregate + Checkpoint + Clone + Send + 'static,
    F: Fn() -> B,
{
    assert!(plan.victim < shards, "victim must be a real shard");
    assert!(
        !matches!(plan.mode, FaultMode::CorruptCheckpoint { .. }),
        "corruption plans are certified by certify_faulted, not the reordered path"
    );
    let opts = SupervisorOptions {
        max_restarts: match plan.mode {
            FaultMode::Quarantine => 0,
            _ => SupervisorOptions::default().max_restarts,
        },
        ..SupervisorOptions::default()
    };
    let injector = FaultInjector::new(plan);
    let engine = ShardedAggregate::supervised(shards, opts, injector.factory(make));
    let mut r = engine.reordered(
        make_decay(),
        stream.bound,
        td_reorder::LatenessPolicy::Reject,
        stream.sources,
    );
    let truth_decay = make_decay();

    let scn = Scenario {
        name: stream.name.clone(),
        seed: stream.seed,
        ops: Vec::new(),
    };
    let mut report = FaultReport {
        queries: 0,
        degraded_queries: 0,
        max_rel_err: 0.0,
        final_bound: ErrorBound::unbounded(),
    };

    // Independent simulation: prefix-max watermark + accepted item set.
    let mut max_seen: Time = 0;
    let mut wm: Time = 0;
    let mut truth_items: Vec<(Time, u64)> = Vec::new();
    let mut buffered_at_fire: Option<u64> = None;

    let truth_at = |items: &[(Time, u64)], t: Time| -> f64 {
        items
            .iter()
            .filter(|&&(ti, _)| ti < t)
            .map(|&(ti, f)| f as f64 * truth_decay.weight(t - ti))
            .sum()
    };

    for (i, a) in stream.arrivals.iter().enumerate() {
        let predicted_late = a.t < wm;
        let res = r.push(a.source, a.t, a.f);
        if predicted_late {
            if res.is_ok() {
                return Err(fail(
                    &plan,
                    &scn,
                    backend_name,
                    a.t,
                    format!("beyond-bound arrival #{i} accepted under Reject"),
                ));
            }
        } else {
            if res.is_err() {
                return Err(fail(
                    &plan,
                    &scn,
                    backend_name,
                    a.t,
                    format!("on-time arrival #{i} refused: {res:?}"),
                ));
            }
            truth_items.push((a.t, a.f));
            max_seen = max_seen.max(a.t);
            wm = max_seen.saturating_sub(stream.bound);
        }

        if (i + 1) % stream.checkpoint_every == 0 && wm > 0 {
            // try_query barriers: the workers have drained everything
            // released so far before the answer is built.
            let q = wm + 1;
            let ans = r
                .inner()
                .try_query(q)
                .map_err(|e| fail(&plan, &scn, backend_name, q, format!("{e}")))?;
            let truth = truth_at(&truth_items, q);
            if !ans.bound.admits(ans.value, truth, slop(truth)) {
                return Err(fail(
                    &plan,
                    &scn,
                    backend_name,
                    q,
                    format!(
                        "answer {} outside its self-reported envelope {:?} around \
                         accepted-substream truth {} (degraded: {:?})",
                        ans.value, ans.bound, truth, ans.degraded
                    ),
                ));
            }
            if ans.complete_up_to != r.watermark() {
                return Err(fail(
                    &plan,
                    &scn,
                    backend_name,
                    q,
                    format!(
                        "completeness {} diverged from the published watermark {}",
                        ans.complete_up_to,
                        r.watermark()
                    ),
                ));
            }
            report.queries += 1;
            if ans.degraded.contains(&plan.victim) {
                report.degraded_queries += 1;
            }
            if truth.abs() > 1e-9 {
                report.max_rel_err = report
                    .max_rel_err
                    .max((ans.value - truth).abs() / truth.abs());
            }
            // The barrier synchronized us with the workers: if the
            // panic has fired, record how much the stage was holding.
            if injector.fired() && buffered_at_fire.is_none() {
                buffered_at_fire = Some(r.stats().buffered_items);
            }
        }
    }

    if !injector.fired() {
        return Err(fail(
            &plan,
            &scn,
            backend_name,
            max_seen,
            "the armed fault never fired before the stream ended — trigger past the \
             victim's share, run certified nothing"
                .to_string(),
        ));
    }
    let buffered = match buffered_at_fire {
        // Observed at a barrier before the flush: the heaps still held
        // at least the frontier item, or the run is vacuous.
        Some(n) if n > 0 => n,
        _ => {
            return Err(fail(
                &plan,
                &scn,
                backend_name,
                max_seen,
                "the fault fired with the reorder stage empty — this run never \
                 exercised the buffered-mass path; retune panic_after_items"
                    .to_string(),
            ));
        }
    };

    // Drain the stage into the (restarted or degraded) engine and probe
    // strictly after everything.
    r.flush();
    let t_end = stream.max_time() + 7;
    let ans = r
        .inner()
        .try_query(t_end)
        .map_err(|e| fail(&plan, &scn, backend_name, t_end, format!("{e}")))?;
    let truth = truth_at(&truth_items, t_end);
    if !ans.bound.admits(ans.value, truth, slop(truth)) {
        return Err(fail(
            &plan,
            &scn,
            backend_name,
            t_end,
            format!(
                "terminal answer {} outside envelope {:?} around truth {} \
                 ({} items were buffered at panic time)",
                ans.value, ans.bound, truth, buffered
            ),
        ));
    }
    if ans.complete_up_to != max_seen {
        return Err(fail(
            &plan,
            &scn,
            backend_name,
            t_end,
            format!(
                "after flush, completeness {} must equal the global max {}",
                ans.complete_up_to, max_seen
            ),
        ));
    }
    report.queries += 1;
    report.final_bound = ans.bound;
    if truth.abs() > 1e-9 {
        report.max_rel_err = report
            .max_rel_err
            .max((ans.value - truth).abs() / truth.abs());
    }

    let stats = r.inner().shard_stats();
    let victim = &stats[plan.victim];
    match plan.mode {
        FaultMode::Restart => {
            if victim.restarts < 1 || victim.health != ShardHealth::Live {
                return Err(fail(
                    &plan,
                    &scn,
                    backend_name,
                    t_end,
                    format!("expected a healed restart, got {victim:?}"),
                ));
            }
            if !ans.degraded.is_empty() || victim.lost_mass != 0 {
                return Err(fail(
                    &plan,
                    &scn,
                    backend_name,
                    t_end,
                    format!(
                        "restart with buffered reorder mass must replay lossless: \
                         degraded {:?}, lost_mass {}",
                        ans.degraded, victim.lost_mass
                    ),
                ));
            }
        }
        FaultMode::Quarantine => {
            if victim.health != ShardHealth::Quarantined {
                return Err(fail(
                    &plan,
                    &scn,
                    backend_name,
                    t_end,
                    format!("expected quarantine, got {victim:?}"),
                ));
            }
            if !ans.degraded.contains(&plan.victim) {
                return Err(fail(
                    &plan,
                    &scn,
                    backend_name,
                    t_end,
                    format!(
                        "quarantined victim missing from degraded {:?}",
                        ans.degraded
                    ),
                ));
            }
            // The victim's uncovered mass (the chunk that panicked, at
            // minimum) is at risk: the answer must say so by widening
            // its lower side — an exact envelope over a degraded
            // answer would be a silent lie.
            if ans.bound.lower <= 0.0 {
                return Err(fail(
                    &plan,
                    &scn,
                    backend_name,
                    t_end,
                    format!(
                        "quarantine must widen the envelope for the at-risk mass, \
                         got {:?}",
                        ans.bound
                    ),
                ));
            }
        }
        FaultMode::CorruptCheckpoint { .. } => unreachable!("rejected above"),
    }
    report.degraded_queries += usize::from(ans.degraded.contains(&plan.victim));
    Ok(report)
}

/// Certifies that every listed single-bit flip of `bytes` is rejected
/// by `restore` with [`RestoreError::Checksum`] — the decode order
/// checks the whole-envelope checksum before anything else, so *any*
/// one-bit corruption must surface as exactly that. `name` labels the
/// repro message.
pub fn certify_corruption_detected<R>(
    name: &str,
    bytes: &[u8],
    bit_offsets: impl IntoIterator<Item = u64>,
    mut restore: R,
) -> Result<(), String>
where
    R: FnMut(&[u8]) -> Result<(), RestoreError>,
{
    assert!(!bytes.is_empty(), "empty checkpoint");
    let nbits = bytes.len() as u64 * 8;
    for off in bit_offsets {
        let bit = off % nbits;
        let mut corrupt = bytes.to_vec();
        corrupt[(bit / 8) as usize] ^= 1 << (bit % 8);
        match restore(&corrupt) {
            Err(RestoreError::Checksum) => {}
            Err(other) => {
                return Err(format!(
                    "fault-injection failure: `{name}` bit {bit} of {nbits}: corruption \
                     was rejected but as {other:?} instead of Checksum (decode order \
                     regression — later checks are reading unverified bytes)"
                ));
            }
            Ok(()) => {
                return Err(format!(
                    "fault-injection failure: `{name}` bit {bit} of {nbits}: corrupted \
                     checkpoint restored WITHOUT an error — silently wrong state"
                ));
            }
        }
    }
    Ok(())
}

/// The seeded bit-offset sample for a corruption sweep: every bit for
/// small checkpoints, `limit` SplitMix64-derived offsets otherwise.
pub fn corruption_offsets(seed: u64, nbytes: usize, limit: usize) -> Vec<u64> {
    let nbits = nbytes as u64 * 8;
    if nbits <= limit as u64 {
        return (0..nbits).collect();
    }
    let mut rng = crate::scenario::Rng::new(seed ^ 0xC0FF_EE00_D15E_A5E5);
    (0..limit).map(|_| rng.below(nbits)).collect()
}

type FaultRun = Box<dyn Fn(FaultPlan, usize, &Scenario) -> Result<FaultReport, String>>;

/// One row of the fault matrix: a plan × backend pairing ready to run
/// against any scenario.
pub struct FaultCase {
    /// Display name for repro messages.
    pub name: &'static str,
    /// The armed plan.
    pub plan: FaultPlan,
    /// Shard count.
    pub shards: usize,
    run: FaultRun,
}

impl FaultCase {
    /// Runs this case against `scenario`.
    pub fn run(&self, scenario: &Scenario) -> Result<FaultReport, String> {
        (self.run)(self.plan, self.shards, scenario)
    }
}

/// The default fault matrix: every [`FaultMode`] exercised against an
/// exact backend (restart/quarantine accounting is exactly checkable)
/// and a Theorem-1 sketch (widening composes with the sketch's own
/// ε-envelope), with a corruption case on the EH family whose
/// checkpoints carry real bucket structure.
pub fn default_fault_matrix() -> Vec<FaultCase> {
    use td_ceh::CascadedEh;
    use td_counters::{ExactDecayedSum, ExpCounter};
    use td_decay::{Constant, Exponential};

    fn case<B, F>(
        name: &'static str,
        plan: FaultPlan,
        shards: usize,
        oracle_decay: fn() -> Box<dyn DecayFunction>,
        make: F,
    ) -> FaultCase
    where
        B: StreamAggregate + Checkpoint + Clone + Send + 'static,
        F: Fn() -> B + 'static,
    {
        FaultCase {
            name,
            plan,
            shards,
            run: Box::new(move |plan, shards, scenario| {
                certify_faulted(plan, scenario, shards, oracle_decay(), name, &make)
            }),
        }
    }

    vec![
        case(
            "restart/exact-constant",
            FaultPlan {
                seed: 0xFA_0001,
                victim: 1,
                panic_after_items: 12,
                mode: FaultMode::Restart,
            },
            4,
            || Box::new(Constant),
            || ExactDecayedSum::new(Constant),
        ),
        case(
            "restart/exp-counter",
            FaultPlan {
                seed: 0xFA_0002,
                victim: 0,
                panic_after_items: 10,
                mode: FaultMode::Restart,
            },
            3,
            || Box::new(Exponential::new(0.01)),
            || ExpCounter::new(Exponential::new(0.01)),
        ),
        case(
            "quarantine/exact-constant",
            FaultPlan {
                seed: 0xFA_0003,
                victim: 2,
                panic_after_items: 9,
                mode: FaultMode::Quarantine,
            },
            4,
            || Box::new(Constant),
            || ExactDecayedSum::new(Constant),
        ),
        case(
            "quarantine/ceh-exp",
            FaultPlan {
                seed: 0xFA_0004,
                victim: 1,
                panic_after_items: 11,
                mode: FaultMode::Quarantine,
            },
            3,
            || Box::new(Exponential::new(0.01)),
            || CascadedEh::new(Exponential::new(0.01), 0.1),
        ),
        case(
            "corrupt-ckpt/exact-constant",
            FaultPlan {
                seed: 0xFA_0005,
                victim: 0,
                panic_after_items: 13,
                mode: FaultMode::CorruptCheckpoint { bit_offset: 123 },
            },
            4,
            || Box::new(Constant),
            || ExactDecayedSum::new(Constant),
        ),
        case(
            "corrupt-ckpt/ceh-exp",
            FaultPlan {
                seed: 0xFA_0006,
                victim: 2,
                panic_after_items: 9,
                mode: FaultMode::CorruptCheckpoint { bit_offset: 7777 },
            },
            3,
            || Box::new(Exponential::new(0.01)),
            || CascadedEh::new(Exponential::new(0.01), 0.1),
        ),
        // The forward-decay family (ISSUE 8): checkpoint-restart a
        // rotating forward accumulator mid-stream and make sure the
        // restored moments certify against the backward oracle
        // (forward ≡ backward under exponential decay).
        case(
            "restart/forward-exp",
            FaultPlan {
                seed: 0xFA_0007,
                victim: 1,
                panic_after_items: 10,
                mode: FaultMode::Restart,
            },
            3,
            || Box::new(Exponential::new(0.01)),
            || td_forward::ForwardDecaySum::new(Exponential::new(0.01)),
        ),
        case(
            "quarantine/forward-exp",
            FaultPlan {
                seed: 0xFA_0008,
                victim: 0,
                panic_after_items: 11,
                mode: FaultMode::Quarantine,
            },
            3,
            || Box::new(Exponential::new(0.01)),
            || td_forward::ForwardDecaySum::new(Exponential::new(0.01)),
        ),
    ]
}
