//! Multi-key conformance: the keyed registry replayed lock-step
//! against a `HashMap<key, exact Oracle>` twin.
//!
//! A seeded scenario's observations are fanned across `n_keys` keys by
//! a deterministic per-observation key stream (seeded from the
//! scenario seed, so a `(family, seed, n_keys)` triple always
//! reproduces the same keyed trace). Every `Op::Query` checks *every*
//! key the run has observed so far: the registry's per-key answer must
//! sit inside its own self-reported envelope — the backend's relative
//! [`ErrorBound`] widened by the registry's certified eviction slack —
//! of the key's exact decayed truth. Violations surface as a
//! [`RegistryFailure`] carrying the replayable repro.

use std::collections::HashMap;
use std::fmt;

use td_decay::{ErrorBound, StreamAggregate, Time};
use td_registry::{KeyedRegistry, RegistryOptions};

use crate::certify::DynOracle;
use crate::scenario::{Op, Rng, Scenario};

/// Salt decorrelating the per-observation key stream from the ops the
/// scenario generator drew from the same seed.
const KEYER_SALT: u64 = 0x6B65_7965_645F_7631; // "keyed_v1"

/// Absolute tolerance absorbing f64 summation-order noise between the
/// registry backend and the oracle.
fn slop(truth: f64) -> f64 {
    1e-9 * truth.abs().max(1.0)
}

/// A certified-envelope violation for one key, with everything needed
/// to replay it: regenerate the `(family, seed)` scenario, re-derive
/// the key stream from the same seed and `n_keys`, and re-query `key`
/// at `query_time`.
#[derive(Debug, Clone)]
pub struct RegistryFailure {
    pub backend: String,
    pub scenario: String,
    pub seed: u64,
    pub n_keys: u64,
    pub key: u64,
    pub query_time: Time,
    pub expected: f64,
    pub got: f64,
    pub bound: ErrorBound,
    pub evicted_slack: f64,
}

impl fmt::Display for RegistryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "registry {}: key {} answered {} at t={} but exact truth is {} \
             (bound -{}/+{}, eviction slack {}); replay: scenario `{}` seed {:#x} n_keys {}",
            self.backend,
            self.key,
            self.got,
            self.query_time,
            self.expected,
            self.bound.lower,
            self.bound.upper,
            self.evicted_slack,
            self.scenario,
            self.seed,
            self.n_keys,
        )
    }
}

/// What a clean [`certify_registry`] run covered.
#[derive(Debug, Clone, Copy)]
pub struct RegistryRunStats {
    /// `Op::Query` points replayed.
    pub queries: usize,
    /// Per-key envelope checks performed (every observed key at every
    /// query point).
    pub key_checks: usize,
    /// Worst relative error seen on keys with non-trivial truth.
    pub max_rel_err: f64,
    /// Keys resident when the run ended.
    pub live_keys: usize,
    /// Keys the registry's decay-aware sweep retired during the run.
    pub evictions: u64,
    /// Certified upper bound on the decayed mass those evictions
    /// dropped.
    pub evicted_mass: f64,
}

/// Replays `scenario` into `registry` and a per-key exact-oracle twin
/// in lock-step, checking every observed key's answer at every query
/// point against the registry's self-reported (eviction-widened)
/// envelope.
///
/// Keys are assigned per observation from a deterministic stream
/// seeded by `scenario.seed`, so each key sees a time-sorted
/// subsequence of the scenario and the whole keyed trace is
/// reproducible from `(family, seed, n_keys)`. The oracle twin is
/// never advanced or evicted: it retains every `(t, f)` forever and
/// evaluates truth directly, which is exactly what makes eviction
/// accountability checkable — an evicted key's truth stays positive
/// while the registry answers 0.0, and only the certified
/// `evicted_slack` may bridge the gap.
pub fn certify_registry<B: StreamAggregate>(
    registry: &mut KeyedRegistry<B>,
    make_oracle: &dyn Fn() -> DynOracle,
    scenario: &Scenario,
    n_keys: u64,
    backend_name: &str,
) -> Result<RegistryRunStats, Box<RegistryFailure>> {
    assert!(n_keys >= 1, "need at least one key");
    let mut keyer = Rng::new(scenario.seed ^ KEYER_SALT);
    let mut oracles: HashMap<u64, DynOracle> = HashMap::new();
    let mut observed: Vec<u64> = Vec::new(); // insertion-ordered key set
    let mut keyed_batch: Vec<(u64, Time, u64)> = Vec::new();

    let mut stats = RegistryRunStats {
        queries: 0,
        key_checks: 0,
        max_rel_err: 0.0,
        live_keys: 0,
        evictions: 0,
        evicted_mass: 0.0,
    };

    for op in &scenario.ops {
        match op {
            Op::Observe(t, f) => {
                let key = keyer.below(n_keys);
                registry.observe_keyed(key, *t, *f);
                oracles
                    .entry(key)
                    .or_insert_with(|| {
                        observed.push(key);
                        make_oracle()
                    })
                    .observe(*t, *f);
            }
            Op::ObserveBatch(items) => {
                keyed_batch.clear();
                for &(t, f) in items {
                    keyed_batch.push((keyer.below(n_keys), t, f));
                }
                registry.observe_keyed_batch(&keyed_batch);
                for &(key, t, f) in &keyed_batch {
                    oracles
                        .entry(key)
                        .or_insert_with(|| {
                            observed.push(key);
                            make_oracle()
                        })
                        .observe(t, f);
                }
            }
            Op::Advance(t) => {
                // Lazy by design: no slot is touched, only the
                // registry clock (which drives the eviction sweep's
                // mass bounds) moves. The oracle twin needs no
                // advance — it evaluates truth directly at any t.
                registry.advance_clock(*t);
            }
            Op::Query(t) => {
                stats.queries += 1;
                for &key in &observed {
                    let truth = oracles[&key].decayed_sum(*t);
                    let ans = registry.query_key(key, *t);
                    stats.key_checks += 1;
                    if !ans.admits(truth, slop(truth)) {
                        return Err(Box::new(RegistryFailure {
                            backend: backend_name.to_string(),
                            scenario: scenario.name.clone(),
                            seed: scenario.seed,
                            n_keys,
                            key,
                            query_time: *t,
                            expected: truth,
                            got: ans.estimate,
                            bound: ans.bound,
                            evicted_slack: ans.evicted_slack,
                        }));
                    }
                    if truth > slop(truth) {
                        let rel = (ans.estimate - truth).abs() / truth;
                        stats.max_rel_err = stats.max_rel_err.max(rel);
                    }
                }
            }
        }
    }

    let reg_stats = registry.stats();
    stats.live_keys = reg_stats.live_keys;
    stats.evictions = reg_stats.evictions;
    stats.evicted_mass = reg_stats.evicted_mass;
    Ok(stats)
}

/// The type-erased per-scenario run a [`RegistryCase`] holds.
type RegistryRunner = dyn Fn(&Scenario) -> Result<RegistryRunStats, Box<RegistryFailure>>;

/// One row of the registry conformance matrix: a backend family, a
/// registry configuration, and the matching exact-oracle constructor,
/// erased behind a closure so heterogeneous `KeyedRegistry<B>` types
/// share one matrix.
pub struct RegistryCase {
    pub name: &'static str,
    /// Scenarios whose `max_time()` exceeds this are skipped (forward
    /// accumulators with a finite landmark horizon).
    pub max_time: Option<Time>,
    runner: Box<RegistryRunner>,
}

impl RegistryCase {
    /// Builds a case that runs a fresh `KeyedRegistry<B>` (configured
    /// by `opts`) against a fresh per-key oracle twin for every
    /// scenario.
    pub fn of<B>(
        name: &'static str,
        n_keys: u64,
        opts: RegistryOptions,
        make_backend: impl Fn() -> B + Send + Sync + Clone + 'static,
        make_oracle: impl Fn() -> DynOracle + 'static,
    ) -> Self
    where
        B: StreamAggregate + 'static,
    {
        RegistryCase {
            name,
            max_time: None,
            runner: Box::new(move |scenario| {
                let mut registry = KeyedRegistry::new(opts.clone(), make_backend.clone());
                certify_registry(&mut registry, &make_oracle, scenario, n_keys, name)
            }),
        }
    }

    /// Caps the scenario horizon (see [`RegistryCase::max_time`]).
    pub fn with_max_time(mut self, t: Time) -> Self {
        self.max_time = Some(t);
        self
    }

    /// Runs the case, or `None` when the scenario exceeds the case's
    /// time horizon.
    pub fn run(
        &self,
        scenario: &Scenario,
    ) -> Option<Result<RegistryRunStats, Box<RegistryFailure>>> {
        if let Some(limit) = self.max_time {
            if scenario.max_time() > limit {
                return None;
            }
        }
        Some((self.runner)(scenario))
    }
}

/// The default registry matrix: forward-decay backends (exponential
/// with and without eviction, polynomial) plus a backward histogram
/// backend, each against the exact per-key oracle.
pub fn default_registry_matrix() -> Vec<RegistryCase> {
    use td_counters::ExpCounter;
    use td_decay::{DecayFunction, Exponential, Polynomial};
    use td_forward::{ForwardDecaySum, DEFAULT_MAX_TIME};

    use crate::oracle::Oracle;

    fn boxed<G: DecayFunction + 'static>(g: G) -> Box<dyn DecayFunction> {
        Box::new(g)
    }
    fn opts(eviction_threshold: f64) -> RegistryOptions {
        RegistryOptions {
            expected_keys: 32,
            eviction_threshold,
            sweep_per_ingest: 4,
            record_evictions: false,
            ..RegistryOptions::default()
        }
    }

    vec![
        RegistryCase::of(
            "registry/forward-sum-exp",
            13,
            opts(0.0),
            || ForwardDecaySum::new(Exponential::new(0.01)),
            || Oracle::new(boxed(Exponential::new(0.01))),
        ),
        // Aggressive decay plus a live eviction threshold: keys go
        // quiet, the sweep retires them, and every later answer must
        // still be admitted by the eviction-widened envelope.
        RegistryCase::of(
            "registry/forward-sum-exp-evicting",
            13,
            opts(1e-6),
            || ForwardDecaySum::new(Exponential::new(0.05)),
            || Oracle::new(boxed(Exponential::new(0.05))),
        ),
        RegistryCase::of(
            "registry/forward-sum-poly1",
            13,
            opts(0.0),
            || ForwardDecaySum::new(Polynomial::new(1.0)),
            || Oracle::forward(boxed(Polynomial::new(1.0)), 0),
        )
        .with_max_time(DEFAULT_MAX_TIME),
        // Backward histogram backend: the registry is
        // backend-agnostic, so an ε-deflated exponential counter slots
        // in with its own envelope.
        RegistryCase::of(
            "registry/exp-counter",
            13,
            opts(0.0),
            || ExpCounter::new(Exponential::new(0.05)),
            || Oracle::new(boxed(Exponential::new(0.05))),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use crate::scenario;
    use td_decay::Exponential;
    use td_forward::ForwardDecaySum;

    fn exp_oracle(lambda: f64) -> DynOracle {
        Oracle::new(Box::new(Exponential::new(lambda)))
    }

    #[test]
    fn clean_registry_certifies() {
        let sc = scenario::uniform(7, 400);
        let mut reg = KeyedRegistry::new(RegistryOptions::default(), || {
            ForwardDecaySum::new(Exponential::new(0.01))
        });
        let stats = certify_registry(&mut reg, &|| exp_oracle(0.01), &sc, 11, "test")
            .unwrap_or_else(|f| panic!("{f}"));
        assert!(stats.queries > 0);
        assert!(
            stats.key_checks >= stats.queries,
            "every key checked per query"
        );
        assert!(stats.max_rel_err < 1e-6, "forward exp sum is near-exact");
    }

    #[test]
    fn key_stream_is_deterministic() {
        let sc = scenario::bursty(3, 300);
        let run = || {
            let mut reg = KeyedRegistry::new(RegistryOptions::default(), || {
                ForwardDecaySum::new(Exponential::new(0.01))
            });
            let stats = certify_registry(&mut reg, &|| exp_oracle(0.01), &sc, 7, "det").unwrap();
            (stats.key_checks, stats.live_keys)
        };
        assert_eq!(
            run(),
            run(),
            "same (family, seed, n_keys) => same keyed trace"
        );
    }

    #[test]
    fn eviction_stays_inside_widened_envelope_and_is_reported() {
        // Fast decay + long-silence family: keys decay to dust, the
        // sweep retires them, and certification must still pass via
        // the evicted_slack term.
        let mut saw_eviction = false;
        for seed in 0..8u64 {
            let sc = scenario::long_silence(seed, 500);
            let mut reg = KeyedRegistry::new(
                RegistryOptions {
                    expected_keys: 16,
                    eviction_threshold: 1e-4,
                    sweep_per_ingest: 8,
                    ..RegistryOptions::default()
                },
                || ForwardDecaySum::new(Exponential::new(0.2)),
            );
            let stats = certify_registry(&mut reg, &|| exp_oracle(0.2), &sc, 9, "evict")
                .unwrap_or_else(|f| panic!("{f}"));
            if stats.evictions > 0 {
                saw_eviction = true;
                assert!(stats.evicted_mass >= 0.0);
            }
        }
        assert!(
            saw_eviction,
            "long-silence at lambda=0.2 must trigger at least one eviction"
        );
    }

    #[test]
    fn a_corrupted_key_is_caught_with_replayable_repro() {
        // Observe through the certifier once to learn the trace, then
        // replay with one key's mass doubled behind the oracle's back:
        // the certifier must fail and carry the repro triple.
        let sc = scenario::uniform(42, 300);
        let mut reg = KeyedRegistry::new(RegistryOptions::default(), || {
            ForwardDecaySum::new(Exponential::new(0.01))
        });
        // Pre-inject mass the oracle will never see on the key the
        // deterministic stream assigns first.
        let mut keyer = Rng::new(sc.seed ^ KEYER_SALT);
        let victim = keyer.below(5);
        let first_t = sc
            .ops
            .iter()
            .find_map(|op| match op {
                Op::Observe(t, _) => Some(*t),
                Op::ObserveBatch(items) => items.first().map(|&(t, _)| t),
                _ => None,
            })
            .unwrap();
        reg.observe_keyed(victim, first_t, 1_000_000);
        let err = certify_registry(&mut reg, &|| exp_oracle(0.01), &sc, 5, "corrupt")
            .expect_err("a million phantom units must not certify");
        assert_eq!(err.seed, 42);
        assert_eq!(err.n_keys, 5);
        assert_eq!(err.scenario, "uniform");
        let msg = err.to_string();
        assert!(
            msg.contains("0x2a") && msg.contains("n_keys 5"),
            "repro line must name seed and fanout: {msg}"
        );
    }

    #[test]
    fn default_matrix_covers_eviction_and_both_decay_families() {
        let matrix = default_registry_matrix();
        assert!(matrix.len() >= 4);
        assert!(matrix.iter().any(|c| c.name.contains("evicting")));
        assert!(matrix.iter().any(|c| c.name.contains("poly")));
        assert!(matrix.iter().any(|c| c.name.contains("exp-counter")));
        // The poly case is horizon-capped; a beyond-horizon scenario
        // is skipped, not failed.
        let poly = matrix.iter().find(|c| c.max_time.is_some()).unwrap();
        let far = Scenario {
            name: "far".into(),
            seed: 1,
            ops: vec![Op::Observe(u64::MAX - 1, 1)],
        };
        assert!(poly.run(&far).is_none());
    }
}
