//! The ε-certifier: replays a [`Scenario`] into a backend and the
//! exact [`Oracle`] in lock-step, and at every query checks the
//! backend's answer against the relative-error envelope the backend
//! *itself* certifies via [`StreamAggregate::error_bound`].
//!
//! On the first violated query the certifier stops and returns a
//! [`Failure`] carrying the minimal replayable repro: scenario family
//! name, seed, and the first failing query tick — enough to regenerate
//! the exact op sequence and re-run the offending backend by hand.

use std::fmt;

use td_decay::{DecayFunction, ErrorBound, StreamAggregate, Time};

use crate::oracle::Oracle;
use crate::scenario::{Op, Scenario};

/// A backend under test, behind the object-safe trait surface.
pub type DynAggregate = Box<dyn StreamAggregate>;

/// The reference oracle with a type-erased decay (the blanket
/// `DecayFunction for Box<G>` impl makes the boxed decay a first-class
/// `G`).
pub type DynOracle = Oracle<Box<dyn DecayFunction>>;

/// Which ground-truth quantity the backend's `query` estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TruthKind {
    /// The decayed sum `Σ f_i · g(T − t_i)` (§2.1).
    Sum,
    /// The decayed average (§7.2) — a ratio of two estimates.
    Average,
    /// The decayed variance (§7.3). No relative guarantee exists in
    /// the cancellation regime, so when the backend reports an
    /// unbounded envelope the certifier falls back to the absolute
    /// budget `|est − V| ≤ budget · Σ g·f²` (the paper's `O(ε·Σgf²)`
    /// characterization).
    Variance {
        /// The absolute-error budget as a fraction of the decayed
        /// second moment.
        budget: f64,
    },
}

/// A certified conformance violation, with everything needed to replay
/// it: regenerate the named scenario family at `seed` and query the
/// same backend at `query_time`.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The backend's matrix name.
    pub backend: String,
    /// The scenario family name.
    pub scenario: String,
    /// The seed the scenario was generated from.
    pub seed: u64,
    /// The first query tick where the envelope was violated.
    pub query_time: Time,
    /// The oracle's ground-truth answer at that tick.
    pub expected: f64,
    /// The backend's answer.
    pub got: f64,
    /// The envelope the backend certified at that moment.
    pub bound: ErrorBound,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conformance failure: backend `{}` on scenario `{}` (seed {:#x}) \
             at query tick {}: got {:.9e}, oracle says {:.9e}, certified \
             envelope [-{}, +{}]. Replay: regenerate family `{}` with seed \
             {:#x} and query at t = {}.",
            self.backend,
            self.scenario,
            self.seed,
            self.query_time,
            self.got,
            self.expected,
            self.bound.lower,
            self.bound.upper,
            self.scenario,
            self.seed,
            self.query_time,
        )
    }
}

impl std::error::Error for Failure {}

/// Aggregate statistics from a clean certification run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Queries checked.
    pub queries: usize,
    /// Largest observed relative error over queries whose ground truth
    /// was meaningfully nonzero.
    pub max_rel_err: f64,
    /// The backend's storage footprint after the full replay.
    pub final_storage_bits: u64,
}

/// Absolute tolerance absorbing f64 summation-order noise between the
/// backend and the oracle (both sum in different orders).
fn slop(truth: f64) -> f64 {
    1e-9 * truth.abs().max(1.0)
}

fn apply_op<A: StreamAggregate + ?Sized>(a: &mut A, op: &Op, cap: u64) {
    match op {
        Op::Observe(t, f) => a.observe(*t, (*f).min(cap)),
        Op::ObserveBatch(items) => {
            if cap == u64::MAX {
                a.observe_batch(items);
            } else {
                let capped: Vec<(Time, u64)> =
                    items.iter().map(|&(t, f)| (t, f.min(cap))).collect();
                a.observe_batch(&capped);
            }
        }
        Op::Advance(t) => a.advance(*t),
        Op::Query(_) => {}
    }
}

/// Replays `scenario` into `backend` and `oracle` in lock-step,
/// checking every query against the backend's certified envelope.
///
/// `value_cap` clamps observed values before they reach *either* side
/// (for backends with restricted domains, e.g. the 0/1 classic EH).
pub fn run_scenario(
    backend: &mut dyn StreamAggregate,
    oracle: &mut DynOracle,
    truth: TruthKind,
    value_cap: Option<u64>,
    scenario: &Scenario,
    backend_name: &str,
) -> Result<RunStats, Box<Failure>> {
    let cap = value_cap.unwrap_or(u64::MAX);
    let mut stats = RunStats::default();
    for op in &scenario.ops {
        if let Op::Query(t) = op {
            let est = backend.query(*t);
            let bound = backend.error_bound();
            let (expected, ok) = match truth {
                TruthKind::Sum => {
                    let v = oracle.decayed_sum(*t);
                    (v, bound.admits(est, v, slop(v)))
                }
                TruthKind::Average => {
                    let v = oracle.decayed_average(*t).unwrap_or(0.0);
                    (v, bound.admits(est, v, slop(v)))
                }
                TruthKind::Variance { budget } => {
                    let v = oracle.decayed_variance(*t);
                    let ok = if bound.is_bounded() {
                        bound.admits(est, v, slop(v))
                    } else {
                        (est - v).abs() <= budget * oracle.decayed_sum_of_squares(*t) + slop(v)
                    };
                    (v, ok)
                }
            };
            stats.queries += 1;
            if expected.abs() > 1e-9 {
                stats.max_rel_err = stats
                    .max_rel_err
                    .max((est - expected).abs() / expected.abs());
            }
            if !ok {
                return Err(Box::new(Failure {
                    backend: backend_name.to_string(),
                    scenario: scenario.name.clone(),
                    seed: scenario.seed,
                    query_time: *t,
                    expected,
                    got: est,
                    bound,
                }));
            }
        } else {
            apply_op(backend, op, cap);
            apply_op(oracle, op, cap);
        }
    }
    stats.final_storage_bits = backend.storage_bits();
    Ok(stats)
}

/// Distributed conformance (§6): deals `scenario` across `shards`
/// summaries round-robin, merges them back into one, and certifies the
/// merged answer against the oracle of the *whole* stream under the
/// merged summary's (widened) envelope.
///
/// The merged summary is queried at its **last observation tick** —
/// exercising the §2.1 at-tick exclusion *after* a merge, where stale
/// per-site at-tick state would corrupt the answer — and again strictly
/// after everything. `value_cap` clamps observed values on both sides
/// of the replay, exactly as in [`run_scenario`].
///
/// Generic rather than `dyn` because [`StreamAggregate::merge_from`]
/// requires `Self: Sized`.
pub fn certify_sharded<A, F, M>(
    make: F,
    oracle_decay: Box<dyn DecayFunction>,
    scenario: &Scenario,
    shards: usize,
    value_cap: Option<u64>,
    backend_name: &str,
    make_merge: M,
) -> Result<RunStats, Box<Failure>>
where
    A: StreamAggregate,
    F: Fn() -> A,
    M: Fn(&mut A, &A),
{
    assert!(shards >= 2, "sharded certification needs >= 2 shards");
    let cap = value_cap.unwrap_or(u64::MAX);
    let mut oracle: DynOracle = Oracle::new(oracle_decay);
    for op in &scenario.ops {
        apply_op(&mut oracle, op, cap);
    }

    let split = scenario.shard_split(shards);
    let mut parts: Vec<A> = (0..shards).map(|_| make()).collect();
    for (part, ops) in parts.iter_mut().zip(&split) {
        for op in ops {
            apply_op(part, op, cap);
        }
    }

    let mut merged = parts.remove(0);
    for p in &parts {
        make_merge(&mut merged, p);
    }

    // The merged summary's clock: shard_split mirrors every observation
    // tick to every shard as an `Advance`, so this is the latest
    // observe/advance time — queries (dropped by the split) excluded.
    let last_obs = scenario
        .ops
        .iter()
        .filter_map(|op| match op {
            Op::Observe(t, _) => Some(*t),
            Op::ObserveBatch(items) => items.last().map(|&(t, _)| t),
            Op::Advance(t) => Some(*t),
            Op::Query(_) => None,
        })
        .max();
    let mut query_times: Vec<Time> = Vec::new();
    if let Some(t) = last_obs {
        query_times.push(t);
    }
    query_times.push(scenario.max_time() + 7);

    let mut stats = RunStats {
        queries: 0,
        max_rel_err: 0.0,
        final_storage_bits: merged.storage_bits(),
    };
    for t in query_times {
        let est = merged.query(t);
        let bound = merged.error_bound();
        let expected = oracle.decayed_sum(t);
        if !bound.admits(est, expected, slop(expected)) {
            return Err(Box::new(Failure {
                backend: format!("{backend_name}[merged x{shards}]"),
                scenario: scenario.name.clone(),
                seed: scenario.seed,
                query_time: t,
                expected,
                got: est,
                bound,
            }));
        }
        stats.queries += 1;
        if expected.abs() > 1e-9 {
            stats.max_rel_err = stats
                .max_rel_err
                .max((est - expected).abs() / expected.abs());
        }
    }
    Ok(stats)
}

/// One backend × decay × truth-kind row of the conformance matrix.
pub struct MatrixCase {
    /// Display name (`backend/decay` convention).
    pub name: &'static str,
    /// What the backend's `query` estimates.
    pub truth: TruthKind,
    /// Clamp for observed values (restricted-domain backends).
    pub value_cap: Option<u64>,
    /// Skip scenarios mentioning times beyond this (backends built
    /// with a finite `max_age`).
    pub max_time: Option<Time>,
    make: Box<dyn Fn() -> (DynAggregate, DynOracle)>,
}

impl MatrixCase {
    /// A full-domain, unlimited-horizon decayed-sum case.
    pub fn sum(name: &'static str, make: impl Fn() -> (DynAggregate, DynOracle) + 'static) -> Self {
        MatrixCase {
            name,
            truth: TruthKind::Sum,
            value_cap: None,
            max_time: None,
            make: Box::new(make),
        }
    }

    /// Builder-style value clamp.
    pub fn with_value_cap(mut self, cap: u64) -> Self {
        self.value_cap = Some(cap);
        self
    }

    /// Builder-style horizon limit.
    pub fn with_max_time(mut self, t: Time) -> Self {
        self.max_time = Some(t);
        self
    }

    /// Builder-style truth kind.
    pub fn with_truth(mut self, truth: TruthKind) -> Self {
        self.truth = truth;
        self
    }

    /// A fresh `(backend, oracle)` pair.
    pub fn fresh(&self) -> (DynAggregate, DynOracle) {
        (self.make)()
    }

    /// Certifies one scenario, or `None` when the scenario's horizon
    /// exceeds this case's `max_time`.
    pub fn run(&self, scenario: &Scenario) -> Option<Result<RunStats, Box<Failure>>> {
        if let Some(limit) = self.max_time {
            if scenario.max_time() > limit {
                return None;
            }
        }
        let (mut backend, mut oracle) = self.fresh();
        Some(run_scenario(
            &mut *backend,
            &mut oracle,
            self.truth,
            self.value_cap,
            scenario,
            self.name,
        ))
    }
}

/// The default conformance matrix: every `StreamAggregate` backend in
/// the workspace paired with a decay it supports and the oracle of the
/// same decay. Horizons are capped only where the backend is built
/// with a finite `max_age`; domains only where the paper restricts
/// them (classic EH counts 0/1 items).
pub fn default_matrix() -> Vec<MatrixCase> {
    use td_aggregates::{DecayedAverage, DecayedVariance};
    use td_ceh::CascadedEh;
    use td_core::{BackendChoice, DecayedSum};
    use td_counters::{ExactDecayedSum, ExpCounter, PolyExpCounter, QuantizedExpCounter};
    use td_decay::{Constant, Exponential, LogDecay, PolyExponential, Polynomial, SlidingWindow};
    use td_eh::{ClassicEh, DominationEh};
    use td_forward::{
        ForwardDecayAverage, ForwardDecaySum, ForwardDecayVariance, DEFAULT_MAX_TIME,
    };
    use td_shard::ShardedAggregate;
    use td_wbmh::Wbmh;

    const WBMH_MAX_AGE: Time = 1 << 41;

    fn boxed<G: DecayFunction + 'static>(g: G) -> Box<dyn DecayFunction> {
        Box::new(g)
    }

    vec![
        // Exact store-nothing-lost baselines, one per decay family.
        MatrixCase::sum("exact/exp", || {
            (
                Box::new(ExactDecayedSum::new(boxed(Exponential::new(0.01)))),
                Oracle::new(boxed(Exponential::new(0.01))),
            )
        }),
        MatrixCase::sum("exact/poly1", || {
            (
                Box::new(ExactDecayedSum::new(boxed(Polynomial::new(1.0)))),
                Oracle::new(boxed(Polynomial::new(1.0))),
            )
        }),
        MatrixCase::sum("exact/sliding256", || {
            (
                Box::new(ExactDecayedSum::new(boxed(SlidingWindow::new(256)))),
                Oracle::new(boxed(SlidingWindow::new(256))),
            )
        }),
        MatrixCase::sum("exact/log64", || {
            (
                Box::new(ExactDecayedSum::new(boxed(LogDecay::new(64)))),
                Oracle::new(boxed(LogDecay::new(64))),
            )
        }),
        // §3.1 exponential counters, exact and quantized.
        MatrixCase::sum("exp-counter", || {
            (
                Box::new(ExpCounter::new(Exponential::new(0.01))),
                Oracle::new(boxed(Exponential::new(0.01))),
            )
        }),
        MatrixCase::sum("quantized-exp/m20", || {
            (
                Box::new(QuantizedExpCounter::new(Exponential::new(0.01), 20)),
                Oracle::new(boxed(Exponential::new(0.01))),
            )
        }),
        // §3.4 pipelined counters under the matching polyexponential.
        MatrixCase::sum("polyexp-pipeline/k2", || {
            (
                Box::new(PolyExpCounter::new(2, 0.03)),
                Oracle::new(boxed(PolyExponential::new(2, 0.03))),
            )
        }),
        // Theorem 1 cascaded EH across decay families.
        MatrixCase::sum("ceh/exp", || {
            (
                Box::new(CascadedEh::new(boxed(Exponential::new(0.01)), 0.1)),
                Oracle::new(boxed(Exponential::new(0.01))),
            )
        }),
        MatrixCase::sum("ceh/poly1", || {
            (
                Box::new(CascadedEh::new(boxed(Polynomial::new(1.0)), 0.1)),
                Oracle::new(boxed(Polynomial::new(1.0))),
            )
        }),
        MatrixCase::sum("ceh/sliding256", || {
            (
                Box::new(CascadedEh::new(boxed(SlidingWindow::new(256)), 0.1)),
                Oracle::new(boxed(SlidingWindow::new(256))),
            )
        }),
        // §5 WBMH (ratio-monotone decay), exact and approximate counts.
        MatrixCase::sum("wbmh/poly1", || {
            (
                Box::new(Wbmh::new(boxed(Polynomial::new(1.0)), 0.1, WBMH_MAX_AGE)),
                Oracle::new(boxed(Polynomial::new(1.0))),
            )
        })
        .with_max_time(WBMH_MAX_AGE / 2),
        MatrixCase::sum("wbmh/poly1-approx-counts", || {
            (
                Box::new(Wbmh::with_approx_counts(
                    boxed(Polynomial::new(1.0)),
                    0.1,
                    WBMH_MAX_AGE,
                    0.05,
                )),
                Oracle::new(boxed(Polynomial::new(1.0))),
            )
        })
        .with_max_time(WBMH_MAX_AGE / 2),
        // §3.2 exponential histograms as landmark counters (constant
        // decay): domination variant takes bulk mass, classic is 0/1.
        MatrixCase::sum("domination-eh/landmark", || {
            (
                Box::new(DominationEh::new(0.1, None)),
                Oracle::new(boxed(Constant)),
            )
        }),
        MatrixCase::sum("classic-eh/landmark", || {
            (
                Box::new(ClassicEh::new(0.1, None)),
                Oracle::new(boxed(Constant)),
            )
        })
        .with_value_cap(1),
        // The §8 dispatch facade: Auto picks the table's backend.
        MatrixCase::sum("core-auto/exp", || {
            (
                Box::new(
                    DecayedSum::builder(Exponential::new(0.01))
                        .epsilon(0.1)
                        .backend(BackendChoice::Auto)
                        .build(),
                ),
                Oracle::new(boxed(Exponential::new(0.01))),
            )
        }),
        MatrixCase::sum("core-auto/poly1", || {
            (
                Box::new(
                    DecayedSum::builder(Polynomial::new(1.0))
                        .epsilon(0.1)
                        .backend(BackendChoice::Auto)
                        .build(),
                ),
                Oracle::new(boxed(Polynomial::new(1.0))),
            )
        }),
        MatrixCase::sum("core-auto/sliding256", || {
            (
                Box::new(
                    DecayedSum::builder(SlidingWindow::new(256))
                        .epsilon(0.1)
                        .backend(BackendChoice::Auto)
                        .build(),
                ),
                Oracle::new(boxed(SlidingWindow::new(256))),
            )
        }),
        // §7 compound aggregates: ratio (average) and three-sums
        // reduction (variance).
        MatrixCase::sum("average/ceh-poly2", || {
            (
                Box::new(DecayedAverage::ceh(Polynomial::new(2.0), 0.05)),
                Oracle::new(boxed(Polynomial::new(2.0))),
            )
        })
        .with_truth(TruthKind::Average),
        MatrixCase::sum("variance/ceh-sliding512", || {
            (
                Box::new(DecayedVariance::ceh(SlidingWindow::new(512), 0.05)),
                Oracle::new(boxed(SlidingWindow::new(512))),
            )
        })
        .with_truth(TruthKind::Variance { budget: 0.5 }),
        // The td-shard engine (§6 turned into threads): three worker
        // shards fed round-robin, queries served from the epoch-cached
        // merged summary. Concrete (unboxed) decays — the backends must
        // be `Send` to cross into the worker threads. The certifier
        // replays these exactly like any single-threaded backend; the
        // envelope it checks against is the merged summary's own
        // (merge-widened, e.g. k·ε for the EH family).
        MatrixCase::sum("sharded-exp-counter/x3", || {
            (
                Box::new(ShardedAggregate::new(3, || {
                    ExpCounter::new(Exponential::new(0.01))
                })),
                Oracle::new(boxed(Exponential::new(0.01))),
            )
        }),
        MatrixCase::sum("sharded-ceh/exp-x3", || {
            (
                Box::new(ShardedAggregate::new(3, || {
                    CascadedEh::new(Exponential::new(0.01), 0.1)
                })),
                Oracle::new(boxed(Exponential::new(0.01))),
            )
        }),
        MatrixCase::sum("sharded-wbmh/poly1-x3", || {
            (
                Box::new(ShardedAggregate::new(3, || {
                    Wbmh::new(Polynomial::new(1.0), 0.1, WBMH_MAX_AGE)
                })),
                Oracle::new(boxed(Polynomial::new(1.0))),
            )
        })
        .with_max_time(WBMH_MAX_AGE / 2),
        // The td-forward family (ISSUE 8): O(1)-state moment
        // accumulators under the forward decay model. For exponential
        // decay forward ≡ backward, so those cases certify against the
        // ordinary backward oracle — including one with the rotation
        // threshold forced low enough that landmark rotations fire
        // inside tier-1 scenarios. Non-exponential decays are a
        // genuinely different model and certify against the oracle's
        // forward mode (`Oracle::forward`); their fixed landmark is
        // headroom-checked at `DEFAULT_MAX_TIME`, so scenarios beyond
        // that horizon are skipped.
        MatrixCase::sum("forward-sum/exp", || {
            (
                Box::new(ForwardDecaySum::new(Exponential::new(0.01))),
                Oracle::new(boxed(Exponential::new(0.01))),
            )
        }),
        MatrixCase::sum("forward-sum/exp-rotating", || {
            (
                Box::new(ForwardDecaySum::new(Exponential::new(0.01)).with_rotation_exponent(2.0)),
                Oracle::new(boxed(Exponential::new(0.01))),
            )
        }),
        MatrixCase::sum("forward-sum/poly1", || {
            (
                Box::new(ForwardDecaySum::new(Polynomial::new(1.0))),
                Oracle::forward(boxed(Polynomial::new(1.0)), 0),
            )
        })
        .with_max_time(DEFAULT_MAX_TIME),
        MatrixCase::sum("forward-sum/log64", || {
            (
                Box::new(ForwardDecaySum::new(LogDecay::new(64))),
                Oracle::forward(boxed(LogDecay::new(64)), 0),
            )
        })
        .with_max_time(DEFAULT_MAX_TIME),
        MatrixCase::sum("forward-average/poly2", || {
            (
                Box::new(ForwardDecayAverage::new(Polynomial::new(2.0))),
                Oracle::forward(boxed(Polynomial::new(2.0)), 0),
            )
        })
        .with_truth(TruthKind::Average)
        .with_max_time(DEFAULT_MAX_TIME),
        MatrixCase::sum("forward-variance/poly1", || {
            (
                Box::new(ForwardDecayVariance::new(Polynomial::new(1.0))),
                Oracle::forward(boxed(Polynomial::new(1.0)), 0),
            )
        })
        .with_truth(TruthKind::Variance { budget: 1e-6 })
        .with_max_time(DEFAULT_MAX_TIME),
        MatrixCase::sum("sharded-forward/exp-x3", || {
            (
                Box::new(ShardedAggregate::new(3, || {
                    ForwardDecaySum::new(Exponential::new(0.01))
                })),
                Oracle::new(boxed(Exponential::new(0.01))),
            )
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use td_decay::Exponential;

    #[test]
    fn failure_display_is_replayable() {
        let f = Failure {
            backend: "ceh/exp".into(),
            scenario: "bursty".into(),
            seed: 0xBEEF,
            query_time: 321,
            expected: 10.0,
            got: 20.0,
            bound: ErrorBound::symmetric(0.1),
        };
        let msg = f.to_string();
        for needle in ["ceh/exp", "bursty", "0xbeef", "321"] {
            assert!(msg.contains(needle), "missing `{needle}` in: {msg}");
        }
    }

    #[test]
    fn oracle_certifies_against_itself() {
        let sc = scenario::uniform(11, 200);
        let mut backend: DynOracle = Oracle::new(Box::new(Exponential::new(0.02)));
        let mut oracle: DynOracle = Oracle::new(Box::new(Exponential::new(0.02)));
        let stats = run_scenario(
            &mut backend,
            &mut oracle,
            TruthKind::Sum,
            None,
            &sc,
            "oracle",
        )
        .expect("oracle vs oracle must certify");
        assert!(stats.queries > 0);
        assert!(stats.max_rel_err < 1e-12);
    }

    #[test]
    fn certifier_catches_a_broken_backend() {
        // A deliberately wrong backend: doubles every value.
        struct Doubler(DynOracle);
        impl td_decay::storage::StorageAccounting for Doubler {
            fn storage_bits(&self) -> u64 {
                self.0.storage_bits()
            }
        }
        impl StreamAggregate for Doubler {
            fn observe(&mut self, t: Time, f: u64) {
                self.0.observe(t, f * 2);
            }
            fn advance(&mut self, t: Time) {
                StreamAggregate::advance(&mut self.0, t);
            }
            fn query(&self, t: Time) -> f64 {
                self.0.query(t)
            }
            fn merge_from(&mut self, _other: &Self) {
                unimplemented!()
            }
            fn error_bound(&self) -> ErrorBound {
                ErrorBound::symmetric(0.1)
            }
        }

        let sc = scenario::uniform(5, 100);
        let mut backend = Doubler(Oracle::new(Box::new(Exponential::new(0.02))));
        let mut oracle: DynOracle = Oracle::new(Box::new(Exponential::new(0.02)));
        let err = run_scenario(
            &mut backend,
            &mut oracle,
            TruthKind::Sum,
            None,
            &sc,
            "doubler",
        )
        .expect_err("a 2x-wrong backend must fail certification");
        assert_eq!(err.seed, 5);
        assert_eq!(err.scenario, "uniform");
        assert!(err.got > err.expected * 1.5);
    }
}
