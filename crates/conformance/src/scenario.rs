//! Deterministic, seeded stream-scenario generation — no wall clock,
//! no global RNG state: a `(family, seed, n)` triple always produces
//! the same op sequence, so every certifier failure is replayable from
//! the `(scenario name, seed)` pair it reports.
//!
//! The families target the structured corner cases where time-decay
//! sketches are known to fail (bursts, long silences, boundary-aligned
//! arrivals — cf. Braverman et al.), plus the paper's own adversarial
//! Theorem 2 burst family and batch-boundary/shard-split stressors.

use td_decay::Time;
use td_stream::LowerBoundFamily;

/// One step of a replayable stream scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Feed one item.
    Observe(Time, u64),
    /// Feed a sorted burst through the amortized batch path.
    ObserveBatch(Vec<(Time, u64)>),
    /// Advance the clock without mass (exercises mid-silence pruning).
    Advance(Time),
    /// Check the backend's answer against the oracle at this tick.
    Query(Time),
}

/// A named, seeded, fully deterministic op sequence.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Family name (stable across releases — failures cite it).
    pub name: String,
    /// The seed the family was generated from.
    pub seed: u64,
    /// The ops, with all observation times non-decreasing.
    pub ops: Vec<Op>,
}

impl Scenario {
    /// The largest time mentioned by any op.
    pub fn max_time(&self) -> Time {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Observe(t, _) => *t,
                Op::ObserveBatch(items) => items.last().map(|&(t, _)| t).unwrap_or(0),
                Op::Advance(t) => *t,
                Op::Query(t) => *t,
            })
            .max()
            .unwrap_or(0)
    }

    /// Splits the scenario into `k` per-shard op sequences for the
    /// distributed shard-then-merge check (§6): observations are dealt
    /// round-robin, while `Advance` is mirrored to every shard — and
    /// every shard is advanced past each observation tick — so all
    /// shards share a clock (the WBMH merge precondition). Queries are
    /// dropped; the certifier queries the *merged* summary instead.
    pub fn shard_split(&self, k: usize) -> Vec<Vec<Op>> {
        assert!(k >= 1);
        let mut shards: Vec<Vec<Op>> = vec![Vec::new(); k];
        let mut next = 0usize;
        for op in &self.ops {
            match op {
                Op::Observe(t, f) => {
                    for (i, shard) in shards.iter_mut().enumerate() {
                        if i == next {
                            shard.push(Op::Observe(*t, *f));
                        } else {
                            shard.push(Op::Advance(*t));
                        }
                    }
                    next = (next + 1) % k;
                }
                Op::ObserveBatch(items) => {
                    // Deal the batch's items round-robin, preserving
                    // each shard's sorted batch.
                    let t_last = items.last().map(|&(t, _)| t);
                    let mut per: Vec<Vec<(Time, u64)>> = vec![Vec::new(); k];
                    for &(t, f) in items {
                        per[next].push((t, f));
                        next = (next + 1) % k;
                    }
                    for (shard, mine) in shards.iter_mut().zip(per) {
                        if !mine.is_empty() {
                            shard.push(Op::ObserveBatch(mine));
                        }
                        if let Some(t) = t_last {
                            shard.push(Op::Advance(t));
                        }
                    }
                }
                Op::Advance(t) => {
                    for shard in shards.iter_mut() {
                        shard.push(Op::Advance(*t));
                    }
                }
                Op::Query(_) => {}
            }
        }
        shards
    }
}

/// SplitMix64 — the standard 64-bit seeded generator; tiny, fast, and
/// deterministic across platforms (no wall clock anywhere).
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

/// Evenly spaced arrivals with random values — the baseline family.
pub fn uniform(seed: u64, n: usize) -> Scenario {
    let mut rng = Rng::new(seed ^ 0x1);
    let mut ops = Vec::with_capacity(n + n / 16 + 2);
    let mut t: Time = 0;
    for i in 0..n {
        t += rng.range(1, 3);
        ops.push(Op::Observe(t, rng.below(16)));
        if i % 16 == 15 {
            ops.push(Op::Query(t + rng.range(1, 4)));
        }
    }
    ops.push(Op::Query(t + 1));
    ops.push(Op::Query(t + 100));
    Scenario {
        name: "uniform".into(),
        seed,
        ops,
    }
}

/// Heavy same-tick bursts separated by variable gaps; bursts alternate
/// between the single-item and the amortized batch ingest path.
pub fn bursty(seed: u64, n: usize) -> Scenario {
    let mut rng = Rng::new(seed ^ 0x2);
    let mut ops = Vec::new();
    let mut t: Time = 0;
    let mut fed = 0usize;
    while fed < n {
        t += rng.range(1, 64);
        let burst = rng.range(5, 40).min((n - fed) as u64) as usize;
        let tick_items: Vec<(Time, u64)> = (0..burst).map(|_| (t, 1 + rng.below(8))).collect();
        if rng.below(2) == 0 {
            ops.push(Op::ObserveBatch(tick_items));
        } else {
            for &(t, f) in &tick_items {
                ops.push(Op::Observe(t, f));
            }
        }
        fed += burst;
        // Query right at the burst tick (§2.1 edge: the burst itself
        // must be invisible) and shortly after.
        ops.push(Op::Query(t));
        ops.push(Op::Query(t + rng.range(1, 16)));
    }
    Scenario {
        name: "bursty".into(),
        seed,
        ops,
    }
}

/// A dense prefix, then a long ingest silence probed by mid-silence
/// queries after explicit `advance` calls, then a small resumption.
pub fn long_silence(seed: u64, n: usize) -> Scenario {
    let mut rng = Rng::new(seed ^ 0x3);
    let mut ops = Vec::new();
    let mut t: Time = 0;
    let head = (n * 3) / 4;
    for _ in 0..head {
        t += rng.range(1, 2);
        ops.push(Op::Observe(t, rng.below(10)));
    }
    // Silence spanning ~32× the ingest period, with queries between
    // advances (post-advance queries are the satellite the issue
    // names: expired state must be reclaimed *and* still answered).
    let silence = (t * 32).max(1_000);
    for step in 1..=4u64 {
        let s = t + step * silence / 4;
        ops.push(Op::Advance(s));
        ops.push(Op::Query(s + 1));
        ops.push(Op::Query(s + silence / 8));
    }
    t += silence;
    for _ in 0..(n - head).max(4) {
        t += rng.range(1, 2);
        ops.push(Op::Observe(t, rng.below(10)));
    }
    ops.push(Op::Query(t + 1));
    Scenario {
        name: "long-silence".into(),
        seed,
        ops,
    }
}

/// Arrivals pinned to powers of two and multiples of 256 — the
/// boundary-aligned corner where bucket seals, region boundaries, and
/// window cutoffs all coincide; queried exactly on the boundaries.
pub fn boundary_aligned(seed: u64, n: usize) -> Scenario {
    let mut rng = Rng::new(seed ^ 0x4);
    let mut ticks: Vec<Time> = Vec::new();
    let mut p: Time = 1;
    while p < (n as Time) * 4 {
        ticks.push(p);
        p *= 2;
    }
    let mut m: Time = 256;
    while m < (n as Time) * 4 {
        ticks.push(m);
        m += 256;
    }
    ticks.sort_unstable();
    ticks.dedup();
    let mut ops = Vec::new();
    for &t in &ticks {
        ops.push(Op::Observe(t, 1 + rng.below(4)));
        // On-boundary query (item at t excluded), then off-by-one.
        ops.push(Op::Query(t));
        ops.push(Op::Query(t + 1));
    }
    let last = *ticks.last().unwrap_or(&1);
    ops.push(Op::Query(last + 255));
    ops.push(Op::Query(last + 256));
    Scenario {
        name: "boundary-aligned".into(),
        seed,
        ops,
    }
}

/// The Theorem 2 adversarial burst family (`crates/stream`): bursts
/// carrying secret bits at geometrically spaced paper-times, probed at
/// the paper's dominance points. `k = 40, α = 1` — the configuration
/// restoring the > 4 dominance margin (see `LowerBoundFamily`).
pub fn adversarial_theorem2(seed: u64) -> Scenario {
    let mut rng = Rng::new(seed ^ 0x5);
    // r = 5 keeps k^{2i} inside the u64 clock at k = 40.
    let bits: Vec<u8> = (0..5).map(|_| 1 + rng.below(2) as u8).collect();
    let fam = LowerBoundFamily::new(40, 1.0, bits);
    let mut ops: Vec<Op> = Vec::new();
    let arrivals = fam.arrivals();
    ops.push(Op::ObserveBatch(arrivals.clone()));
    // Queries at every probe point, plus just after the last arrival.
    let t_last = arrivals.last().map(|&(t, _)| t).unwrap_or(0);
    ops.push(Op::Query(t_last + 1));
    for i in 1..=fam.r() as u32 {
        ops.push(Op::Query(fam.probe_time(i)));
    }
    Scenario {
        name: "adversarial-theorem2".into(),
        seed,
        ops,
    }
}

/// How far the out-of-order generator's skew may wander relative to
/// batch boundaries. The legacy sub-case is kept bit-for-bit (same RNG
/// draws, same ops, same family name) so every seed ever cited in a
/// failure repro replays identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkewExtent {
    /// The original `out-of-order-batch` behavior: timestamps jittered
    /// inside a 4-tick window confined to one batch, with only the
    /// boundary *tick* shared across batches half the time.
    WithinBatch,
    /// Generation-time skew spanning several batches: one long
    /// jittered run is sorted globally, then split at random points —
    /// so a single tick run straddles multiple `observe_batch` calls
    /// and batch boundaries carry no alignment information at all.
    CrossBatch,
}

/// The generalized out-of-order family (ISSUE 7 satellite): sorted
/// batches whose generation-time skew is confined to one batch
/// ([`SkewExtent::WithinBatch`], the legacy sub-case) or spans several
/// ([`SkewExtent::CrossBatch`]). Ingested ops are always sorted, as the
/// trait demands — *arrival*-order lateness is `td-reorder`'s domain
/// and is exercised by the `LateArrival` families in
/// [`crate::lateness`].
pub fn out_of_order(seed: u64, n: usize, skew: SkewExtent) -> Scenario {
    match skew {
        SkewExtent::WithinBatch => {
            let mut rng = Rng::new(seed ^ 0x6);
            let mut ops = Vec::new();
            let mut t: Time = 1;
            let mut fed = 0usize;
            while fed < n {
                let len = rng.range(8, 24).min((n - fed) as u64) as usize;
                // Jittered timestamps inside a small window, then sorted —
                // "out of order within batch" at generation time, sorted (as
                // the trait demands) at ingest time.
                let mut items: Vec<(Time, u64)> = (0..len)
                    .map(|_| (t + rng.below(4), 1 + rng.below(6)))
                    .collect();
                items.sort_by_key(|&(ti, _)| ti);
                let t_end = items.last().unwrap().0;
                ops.push(Op::ObserveBatch(items));
                fed += len;
                if rng.below(3) == 0 {
                    ops.push(Op::Query(t_end + rng.range(1, 8)));
                }
                // Start the next batch at the PREVIOUS end tick (same tick
                // split across batches) half the time.
                t = if rng.below(2) == 0 {
                    t_end
                } else {
                    t_end + rng.range(1, 8)
                };
            }
            ops.push(Op::Query(t + 9));
            Scenario {
                name: "out-of-order-batch".into(),
                seed,
                ops,
            }
        }
        SkewExtent::CrossBatch => {
            // A fresh RNG stream (^0x16): this sub-case must not
            // perturb the legacy one's draws.
            let mut rng = Rng::new(seed ^ 0x16);
            // One long jittered run: base ticks advance slowly while
            // the jitter window (16 ticks) spans several of the 5–20
            // item batches the run is later split into.
            let mut raw: Vec<(Time, u64)> = Vec::with_capacity(n);
            let mut base: Time = 1;
            for _ in 0..n {
                base += rng.below(2);
                raw.push((base + rng.below(16), 1 + rng.below(6)));
            }
            raw.sort_by_key(|&(ti, _)| ti);
            let mut ops = Vec::new();
            let mut i = 0usize;
            while i < raw.len() {
                let len = rng.range(5, 20).min((raw.len() - i) as u64) as usize;
                let chunk = raw[i..i + len].to_vec();
                let t_end = chunk.last().unwrap().0;
                ops.push(Op::ObserveBatch(chunk));
                i += len;
                if rng.below(3) == 0 {
                    // Query inside the still-live jitter window: later
                    // batches will deliver ticks ≤ this query time.
                    ops.push(Op::Query(t_end + 1));
                }
            }
            let t_last = raw.last().map(|&(ti, _)| ti).unwrap_or(1);
            ops.push(Op::Query(t_last + 9));
            Scenario {
                name: "out-of-order-cross-batch".into(),
                seed,
                ops,
            }
        }
    }
}

/// The legacy within-batch sub-case, name and op sequence unchanged:
/// sorted batches whose tick runs straddle batch boundaries, so
/// same-tick coalescing must work *across* `observe_batch` calls.
pub fn out_of_order_batch(seed: u64, n: usize) -> Scenario {
    out_of_order(seed, n, SkewExtent::WithinBatch)
}

/// The cross-batch sub-case: one jittered window split across many
/// batches (see [`SkewExtent::CrossBatch`]).
pub fn out_of_order_cross_batch(seed: u64, n: usize) -> Scenario {
    out_of_order(seed, n, SkewExtent::CrossBatch)
}

/// The full catalogue at one seed: every named family the certifier
/// runs. `n` scales stream length (tier-1 keeps it small; the
/// exhaustive `--ignored` mode turns it up).
pub fn catalogue(seed: u64, n: usize) -> Vec<Scenario> {
    vec![
        uniform(seed, n),
        bursty(seed, n),
        long_silence(seed, n),
        boundary_aligned(seed, n),
        adversarial_theorem2(seed),
        out_of_order_batch(seed, n),
        // Appended last so positional indexing of the older families
        // (tests pick bursty as index 1) stays valid.
        out_of_order_cross_batch(seed, n),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times_non_decreasing(ops: &[Op]) -> bool {
        let mut last: Time = 0;
        for op in ops {
            let ts: Vec<Time> = match op {
                Op::Observe(t, _) => vec![*t],
                Op::ObserveBatch(items) => items.iter().map(|&(t, _)| t).collect(),
                Op::Advance(t) => vec![*t],
                Op::Query(_) => continue, // queries may look back
            };
            for t in ts {
                if t < last {
                    return false;
                }
                last = t;
            }
        }
        true
    }

    #[test]
    fn generation_is_deterministic() {
        for sc in [uniform(7, 100), bursty(7, 100), long_silence(7, 100)] {
            let again = match sc.name.as_str() {
                "uniform" => uniform(7, 100),
                "bursty" => bursty(7, 100),
                _ => long_silence(7, 100),
            };
            assert_eq!(sc.ops, again.ops, "{} not deterministic", sc.name);
        }
    }

    #[test]
    fn all_families_keep_time_ordered() {
        for sc in catalogue(0xDEAD_BEEF, 200) {
            assert!(times_non_decreasing(&sc.ops), "{} out of order", sc.name);
            assert!(
                sc.ops.iter().any(|op| matches!(op, Op::Query(_))),
                "{} never queries",
                sc.name
            );
        }
    }

    /// FNV-1a over the Debug rendering of an op list — a cheap frozen
    /// fingerprint for replayability regressions.
    fn ops_fingerprint(ops: &[Op]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{ops:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    #[test]
    fn out_of_order_batch_legacy_sub_case_is_frozen() {
        // The within-batch sub-case is the pre-generalization
        // `out-of-order-batch` family: seeds cited in old failure
        // repros must replay the exact same op sequence forever.
        let sc = out_of_order(7, 160, SkewExtent::WithinBatch);
        assert_eq!(sc.name, "out-of-order-batch");
        assert_eq!(sc.ops, out_of_order_batch(7, 160).ops);
        assert_eq!(
            ops_fingerprint(&sc.ops),
            LEGACY_OOO_FINGERPRINT,
            "legacy out-of-order-batch ops changed — old repro seeds no longer replay"
        );
    }

    const LEGACY_OOO_FINGERPRINT: u64 = 0xbe6e_89f5_a984_e93f;

    #[test]
    fn cross_batch_skew_straddles_batch_boundaries() {
        let sc = out_of_order_cross_batch(11, 300);
        assert_eq!(sc.name, "out-of-order-cross-batch");
        assert!(times_non_decreasing(&sc.ops));
        // At least one tick value must appear in two different batches:
        // the jitter window spans several batch splits, so sorted runs
        // straddle `observe_batch` boundaries.
        let mut straddles = 0;
        let mut last_end: Option<Time> = None;
        for op in &sc.ops {
            if let Op::ObserveBatch(items) = op {
                if let (Some(prev), Some(&(first, _))) = (last_end, items.first()) {
                    if first == prev {
                        straddles += 1;
                    }
                }
                last_end = items.last().map(|&(t, _)| t);
            }
        }
        assert!(straddles > 0, "no tick run straddles a batch boundary");
    }

    #[test]
    fn shard_split_partitions_observations() {
        let sc = uniform(3, 120);
        let shards = sc.shard_split(3);
        assert_eq!(shards.len(), 3);
        let count = |ops: &[Op]| -> u64 {
            ops.iter()
                .map(|op| match op {
                    Op::Observe(_, f) => *f,
                    Op::ObserveBatch(items) => items.iter().map(|&(_, f)| f).sum(),
                    _ => 0,
                })
                .sum()
        };
        let whole = count(&sc.ops);
        let split: u64 = shards.iter().map(|s| count(s)).sum();
        assert_eq!(whole, split);
        for s in &shards {
            assert!(times_non_decreasing(s));
            assert!(!s.iter().any(|op| matches!(op, Op::Query(_))));
        }
    }
}
