//! Kill-at-any-byte recovery certification.
//!
//! The durability contract (`td-persist`) is: after a crash, recovery
//! either reconstructs a state that is **exactly** some prefix of the
//! logged ingest history — and says which prefix — or refuses with a
//! typed [`RestoreError`]. Never a panic, never a silently wrong
//! state, never more history than was durable.
//!
//! [`certify_recovery`] proves that contract mechanically: it replays
//! a [`Scenario`] through a [`DurableAggregate`] over an in-memory
//! [`Storage`](td_persist::Storage) double, snapshots the **durable**
//! bytes (what a real disk would hold after power loss), then kills
//! the store at every byte offset of every surviving file — once by
//! truncating there (torn write / short segment) and once by flipping
//! a bit there (media corruption) — and for each damaged store:
//!
//! 1. attempts recovery, requiring any failure to be a typed
//!    [`RestoreError`] (panics are caught and reported with a repro);
//! 2. on success, requires the recovered position to be a whole-call
//!    prefix of the logged history;
//! 3. replays the remainder of the stream into the recovered summary
//!    and lock-step certifies its answers against the exact
//!    [`Oracle`] of the *full* stream, inside the summary's own
//!    [`error_bound`](td_decay::StreamAggregate::error_bound).
//!
//! The undamaged snapshot must recover and certify too — a store that
//! "survived" every sweep by refusing everything would be caught
//! there. Failures carry a one-line repro (backend, family, seed,
//! file, damage) for the CI job summary.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use td_decay::checkpoint::{Checkpoint, RestoreError};
use td_decay::{DecayFunction, StreamAggregate, Time};
use td_persist::{DurabilityOptions, DurableAggregate, MemStorage, StoreOptions, SyncPolicy};

use crate::certify::DynOracle;
use crate::oracle::Oracle;
use crate::scenario::{Op, Scenario};

/// One ingest call, as the durable wrapper logs it: one call = one WAL
/// record, so recovery positions land on call boundaries.
#[derive(Debug, Clone)]
enum Call {
    Observe(Time, u64),
    Batch(Vec<(Time, u64)>),
    Advance(Time),
}

impl Call {
    /// Flattened entries this call logs (what
    /// `RecoveryStats::entries_applied` counts).
    fn entries(&self) -> u64 {
        match self {
            Call::Observe(..) | Call::Advance(_) => 1,
            Call::Batch(items) => items.len() as u64,
        }
    }

    fn apply_durable<B: StreamAggregate + Checkpoint>(
        &self,
        agg: &mut DurableAggregate<B>,
    ) -> Result<(), RestoreError> {
        match self {
            Call::Observe(t, f) => agg.observe(*t, *f),
            Call::Batch(items) => agg.observe_batch(items),
            Call::Advance(t) => agg.advance(*t),
        }
    }

    fn apply_oracle(&self, oracle: &mut DynOracle) {
        match self {
            Call::Observe(t, f) => oracle.observe(*t, *f),
            Call::Batch(items) => oracle.observe_batch(items),
            Call::Advance(t) => StreamAggregate::advance(oracle, *t),
        }
    }
}

/// How the store was killed at one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Damage {
    /// The file ends at `offset` — a torn write / lost tail.
    Truncate {
        /// Byte offset the file was cut at.
        offset: usize,
    },
    /// One bit flipped — media corruption.
    BitFlip {
        /// Absolute bit index into the file.
        bit: u64,
    },
}

impl fmt::Display for Damage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Damage::Truncate { offset } => write!(f, "truncate@{offset}"),
            Damage::BitFlip { bit } => write!(f, "bitflip@{bit}"),
        }
    }
}

/// A certified recovery violation with a replayable repro line.
#[derive(Debug, Clone)]
pub struct RecoveryFailure {
    /// The backend's matrix name.
    pub backend: String,
    /// The scenario family.
    pub scenario: String,
    /// The scenario seed.
    pub seed: u64,
    /// The damaged file (empty for the undamaged baseline).
    pub file: String,
    /// The damage applied, `None` for the undamaged baseline.
    pub damage: Option<Damage>,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for RecoveryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dmg = match self.damage {
            Some(d) => format!("{}:{d}", self.file),
            None => "undamaged-baseline".to_string(),
        };
        write!(
            f,
            "recovery failure: backend `{}` on scenario `{}` (seed {:#x}) \
             with damage {dmg}: {}. Replay: certify_recovery of family \
             `{}` at seed {:#x}, damage {dmg}.",
            self.backend, self.scenario, self.seed, self.detail, self.scenario, self.seed,
        )
    }
}

impl std::error::Error for RecoveryFailure {}

/// Aggregate statistics from a clean kill-at-any-byte sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Damage points swept (truncations + bit flips).
    pub sweeps: usize,
    /// Sweeps that recovered and certified against the oracle.
    pub recovered: usize,
    /// Sweeps that refused with a typed [`RestoreError`].
    pub refused: usize,
    /// Largest whole-call history loss any recovery reported
    /// (entries logged minus entries recovered).
    pub max_entries_lost: u64,
    /// Durable bytes the sweep covered.
    pub durable_bytes: usize,
}

/// Absolute tolerance absorbing f64 summation-order noise.
fn slop(truth: f64) -> f64 {
    1e-9 * truth.abs().max(1.0)
}

/// Lowers a scenario to the ingest calls the durable wrapper will log
/// (queries dropped — the sweep probes at fixed ticks instead).
fn flatten_calls(scenario: &Scenario) -> Vec<Call> {
    scenario
        .ops
        .iter()
        .filter_map(|op| match op {
            Op::Observe(t, f) => Some(Call::Observe(*t, *f)),
            Op::ObserveBatch(items) => Some(Call::Batch(items.clone())),
            Op::Advance(t) => Some(Call::Advance(*t)),
            Op::Query(_) => None,
        })
        .collect()
}

/// Whether every op (and every item inside each batch) is in
/// non-decreasing time order — the contract bare backends require.
/// Out-of-arrival-order families are meant for a `td-reorder` front
/// and are skipped by the recovery matrix.
pub fn is_time_ordered(scenario: &Scenario) -> bool {
    let mut last: Time = 0;
    for op in &scenario.ops {
        match op {
            Op::Observe(t, _) | Op::Advance(t) => {
                if *t < last {
                    return false;
                }
                last = *t;
            }
            Op::ObserveBatch(items) => {
                for &(t, _) in items {
                    if t < last {
                        return false;
                    }
                    last = t;
                }
            }
            Op::Query(_) => {}
        }
    }
    true
}

/// Store tuning for the sweep: tiny segments so rotation and
/// multi-segment recovery are exercised even by short tier-1 streams,
/// fsync every record so the durable snapshot holds everything, and a
/// checkpoint cadence that leaves both checkpoint files *and* a live
/// WAL tail on disk at kill time.
fn sweep_options() -> DurabilityOptions {
    DurabilityOptions {
        store: StoreOptions {
            segment_bytes: 1024,
            sync: SyncPolicy::EveryRecord,
        },
        checkpoint_every_records: 16,
    }
}

/// The outcome of recovering one damaged store.
enum Outcome {
    Refused,
    Recovered { lost: u64 },
    Wrong(String),
}

/// Recovers from `storage`, replays the remainder, certifies against
/// the oracle. `boundaries[i]` = flattened entries after the first `i`
/// calls.
fn attempt<B, F>(
    storage: MemStorage,
    make: &F,
    calls: &[Call],
    boundaries: &[u64],
    oracle: &DynOracle,
    probes: &[Time],
) -> Outcome
where
    B: StreamAggregate + Checkpoint,
    F: Fn() -> B,
{
    let total = *boundaries.last().expect("boundaries never empty");
    let opened = DurableAggregate::open(Box::new(storage), sweep_options(), make);
    let (mut agg, stats) = match opened {
        Err(_typed) => return Outcome::Refused,
        Ok(pair) => pair,
    };
    if stats.entries_applied > total {
        return Outcome::Wrong(format!(
            "recovered {} entries but only {total} were ever logged",
            stats.entries_applied
        ));
    }
    let idx = match boundaries.binary_search(&stats.entries_applied) {
        Ok(i) => i,
        Err(_) => {
            return Outcome::Wrong(format!(
                "recovered position {} is not a whole-call boundary",
                stats.entries_applied
            ))
        }
    };
    for call in &calls[idx..] {
        if let Err(e) = call.apply_durable(&mut agg) {
            return Outcome::Wrong(format!("re-ingest after recovery failed: {e}"));
        }
    }
    for &t in probes {
        let est = agg.query(t);
        let bound = agg.error_bound();
        let truth = oracle.decayed_sum(t);
        if !bound.admits(est, truth, slop(truth)) {
            return Outcome::Wrong(format!(
                "after recovery + replay, query({t}) = {est:.9e} but the \
                 oracle says {truth:.9e}, outside the certified envelope \
                 [-{}, +{}]",
                bound.lower, bound.upper
            ));
        }
    }
    Outcome::Recovered {
        lost: total - stats.entries_applied,
    }
}

/// Kill-at-any-byte certification of one backend × decay × scenario.
///
/// `stride` spaces the swept byte offsets: `1` kills at **every** byte
/// (the exhaustive/nightly mode); tier-1 uses a small prime so repeated
/// runs still cover every region class cheaply. Panics anywhere in
/// recovery or replay are caught and reported as failures with the
/// repro line.
pub fn certify_recovery<B, F>(
    backend_name: &str,
    make: &F,
    oracle_decay: Box<dyn DecayFunction>,
    scenario: &Scenario,
    stride: usize,
) -> Result<RecoveryReport, Box<RecoveryFailure>>
where
    B: StreamAggregate + Checkpoint,
    F: Fn() -> B,
{
    assert!(stride >= 1, "stride must be at least 1");
    assert!(
        is_time_ordered(scenario),
        "recovery certification feeds backends directly; scenario `{}` \
         is out of arrival order",
        scenario.name
    );
    let fail = |file: &str, damage: Option<Damage>, detail: String| {
        Box::new(RecoveryFailure {
            backend: backend_name.to_string(),
            scenario: scenario.name.clone(),
            seed: scenario.seed,
            file: file.to_string(),
            damage,
            detail,
        })
    };

    // Ground truth over the full stream.
    let calls = flatten_calls(scenario);
    let mut oracle: DynOracle = Oracle::new(oracle_decay);
    for c in &calls {
        c.apply_oracle(&mut oracle);
    }
    let mut boundaries = Vec::with_capacity(calls.len() + 1);
    let mut acc = 0u64;
    boundaries.push(0);
    for c in &calls {
        acc += c.entries();
        boundaries.push(acc);
    }
    let t_end = scenario.max_time();
    let probes = [t_end + 1, t_end + 64];

    // The doomed run: ingest everything, then the process "dies" —
    // only fsynced bytes survive into the snapshot.
    let mem = MemStorage::new();
    {
        let (mut durable, _) = DurableAggregate::open(Box::new(mem.clone()), sweep_options(), make)
            .map_err(|e| fail("", None, format!("fresh open failed: {e}")))?;
        for c in &calls {
            c.apply_durable(&mut durable)
                .map_err(|e| fail("", None, format!("doomed-run ingest failed: {e}")))?;
        }
    }
    let snapshot = mem.crashed();

    // Baseline: the undamaged snapshot must recover and certify — this
    // is what rules out a store that passes the sweep by refusing
    // everything.
    match attempt(
        snapshot.clone(),
        make,
        &calls,
        &boundaries,
        &oracle,
        &probes,
    ) {
        Outcome::Recovered { lost: 0 } => {}
        Outcome::Recovered { lost } => {
            return Err(fail(
                "",
                None,
                format!("undamaged recovery lost {lost} entries (fsync-every-record ran)"),
            ));
        }
        Outcome::Refused => {
            return Err(fail("", None, "undamaged recovery refused".to_string()));
        }
        Outcome::Wrong(detail) => return Err(fail("", None, detail)),
    }

    let mut report = RecoveryReport::default();
    for (name, bytes) in snapshot.durable_files() {
        report.durable_bytes += bytes.len();
        let mut offset = 0usize;
        while offset < bytes.len() {
            let damages = [
                Damage::Truncate { offset },
                // One flip per swept byte; the bit position rotates so
                // a full sweep hits low and high bits of every field.
                Damage::BitFlip {
                    bit: offset as u64 * 8 + (offset % 8) as u64,
                },
            ];
            for damage in damages {
                let damaged = match damage {
                    Damage::Truncate { offset } => snapshot.truncated_at(&name, offset),
                    Damage::BitFlip { bit } => snapshot.bit_flipped(&name, bit),
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    attempt(damaged, make, &calls, &boundaries, &oracle, &probes)
                }))
                .unwrap_or_else(|p| {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    Outcome::Wrong(format!("recovery panicked: {msg}"))
                });
                report.sweeps += 1;
                match outcome {
                    Outcome::Refused => report.refused += 1,
                    Outcome::Recovered { lost } => {
                        report.recovered += 1;
                        report.max_entries_lost = report.max_entries_lost.max(lost);
                    }
                    Outcome::Wrong(detail) => {
                        return Err(fail(&name, Some(damage), detail));
                    }
                }
            }
            offset += stride;
        }
    }
    Ok(report)
}

/// One backend × decay row of the recovery matrix, type-erased so the
/// test harness can iterate rows uniformly.
pub struct RecoveryCase {
    /// Display name (`backend/decay` convention, matching the
    /// conformance matrix).
    pub name: &'static str,
    #[allow(clippy::type_complexity)]
    runner: Box<dyn Fn(&Scenario, usize) -> Result<RecoveryReport, Box<RecoveryFailure>>>,
}

impl RecoveryCase {
    /// Builds a row from a backend factory and the matching oracle
    /// decay factory.
    pub fn of<B>(
        name: &'static str,
        make: impl Fn() -> B + 'static,
        decay: impl Fn() -> Box<dyn DecayFunction> + 'static,
    ) -> Self
    where
        B: StreamAggregate + Checkpoint + 'static,
    {
        RecoveryCase {
            name,
            runner: Box::new(move |scenario, stride| {
                certify_recovery(name, &make, decay(), scenario, stride)
            }),
        }
    }

    /// Sweeps one scenario at the given stride.
    pub fn run(
        &self,
        scenario: &Scenario,
        stride: usize,
    ) -> Result<RecoveryReport, Box<RecoveryFailure>> {
        (self.runner)(scenario, stride)
    }
}

/// The default recovery matrix: every checkpoint-capable summary
/// family in the workspace, each under a decay it supports (the same
/// `backend/decay` pairings as the conformance matrix, minus backends
/// without a [`Checkpoint`] impl and restricted-domain backends whose
/// value caps the flattened replay does not model).
pub fn default_recovery_matrix() -> Vec<RecoveryCase> {
    use td_ceh::CascadedEh;
    use td_counters::{ExactDecayedSum, ExpCounter, PolyExpCounter, QuantizedExpCounter};
    use td_decay::{Constant, Exponential, LogDecay, PolyExponential, Polynomial, SlidingWindow};
    use td_eh::DominationEh;
    use td_forward::ForwardDecaySum;
    use td_wbmh::Wbmh;

    const WBMH_MAX_AGE: Time = 1 << 41;

    fn boxed<G: DecayFunction + 'static>(g: G) -> Box<dyn DecayFunction> {
        Box::new(g)
    }

    vec![
        RecoveryCase::of(
            "exact/exp",
            || ExactDecayedSum::new(Exponential::new(0.01)),
            || boxed(Exponential::new(0.01)),
        ),
        RecoveryCase::of(
            "exact/sliding256",
            || ExactDecayedSum::new(SlidingWindow::new(256)),
            || boxed(SlidingWindow::new(256)),
        ),
        RecoveryCase::of(
            "exact/log64",
            || ExactDecayedSum::new(LogDecay::new(64)),
            || boxed(LogDecay::new(64)),
        ),
        RecoveryCase::of(
            "exp-counter",
            || ExpCounter::new(Exponential::new(0.01)),
            || boxed(Exponential::new(0.01)),
        ),
        RecoveryCase::of(
            "quantized-exp/m20",
            || QuantizedExpCounter::new(Exponential::new(0.01), 20),
            || boxed(Exponential::new(0.01)),
        ),
        RecoveryCase::of(
            "polyexp-pipeline/k2",
            || PolyExpCounter::new(2, 0.03),
            || boxed(PolyExponential::new(2, 0.03)),
        ),
        RecoveryCase::of(
            "ceh/exp",
            || CascadedEh::new(Exponential::new(0.01), 0.1),
            || boxed(Exponential::new(0.01)),
        ),
        RecoveryCase::of(
            "ceh/poly1",
            || CascadedEh::new(Polynomial::new(1.0), 0.1),
            || boxed(Polynomial::new(1.0)),
        ),
        RecoveryCase::of(
            "wbmh/poly1",
            || Wbmh::new(Polynomial::new(1.0), 0.1, WBMH_MAX_AGE),
            || boxed(Polynomial::new(1.0)),
        ),
        RecoveryCase::of(
            "domination-eh/landmark",
            || DominationEh::new(0.1, None),
            || boxed(Constant),
        ),
        RecoveryCase::of(
            "forward-sum/exp",
            || ForwardDecaySum::new(Exponential::new(0.01)),
            || boxed(Exponential::new(0.01)),
        ),
        // The keyed registry as a whole: the un-keyed facade routes
        // each observation to `hash(f) % auto_fanout`, so kill-at-
        // every-byte recovery exercises the registry's single-envelope
        // checkpoint (slot block + free list) and its WAL replay.
        RecoveryCase::of(
            "registry/forward-sum-exp",
            || {
                td_registry::KeyedRegistry::new(
                    td_registry::RegistryOptions {
                        expected_keys: 32,
                        auto_fanout: 16,
                        ..td_registry::RegistryOptions::default()
                    },
                    || ForwardDecaySum::new(Exponential::new(0.01)),
                )
            },
            || boxed(Exponential::new(0.01)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use td_counters::ExactDecayedSum;
    use td_decay::Exponential;

    #[test]
    fn failure_display_carries_the_repro() {
        let f = RecoveryFailure {
            backend: "exact/exp".into(),
            scenario: "bursty".into(),
            seed: 0xFEED,
            file: "wal-000000000000.seg".into(),
            damage: Some(Damage::Truncate { offset: 137 }),
            detail: "boom".into(),
        };
        let msg = f.to_string();
        for needle in ["exact/exp", "bursty", "0xfeed", "truncate@137", "wal-"] {
            assert!(msg.contains(needle), "missing `{needle}` in: {msg}");
        }
    }

    #[test]
    fn a_small_exhaustive_sweep_passes() {
        let sc = scenario::uniform(3, 30);
        let report = certify_recovery(
            "exact/exp",
            &|| ExactDecayedSum::new(Exponential::new(0.02)),
            Box::new(Exponential::new(0.02)),
            &sc,
            1,
        )
        .unwrap_or_else(|f| panic!("{f}"));
        assert!(report.sweeps > 0);
        assert!(report.recovered > 0, "some damage must still recover");
        assert!(report.refused > 0, "some damage must be refused typed");
    }

    #[test]
    fn out_of_order_scenarios_are_detected() {
        let inverted = Scenario {
            name: "handmade-inverted".into(),
            seed: 0,
            ops: vec![Op::Observe(10, 1), Op::Observe(9, 1)],
        };
        assert!(!is_time_ordered(&inverted));
        // Every catalogue family sorts its ops at ingest time (the
        // trait demands it) — the whole catalogue is fair game for the
        // recovery matrix, and the guard only trips on handmade or
        // future families that break that convention.
        for sc in scenario::catalogue(7, 60) {
            assert!(is_time_ordered(&sc), "family `{}` is unsorted", sc.name);
        }
    }
}
