//! Brute-force reference implementations of the paper's aggregates.
//!
//! The oracle retains every `(t_i, f_i)` and evaluates
//! `Σ f_i · g(T − t_i)` directly (§2.1's defining sum), so its answers
//! are ground truth up to f64 summation — no buckets, no quantization,
//! no amortization. Every certified backend is differentially tested
//! against it: the backend's answer must land inside the theorem-given
//! relative-error envelope of the oracle's.
//!
//! [`Oracle`] covers decayed sum, count, average, and variance over a
//! value stream; [`CoordOracle`] covers decayed L_p norms over a
//! coordinate stream; selection/quantile distributions come from
//! [`Oracle::selection_distribution`] and [`Oracle::quantile`].

use td_decay::storage::StorageAccounting;
use td_decay::{DecayFunction, ErrorBound, StreamAggregate, Time};

/// The store-everything reference aggregate.
///
/// Implements [`StreamAggregate`] (with `query` = decayed sum and an
/// exact error bound) so it can be driven through the same replay loop
/// as the backends under test, and benchmarked on the same harness.
pub struct Oracle<G> {
    decay: G,
    /// Every observation, in arrival order (times non-decreasing).
    items: Vec<(Time, u64)>,
    last_t: Time,
    started: bool,
    /// `None`: backward decay, item weight `g(T − t_i)`. `Some(L)`:
    /// forward decay (Cormode et al.) against landmark `L`, item weight
    /// `g(T − L) / g(t_i − L)` — ground truth for the `td-forward`
    /// family under non-exponential decays (for exponentials the two
    /// models coincide and the backward oracle is used directly).
    forward_from: Option<Time>,
}

impl<G: DecayFunction> Oracle<G> {
    /// An empty oracle for the given decay function.
    pub fn new(decay: G) -> Self {
        Self {
            decay,
            items: Vec::new(),
            last_t: 0,
            started: false,
            forward_from: None,
        }
    }

    /// An empty oracle evaluating the *forward* decay model against
    /// `landmark`: item weight `g(T − L) / g(t_i − L)` instead of
    /// `g(T − t_i)`. All aggregate evaluators (sum, count, average,
    /// variance, selection) weigh items this way; items observed before
    /// the landmark are rejected at evaluation time (u64 underflow).
    pub fn forward(decay: G, landmark: Time) -> Self {
        let mut o = Self::new(decay);
        o.forward_from = Some(landmark);
        o
    }

    /// The per-item weight at query time `t` under the configured model.
    fn weight_at(&self, t: Time, ti: Time) -> f64 {
        match self.forward_from {
            None => self.decay.weight(t - ti),
            Some(l) => self.decay.weight(t - l) / self.decay.weight(ti - l),
        }
    }

    /// The decay function.
    pub fn decay(&self) -> &G {
        &self.decay
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no observation has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Records one item (non-decreasing `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously observed time.
    pub fn observe(&mut self, t: Time, f: u64) {
        assert!(
            !self.started || t >= self.last_t,
            "time went backwards: {t} < {}",
            self.last_t
        );
        self.started = true;
        self.last_t = t;
        self.items.push((t, f));
    }

    /// Records a sorted burst (one bulk append after validating the
    /// batch's time order once, rather than item-by-item).
    ///
    /// # Panics
    ///
    /// Panics if the batch is not sorted by non-decreasing time or
    /// starts before a previously observed time.
    pub fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let Some(&(first, _)) = items.first() else {
            return;
        };
        assert!(
            !self.started || first >= self.last_t,
            "time went backwards: {first} < {}",
            self.last_t
        );
        // A load-only validation sweep followed by one bulk memcpy: the
        // sortedness scan has no stores (it vectorizes and predicts
        // perfectly), and `extend_from_slice` amortizes the capacity
        // check once per batch instead of per push. The clock and
        // started flag move once per batch, not per item.
        assert!(
            items.windows(2).all(|w| w[0].0 <= w[1].0),
            "batch items must be sorted by non-decreasing time"
        );
        self.items.extend_from_slice(items);
        self.started = true;
        self.last_t = items.last().expect("non-empty").0;
    }

    /// Advances the clock (the oracle never drops state — it is the
    /// ground truth — but it enforces the non-decreasing time model).
    pub fn advance(&mut self, t: Time) {
        assert!(
            !self.started || t >= self.last_t,
            "time went backwards: {t} < {}",
            self.last_t
        );
        self.started = true;
        self.last_t = t;
    }

    /// The exact decayed sum `Σ_{t_i < T} f_i · g(T − t_i)`.
    pub fn decayed_sum(&self, t: Time) -> f64 {
        self.weighted_fold(t, |f| f)
    }

    /// The exact decayed count `Σ_{t_i < T} g(T − t_i)` (every item
    /// contributes one unit of presence, §7).
    pub fn decayed_count(&self, t: Time) -> f64 {
        self.weighted_fold(t, |_| 1)
    }

    /// The exact decayed average `decayed_sum / decayed_count`, or
    /// `None` when no item carries positive weight at `t`.
    pub fn decayed_average(&self, t: Time) -> Option<f64> {
        let den = self.decayed_count(t);
        if den <= 0.0 {
            return None;
        }
        Some(self.decayed_sum(t) / den)
    }

    /// The exact decayed second moment `Σ f_i² · g(T − t_i)`.
    pub fn decayed_sum_of_squares(&self, t: Time) -> f64 {
        self.items
            .iter()
            .filter(|&&(ti, _)| ti < t)
            .map(|&(ti, f)| (f as f64) * (f as f64) * self.weight_at(t, ti))
            .sum()
    }

    /// The exact decayed variance `Σgf² − (Σgf)²/Σg` (non-negative by
    /// Cauchy–Schwarz; clamped against f64 cancellation).
    pub fn decayed_variance(&self, t: Time) -> f64 {
        let w = self.decayed_count(t);
        if w <= 0.0 {
            return 0.0;
        }
        let s = self.decayed_sum(t);
        (self.decayed_sum_of_squares(t) - s * s / w).max(0.0)
    }

    /// The exact time-decayed selection distribution (§7): each
    /// retained value paired with its probability of being drawn by a
    /// weight-proportional sampler at time `t`. Probabilities for
    /// repeated values are merged; the result is sorted by value and
    /// sums to 1 (empty when nothing carries weight).
    pub fn selection_distribution(&self, t: Time) -> Vec<(u64, f64)> {
        let mut mass: Vec<(u64, f64)> = Vec::new();
        for &(ti, f) in self.items.iter().filter(|&&(ti, _)| ti < t) {
            let w = self.weight_at(t, ti);
            if w <= 0.0 {
                continue;
            }
            match mass.binary_search_by_key(&f, |&(v, _)| v) {
                Ok(i) => mass[i].1 += w,
                Err(i) => mass.insert(i, (f, w)),
            }
        }
        let total: f64 = mass.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        for m in &mut mass {
            m.1 /= total;
        }
        mass
    }

    /// The exact decayed `p`-quantile (§7): the smallest retained value
    /// whose cumulative decayed weight reaches `p` of the total, or
    /// `None` when nothing carries weight.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn quantile(&self, t: Time, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let dist = self.selection_distribution(t);
        if dist.is_empty() {
            return None;
        }
        let mut acc = 0.0;
        for &(v, w) in &dist {
            acc += w;
            if acc >= p - 1e-12 {
                return Some(v);
            }
        }
        Some(dist.last().unwrap().0)
    }

    fn weighted_fold(&self, t: Time, value: impl Fn(u64) -> u64) -> f64 {
        self.items
            .iter()
            .filter(|&&(ti, _)| ti < t)
            .map(|&(ti, f)| value(f) as f64 * self.weight_at(t, ti))
            .sum()
    }
}

impl<G: DecayFunction> StorageAccounting for Oracle<G> {
    fn storage_bits(&self) -> u64 {
        // One (timestamp, value) pair per retained item — the Θ(n)
        // floor every sketch in the workspace is measured against.
        self.items.len() as u64 * 128
    }
}

impl<G: DecayFunction> StreamAggregate for Oracle<G> {
    fn observe(&mut self, t: Time, f: u64) {
        Oracle::observe(self, t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        Oracle::observe_batch(self, items)
    }
    fn batched_ingest_amortizes(&self) -> bool {
        true // reserve-once append with one validation sweep
    }
    fn advance(&mut self, t: Time) {
        Oracle::advance(self, t)
    }
    fn query(&self, t: Time) -> f64 {
        Oracle::decayed_sum(self, t)
    }
    fn merge_from(&mut self, other: &Self) {
        // Disjoint substreams: interleave by time to restore sorted
        // arrival order.
        let mut merged = Vec::with_capacity(self.items.len() + other.items.len());
        let (mut a, mut b) = (self.items.iter().peekable(), other.items.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if x.0 <= y.0 {
                        merged.push(x);
                        a.next();
                    } else {
                        merged.push(y);
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.by_ref());
                    break;
                }
                (None, Some(_)) => {
                    merged.extend(b.by_ref());
                    break;
                }
                (None, None) => break,
            }
        }
        self.items = merged;
        self.last_t = self.last_t.max(other.last_t);
        self.started |= other.started;
        assert_eq!(
            self.forward_from, other.forward_from,
            "merging oracles with different decay models"
        );
    }
    fn error_bound(&self) -> ErrorBound {
        ErrorBound::exact()
    }
}

/// Reference for the decayed L_p norm (§7's vector reduction): retains
/// every `(t, coordinate, amount)` and evaluates
/// `(Σ_j (Σ_i f_{ij} g(T − t_i))^p)^{1/p}` directly.
pub struct CoordOracle<G> {
    decay: G,
    items: Vec<(Time, u64, u64)>,
}

impl<G: DecayFunction> CoordOracle<G> {
    /// An empty coordinate oracle.
    pub fn new(decay: G) -> Self {
        Self {
            decay,
            items: Vec::new(),
        }
    }

    /// Records `amount` on `coord` at time `t`.
    pub fn observe(&mut self, t: Time, coord: u64, amount: u64) {
        self.items.push((t, coord, amount));
    }

    /// The exact decayed L_p norm at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `p < 1` or not finite.
    pub fn lp_norm(&self, t: Time, p: f64) -> f64 {
        assert!(p.is_finite() && p >= 1.0, "p must be >= 1, got {p}");
        let mut per_coord: Vec<(u64, f64)> = Vec::new();
        for &(ti, c, f) in self.items.iter().filter(|&&(ti, _, _)| ti < t) {
            let w = f as f64 * self.decay.weight(t - ti);
            match per_coord.binary_search_by_key(&c, |&(k, _)| k) {
                Ok(i) => per_coord[i].1 += w,
                Err(i) => per_coord.insert(i, (c, w)),
            }
        }
        per_coord
            .iter()
            .map(|&(_, v)| v.abs().powf(p))
            .sum::<f64>()
            .powf(1.0 / p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_decay::{Exponential, Polynomial, SlidingWindow};

    #[test]
    fn sum_matches_hand_computation() {
        let mut o = Oracle::new(Exponential::new(0.5));
        o.observe(1, 2);
        o.observe(3, 4);
        let want = 2.0 * (-0.5f64 * 4.0).exp() + 4.0 * (-0.5f64 * 2.0).exp();
        assert!((o.decayed_sum(5) - want).abs() < 1e-12);
        // §2.1: items at the query tick are excluded.
        assert_eq!(Oracle::new(Exponential::new(0.5)).decayed_sum(9), 0.0);
        let mut p = Oracle::new(Exponential::new(0.5));
        p.observe(7, 3);
        assert_eq!(p.decayed_sum(7), 0.0);
    }

    #[test]
    fn average_and_variance() {
        let mut o = Oracle::new(SlidingWindow::new(100));
        o.observe(1, 10);
        o.observe(2, 20);
        let avg = o.decayed_average(3).unwrap();
        assert!((avg - 15.0).abs() < 1e-12);
        // var = E[f²] − E[f]² scaled by total weight: Σgf² − (Σgf)²/Σg
        let want = (100.0 + 400.0) - (30.0f64 * 30.0) / 2.0;
        assert!((o.decayed_variance(3) - want).abs() < 1e-12);
        assert_eq!(o.decayed_average(200), None);
    }

    #[test]
    fn quantile_and_selection() {
        let mut o = Oracle::new(SlidingWindow::new(100));
        for (t, f) in [(1, 5), (2, 1), (3, 9), (4, 5)] {
            o.observe(t, f);
        }
        let dist = o.selection_distribution(5);
        assert_eq!(dist.len(), 3); // values 1, 5, 9 with 5 merged
        assert!((dist.iter().map(|&(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(o.quantile(5, 0.5), Some(5));
        assert_eq!(o.quantile(5, 0.0), Some(1));
        assert_eq!(o.quantile(5, 1.0), Some(9));
        assert_eq!(Oracle::new(SlidingWindow::new(5)).quantile(1, 0.5), None);
    }

    #[test]
    fn lp_norm_matches_hand_computation() {
        let mut o = CoordOracle::new(Polynomial::new(1.0));
        o.observe(1, 0, 3);
        o.observe(2, 1, 4);
        let (w0, w1): (f64, f64) = (3.0 / 2.0, 4.0 / 1.0);
        let want = (w0 * w0 + w1 * w1).sqrt();
        assert!((o.lp_norm(3, 2.0) - want).abs() < 1e-12);
    }

    #[test]
    fn forward_mode_weighs_by_landmark_ratio() {
        let g = Polynomial::new(2.0);
        let mut o = Oracle::forward(g, 0);
        o.observe(2, 3);
        o.observe(4, 5);
        let want = 3.0 * g.weight(8) / g.weight(2) + 5.0 * g.weight(8) / g.weight(4);
        assert!((o.decayed_sum(8) - want).abs() <= 1e-12 * want);
        // For exponential decay the forward and backward models agree.
        let e = Exponential::new(0.3);
        let mut fwd = Oracle::forward(e, 0);
        let mut back = Oracle::new(e);
        for (t, f) in [(1u64, 4u64), (3, 2), (7, 9)] {
            fwd.observe(t, f);
            back.observe(t, f);
        }
        let (a, b) = (fwd.decayed_sum(10), back.decayed_sum(10));
        assert!((a - b).abs() <= 1e-12 * b);
    }

    #[test]
    fn merge_restores_sorted_order() {
        let g = Exponential::new(0.1);
        let mut a = Oracle::new(g);
        let mut b = Oracle::new(g);
        let mut whole = Oracle::new(g);
        for t in 1..=50u64 {
            let f = t % 5;
            whole.observe(t, f);
            if t % 2 == 0 {
                a.observe(t, f)
            } else {
                b.observe(t, f)
            }
        }
        StreamAggregate::merge_from(&mut a, &b);
        assert!((a.decayed_sum(60) - whole.decayed_sum(60)).abs() < 1e-12);
        assert!(a.items.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
