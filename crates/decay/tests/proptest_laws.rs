//! Property tests of the decay-function algebra: every constructor and
//! combinator must produce a legitimate §2 decay function, and the
//! classification hints must never overstate structure.

use proptest::prelude::*;
use td_decay::properties::{check_ratio_monotone, is_non_increasing, weight_ratio};
use td_decay::{
    DecayClass, DecayFunction, Exponential, MaxOf, Polynomial, ProductOf, Scaled,
    ShiftedPolynomial, SlidingWindow, SumOf, TableDecay,
};

proptest! {
    #[test]
    fn closed_forms_are_non_increasing(
        lambda in 0.0001f64..2.0,
        alpha in 0.1f64..4.0,
        window in 1u64..10_000,
        shift in 1u64..1_000,
    ) {
        prop_assert!(is_non_increasing(&Exponential::new(lambda), 2_000));
        prop_assert!(is_non_increasing(&Polynomial::new(alpha), 2_000));
        prop_assert!(is_non_increasing(&SlidingWindow::new(window), 2_000));
        prop_assert!(is_non_increasing(&ShiftedPolynomial::new(alpha, shift), 2_000));
    }

    #[test]
    fn combinators_preserve_monotonicity(
        lambda in 0.001f64..1.0,
        alpha in 0.1f64..3.0,
        window in 1u64..5_000,
        factor in 0.01f64..100.0,
    ) {
        let e = Exponential::new(lambda);
        let p = Polynomial::new(alpha);
        let w = SlidingWindow::new(window);
        prop_assert!(is_non_increasing(&Scaled::new(p, factor), 2_000));
        prop_assert!(is_non_increasing(&SumOf::new(e, w), 2_000));
        prop_assert!(is_non_increasing(&ProductOf::new(p, e), 2_000));
        prop_assert!(is_non_increasing(&MaxOf::new(w, p), 2_000));
    }

    /// The classification hint is sound: anything claiming
    /// RatioMonotone really passes the §5 audit.
    #[test]
    fn classification_is_sound(
        alpha in 0.1f64..3.0,
        lambda in 0.001f64..1.0,
        factor in 0.1f64..10.0,
    ) {
        let candidates: Vec<(DecayClass, Box<dyn DecayFunction>)> = vec![
            (Polynomial::new(alpha).classify(), Box::new(Polynomial::new(alpha))),
            (
                Scaled::new(Polynomial::new(alpha), factor).classify(),
                Box::new(Scaled::new(Polynomial::new(alpha), factor)),
            ),
            (
                ProductOf::new(Polynomial::new(alpha), Exponential::new(lambda)).classify(),
                Box::new(ProductOf::new(Polynomial::new(alpha), Exponential::new(lambda))),
            ),
        ];
        // Audit below the f64 underflow horizon: past e^{-λx} ≈ 1e-300
        // the realized weights hit literal zero, which the (correctly
        // strict) audit reports as a ratio jump even though the
        // mathematical function is ratio-monotone.
        let max_age = 2_000u64.min((650.0 / lambda) as u64).max(16);
        for (class, g) in candidates {
            if class == DecayClass::RatioMonotone {
                prop_assert!(
                    check_ratio_monotone(&g, max_age),
                    "{} claims RatioMonotone but fails the audit",
                    g.describe()
                );
            }
        }
    }

    /// D(g) monotonicity: the weight ratio never decreases as the
    /// horizon grows (g is non-increasing).
    #[test]
    fn weight_ratio_is_monotone_in_horizon(alpha in 0.1f64..3.0) {
        let g = Polynomial::new(alpha);
        let mut prev = 0.0;
        for n in [2u64, 8, 64, 512, 4_096] {
            let d = weight_ratio(&g, n);
            prop_assert!(d >= prev);
            prev = d;
        }
    }

    /// Table decays round-trip the §2 requirements by construction.
    #[test]
    fn table_decays_validate(
        mut weights in proptest::collection::vec(0.0f64..100.0, 1..50),
    ) {
        // Sort descending to make a valid table, then check the
        // constructed function.
        weights.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let tail = weights.last().copied().unwrap_or(0.0) / 2.0;
        let g = TableDecay::new(weights.clone(), tail).expect("sorted table is valid");
        prop_assert!(is_non_increasing(&g, weights.len() as u64 + 10));
    }

    /// Sliding windows are exactly their indicator function.
    #[test]
    fn sliding_window_indicator(window in 1u64..10_000, age in 0u64..20_000) {
        let g = SlidingWindow::new(window);
        prop_assert_eq!(g.weight(age), if age <= window { 1.0 } else { 0.0 });
    }

    /// The batch weight kernel matches pointwise `weight` within the
    /// family's *self-documented* kernel bound
    /// (`kernel_relative_error`): exactly (bound 0) for families
    /// without a fast chunked kernel, within the stated ULP envelope
    /// for the chunked exp/poly/polyexp closed forms, and with both
    /// sides treated as zero below `soa::NEGLIGIBLE_WEIGHT` (the
    /// chunked exponential clamps rather than descending into
    /// subnormals). `weight_from_ends` must agree with `weight_batch`
    /// on the induced ages exactly.
    #[test]
    fn weight_batch_matches_pointwise(
        lambda in 0.0001f64..2.0,
        alpha in 0.1f64..4.0,
        window in 1u64..10_000,
        degree in 0u32..4,
        ages in proptest::collection::vec(0u64..100_000, 1..64),
    ) {
        use td_decay::PolyExponential;
        use td_decay::soa::NEGLIGIBLE_WEIGHT;
        let fns: Vec<Box<dyn DecayFunction>> = vec![
            Box::new(Exponential::new(lambda)),
            Box::new(Polynomial::new(alpha)),
            Box::new(SlidingWindow::new(window)),
            Box::new(PolyExponential::new(degree, lambda)),
            Box::new(SumOf::new(Exponential::new(lambda), SlidingWindow::new(window))),
        ];
        let mut out = vec![0.0f64; ages.len()];
        let mut from_ends = vec![0.0f64; ages.len()];
        let t = 100_000u64; // ages ⊂ [0, 100_000): ends = t − age stays valid
        let ends: Vec<u64> = ages.iter().map(|&a| t - a).collect();
        for g in &fns {
            let bound = g.kernel_relative_error();
            g.weight_batch(&ages, &mut out);
            for (&a, &w) in ages.iter().zip(&out) {
                let exact = g.weight(a);
                let ok = if bound == 0.0 {
                    w == exact
                } else if exact.abs() < NEGLIGIBLE_WEIGHT {
                    w.abs() < NEGLIGIBLE_WEIGHT
                } else {
                    (w - exact).abs() <= bound * exact.abs()
                };
                prop_assert!(
                    ok,
                    "{} diverges at age {}: batch {} vs scalar {} (bound {:e})",
                    g.describe(), a, w, exact, bound
                );
            }
            g.weight_from_ends(t, &ends, &mut from_ends);
            for i in 0..ages.len() {
                prop_assert_eq!(
                    from_ends[i].to_bits(),
                    out[i].to_bits(),
                    "{} weight_from_ends diverges from weight_batch at age {}",
                    g.describe(), ages[i]
                );
            }
        }
    }
}
