//! The bit-level storage cost model shared by every summary.
//!
//! The paper's results are statements about *storage bits* as a function
//! of the effective horizon `N` (§2.3). To make those statements
//! measurable, every summary in this workspace implements
//! [`StorageAccounting`] under one documented cost model:
//!
//! * an exact count `c` costs `⌈log₂(c + 1)⌉` bits ([`bits_for_count`]);
//! * a timestamp that must distinguish `span` instants costs
//!   `⌈log₂(span + 1)⌉` bits ([`bits_for_timestamp`]);
//! * an approximate (mantissa/exponent) count costs its mantissa width
//!   plus `⌈log₂ log₂ N⌉`-ish exponent bits (computed by the approximate
//!   counter types themselves);
//! * **stream-independent** state (e.g. WBMH region boundaries, which are
//!   functions of `(g, ε, T)` only) is *not* charged — the paper's
//!   argument for WBMH is precisely that such state is shared across all
//!   streams being summarized (§2.3, §5).
//!
//! Experiments E2/E3/E6 plot exactly these numbers.

/// A summary that can report the bit cost of its per-stream state.
pub trait StorageAccounting {
    /// Bits of per-stream state under the workspace cost model.
    fn storage_bits(&self) -> u64;
}

/// Bits to store an exact non-negative count `c`: `⌈log₂(c + 1)⌉`,
/// with a minimum of 1 bit.
///
/// ```
/// use td_decay::storage::bits_for_count;
/// assert_eq!(bits_for_count(0), 1);
/// assert_eq!(bits_for_count(1), 1);
/// assert_eq!(bits_for_count(2), 2);
/// assert_eq!(bits_for_count(255), 8);
/// assert_eq!(bits_for_count(256), 9);
/// ```
pub fn bits_for_count(c: u64) -> u64 {
    (u64::BITS - c.leading_zeros()).max(1) as u64
}

/// Bits to store a timestamp that must distinguish `span + 1` distinct
/// instants (e.g. ages `0..=span`).
pub fn bits_for_timestamp(span: u64) -> u64 {
    bits_for_count(span)
}

/// Bits of a quantized float: `mantissa_bits` plus enough exponent bits
/// to cover binary exponents up to `max_exponent` in magnitude.
///
/// ```
/// use td_decay::storage::bits_for_quantized_float;
/// // 10-bit mantissa, exponents up to ±64 → 10 + 8 bits.
/// assert_eq!(bits_for_quantized_float(10, 64), 18);
/// ```
pub fn bits_for_quantized_float(mantissa_bits: u64, max_exponent: u64) -> u64 {
    // Sign of the exponent needs one extra bit.
    mantissa_bits + bits_for_count(max_exponent) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_bits_are_ceil_log2() {
        for c in 0..10_000u64 {
            let expect = if c == 0 {
                1
            } else {
                (64 - c.leading_zeros()) as u64
            };
            assert_eq!(bits_for_count(c), expect.max(1), "c={c}");
        }
    }

    #[test]
    fn count_bits_grow_logarithmically() {
        assert_eq!(bits_for_count(u64::MAX), 64);
        assert_eq!(bits_for_count(1 << 20), 21);
    }
}
