//! The unified [`StreamAggregate`] interface every backend implements.
//!
//! The paper develops one algorithm per decay family — the Eq. 1 EXPD
//! counter (§3.1), pipelined counters (§3.4), exponential histograms
//! (§3.2), cascaded EHs (Theorem 1), and WBMH (§5) — and this workspace
//! implements each in its own crate. `StreamAggregate` is the single
//! ingest/query surface they all share, so serving code can hold *any*
//! of them behind one generic bound and switch backends without
//! touching call sites.
//!
//! The trait's shape is driven by the stream-serving hot path:
//!
//! * [`observe_batch`](StreamAggregate::observe_batch) lets backends
//!   amortize per-item bookkeeping over a burst: same-tick mass is
//!   coalesced before it touches the structure, clock advancement and
//!   merge/canonicalize passes run once per distinct tick rather than
//!   once per item. Every backend guarantees batch ingestion leaves the
//!   summary in **exactly** the state sequential
//!   [`observe`](StreamAggregate::observe) calls would (bit-identical
//!   bucket lists for the histograms; the counters differ only by f64
//!   summation order, bounded by ~1e-15 relative).
//! * [`advance`](StreamAggregate::advance) moves the clock without
//!   observing mass, so expired state is reclaimed during ingest
//!   silence (satellite of §2.3's storage accounting).
//! * [`merge_from`](StreamAggregate::merge_from) is the distributed
//!   counterpart (§6): combine summaries of disjoint substreams.

use crate::func::Time;
use crate::storage::StorageAccounting;

/// The relative-error envelope a summary certifies for its
/// [`query`](StreamAggregate::query) answers.
///
/// An estimate `est` of a true decayed sum `v ≥ 0` satisfies the bound
/// when `v · (1 − lower) ≤ est ≤ v · (1 + upper)`. The paper's
/// guarantees map onto this shape directly: Theorem 1's cascaded EH
/// answers in `[S, (1+ε)S]` (`lower = 0`, `upper = ε`), the §3.1
/// quantized counter is symmetric, and exact backends are `(0, 0)`.
///
/// Bounds are *state-dependent*, not static: merging widens the
/// histogram envelopes (k-way fan-in costs k·ε, §6) and quantized
/// counters accumulate one half-ulp per rounding, so the certifier
/// reads the envelope from the live summary rather than from the
/// construction-time ε.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBound {
    /// Maximum relative under-estimate: `est ≥ v · (1 − lower)`.
    pub lower: f64,
    /// Maximum relative over-estimate: `est ≤ v · (1 + upper)`.
    pub upper: f64,
}

impl ErrorBound {
    /// The exact envelope: the answer equals the true decayed sum (up
    /// to f64 summation order).
    pub fn exact() -> Self {
        ErrorBound {
            lower: 0.0,
            upper: 0.0,
        }
    }

    /// A symmetric `±eps` relative envelope.
    pub fn symmetric(eps: f64) -> Self {
        ErrorBound {
            lower: eps,
            upper: eps,
        }
    }

    /// The one-sided `[v, (1+eps)·v]` envelope of Theorem 1: never an
    /// under-estimate.
    pub fn one_sided(eps: f64) -> Self {
        ErrorBound {
            lower: 0.0,
            upper: eps,
        }
    }

    /// An unbounded envelope, for summaries with no relative guarantee
    /// (e.g. decayed variance in its cancellation regime).
    pub fn unbounded() -> Self {
        ErrorBound {
            lower: f64::INFINITY,
            upper: f64::INFINITY,
        }
    }

    /// Whether this envelope makes any relative-error promise at all.
    pub fn is_bounded(&self) -> bool {
        self.lower.is_finite() && self.upper.is_finite()
    }

    /// Checks `est` against the envelope around true value `truth`,
    /// with `slop` absolute tolerance absorbing f64 summation noise.
    pub fn admits(&self, est: f64, truth: f64, slop: f64) -> bool {
        if !self.is_bounded() {
            return true;
        }
        let lo = truth * (1.0 - self.lower) - slop;
        let hi = truth * (1.0 + self.upper) + slop;
        est >= lo && est <= hi
    }
}

/// A time-decaying stream summary: one ingest/query surface shared by
/// every backend in the workspace.
///
/// [`StorageAccounting`] is a supertrait rather than a duplicated
/// `storage_bits` method, so importing both traits never makes the
/// call ambiguous.
///
/// # Time model
///
/// Ticks are non-decreasing: `observe`, `observe_batch`, and `advance`
/// must be called with `t` at least the largest time previously seen.
/// Items inside one `observe_batch` call must likewise be sorted by
/// non-decreasing time. Queries at time `t` weight an item observed at
/// `ti < t` by `g(t - ti)`.
pub trait StreamAggregate: StorageAccounting {
    /// Feeds one item of value `f` observed at time `t`.
    fn observe(&mut self, t: Time, f: u64);

    /// Feeds a burst of `(time, value)` items, sorted by non-decreasing
    /// time.
    ///
    /// Result-equivalent to calling [`observe`](Self::observe) once per
    /// item, but amortized: backends coalesce same-tick mass and run
    /// their clock/merge machinery once per distinct tick. The default
    /// is the sequential loop; every backend in this workspace
    /// overrides it.
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        for &(t, f) in items {
            self.observe(t, f);
        }
    }

    /// Whether [`observe_batch`](Self::observe_batch) carries a batch
    /// kernel that amortizes *real work* across a run — bucket-walks
    /// shared per distinct tick, reserve-once appends, SoA decay
    /// columns — as opposed to saving only per-call overhead over an
    /// inlined [`observe`](Self::observe) loop.
    ///
    /// Pass-through stages use this to pick an ingest strategy. A fused
    /// per-item loop is free for a per-item backend but costs a batch
    /// kernel its amortization (8× on the quantized counter); scanning
    /// sub-blocks ahead of batched ingestion preserves the kernel but
    /// taxes an ultra-cheap per-item backend with a second pass over
    /// the batch. Backends overriding `observe_batch` with a genuine
    /// kernel should override this to `true`; the default matches the
    /// default loop.
    fn batched_ingest_amortizes(&self) -> bool {
        false
    }

    /// Advances the summary's clock to `t` without observing any mass,
    /// letting time-expired state be dropped (e.g. sliding-window
    /// buckets during ingest silence).
    fn advance(&mut self, t: Time);

    /// The decayed sum estimate `Σ f_i · g(t - t_i)` at time `t`
    /// (items at `t` itself are not yet visible, matching §2.1).
    fn query(&self, t: Time) -> f64;

    /// Folds `other` — a summary of a *disjoint* substream under the
    /// same decay function and parameters — into `self` (§6).
    ///
    /// # Panics
    ///
    /// Panics if the two summaries' parameters are incompatible, or for
    /// the rare backend with no merge algorithm (`ClassicEh`).
    fn merge_from(&mut self, other: &Self)
    where
        Self: Sized;

    /// The relative-error envelope this summary's current state
    /// certifies for [`query`](Self::query) answers.
    ///
    /// Defaults to [`ErrorBound::exact`]; approximate backends
    /// override it with their theorem-given bound (widened by merges
    /// and quantization events as their state demands). Conformance
    /// tooling reads the envelope from here rather than hard-coding it
    /// per backend.
    fn error_bound(&self) -> ErrorBound {
        ErrorBound::exact()
    }

    /// A point-in-time copy of the summary, safe to query and
    /// [`merge_from`](Self::merge_from) independently of the original.
    ///
    /// This is the hook the sharded engine (`td-shard`) uses to build
    /// merged serving summaries: each worker's private shard is
    /// snapshotted under a sequence-number barrier and the clones are
    /// folded off the ingest path. Every backend in this workspace is a
    /// plain-old-data value (bucket lists, counters), so the default —
    /// `Clone::clone` — is both correct and cheap relative to a merge;
    /// a backend with shared interior state would override this to
    /// detach it. `Sized` keeps `dyn StreamAggregate` object-safe.
    fn snapshot(&self) -> Self
    where
        Self: Sized + Clone,
    {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy exact aggregate, checking the trait is implementable and
    /// the default `observe_batch` loops.
    struct Plain {
        total: u64,
        last_t: Time,
    }

    impl StorageAccounting for Plain {
        fn storage_bits(&self) -> u64 {
            128
        }
    }

    impl StreamAggregate for Plain {
        fn observe(&mut self, t: Time, f: u64) {
            assert!(t >= self.last_t);
            self.last_t = t;
            self.total += f;
        }
        fn advance(&mut self, t: Time) {
            assert!(t >= self.last_t);
            self.last_t = t;
        }
        fn query(&self, _t: Time) -> f64 {
            self.total as f64
        }
        fn merge_from(&mut self, other: &Self) {
            self.total += other.total;
            self.last_t = self.last_t.max(other.last_t);
        }
    }

    #[test]
    fn error_bound_default_and_admits() {
        let p = Plain {
            total: 7,
            last_t: 3,
        };
        assert_eq!(p.error_bound(), ErrorBound::exact());

        let one = ErrorBound::one_sided(0.1);
        assert!(one.admits(100.0, 100.0, 1e-9));
        assert!(one.admits(110.0, 100.0, 1e-9));
        assert!(!one.admits(111.0, 100.0, 1e-9));
        assert!(!one.admits(99.0, 100.0, 1e-9));

        let sym = ErrorBound::symmetric(0.1);
        assert!(sym.admits(91.0, 100.0, 1e-9));
        assert!(!sym.admits(89.0, 100.0, 1e-9));

        assert!(ErrorBound::unbounded().admits(1e30, 1.0, 0.0));
        assert!(!ErrorBound::unbounded().is_bounded());
    }

    #[test]
    fn default_batch_is_sequential() {
        let mut a = Plain {
            total: 0,
            last_t: 0,
        };
        let mut b = Plain {
            total: 0,
            last_t: 0,
        };
        let items = [(1u64, 2u64), (1, 3), (4, 5)];
        for &(t, f) in &items {
            a.observe(t, f);
        }
        b.observe_batch(&items);
        assert_eq!(a.query(5), b.query(5));
        assert_eq!(a.last_t, b.last_t);
    }
}
