//! WBMH region boundaries (paper §5).
//!
//! The weight-based merging histogram partitions the *age axis* into
//! regions inside which all weights agree to within a factor `(1 + ε)`:
//! `b_1` is the maximum age with `(1+ε)·g(b_1 − 1) >= g(1)`, and for
//! `i > 1`, `b_i` is the maximum age with `(1+ε)·g(b_i − 1) >= g(b_{i-1})`.
//! Region `i` is the age interval `[b_i, b_{i+1} − 1]` (with an implicit
//! `b_0 = 1` for the youngest region).
//!
//! The boundaries depend only on `(g, ε)` — never on the stream — which
//! is the crux of the paper's storage argument: per-stream state is just
//! one (approximate) count per bucket, and the number of regions is
//! `⌈log_{1+ε} D(g)⌉` (so `O(log N)` regions for polynomial decay and a
//! degenerate `Θ(N)` for exponential decay, reproduced by experiment E6).

use crate::func::{DecayFunction, Time};

/// The deterministic region schedule of a WBMH for a given `(g, ε)`.
///
/// # Examples
///
/// The paper's §5 worked example, `g(x) = 1/x²` and `1 + ε = 5`:
///
/// ```
/// use td_decay::{Polynomial, RegionSchedule};
/// let s = RegionSchedule::compute(&Polynomial::new(2.0), 4.0, 1_000);
/// assert_eq!(s.boundary(1), 3);  // b1
/// assert_eq!(s.boundary(2), 7);  // b2
/// assert_eq!(s.boundary(3), 16); // b3
/// assert_eq!(s.region_of(1), 0);
/// assert_eq!(s.region_of(2), 0);
/// assert_eq!(s.region_of(3), 1);
/// assert_eq!(s.region_of(15), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSchedule {
    /// `boundaries[i] = b_i`, with `boundaries\[0\] = b_0 = 1`. Region `i`
    /// covers ages `[boundaries[i], boundaries[i+1] - 1]`; the final
    /// region extends to `max_age` (or to the horizon of `g`).
    boundaries: Vec<Time>,
    epsilon: f64,
    max_age: Time,
}

impl RegionSchedule {
    /// Computes all region boundaries for ages `1..=max_age`.
    ///
    /// Memory and time are linear in the number of regions,
    /// `O(ε⁻¹ log D(g))` — logarithmic in `max_age` for polynomial decay
    /// but linear for exponential decay (the paper's reason WBMH should
    /// not be used with EXPD; see experiment E6). Choose `max_age`
    /// accordingly.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not finite and strictly positive, or if
    /// `max_age == 0`.
    pub fn compute<G: DecayFunction + ?Sized>(g: &G, epsilon: f64, max_age: Time) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be finite and positive, got {epsilon}"
        );
        assert!(max_age > 0, "max_age must be positive");
        let one_plus_eps = 1.0 + epsilon;
        let mut boundaries = vec![1];
        // Weight at the start of the region currently being closed.
        let mut anchor = g.weight(1);
        while anchor > 0.0 {
            let prev_b = *boundaries.last().expect("non-empty");
            if prev_b > max_age {
                break;
            }
            // Find the max b with (1+ε)·g(b−1) >= anchor. The predicate
            // is monotone (true for small b), always true at b = prev_b+1,
            // so binary search over (prev_b, max_age + 1].
            let holds = |b: Time| one_plus_eps * g.weight(b - 1) >= anchor;
            if holds(max_age + 1) {
                // The current region swallows the entire remaining range;
                // no further boundary below max_age exists.
                break;
            }
            let mut lo = prev_b + 1; // holds(lo) is true
            let mut hi = max_age + 1; // holds(hi) is false
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if holds(mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            boundaries.push(lo);
            anchor = g.weight(lo);
        }
        Self {
            boundaries,
            epsilon,
            max_age,
        }
    }

    /// The approximation parameter ε this schedule was built for.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The maximum age the schedule covers.
    pub fn max_age(&self) -> Time {
        self.max_age
    }

    /// The number of regions (the final, open-ended region included).
    pub fn num_regions(&self) -> usize {
        self.boundaries.len()
    }

    /// The boundary `b_i`; `boundary(0) == 1`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_regions()`.
    pub fn boundary(&self, i: usize) -> Time {
        self.boundaries[i]
    }

    /// The index of the region containing `age` (ages below 1 are clamped
    /// into region 0; ages beyond the last boundary land in the final
    /// region).
    pub fn region_of(&self, age: Time) -> usize {
        let age = age.max(1);
        match self.boundaries.binary_search(&age) {
            Ok(i) => i,
            Err(i) => i - 1, // boundaries[0] = 1 <= age, so i >= 1
        }
    }

    /// [`Self::region_of`] with a positional hint: walks from `hint`
    /// instead of binary-searching, so a caller sweeping a bucket list
    /// in age order (WBMH merge passes) pays amortized O(1) per lookup
    /// instead of O(log regions). Always returns exactly
    /// `region_of(age)` — the hint affects cost only.
    pub fn region_of_near(&self, age: Time, hint: usize) -> usize {
        let age = age.max(1);
        let mut i = hint.min(self.boundaries.len() - 1);
        while i > 0 && age < self.boundaries[i] {
            i -= 1;
        }
        while i + 1 < self.boundaries.len() && age >= self.boundaries[i + 1] {
            i += 1;
        }
        i
    }

    /// The inclusive age interval `[start, end]` of region `i`; `end` is
    /// `None` for the final (open-ended) region.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_regions()`.
    pub fn region_span(&self, i: usize) -> (Time, Option<Time>) {
        let start = self.boundaries[i];
        let end = self.boundaries.get(i + 1).map(|&b| b - 1);
        (start, end)
    }

    /// The width `b_1 − 1` of the youngest region: the cadence at which
    /// the WBMH seals its open bucket (`T mod (b_1 − 1) == 0`, or every
    /// tick when `b_1 = 2`). Reproduces the §5 trace where, for
    /// `b_1 = 3`, the newest sealed bucket alternates between time-width
    /// 1 and 2.
    pub fn seal_period(&self) -> Time {
        if self.boundaries.len() < 2 {
            // Single region covering everything: any cadence preserves
            // the ε guarantee; use 1 (seal every tick) for simplicity.
            return 1;
        }
        (self.boundaries[1] - 1).max(1)
    }

    /// Iterates over `(region_index, start_age, inclusive_end_age)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Time, Option<Time>)> + '_ {
        (0..self.num_regions()).map(move |i| {
            let (s, e) = self.region_span(i);
            (i, s, e)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constant, Exponential, Polynomial, SlidingWindow};

    /// Paper §5: g(x) = 1/x², 1+ε = 5 ⇒ b1 = 3, b2 = 7, b3 = 16.
    #[test]
    fn paper_worked_example() {
        let s = RegionSchedule::compute(&Polynomial::new(2.0), 4.0, 10_000);
        assert_eq!(s.boundary(0), 1);
        assert_eq!(s.boundary(1), 3);
        assert_eq!(s.boundary(2), 7);
        assert_eq!(s.boundary(3), 16);
        assert_eq!(s.seal_period(), 2);
        // Weight groups quoted by the paper:
        // (1, 1/4); (1/9, 1/16, 1/25, 1/36); (1/49, ..., 1/225); ...
        assert_eq!(s.region_span(0), (1, Some(2)));
        assert_eq!(s.region_span(1), (3, Some(6)));
        assert_eq!(s.region_span(2), (7, Some(15)));
    }

    #[test]
    fn weights_within_region_agree_to_one_plus_eps() {
        for (alpha, eps) in [(1.0, 0.5), (2.0, 4.0), (3.0, 0.1)] {
            let g = Polynomial::new(alpha);
            let s = RegionSchedule::compute(&g, eps, 50_000);
            for (_, start, end) in s.iter() {
                let end = end.unwrap_or(s.max_age());
                let hi = g.weight(start);
                let lo = g.weight(end);
                assert!(
                    (1.0 + eps) * lo >= hi * (1.0 - 1e-12),
                    "alpha={alpha} eps={eps} region [{start},{end}]: {hi} vs {lo}"
                );
            }
        }
    }

    #[test]
    fn polynomial_region_count_is_logarithmic() {
        // #regions ≈ log_{1+ε} D(g) = α·log_{1+ε}(N).
        let g = Polynomial::new(2.0);
        let n1 = RegionSchedule::compute(&g, 0.5, 1 << 10).num_regions();
        let n2 = RegionSchedule::compute(&g, 0.5, 1 << 20).num_regions();
        // Doubling log(N) should roughly double the region count.
        assert!(n2 < 3 * n1, "n1={n1}, n2={n2}");
        assert!(n2 > n1, "n1={n1}, n2={n2}");
    }

    #[test]
    fn exponential_regions_degenerate_linearly() {
        // For EXPD, region width is the constant ln(1+ε)/λ, so the count
        // is Θ(max_age) — the paper's reason to prefer CEH for EXPD.
        // λ chosen small enough that e^{-λ·max_age} stays above the f64
        // underflow threshold (weights that underflow to 0 truncate the
        // schedule, which is correct behaviour but not what we measure).
        let g = Exponential::new(0.1);
        let s1 = RegionSchedule::compute(&g, 0.5, 1_000);
        let s2 = RegionSchedule::compute(&g, 0.5, 2_000);
        let (n1, n2) = (s1.num_regions() as f64, s2.num_regions() as f64);
        assert!(n2 / n1 > 1.8, "n1={n1}, n2={n2}");
    }

    #[test]
    fn constant_decay_is_one_region() {
        let s = RegionSchedule::compute(&Constant, 0.1, 1 << 20);
        assert_eq!(s.num_regions(), 1);
        assert_eq!(s.region_of(123456), 0);
        assert_eq!(s.seal_period(), 1);
    }

    #[test]
    fn sliding_window_stops_at_horizon() {
        // Inside the window all weights are equal (one region); the
        // schedule terminates when the weight hits zero.
        let s = RegionSchedule::compute(&SlidingWindow::new(64), 0.5, 1_000);
        assert_eq!(s.boundary(0), 1);
        assert_eq!(s.boundary(1), 65); // first age with weight 0... region 0 is [1,64]
        assert_eq!(s.num_regions(), 2);
    }

    #[test]
    fn region_of_is_consistent_with_spans() {
        let s = RegionSchedule::compute(&Polynomial::new(1.5), 0.3, 5_000);
        for (i, start, end) in s.iter() {
            assert_eq!(s.region_of(start), i);
            if let Some(end) = end {
                assert_eq!(s.region_of(end), i);
                assert_eq!(s.region_of(end + 1), i + 1);
            }
        }
        // Beyond max_age clamps into the last region.
        assert_eq!(s.region_of(u64::MAX), s.num_regions() - 1);
    }
}
