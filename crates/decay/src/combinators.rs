//! Combinators that build new decay functions from existing ones.
//!
//! All four combinators preserve the §2 requirements: if the operands are
//! non-negative and non-increasing, so is the result. Classification is
//! conservative — combinators report [`DecayClass::General`] except where
//! a stronger class is provably preserved.

use crate::func::{DecayClass, DecayFunction, Time};

/// `g'(x) = c · g(x)` for a constant `c > 0`.
///
/// Scaling does not change which items dominate a decayed sum, but it is
/// convenient for building mixtures and for normalizing table decays. All
/// structural properties (horizon, ratio monotonicity) are preserved, so
/// the inner classification passes through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scaled<G> {
    inner: G,
    factor: f64,
}

impl<G: DecayFunction> Scaled<G> {
    /// Scales `inner` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and strictly positive.
    pub fn new(inner: G, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be finite and positive, got {factor}"
        );
        Self { inner, factor }
    }
}

impl<G: DecayFunction> DecayFunction for Scaled<G> {
    fn weight(&self, age: Time) -> f64 {
        self.factor * self.inner.weight(age)
    }

    fn horizon(&self) -> Option<Time> {
        self.inner.horizon()
    }

    fn classify(&self) -> DecayClass {
        match self.inner.classify() {
            // A scaled constant/EXPD/SLIWIN is no longer literally that
            // closed form, but scaling preserves ratio monotonicity.
            DecayClass::Constant => DecayClass::Constant,
            DecayClass::Exponential { .. } | DecayClass::RatioMonotone => DecayClass::RatioMonotone,
            // SLIWIN is not ratio-monotone (∞ jump at the window edge),
            // and scaling does not repair that; a scaled polyexponential
            // is still polyexponential-shaped but the pipeline backend
            // keys on the exact closed form, so stay conservative.
            DecayClass::SlidingWindow { .. }
            | DecayClass::PolyExponential { .. }
            | DecayClass::General => DecayClass::General,
        }
    }

    fn describe(&self) -> String {
        format!("{} * {}", self.factor, self.inner.describe())
    }
}

/// `g'(x) = g1(x) + g2(x)`.
///
/// Sums of decay functions are decay functions; they model mixtures such
/// as "a sliding window plus a slow polynomial tail". Sums do *not*
/// generally preserve ratio monotonicity, so the result is classified
/// [`DecayClass::General`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumOf<G1, G2> {
    a: G1,
    b: G2,
}

impl<G1: DecayFunction, G2: DecayFunction> SumOf<G1, G2> {
    /// The pointwise sum of `a` and `b`.
    pub fn new(a: G1, b: G2) -> Self {
        Self { a, b }
    }
}

impl<G1: DecayFunction, G2: DecayFunction> DecayFunction for SumOf<G1, G2> {
    fn weight(&self, age: Time) -> f64 {
        self.a.weight(age) + self.b.weight(age)
    }

    fn horizon(&self) -> Option<Time> {
        match (self.a.horizon(), self.b.horizon()) {
            (Some(x), Some(y)) => Some(x.max(y)),
            _ => None,
        }
    }

    fn describe(&self) -> String {
        format!("({} + {})", self.a.describe(), self.b.describe())
    }
}

/// `g'(x) = g1(x) · g2(x)`.
///
/// Products of non-increasing non-negative functions are non-increasing
/// and non-negative. The workhorse use is truncation: multiplying any
/// decay by a [`crate::SlidingWindow`] gives its W-truncated variant.
/// Products of ratio-monotone functions are ratio-monotone (the per-step
/// ratio is the product of two non-increasing per-step ratios), which the
/// classification exploits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductOf<G1, G2> {
    a: G1,
    b: G2,
}

impl<G1: DecayFunction, G2: DecayFunction> ProductOf<G1, G2> {
    /// The pointwise product of `a` and `b`.
    pub fn new(a: G1, b: G2) -> Self {
        Self { a, b }
    }
}

impl<G1: DecayFunction, G2: DecayFunction> DecayFunction for ProductOf<G1, G2> {
    fn weight(&self, age: Time) -> f64 {
        self.a.weight(age) * self.b.weight(age)
    }

    fn horizon(&self) -> Option<Time> {
        match (self.a.horizon(), self.b.horizon()) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (Some(x), None) | (None, Some(x)) => Some(x),
            (None, None) => None,
        }
    }

    fn classify(&self) -> DecayClass {
        let ratio_monotone = |c: &DecayClass| {
            matches!(
                c,
                DecayClass::Constant | DecayClass::Exponential { .. } | DecayClass::RatioMonotone
            )
        };
        let (ca, cb) = (self.a.classify(), self.b.classify());
        if ratio_monotone(&ca) && ratio_monotone(&cb) {
            DecayClass::RatioMonotone
        } else {
            DecayClass::General
        }
    }

    fn describe(&self) -> String {
        format!("({} * {})", self.a.describe(), self.b.describe())
    }
}

/// `g'(x) = max(g1(x), g2(x))`.
///
/// The pointwise maximum of two decay functions; useful for "whichever
/// view retains more of this event" policies. Classified
/// [`DecayClass::General`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxOf<G1, G2> {
    a: G1,
    b: G2,
}

impl<G1: DecayFunction, G2: DecayFunction> MaxOf<G1, G2> {
    /// The pointwise maximum of `a` and `b`.
    pub fn new(a: G1, b: G2) -> Self {
        Self { a, b }
    }
}

impl<G1: DecayFunction, G2: DecayFunction> DecayFunction for MaxOf<G1, G2> {
    fn weight(&self, age: Time) -> f64 {
        self.a.weight(age).max(self.b.weight(age))
    }

    fn horizon(&self) -> Option<Time> {
        match (self.a.horizon(), self.b.horizon()) {
            (Some(x), Some(y)) => Some(x.max(y)),
            _ => None,
        }
    }

    fn describe(&self) -> String {
        format!("max({}, {})", self.a.describe(), self.b.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{properties, Exponential, Polynomial, SlidingWindow};

    #[test]
    fn scaled_preserves_shape() {
        let g = Scaled::new(Polynomial::new(2.0), 10.0);
        assert_eq!(g.weight(1), 10.0);
        assert_eq!(g.weight(2), 2.5);
        assert_eq!(g.classify(), DecayClass::RatioMonotone);
        assert!(properties::is_non_increasing(&g, 1_000));
    }

    #[test]
    fn sum_combines_horizons() {
        let g = SumOf::new(SlidingWindow::new(10), SlidingWindow::new(20));
        assert_eq!(g.horizon(), Some(20));
        assert_eq!(g.weight(5), 2.0);
        assert_eq!(g.weight(15), 1.0);
        assert_eq!(g.weight(25), 0.0);
        assert!(properties::is_non_increasing(&g, 100));
    }

    #[test]
    fn product_truncates() {
        // Polynomial decay truncated to a 50-tick window.
        let g = ProductOf::new(Polynomial::new(1.0), SlidingWindow::new(50));
        assert_eq!(g.horizon(), Some(50));
        assert!(g.weight(50) > 0.0);
        assert_eq!(g.weight(51), 0.0);
        // Truncation breaks ratio monotonicity (SLIWIN operand).
        assert_eq!(g.classify(), DecayClass::General);
    }

    #[test]
    fn product_of_ratio_monotone_is_ratio_monotone() {
        let g = ProductOf::new(Polynomial::new(1.0), Exponential::new(0.01));
        assert_eq!(g.classify(), DecayClass::RatioMonotone);
        assert!(properties::check_ratio_monotone(&g, 2_000));
    }

    #[test]
    fn max_takes_upper_envelope() {
        let g = MaxOf::new(
            SlidingWindow::new(5),
            Scaled::new(Polynomial::new(1.0), 0.5),
        );
        assert_eq!(g.weight(3), 1.0); // window dominates inside
        assert_eq!(g.weight(10), 0.05); // polynomial tail outside
        assert_eq!(g.horizon(), None);
        assert!(properties::is_non_increasing(&g, 1_000));
    }
}
