//! Decay functions for time-decaying stream aggregation.
//!
//! This crate implements the decay-function model of Cohen & Strauss,
//! *"Maintaining Time-Decaying Stream Aggregates"* (PODS 2003). A decay
//! function is a non-increasing `g(x) >= 0` defined for ages `x >= 0`; at
//! current time `T`, a data item observed at time `t` carries weight
//! `g(T - t)`.
//!
//! The families discussed by the paper are all provided:
//!
//! * [`Exponential`] — `g(x) = exp(-λx)` (EXPD, paper §3.1),
//! * [`SlidingWindow`] — `g(x) = 1` for `x <= W`, else `0` (SLIWIN, §3.2),
//! * [`Polynomial`] — `g(x) = x^{-α}` (POLYD, §3.3),
//! * [`LogDecay`] — `g(x) = 1/ln(e + x/s)`, the sub-polynomial family
//!   the paper's §5 notes WBMH handles in sub-logarithmic buckets,
//! * [`ShiftedPolynomial`] — `g(x) = (x + s)^{-α}`, a POLYD variant that is
//!   finite at age zero,
//! * [`PolyExponential`] — `g(x) = x^k e^{-λx} / k!` (§3.4),
//! * [`Constant`] — `g(x) = 1` (the landmark / no-decay baseline),
//! * [`TableDecay`] and [`ClosureDecay`] — arbitrary user decays,
//! * combinators [`Scaled`], [`SumOf`], [`ProductOf`], [`MaxOf`].
//!
//! Two structural properties drive algorithm selection downstream:
//!
//! 1. the **horizon** `N(g) = max { x : g(x) > 0 }` (paper §2.3), and
//! 2. **ratio monotonicity**: whether `g(x) / g(x + 1)` is non-increasing
//!    in `x` (paper §5) — the applicability condition for weight-based
//!    merging histograms (WBMH).
//!
//! [`regions::RegionSchedule`] computes the WBMH region boundaries
//! `b_1, b_2, ...` of paper §5 from any decay function; they depend only on
//! `(g, ε)` and the current time, never on the stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod checkpoint;
pub mod combinators;
pub mod exponential;
pub mod func;
pub mod polyexp;
pub mod polynomial;
pub mod properties;
pub mod regions;
pub mod sliding;
pub mod soa;
pub mod storage;
pub mod table;

pub use aggregate::{ErrorBound, StreamAggregate};
pub use checkpoint::{Checkpoint, RestoreError};
pub use combinators::{MaxOf, ProductOf, Scaled, SumOf};
pub use exponential::Exponential;
pub use func::{DecayClass, DecayFunction, Time};
pub use polyexp::PolyExponential;
pub use polynomial::{LogDecay, Polynomial, ShiftedPolynomial};
pub use regions::RegionSchedule;
pub use sliding::SlidingWindow;
pub use soa::{forward_weights, BucketColumns, ColumnsView};
pub use storage::StorageAccounting;
pub use table::{ClosureDecay, Constant, TableDecay};
