//! Polyexponential decay (paper §3.4).

use crate::func::{DecayClass, DecayFunction, Time};
use crate::soa::{exp_lane, LANES};

/// Polyexponential decay: `g(x) = x^k e^{-λx} / k!`.
///
/// The paper's §3.4 family, trackable by `k + 1` pipelined exponential
/// counters (Brown's double/triple exponential smoothing for `k = 2, 3`;
/// see `td-counters::pipeline`). Linear combinations
/// `p_k(x) e^{-λx}` of these basis functions cover every
/// polynomial-times-exponential decay.
///
/// **Caution:** for `k >= 1` the function *increases* on `[0, k/λ]` before
/// decaying, so it is not a decay function in the strict §2 sense on that
/// prefix. [`PolyExponential::is_non_increasing_from`] reports the first
/// age from which the monotone regime holds; the histogram algorithms'
/// guarantees apply only to genuinely non-increasing weights, while the
/// pipelined-counter algorithm tracks the weighted sum *exactly in
/// expectation* regardless.
///
/// # Examples
///
/// ```
/// use td_decay::{DecayFunction, PolyExponential};
/// let g = PolyExponential::new(2, 0.1);
/// // peak at x = k/λ = 20
/// assert!(g.weight(20) > g.weight(10));
/// assert!(g.weight(20) > g.weight(40));
/// assert_eq!(g.is_non_increasing_from(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolyExponential {
    k: u32,
    lambda: f64,
    /// 1/k!, precomputed.
    inv_k_factorial: f64,
}

impl PolyExponential {
    /// Polyexponential decay with degree `k` and rate `lambda > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite/positive or `k > 20` (k! would
    /// overflow the exact integer range of f64 and the family is of no
    /// practical use at such degrees).
    pub fn new(k: u32, lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "rate must be finite and positive, got {lambda}"
        );
        assert!(k <= 20, "degree {k} too large (max 20)");
        let mut fact = 1.0f64;
        for i in 2..=k as u64 {
            fact *= i as f64;
        }
        Self {
            k,
            lambda,
            inv_k_factorial: 1.0 / fact,
        }
    }

    /// The polynomial degree k.
    pub fn degree(&self) -> u32 {
        self.k
    }

    /// The rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The first age `x0 = ceil(k/λ)` from which `g` is non-increasing.
    ///
    /// For ages `>= x0` the function behaves as a legitimate decay
    /// function; `x0 = 0` iff `k = 0` (plain EXPD).
    pub fn is_non_increasing_from(&self) -> Time {
        (self.k as f64 / self.lambda).ceil() as Time
    }
}

impl DecayFunction for PolyExponential {
    fn weight(&self, age: Time) -> f64 {
        let x = age as f64;
        // x^k e^{-λx} / k!, computed in log space for large k·ln(x) to
        // avoid overflow of the intermediate power.
        if age == 0 {
            return if self.k == 0 { 1.0 } else { 0.0 };
        }
        let ln = self.k as f64 * x.ln() - self.lambda * x;
        ln.exp() * self.inv_k_factorial
    }

    /// Chunked closed-form kernel: `x^k` by square-and-multiply (the
    /// bit loop over `k` is uniform across lanes, so each pass is a
    /// plain lane-wise multiply) fused with [`exp_lane`]`(−λx)` — no
    /// libm calls and, unlike the scalar log-space form, no log at all
    /// (DESIGN.md §12). `x = 0` needs no special case: `0^k = 0` for
    /// `k ≥ 1` and `exp_lane(0) = 1` exactly. The rare ages where the
    /// intermediate `x^k` overflows (`inf · 0 = NaN`) fall back to the
    /// log-space scalar path.
    fn weight_batch(&self, ages: &[Time], out: &mut [f64]) {
        assert_eq!(ages.len(), out.len(), "age/weight buffer length mismatch");
        let (lambda, norm) = (self.lambda, self.inv_k_factorial);
        let pow_k = |x: f64| {
            let mut acc = 1.0f64;
            let mut base = x;
            let mut kk = self.k;
            while kk > 0 {
                if kk & 1 == 1 {
                    acc *= base;
                }
                base *= base;
                kk >>= 1;
            }
            acc
        };
        let main = ages.len() - ages.len() % LANES;
        for (ac, oc) in ages[..main]
            .chunks_exact(LANES)
            .zip(out[..main].chunks_exact_mut(LANES))
        {
            // The square-and-multiply bit loop sits *outside* the lane
            // loop (its trip count depends only on k, uniform across
            // lanes), so every inner loop is a straight-line lane-wise
            // multiply the vectorizer can handle.
            let mut x = [0.0f64; LANES];
            for j in 0..LANES {
                x[j] = ac[j] as f64;
            }
            let mut acc = [1.0f64; LANES];
            let mut base = x;
            let mut kk = self.k;
            while kk > 0 {
                if kk & 1 == 1 {
                    for j in 0..LANES {
                        acc[j] *= base[j];
                    }
                }
                for b in &mut base {
                    *b *= *b;
                }
                kk >>= 1;
            }
            for j in 0..LANES {
                oc[j] = acc[j] * exp_lane(-lambda * x[j]) * norm;
            }
        }
        for (o, &a) in out[main..].iter_mut().zip(&ages[main..]) {
            let x = a as f64;
            *o = pow_k(x) * exp_lane(-lambda * x) * norm;
        }
        for (o, &a) in out.iter_mut().zip(ages) {
            if !o.is_finite() {
                *o = self.weight(a);
            }
        }
    }

    /// The square-and-multiply power contributes ≤ k rounding steps and
    /// `exp_lane` a couple of ULP, but the *scalar* reference path goes
    /// through `exp(k·ln x − λx)` whose log error is amplified `k`-fold:
    /// a conservative `(k+1)·5e−14` envelope covering both, still ten
    /// decimal orders under any histogram ε. Asserted by the
    /// kernel-equivalence tests.
    fn kernel_relative_error(&self) -> f64 {
        (self.k as f64 + 1.0) * 5e-14
    }

    fn classify(&self) -> DecayClass {
        if self.k == 0 {
            DecayClass::Exponential {
                lambda: self.lambda,
            }
        } else {
            // Not non-increasing near zero (so no histogram bound
            // applies), but exactly trackable by the §3.4 pipeline.
            DecayClass::PolyExponential {
                degree: self.k,
                lambda: self.lambda,
            }
        }
    }

    fn describe(&self) -> String {
        format!("POLYEXP(k={}, lambda={})", self.k, self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerates_to_expd_at_k0() {
        let g = PolyExponential::new(0, 0.3);
        for age in 0..100u64 {
            let expect = (-0.3 * age as f64).exp();
            assert!((g.weight(age) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn peak_location() {
        let g = PolyExponential::new(3, 0.05);
        let peak = g.is_non_increasing_from();
        assert_eq!(peak, 60);
        assert!(g.weight(peak) >= g.weight(peak + 1));
        assert!(g.weight(peak) >= g.weight(peak.saturating_sub(2)));
        // monotone afterwards
        for age in peak..peak + 500 {
            assert!(g.weight(age) >= g.weight(age + 1));
        }
    }

    #[test]
    fn factorial_normalization() {
        // k = 4, x = 1: g(1) = e^{-λ} / 24.
        let g = PolyExponential::new(4, 1.0);
        let expect = (-1.0f64).exp() / 24.0;
        assert!((g.weight(1) - expect).abs() < 1e-15);
    }

    #[test]
    fn classifies_as_pipeline_family() {
        match PolyExponential::new(2, 0.25).classify() {
            DecayClass::PolyExponential { degree, lambda } => {
                assert_eq!(degree, 2);
                assert_eq!(lambda, 0.25);
            }
            other => panic!("unexpected class {other:?}"),
        }
        assert!(matches!(
            PolyExponential::new(0, 0.25).classify(),
            DecayClass::Exponential { .. }
        ));
    }

    #[test]
    fn no_overflow_for_large_age() {
        let g = PolyExponential::new(20, 1e-3);
        let w = g.weight(1_000_000_000);
        assert!(w.is_finite());
        assert!(w >= 0.0);
    }
}
