//! Checkpoint/restore as a trait capability on [`StreamAggregate`].
//!
//! Every backend that participates in fault-tolerant sharded serving
//! (`td-shard`) can serialize its **per-stream state** into a
//! versioned, length-prefixed, checksummed byte envelope and later
//! rebuild itself from those bytes. The shared configuration (decay
//! function, ε, region schedules) is deliberately *not* encoded —
//! §2.3's storage argument is that configuration is shared across all
//! streams — so [`Checkpoint::restore_checkpoint`] takes `&mut self`
//! on an already-configured instance and refuses bytes whose recorded
//! configuration fingerprint disagrees with the receiver's.
//!
//! # Envelope layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"TDCP"
//! 4       2     format version (little-endian u16, currently 1)
//! 6       8     payload length (little-endian u64)
//! 14      8     FNV-1a-64 checksum over bytes [0, 14) ++ [22, ..)
//! 22      n     payload (backend tag byte, then backend-specific fields)
//! ```
//!
//! The checksum covers every byte of the envelope except itself, and
//! decoding verifies it **before** interpreting any other field: a
//! single-bit flip anywhere — magic, version, length, payload, or the
//! checksum field itself — therefore always surfaces as
//! [`RestoreError::Checksum`], never as a misparse. (FNV-1a absorbs
//! each byte with an xor followed by a multiply by an odd prime, so two
//! equal-length inputs differing in exactly one byte always hash
//! differently.)

use std::fmt;

use crate::aggregate::StreamAggregate;

/// Magic prefix of every checkpoint envelope.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"TDCP";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Envelope header size in bytes (magic + version + length + checksum).
const HEADER: usize = 22;

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The byte string is shorter than its header or recorded payload
    /// length claims.
    Truncated,
    /// The FNV-1a-64 checksum does not match the envelope contents
    /// (any corruption — including of the magic, version, or length
    /// fields — reports here, because the checksum is verified first).
    Checksum,
    /// The envelope is intact but written by an unknown format version.
    Version(u16),
    /// The envelope decodes but violates a structural invariant of the
    /// backend (wrong backend tag, mismatched configuration
    /// fingerprint, non-canonical bucket lists, decreasing timestamps,
    /// non-finite counts, ...).
    Invariant(String),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Truncated => write!(f, "checkpoint truncated"),
            RestoreError::Checksum => write!(f, "checkpoint checksum mismatch"),
            RestoreError::Version(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (expected {CHECKPOINT_VERSION})"
                )
            }
            RestoreError::Invariant(why) => write!(f, "checkpoint invariant violated: {why}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Serializable per-stream state: a versioned, checksummed snapshot of
/// everything the backend accumulated from its stream, restorable onto
/// any identically-configured instance.
pub trait Checkpoint: StreamAggregate {
    /// Encodes the per-stream state into a self-validating envelope.
    fn save_checkpoint(&self) -> Vec<u8>;

    /// Replaces this instance's per-stream state with the checkpointed
    /// one. The receiver must be configured identically (same decay,
    /// ε, caps) to the instance that saved the bytes; a mismatch is
    /// reported as [`RestoreError::Invariant`], corruption as
    /// [`RestoreError::Checksum`] or [`RestoreError::Truncated`].
    ///
    /// On error the receiver's state is unspecified (it may be
    /// partially overwritten); callers should discard it.
    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), RestoreError>;
}

/// FNV-1a-64 over one byte chunk, continuing from `state`.
fn fnv1a64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// FNV-1a-64 offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// FNV-1a-64 fingerprint of a string — used to pin configuration
/// (decay `describe()` strings) inside checkpoints without serializing
/// unserializable closures.
pub fn fingerprint(s: &str) -> u64 {
    fnv1a64(FNV_OFFSET, s.as_bytes())
}

/// Little-endian payload writer producing a sealed envelope.
///
/// Numeric fields are fixed-width little-endian; `f64` round-trips via
/// [`f64::to_bits`] so restored state is bit-identical.
pub struct CheckpointWriter {
    buf: Vec<u8>,
}

impl CheckpointWriter {
    /// Starts a payload whose first byte is the backend `tag`
    /// (each implementor picks a unique constant).
    pub fn new(tag: u8) -> Self {
        let mut w = CheckpointWriter {
            buf: Vec::with_capacity(64),
        };
        w.put_u8(tag);
        w
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern (bit-identical round
    /// trip, NaN-safe).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed byte string (e.g. a nested envelope).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Wraps the payload in the magic/version/length/checksum envelope.
    pub fn seal(self) -> Vec<u8> {
        let payload = self.buf;
        let mut out = Vec::with_capacity(HEADER + payload.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv1a64(fnv1a64(FNV_OFFSET, &out), &payload);
        out.extend_from_slice(&sum.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Payload reader over a verified envelope.
pub struct CheckpointReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CheckpointReader<'a> {
    /// Verifies the envelope (checksum first, then magic, version, and
    /// length) and the leading backend tag, returning a reader
    /// positioned after the tag.
    pub fn open(bytes: &'a [u8], expect_tag: u8) -> Result<Self, RestoreError> {
        if bytes.len() < HEADER {
            return Err(RestoreError::Truncated);
        }
        // Checksum FIRST: any single-bit corruption — wherever it
        // lands — must report as Checksum, not as a misparse of the
        // field it happened to hit.
        let recorded = u64::from_le_bytes(bytes[14..22].try_into().expect("8 bytes"));
        let actual = fnv1a64(fnv1a64(FNV_OFFSET, &bytes[..14]), &bytes[HEADER..]);
        if recorded != actual {
            return Err(RestoreError::Checksum);
        }
        if bytes[..4] != CHECKPOINT_MAGIC {
            return Err(RestoreError::Invariant("bad magic".into()));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != CHECKPOINT_VERSION {
            return Err(RestoreError::Version(version));
        }
        let len = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
        if len != (bytes.len() - HEADER) as u64 {
            return Err(RestoreError::Truncated);
        }
        let mut r = CheckpointReader {
            buf: &bytes[HEADER..],
            pos: 0,
        };
        let tag = r.get_u8()?;
        if tag != expect_tag {
            return Err(RestoreError::Invariant(format!(
                "backend tag mismatch: checkpoint carries tag {tag}, receiver expects {expect_tag}"
            )));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        if self.buf.len() - self.pos < n {
            return Err(RestoreError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, RestoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, RestoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, RestoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, RestoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, RestoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(RestoreError::Invariant(format!("bad bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], RestoreError> {
        let n = self.get_u64()?;
        if n > self.buf.len() as u64 {
            return Err(RestoreError::Truncated);
        }
        self.take(n as usize)
    }

    /// Asserts the payload was fully consumed (trailing garbage would
    /// mean the encoder and decoder disagree on the schema).
    pub fn finish(self) -> Result<(), RestoreError> {
        if self.pos != self.buf.len() {
            return Err(RestoreError::Invariant(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// An eq-ability note: CheckpointReader::open is used in `assert_eq!`
// in the tests below, so RestoreError derives PartialEq; reader
// equality itself is never needed.
impl PartialEq for CheckpointReader<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf && self.pos == other.pos
    }
}

impl fmt::Debug for CheckpointReader<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CheckpointReader(pos {} of {})",
            self.pos,
            self.buf.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = CheckpointWriter::new(7);
        w.put_u64(0xDEAD_BEEF);
        w.put_f64(1.5);
        w.put_bool(true);
        w.put_bytes(b"nested");
        w.seal()
    }

    #[test]
    fn roundtrip() {
        let bytes = sample();
        let mut r = CheckpointReader::open(&bytes, 7).unwrap();
        assert_eq!(r.get_u64().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"nested");
        r.finish().unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_a_checksum_error() {
        let bytes = sample();
        for bit in 0..bytes.len() * 8 {
            let mut c = bytes.clone();
            c[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                CheckpointReader::open(&c, 7),
                Err(RestoreError::Checksum),
                "flip of bit {bit} not detected as checksum mismatch"
            );
        }
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample();
        assert_eq!(
            CheckpointReader::open(&bytes[..10], 7).err(),
            Some(RestoreError::Truncated)
        );
        assert_eq!(
            CheckpointReader::open(&[], 7).err(),
            Some(RestoreError::Truncated)
        );
    }

    #[test]
    fn wrong_tag_is_invariant() {
        let bytes = sample();
        assert!(matches!(
            CheckpointReader::open(&bytes, 8),
            Err(RestoreError::Invariant(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_invariant() {
        let bytes = sample();
        let r = CheckpointReader::open(&bytes, 7).unwrap();
        assert!(matches!(r.finish(), Err(RestoreError::Invariant(_))));
    }

    #[test]
    fn fingerprint_distinguishes_strings() {
        assert_ne!(fingerprint("EXPD(0.01)"), fingerprint("EXPD(0.02)"));
        assert_eq!(fingerprint("x"), fingerprint("x"));
    }
}
