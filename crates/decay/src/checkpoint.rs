//! Checkpoint/restore as a trait capability on [`StreamAggregate`].
//!
//! Every backend that participates in fault-tolerant sharded serving
//! (`td-shard`) can serialize its **per-stream state** into a
//! versioned, length-prefixed, checksummed byte envelope and later
//! rebuild itself from those bytes. The shared configuration (decay
//! function, ε, region schedules) is deliberately *not* encoded —
//! §2.3's storage argument is that configuration is shared across all
//! streams — so [`Checkpoint::restore_checkpoint`] takes `&mut self`
//! on an already-configured instance and refuses bytes whose recorded
//! configuration fingerprint disagrees with the receiver's.
//!
//! # Envelope layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"TDCP"
//! 4       2     format version (little-endian u16, currently 1)
//! 6       8     payload length (little-endian u64)
//! 14      8     FNV-1a-64 checksum over bytes [0, 14) ++ [22, ..)
//! 22      n     payload (backend tag byte, then backend-specific fields)
//! ```
//!
//! The checksum covers every byte of the envelope except itself, and
//! decoding verifies it **before** interpreting any other field: a
//! single-bit flip anywhere — magic, version, length, payload, or the
//! checksum field itself — therefore always surfaces as
//! [`RestoreError::Checksum`], never as a misparse. (FNV-1a absorbs
//! each byte with an xor followed by a multiply by an odd prime, so two
//! equal-length inputs differing in exactly one byte always hash
//! differently.)

use std::fmt;

use crate::aggregate::StreamAggregate;

/// Magic prefix of every checkpoint envelope.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"TDCP";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Envelope header size in bytes (magic + version + length + checksum).
const HEADER: usize = 22;

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The byte string is shorter than its header or recorded payload
    /// length claims.
    Truncated,
    /// The FNV-1a-64 checksum does not match the envelope contents
    /// (any corruption — including of the magic, version, or length
    /// fields — reports here, because the checksum is verified first).
    Checksum,
    /// The envelope is intact but written by an unknown format version.
    Version(u16),
    /// The envelope decodes but violates a structural invariant of the
    /// backend (wrong backend tag, mismatched configuration
    /// fingerprint, non-canonical bucket lists, decreasing timestamps,
    /// non-finite counts, ...).
    Invariant(String),
    /// The storage layer failed while reading or writing persisted
    /// state (`td-persist`). Carries the [`std::io::ErrorKind`] so
    /// callers can distinguish a missing file from a permission error
    /// without string matching.
    Io(std::io::ErrorKind),
    /// A write-ahead-log record failed its checksum in the *middle* of
    /// a segment — bytes follow the damaged record, which a pure
    /// crash-truncation can never produce, so this is corruption (a
    /// torn or bit-flipped record), not an honest torn tail. Recovery
    /// refuses to skip it: applying later records over a hole would
    /// silently serve a wrong answer.
    TornRecord {
        /// Index of the WAL segment holding the damaged record.
        segment: u64,
        /// Byte offset of the record header within that segment.
        offset: u64,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Truncated => write!(f, "checkpoint truncated"),
            RestoreError::Checksum => write!(f, "checkpoint checksum mismatch"),
            RestoreError::Version(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (expected {CHECKPOINT_VERSION})"
                )
            }
            RestoreError::Invariant(why) => write!(f, "checkpoint invariant violated: {why}"),
            RestoreError::Io(kind) => write!(f, "persistence I/O error: {kind}"),
            RestoreError::TornRecord { segment, offset } => {
                write!(
                    f,
                    "torn WAL record in segment {segment} at byte offset {offset} \
                     (bytes follow the damaged record: corruption, not a crash tail)"
                )
            }
        }
    }
}

impl From<std::io::Error> for RestoreError {
    fn from(e: std::io::Error) -> Self {
        RestoreError::Io(e.kind())
    }
}

impl std::error::Error for RestoreError {}

/// Serializable per-stream state: a versioned, checksummed snapshot of
/// everything the backend accumulated from its stream, restorable onto
/// any identically-configured instance.
pub trait Checkpoint: StreamAggregate {
    /// Encodes the per-stream state into a self-validating envelope.
    fn save_checkpoint(&self) -> Vec<u8>;

    /// Replaces this instance's per-stream state with the checkpointed
    /// one. The receiver must be configured identically (same decay,
    /// ε, caps) to the instance that saved the bytes; a mismatch is
    /// reported as [`RestoreError::Invariant`], corruption as
    /// [`RestoreError::Checksum`] or [`RestoreError::Truncated`].
    ///
    /// On error the receiver's state is unspecified (it may be
    /// partially overwritten); callers should discard it.
    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), RestoreError>;
}

/// FNV-1a-64 over one byte chunk, continuing from `state`.
fn fnv1a64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// FNV-1a-64 offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// FNV-1a-64 fingerprint of a string — used to pin configuration
/// (decay `describe()` strings) inside checkpoints without serializing
/// unserializable closures.
pub fn fingerprint(s: &str) -> u64 {
    fnv1a64(FNV_OFFSET, s.as_bytes())
}

/// Little-endian payload writer producing a sealed envelope.
///
/// Numeric fields are fixed-width little-endian; `f64` round-trips via
/// [`f64::to_bits`] so restored state is bit-identical.
pub struct CheckpointWriter {
    buf: Vec<u8>,
}

impl CheckpointWriter {
    /// Starts a payload whose first byte is the backend `tag`
    /// (each implementor picks a unique constant).
    pub fn new(tag: u8) -> Self {
        let mut w = CheckpointWriter {
            buf: Vec::with_capacity(64),
        };
        w.put_u8(tag);
        w
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern (bit-identical round
    /// trip, NaN-safe).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed byte string (e.g. a nested envelope).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Wraps the payload in the magic/version/length/checksum envelope.
    pub fn seal(self) -> Vec<u8> {
        let payload = self.buf;
        let mut out = Vec::with_capacity(HEADER + payload.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv1a64(fnv1a64(FNV_OFFSET, &out), &payload);
        out.extend_from_slice(&sum.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Payload reader over a verified envelope.
pub struct CheckpointReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CheckpointReader<'a> {
    /// Verifies the envelope (checksum first, then magic, version, and
    /// length) and the leading backend tag, returning a reader
    /// positioned after the tag.
    pub fn open(bytes: &'a [u8], expect_tag: u8) -> Result<Self, RestoreError> {
        if bytes.len() < HEADER {
            return Err(RestoreError::Truncated);
        }
        // Checksum FIRST: any single-bit corruption — wherever it
        // lands — must report as Checksum, not as a misparse of the
        // field it happened to hit.
        let recorded = u64::from_le_bytes(bytes[14..22].try_into().expect("8 bytes"));
        let actual = fnv1a64(fnv1a64(FNV_OFFSET, &bytes[..14]), &bytes[HEADER..]);
        if recorded != actual {
            return Err(RestoreError::Checksum);
        }
        if bytes[..4] != CHECKPOINT_MAGIC {
            return Err(RestoreError::Invariant("bad magic".into()));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != CHECKPOINT_VERSION {
            return Err(RestoreError::Version(version));
        }
        let len = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
        if len != (bytes.len() - HEADER) as u64 {
            return Err(RestoreError::Truncated);
        }
        let mut r = CheckpointReader {
            buf: &bytes[HEADER..],
            pos: 0,
        };
        let tag = r.get_u8()?;
        if tag != expect_tag {
            return Err(RestoreError::Invariant(format!(
                "backend tag mismatch: checkpoint carries tag {tag}, receiver expects {expect_tag}"
            )));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        if self.buf.len() - self.pos < n {
            return Err(RestoreError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, RestoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, RestoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, RestoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, RestoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, RestoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(RestoreError::Invariant(format!("bad bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], RestoreError> {
        let n = self.get_u64()?;
        if n > self.buf.len() as u64 {
            return Err(RestoreError::Truncated);
        }
        self.take(n as usize)
    }

    /// Asserts the payload was fully consumed (trailing garbage would
    /// mean the encoder and decoder disagree on the schema).
    pub fn finish(self) -> Result<(), RestoreError> {
        if self.pos != self.buf.len() {
            return Err(RestoreError::Invariant(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// An eq-ability note: CheckpointReader::open is used in `assert_eq!`
// in the tests below, so RestoreError derives PartialEq; reader
// equality itself is never needed.
impl PartialEq for CheckpointReader<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf && self.pos == other.pos
    }
}

impl fmt::Debug for CheckpointReader<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CheckpointReader(pos {} of {})",
            self.pos,
            self.buf.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = CheckpointWriter::new(7);
        w.put_u64(0xDEAD_BEEF);
        w.put_f64(1.5);
        w.put_bool(true);
        w.put_bytes(b"nested");
        w.seal()
    }

    #[test]
    fn roundtrip() {
        let bytes = sample();
        let mut r = CheckpointReader::open(&bytes, 7).unwrap();
        assert_eq!(r.get_u64().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"nested");
        r.finish().unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_a_checksum_error() {
        let bytes = sample();
        for bit in 0..bytes.len() * 8 {
            let mut c = bytes.clone();
            c[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                CheckpointReader::open(&c, 7),
                Err(RestoreError::Checksum),
                "flip of bit {bit} not detected as checksum mismatch"
            );
        }
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample();
        assert_eq!(
            CheckpointReader::open(&bytes[..10], 7).err(),
            Some(RestoreError::Truncated)
        );
        assert_eq!(
            CheckpointReader::open(&[], 7).err(),
            Some(RestoreError::Truncated)
        );
    }

    #[test]
    fn wrong_tag_is_invariant() {
        let bytes = sample();
        assert!(matches!(
            CheckpointReader::open(&bytes, 8),
            Err(RestoreError::Invariant(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_invariant() {
        let bytes = sample();
        let r = CheckpointReader::open(&bytes, 7).unwrap();
        assert!(matches!(r.finish(), Err(RestoreError::Invariant(_))));
    }

    #[test]
    fn fingerprint_distinguishes_strings() {
        assert_ne!(fingerprint("EXPD(0.01)"), fingerprint("EXPD(0.02)"));
        assert_eq!(fingerprint("x"), fingerprint("x"));
    }

    /// Every variant matched WITHOUT a wildcard arm: adding a
    /// `RestoreError` variant fails this match at compile time, forcing
    /// every call site that triages restore failures to be revisited
    /// rather than silently funnelling the new variant into a `_` arm.
    fn triage(e: &RestoreError) -> &'static str {
        match e {
            RestoreError::Truncated => "truncated",
            RestoreError::Checksum => "checksum",
            RestoreError::Version(_) => "version",
            RestoreError::Invariant(_) => "invariant",
            RestoreError::Io(_) => "io",
            RestoreError::TornRecord { .. } => "torn-record",
        }
    }

    #[test]
    fn every_variant_is_matchable_and_displays_context() {
        let all = [
            RestoreError::Truncated,
            RestoreError::Checksum,
            RestoreError::Version(9),
            RestoreError::Invariant("x".into()),
            RestoreError::Io(std::io::ErrorKind::NotFound),
            RestoreError::TornRecord {
                segment: 3,
                offset: 1441,
            },
        ];
        let mut seen: Vec<&'static str> = all.iter().map(triage).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), all.len(), "triage must distinguish variants");

        let io = RestoreError::Io(std::io::ErrorKind::PermissionDenied);
        assert!(io.to_string().contains("permission denied"), "{io}");
        let torn = RestoreError::TornRecord {
            segment: 3,
            offset: 1441,
        };
        let msg = torn.to_string();
        assert!(
            msg.contains("segment 3") && msg.contains("1441"),
            "TornRecord display must carry the segment/offset repro: {msg}"
        );
    }

    #[test]
    fn io_errors_convert_with_their_kind() {
        let e: RestoreError =
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short read").into();
        assert_eq!(e, RestoreError::Io(std::io::ErrorKind::UnexpectedEof));
    }
}
