//! Polynomial decay `POLYD_α` (paper §3.3).

use crate::func::{DecayClass, DecayFunction, Time};
use crate::soa::LANES;

/// Which chunked kernel serves `x^{-α}`: the common small
/// integer/half-integer exponents reduce to divide/sqrt/multiply chains
/// (each a handful of exactly-rounded ops, so within a couple ULP of
/// `powf` and several times faster); anything else falls back to
/// `powf`, bit-identical to the scalar closed form.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PolyKernel {
    /// α = 1: `1/x`.
    Recip,
    /// α = 2: `1/(x·x)`.
    RecipSq,
    /// α = 3: `1/(x·x·x)`.
    RecipCube,
    /// α = 4: `1/((x·x)·(x·x))`.
    RecipQuad,
    /// α = ½: `1/√x`.
    RecipSqrt,
    /// α = 3⁄2: `1/(x·√x)`.
    RecipSqrt3,
    /// Any other α: `x.powf(-α)` per element (exact scalar form).
    General,
}

fn poly_kernel(alpha: f64) -> PolyKernel {
    if alpha == 1.0 {
        PolyKernel::Recip
    } else if alpha == 2.0 {
        PolyKernel::RecipSq
    } else if alpha == 3.0 {
        PolyKernel::RecipCube
    } else if alpha == 4.0 {
        PolyKernel::RecipQuad
    } else if alpha == 0.5 {
        PolyKernel::RecipSqrt
    } else if alpha == 1.5 {
        PolyKernel::RecipSqrt3
    } else {
        PolyKernel::General
    }
}

#[inline(always)]
fn poly_lane(kernel: PolyKernel, alpha: f64, x: f64) -> f64 {
    match kernel {
        PolyKernel::Recip => 1.0 / x,
        PolyKernel::RecipSq => 1.0 / (x * x),
        PolyKernel::RecipCube => 1.0 / (x * x * x),
        PolyKernel::RecipQuad => {
            let xx = x * x;
            1.0 / (xx * xx)
        }
        PolyKernel::RecipSqrt => 1.0 / x.sqrt(),
        PolyKernel::RecipSqrt3 => 1.0 / (x * x.sqrt()),
        PolyKernel::General => x.powf(-alpha),
    }
}

/// Polynomial decay: `g(x) = x^{-α}` for `x >= 1`, with `g(0) = 1`.
///
/// The paper's headline family. Polynomial decay is *ratio-monotone*
/// (`g(x)/g(x+1) = (1 + 1/x)^α` strictly decreases in `x`), which is
/// exactly the property that (a) lets the weight of a severe-but-old event
/// and a mild-but-recent one converge over time — the Figure 1 "link L2
/// eventually overtakes L1" behaviour — and (b) makes the WBMH algorithm
/// of §5 applicable, so POLYD sums can be maintained in
/// `O(log N · log log N)` bits, almost as cheaply as exponential decay.
///
/// The mathematical `x^{-α}` diverges at `x = 0`; the paper only ever
/// evaluates weights at age `>= 1` (items strictly older than the query
/// time contribute). We cap `g(0) = 1 = g(1)` so the function is total and
/// still non-increasing.
///
/// # Examples
///
/// ```
/// use td_decay::{DecayFunction, Polynomial};
/// let g = Polynomial::new(2.0);
/// assert_eq!(g.weight(1), 1.0);
/// assert_eq!(g.weight(2), 0.25);
/// assert_eq!(g.weight(10), 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Polynomial {
    alpha: f64,
}

impl Polynomial {
    /// Polynomial decay with exponent `alpha > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not finite and strictly positive.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "POLYD exponent must be finite and positive, got {alpha}"
        );
        Self { alpha }
    }

    /// The exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl DecayFunction for Polynomial {
    fn weight(&self, age: Time) -> f64 {
        let x = age.max(1) as f64;
        x.powf(-self.alpha)
    }

    /// Chunked closed-form kernel: `LANES`-wide fixed-width loop with
    /// an exact scalar tail; small integer/half-integer exponents use
    /// divide/sqrt chains instead of `powf` (DESIGN.md §12).
    fn weight_batch(&self, ages: &[Time], out: &mut [f64]) {
        assert_eq!(ages.len(), out.len(), "age/weight buffer length mismatch");
        let (alpha, kernel) = (self.alpha, poly_kernel(self.alpha));
        let main = ages.len() - ages.len() % LANES;
        for (ac, oc) in ages[..main]
            .chunks_exact(LANES)
            .zip(out[..main].chunks_exact_mut(LANES))
        {
            for j in 0..LANES {
                oc[j] = poly_lane(kernel, alpha, ac[j].max(1) as f64);
            }
        }
        for (o, &a) in out[main..].iter_mut().zip(&ages[main..]) {
            *o = poly_lane(kernel, alpha, a.max(1) as f64);
        }
    }

    /// Fused boundary-column kernel: ages come straight off the `end`
    /// column, lane-wise.
    fn weight_from_ends(&self, t: Time, ends: &[Time], out: &mut [f64]) {
        assert_eq!(ends.len(), out.len(), "end/weight buffer length mismatch");
        let (alpha, kernel) = (self.alpha, poly_kernel(self.alpha));
        let main = ends.len() - ends.len() % LANES;
        for (ec, oc) in ends[..main]
            .chunks_exact(LANES)
            .zip(out[..main].chunks_exact_mut(LANES))
        {
            for j in 0..LANES {
                oc[j] = poly_lane(kernel, alpha, t.saturating_sub(ec[j]).max(1) as f64);
            }
        }
        for (o, &e) in out[main..].iter_mut().zip(&ends[main..]) {
            *o = poly_lane(kernel, alpha, t.saturating_sub(e).max(1) as f64);
        }
    }

    /// The divide/sqrt chains are ≤ 3 correctly-rounded steps against
    /// `powf`'s ≤ 0.5 ULP, so ≤ 4 ULP total; the `General` fallback is
    /// bit-identical (bound 0 would hold, but one conservative bound
    /// keeps the contract independent of the dispatch).
    fn kernel_relative_error(&self) -> f64 {
        match poly_kernel(self.alpha) {
            PolyKernel::General => 0.0,
            _ => 8.0 * f64::EPSILON,
        }
    }

    fn classify(&self) -> DecayClass {
        DecayClass::RatioMonotone
    }

    fn describe(&self) -> String {
        format!("POLYD(alpha={})", self.alpha)
    }
}

/// Shifted polynomial decay: `g(x) = (1 + x/s)^{-α}`.
///
/// A POLYD variant that is smooth at age zero and decays on a time scale
/// set by `s`: the weight halves roughly every `s·(2^{1/α} − 1)` ticks at
/// first and ever more slowly later. Normalized so `g(0) = 1`, which makes
/// ratings comparable across parameter choices (used by the Figure 1
/// experiment). Ratio-monotone like plain POLYD.
///
/// # Examples
///
/// ```
/// use td_decay::{DecayFunction, ShiftedPolynomial};
/// let g = ShiftedPolynomial::new(1.0, 100);
/// assert_eq!(g.weight(0), 1.0);
/// assert!((g.weight(100) - 0.5).abs() < 1e-12); // (1 + 1)^-1
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftedPolynomial {
    alpha: f64,
    shift: f64,
}

impl ShiftedPolynomial {
    /// Shifted polynomial decay with exponent `alpha > 0` and time scale
    /// `shift >= 1` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not finite/positive or `shift == 0`.
    pub fn new(alpha: f64, shift: Time) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "exponent must be finite and positive, got {alpha}"
        );
        assert!(shift > 0, "shift must be positive");
        Self {
            alpha,
            shift: shift as f64,
        }
    }

    /// The exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl DecayFunction for ShiftedPolynomial {
    fn weight(&self, age: Time) -> f64 {
        (1.0 + age as f64 / self.shift).powf(-self.alpha)
    }

    fn classify(&self) -> DecayClass {
        DecayClass::RatioMonotone
    }

    fn describe(&self) -> String {
        format!("POLYD(alpha={}, shift={})", self.alpha, self.shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn closed_form() {
        let g = Polynomial::new(1.5);
        for age in 1..1000u64 {
            let expect = (age as f64).powf(-1.5);
            assert!((g.weight(age) - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn age_zero_is_capped() {
        let g = Polynomial::new(3.0);
        assert_eq!(g.weight(0), 1.0);
        assert!(g.weight(0) >= g.weight(1));
    }

    #[test]
    fn ratio_monotone() {
        for alpha in [0.5, 1.0, 2.0, 3.5] {
            let g = Polynomial::new(alpha);
            assert!(properties::check_ratio_monotone(&g, 5_000), "alpha={alpha}");
            assert!(properties::is_non_increasing(&g, 5_000));
        }
    }

    #[test]
    fn shifted_matches_limits() {
        let g = ShiftedPolynomial::new(2.0, 10);
        assert_eq!(g.weight(0), 1.0);
        // age = shift → (1+1)^-2 = 0.25
        assert!((g.weight(10) - 0.25).abs() < 1e-12);
        assert!(properties::check_ratio_monotone(&g, 5_000));
    }

    #[test]
    fn weight_ratio_converges_to_one() {
        // The §1.2 motivation: the ratio of weights of two fixed events
        // tends to 1 as time passes — impossible under EXPD or SLIWIN.
        let g = Polynomial::new(1.0);
        let r = |t: u64| g.weight(t) / g.weight(t + 100);
        assert!(r(1) > r(10));
        assert!(r(10) > r(1_000));
        assert!((r(1_000_000) - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_negative_alpha() {
        let _ = Polynomial::new(-1.0);
    }
}

/// Logarithmic (sub-polynomial) decay: `g(x) = 1 / ln(e + x/s)`.
///
/// The slowest-decaying family in the workspace: weights fall off like
/// `1/log x`, retaining old history far longer than any polynomial. The
/// paper's §5 notes that WBMH "beats CEHs also for sub-polynomial
/// decay, as the number of buckets of WBMH is sub-logarithmic in
/// elapsed time" — here `D(g) = ln(e + N/s)/ln(e + 1/s)`, so the
/// bucket count is `O(ε⁻¹ log log N)` (experiment E14 measures it).
/// Ratio-monotone, so the WBMH backend applies; normalized to
/// `g(0) = 1`.
///
/// # Examples
///
/// ```
/// use td_decay::{DecayFunction, LogDecay};
/// let g = LogDecay::new(1);
/// assert_eq!(g.weight(0), 1.0);
/// assert!(g.weight(1_000_000) > 0.06); // barely decayed after 1e6 ticks
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDecay {
    scale: f64,
}

impl LogDecay {
    /// Logarithmic decay with time scale `scale >= 1` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn new(scale: Time) -> Self {
        assert!(scale > 0, "scale must be positive");
        Self {
            scale: scale as f64,
        }
    }
}

impl DecayFunction for LogDecay {
    fn weight(&self, age: Time) -> f64 {
        1.0 / (std::f64::consts::E + age as f64 / self.scale).ln()
    }

    fn classify(&self) -> DecayClass {
        DecayClass::RatioMonotone
    }

    fn describe(&self) -> String {
        format!("LOGD(scale={})", self.scale)
    }
}

#[cfg(test)]
mod log_tests {
    use super::*;
    use crate::properties;

    #[test]
    fn normalized_and_monotone() {
        let g = LogDecay::new(10);
        assert_eq!(g.weight(0), 1.0);
        assert!(properties::is_non_increasing(&g, 100_000));
        assert!(properties::check_ratio_monotone(&g, 100_000));
    }

    #[test]
    fn weight_ratio_is_doubly_logarithmic() {
        // D(g) at N and N² differ by ~2x in log, i.e. log D grows like
        // log log N.
        let g = LogDecay::new(1);
        let d1 = properties::weight_ratio(&g, 1 << 10);
        let d2 = properties::weight_ratio(&g, 1 << 20);
        // D doubles-ish when log N doubles; both stay tiny.
        assert!(d2 < 2.0 * d1, "d1={d1}, d2={d2}");
        assert!(d2 < 20.0);
    }

    #[test]
    fn region_count_is_sub_logarithmic() {
        let g = LogDecay::new(1);
        let r10 = crate::RegionSchedule::compute(&g, 0.2, 1 << 10).num_regions();
        let r20 = crate::RegionSchedule::compute(&g, 0.2, 1 << 20).num_regions();
        let r30 = crate::RegionSchedule::compute(&g, 0.2, 1 << 30).num_regions();
        // Each doubling of log N adds only ~constant regions (log log
        // growth), unlike POLYD where regions scale with log N.
        assert!(r20 - r10 <= 8, "r10={r10}, r20={r20}");
        assert!(r30 - r20 <= 8, "r20={r20}, r30={r30}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_scale() {
        let _ = LogDecay::new(0);
    }
}
