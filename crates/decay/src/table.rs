//! User-defined decay functions: tables, closures, and the constant
//! (no-decay) baseline.

use crate::func::{DecayClass, DecayFunction, Time};

/// The constant decay `g(x) = 1`: the classic landmark (never-forget)
/// stream model.
///
/// Useful as a baseline: under `Constant`, the decaying sum is the plain
/// running sum of the stream, trackable exactly in `Θ(log n)` bits or
/// approximately in `O(log log n)` bits (Morris counting; see
/// `td-counters::morris`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Constant;

impl DecayFunction for Constant {
    fn weight(&self, _age: Time) -> f64 {
        1.0
    }

    fn classify(&self) -> DecayClass {
        DecayClass::Constant
    }

    fn describe(&self) -> String {
        "CONST".to_string()
    }
}

/// A decay function given by an explicit weight table.
///
/// `weights[x]` is `g(x)` for ages inside the table; older ages get the
/// `tail` value (commonly `0.0`, giving finite support with horizon
/// `weights.len() - 1`, or the table's last entry, extending it flat).
///
/// The constructor validates the §2 requirements (non-negative,
/// non-increasing, tail not above the last entry), so a `TableDecay` is
/// always a legitimate decay function.
///
/// # Examples
///
/// ```
/// use td_decay::{DecayFunction, TableDecay};
/// // The worked example of paper §4.2: consecutive weights 8, 5, 3, 2.
/// let g = TableDecay::new(vec![8.0, 8.0, 5.0, 3.0, 2.0], 0.0).unwrap();
/// assert_eq!(g.weight(1), 8.0);
/// assert_eq!(g.weight(4), 2.0);
/// assert_eq!(g.weight(5), 0.0);
/// assert_eq!(g.horizon(), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TableDecay {
    weights: Vec<f64>,
    tail: f64,
}

/// Why a weight table was rejected by [`TableDecay::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// The table was empty.
    Empty,
    /// Some entry was negative, NaN, or infinite; holds its index.
    InvalidWeight(usize),
    /// `weights[i] > weights[i-1]` for the given `i`.
    Increasing(usize),
    /// The tail value was negative/non-finite or exceeded the last entry.
    InvalidTail,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Empty => write!(f, "weight table is empty"),
            TableError::InvalidWeight(i) => {
                write!(f, "weight at index {i} is negative or non-finite")
            }
            TableError::Increasing(i) => {
                write!(f, "weight table increases at index {i}")
            }
            TableError::InvalidTail => {
                write!(f, "tail weight is invalid or exceeds the last table entry")
            }
        }
    }
}

impl std::error::Error for TableError {}

impl TableDecay {
    /// Builds a table decay, validating non-negativity and monotonicity.
    pub fn new(weights: Vec<f64>, tail: f64) -> Result<Self, TableError> {
        if weights.is_empty() {
            return Err(TableError::Empty);
        }
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(TableError::InvalidWeight(i));
            }
            if i > 0 && w > weights[i - 1] {
                return Err(TableError::Increasing(i));
            }
        }
        let last = *weights.last().expect("non-empty");
        if !tail.is_finite() || tail < 0.0 || tail > last {
            return Err(TableError::InvalidTail);
        }
        Ok(Self { weights, tail })
    }

    /// The number of explicit table entries (ages `0..len`).
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the table has no entries (never true for a constructed
    /// value; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

impl DecayFunction for TableDecay {
    fn weight(&self, age: Time) -> f64 {
        match usize::try_from(age) {
            Ok(i) if i < self.weights.len() => self.weights[i],
            _ => self.tail,
        }
    }

    fn horizon(&self) -> Option<Time> {
        if self.tail > 0.0 {
            return None;
        }
        // Last index with positive weight.
        self.weights
            .iter()
            .rposition(|&w| w > 0.0)
            .map(|i| i as Time)
    }

    fn describe(&self) -> String {
        format!("TABLE(len={}, tail={})", self.weights.len(), self.tail)
    }
}

/// A decay function defined by an arbitrary closure.
///
/// The closure is trusted to be non-increasing and non-negative; audit
/// candidates with [`crate::properties::is_non_increasing`]. Classified
/// as [`DecayClass::General`] unless overridden via
/// [`ClosureDecay::with_class`], so the conservative cascaded-EH backend
/// is selected by default.
///
/// # Examples
///
/// ```
/// use td_decay::{ClosureDecay, DecayFunction};
/// let g = ClosureDecay::new(|age| 1.0 / (1.0 + (age as f64).sqrt()));
/// assert!(g.weight(0) > g.weight(100));
/// ```
#[derive(Clone)]
pub struct ClosureDecay<F> {
    f: F,
    class: DecayClass,
    horizon: Option<Time>,
    name: String,
}

impl<F: Fn(Time) -> f64> ClosureDecay<F> {
    /// Wraps `f` as a decay function with no structural claims.
    pub fn new(f: F) -> Self {
        Self {
            f,
            class: DecayClass::General,
            horizon: None,
            name: "CLOSURE".to_string(),
        }
    }

    /// Overrides the classification hint (e.g. to certify ratio
    /// monotonicity established analytically or via
    /// [`crate::properties::check_ratio_monotone`]).
    pub fn with_class(mut self, class: DecayClass) -> Self {
        self.class = class;
        self
    }

    /// Declares a finite horizon: `f` must return `0.0` beyond it.
    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Sets the display name used in experiment tables.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl<F: Fn(Time) -> f64> DecayFunction for ClosureDecay<F> {
    fn weight(&self, age: Time) -> f64 {
        (self.f)(age)
    }

    fn horizon(&self) -> Option<Time> {
        self.horizon
    }

    fn classify(&self) -> DecayClass {
        self.class
    }

    fn describe(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_decays() {
        let g = Constant;
        assert_eq!(g.weight(0), 1.0);
        assert_eq!(g.weight(u64::MAX), 1.0);
        assert_eq!(g.classify(), DecayClass::Constant);
    }

    #[test]
    fn table_lookup_and_tail() {
        let g = TableDecay::new(vec![4.0, 2.0, 1.0], 0.5).unwrap();
        assert_eq!(g.weight(0), 4.0);
        assert_eq!(g.weight(2), 1.0);
        assert_eq!(g.weight(3), 0.5);
        assert_eq!(g.weight(1_000_000), 0.5);
        assert_eq!(g.horizon(), None); // positive tail → infinite support
    }

    #[test]
    fn table_horizon_with_zero_tail() {
        let g = TableDecay::new(vec![3.0, 1.0, 0.0, 0.0], 0.0).unwrap();
        assert_eq!(g.horizon(), Some(1));
    }

    #[test]
    fn table_rejects_increasing() {
        assert_eq!(
            TableDecay::new(vec![1.0, 2.0], 0.0),
            Err(TableError::Increasing(1))
        );
    }

    #[test]
    fn table_rejects_bad_tail() {
        assert_eq!(
            TableDecay::new(vec![1.0, 0.5], 0.6),
            Err(TableError::InvalidTail)
        );
        assert_eq!(
            TableDecay::new(vec![1.0], f64::NAN),
            Err(TableError::InvalidTail)
        );
    }

    #[test]
    fn table_rejects_invalid_weight() {
        assert_eq!(
            TableDecay::new(vec![1.0, f64::INFINITY], 0.0),
            Err(TableError::InvalidWeight(1))
        );
        assert_eq!(TableDecay::new(vec![], 0.0), Err(TableError::Empty));
    }

    #[test]
    fn closure_with_metadata() {
        let g = ClosureDecay::new(|age| if age <= 5 { 1.0 } else { 0.0 })
            .with_horizon(5)
            .with_name("STEP5");
        assert_eq!(g.horizon(), Some(5));
        assert_eq!(g.describe(), "STEP5");
        assert_eq!(g.weight(5), 1.0);
        assert_eq!(g.weight(6), 0.0);
    }
}
