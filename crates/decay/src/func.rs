//! The [`DecayFunction`] trait and its classification hints.

/// Discrete time, measured in ticks since an arbitrary epoch.
///
/// The paper assumes time is discretized and obtains integral values
/// (§2); every structure in this workspace uses `u64` ticks.
pub type Time = u64;

/// Structural classification of a decay function.
///
/// Downstream code uses this hint to pick the storage-optimal backend
/// (paper summary, §8):
///
/// * exponential decay — a single (quantized) counter, Θ(log N) bits
///   (Lemma 3.1);
/// * sliding windows — an Exponential Histogram, Θ(log²N) bits (\[9\]);
/// * ratio-monotone sub-exponential decay (e.g. polynomial) — a
///   weight-based merging histogram, O(log N · log log N) bits
///   (Lemma 5.1);
/// * anything else — a cascaded Exponential Histogram, O(log²N) bits
///   (Theorem 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecayClass {
    /// `g(x) = 1` for all ages: no decay at all.
    Constant,
    /// `g(x) = exp(-λx)` with the given `λ > 0`.
    Exponential {
        /// The rate parameter λ.
        lambda: f64,
    },
    /// `g(x) = 1` for `x <= window`, `0` afterwards.
    SlidingWindow {
        /// The window length W, in ticks.
        window: Time,
    },
    /// `g(x) = x^k e^{-λx} / k!` (§3.4) — *not* non-increasing for
    /// `k >= 1`, but trackable exactly by `k + 1` pipelined exponential
    /// counters (`td-counters::pipeline`).
    PolyExponential {
        /// The polynomial degree k.
        degree: u32,
        /// The rate parameter λ.
        lambda: f64,
    },
    /// `g(x)/g(x+1)` is non-increasing in `x` (WBMH-applicable, §5), but
    /// the function is not one of the closed forms above. Polynomial decay
    /// is the canonical member.
    RatioMonotone,
    /// No structural guarantee; only the cascaded-EH algorithm of
    /// Theorem 1 applies.
    General,
}

/// A decay function: a non-increasing, non-negative weight of elapsed age.
///
/// `weight(x)` is the paper's `g(x)`. Implementations must satisfy, for
/// all ages `x`:
///
/// * `weight(x) >= 0`,
/// * `weight(x + 1) <= weight(x)` (non-increasing),
/// * `weight` is a pure function of `x` (no interior mutability).
///
/// Violations are not undefined behaviour — everything stays safe — but
/// the approximation guarantees of the histogram algorithms assume them,
/// and [`crate::properties::is_non_increasing`] can audit a candidate.
///
/// The trait is object-safe; summaries typically hold a
/// `Box<dyn DecayFunction>` or are generic over `G: DecayFunction`.
pub trait DecayFunction {
    /// The weight `g(x)` assigned to an item of age `x` ticks.
    fn weight(&self, age: Time) -> f64;

    /// Evaluates `g` over a batch of ages in one call: `out[i] =
    /// weight(ages[i])`.
    ///
    /// This is the query-side kernel: histogram queries collect bucket
    /// ages into a scratch buffer and evaluate all weights at once, so a
    /// decay function dispatched through `&dyn DecayFunction` pays one
    /// virtual call per *query* instead of one per *bucket*, and the
    /// closed-form families get a tight monomorphic loop the compiler
    /// can unroll/vectorize. Overrides must be pointwise identical to
    /// `weight` (the default simply loops).
    ///
    /// # Panics
    ///
    /// Panics if `ages.len() != out.len()`.
    fn weight_batch(&self, ages: &[Time], out: &mut [f64]) {
        assert_eq!(ages.len(), out.len(), "age/weight buffer length mismatch");
        for (o, &a) in out.iter_mut().zip(ages) {
            *o = self.weight(a);
        }
    }

    /// Evaluates `g(t − end)` over a bucket-boundary column in one call:
    /// `out[i] = weight(t − ends[i])` — the zero-gather query kernel.
    ///
    /// Histogram queries hand the structure-of-arrays `end` column (see
    /// [`crate::soa`]) straight to this method instead of materializing
    /// an age `Vec` first; the default converts fixed-width chunks into
    /// a stack buffer and feeds [`DecayFunction::weight_batch`], so the
    /// closed-form families' chunked kernels apply with no per-query
    /// heap traffic and one virtual dispatch per chunk.
    ///
    /// Caller contract: `ends[i] <= t`. Violations clamp the age at 0
    /// (the saturating difference) rather than wrapping; query paths
    /// slice off at-tick buckets before calling.
    ///
    /// # Panics
    ///
    /// Panics if `ends.len() != out.len()`.
    fn weight_from_ends(&self, t: Time, ends: &[Time], out: &mut [f64]) {
        assert_eq!(ends.len(), out.len(), "end/weight buffer length mismatch");
        let mut ages = [0u64; 64];
        let mut i = 0;
        while i < ends.len() {
            let n = (ends.len() - i).min(64);
            for (a, &e) in ages[..n].iter_mut().zip(&ends[i..i + n]) {
                *a = t.saturating_sub(e);
            }
            self.weight_batch(&ages[..n], &mut out[i..i + n]);
            i += n;
        }
    }

    /// The documented relative divergence bound between the chunked
    /// batch kernels ([`DecayFunction::weight_batch`] /
    /// [`DecayFunction::weight_from_ends`]) and the scalar
    /// [`DecayFunction::weight`] closed form.
    ///
    /// `0.0` (the default) means the batch path is exactly pointwise
    /// identical to `weight`. Families whose batch kernels use the
    /// fast chunked transcendentals (see [`crate::soa`]) return their
    /// measured ULP bound here, and backends fold it into the
    /// `error_bound` they report, so a certified envelope remains
    /// truthful under kernel drift. Weights below
    /// [`crate::soa::NEGLIGIBLE_WEIGHT`] are exempt (both sides are
    /// treated as zero there).
    fn kernel_relative_error(&self) -> f64 {
        0.0
    }

    /// The horizon `N(g) = argmax_x g(x) > 0` (§2.3): the largest age that
    /// still carries positive weight, or `None` when the support is
    /// infinite (as for exponential and polynomial decay).
    fn horizon(&self) -> Option<Time> {
        None
    }

    /// A structural classification hint used for backend selection.
    ///
    /// The default is [`DecayClass::General`]; closed-form families
    /// override this. Returning a stronger class than the function
    /// satisfies voids the storage/accuracy guarantees of the selected
    /// backend, so custom implementations should be conservative (or use
    /// [`crate::properties::check_ratio_monotone`] to certify
    /// [`DecayClass::RatioMonotone`] numerically).
    fn classify(&self) -> DecayClass {
        DecayClass::General
    }

    /// Human-readable name used in experiment tables and error messages.
    fn describe(&self) -> String {
        "custom".to_string()
    }
}

impl<G: DecayFunction + ?Sized> DecayFunction for &G {
    fn weight(&self, age: Time) -> f64 {
        (**self).weight(age)
    }
    fn weight_batch(&self, ages: &[Time], out: &mut [f64]) {
        (**self).weight_batch(ages, out)
    }
    fn weight_from_ends(&self, t: Time, ends: &[Time], out: &mut [f64]) {
        (**self).weight_from_ends(t, ends, out)
    }
    fn kernel_relative_error(&self) -> f64 {
        (**self).kernel_relative_error()
    }
    fn horizon(&self) -> Option<Time> {
        (**self).horizon()
    }
    fn classify(&self) -> DecayClass {
        (**self).classify()
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl<G: DecayFunction + ?Sized> DecayFunction for Box<G> {
    fn weight(&self, age: Time) -> f64 {
        (**self).weight(age)
    }
    fn weight_batch(&self, ages: &[Time], out: &mut [f64]) {
        (**self).weight_batch(ages, out)
    }
    fn weight_from_ends(&self, t: Time, ends: &[Time], out: &mut [f64]) {
        (**self).weight_from_ends(t, ends, out)
    }
    fn kernel_relative_error(&self) -> f64 {
        (**self).kernel_relative_error()
    }
    fn horizon(&self) -> Option<Time> {
        (**self).horizon()
    }
    fn classify(&self) -> DecayClass {
        (**self).classify()
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Exponential;

    #[test]
    fn trait_is_object_safe() {
        let g: Box<dyn DecayFunction> = Box::new(Exponential::new(0.5));
        assert!(g.weight(3) > 0.0);
        assert_eq!(g.horizon(), None);
    }

    #[test]
    fn references_delegate() {
        let g = Exponential::new(0.25);
        let r: &dyn DecayFunction = &g;
        assert_eq!(r.weight(7), g.weight(7));
        assert_eq!(r.classify(), g.classify());
        assert_eq!(r.describe(), g.describe());
    }
}
