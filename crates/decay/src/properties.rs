//! Numeric audits and derived quantities of decay functions.
//!
//! The storage bounds of the paper are phrased in terms of two derived
//! quantities (§2.3, §5):
//!
//! * `N` — the **effective horizon**: the minimum of elapsed time and
//!   `N(g)`, the largest age with positive weight ([`effective_horizon`]);
//! * `D(g) = g(1) / g(N)` — the **weight ratio** between the newest and
//!   the oldest positively-weighted item ([`weight_ratio`]); the WBMH
//!   bucket count is `O(ε⁻¹ log D(g))` (Lemma 5.1).
//!
//! The audits ([`is_non_increasing`], [`check_ratio_monotone`]) verify the
//! §2 and §5 requirements numerically over a finite age range; they are
//! used by tests and by [`certify`] for custom decay functions.

use crate::func::{DecayClass, DecayFunction, Time};

/// The effective horizon `N = min(elapsed, N(g))` of §2.3.
///
/// All storage bounds in the paper are functions of this `N`: a sliding
/// window never needs state older than `W`, while an infinite-support
/// decay is limited only by how long the stream has run.
pub fn effective_horizon<G: DecayFunction + ?Sized>(g: &G, elapsed: Time) -> Time {
    match g.horizon() {
        Some(h) => h.min(elapsed),
        None => elapsed,
    }
}

/// The weight ratio `D(g) = g(1) / g(N)` over the effective horizon
/// (paper §5).
///
/// Returns `f64::INFINITY` when `g(N) == 0` (e.g. asking past a finite
/// horizon) and `1.0` for constant decay. For EXPD this is `e^{λ(N-1)}`
/// (so `log D = Θ(N)` and WBMH degenerates); for POLYD it is `N^α`
/// (so `log D = Θ(log N)` and WBMH wins).
pub fn weight_ratio<G: DecayFunction + ?Sized>(g: &G, n: Time) -> f64 {
    let newest = g.weight(1);
    let oldest = g.weight(n.max(1));
    if oldest <= 0.0 {
        f64::INFINITY
    } else {
        newest / oldest
    }
}

/// Checks `g(x+1) <= g(x)` and `g(x) >= 0` for all `x <= max_age`.
///
/// A `false` result proves the candidate is not a decay function in the
/// §2 sense; `true` certifies it on the tested range only.
pub fn is_non_increasing<G: DecayFunction + ?Sized>(g: &G, max_age: Time) -> bool {
    let mut prev = g.weight(0);
    // NaN fails is_finite, so these checks also reject NaN weights.
    if prev < 0.0 || !prev.is_finite() {
        return false;
    }
    for age in 1..=max_age {
        let w = g.weight(age);
        if w < 0.0 || !w.is_finite() || w > prev {
            return false;
        }
        prev = w;
    }
    true
}

/// Checks the WBMH applicability condition of §5: `g(x)/g(x+1)` is
/// non-increasing in `x`, over `1 <= x <= max_age`.
///
/// The paper notes it suffices to check the condition for age step
/// `Δ = 1`; this routine does exactly that. Once `g` reaches zero, every
/// later ratio is taken as satisfied (`0/0` treated as 1): a function
/// that has *already nullified* trivially keeps item weights comparable.
/// A function that *jumps* to zero from a positive value (sliding
/// windows) fails, as the paper requires.
///
/// A small relative slack (1 part in 10⁹) absorbs floating-point noise in
/// closed-form weights.
pub fn check_ratio_monotone<G: DecayFunction + ?Sized>(g: &G, max_age: Time) -> bool {
    const SLACK: f64 = 1.0 + 1e-9;
    let mut prev_ratio = f64::INFINITY;
    for age in 1..=max_age {
        let (a, b) = (g.weight(age), g.weight(age + 1));
        if a <= 0.0 {
            // Function already nullified; nothing left to compare.
            return true;
        }
        if b <= 0.0 {
            // Positive → zero jump: the ratio is +∞, which is only
            // non-increasing if it is the very first ratio (the function
            // nullifies from age 2 on, leaving nothing to compare).
            return age == 1;
        }
        let ratio = a / b;
        if ratio > prev_ratio * SLACK {
            return false;
        }
        prev_ratio = prev_ratio.min(ratio);
    }
    true
}

/// Numerically certifies a classification for a custom decay function.
///
/// Runs both audits over `0..=max_age` and returns the strongest class
/// this evidence supports: [`DecayClass::RatioMonotone`] if the §5
/// condition holds, [`DecayClass::General`] if only monotonicity holds,
/// and `None` if the candidate is not a decay function at all.
///
/// This is a *finite* certificate; callers choose `max_age` at least as
/// large as the lifetime of the stream they will run.
pub fn certify<G: DecayFunction + ?Sized>(g: &G, max_age: Time) -> Option<DecayClass> {
    if !is_non_increasing(g, max_age) {
        return None;
    }
    if check_ratio_monotone(g, max_age) {
        Some(DecayClass::RatioMonotone)
    } else {
        Some(DecayClass::General)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClosureDecay, Constant, Exponential, Polynomial, SlidingWindow};

    #[test]
    fn effective_horizon_minimum() {
        let w = SlidingWindow::new(100);
        assert_eq!(effective_horizon(&w, 50), 50);
        assert_eq!(effective_horizon(&w, 500), 100);
        let p = Polynomial::new(1.0);
        assert_eq!(effective_horizon(&p, 12345), 12345);
    }

    #[test]
    fn weight_ratio_matches_paper_examples() {
        // POLYD: D = N^α → log D = Θ(log N).
        let p = Polynomial::new(2.0);
        assert!((weight_ratio(&p, 1000) - 1e6).abs() / 1e6 < 1e-9);
        // EXPD: D = e^{λ(N-1)} → log D = Θ(N).
        let e = Exponential::new(0.1);
        let expect = (0.1f64 * 999.0).exp();
        assert!((weight_ratio(&e, 1000) - expect).abs() / expect < 1e-9);
        // Constant: D = 1.
        assert_eq!(weight_ratio(&Constant, 1 << 30), 1.0);
        // Past a finite horizon: infinite.
        assert!(weight_ratio(&SlidingWindow::new(10), 11).is_infinite());
    }

    #[test]
    fn audit_catches_increasing_function() {
        let bad = ClosureDecay::new(|age| age as f64);
        assert!(!is_non_increasing(&bad, 10));
        assert_eq!(certify(&bad, 10), None);
    }

    #[test]
    fn audit_catches_nan() {
        let bad = ClosureDecay::new(|age| if age == 3 { f64::NAN } else { 1.0 });
        assert!(!is_non_increasing(&bad, 10));
    }

    #[test]
    fn sliwin_fails_ratio_monotonicity() {
        assert!(!check_ratio_monotone(&SlidingWindow::new(16), 64));
    }

    #[test]
    fn certify_levels() {
        assert_eq!(
            certify(&Polynomial::new(1.0), 1_000),
            Some(DecayClass::RatioMonotone)
        );
        assert_eq!(
            certify(&SlidingWindow::new(8), 1_000),
            Some(DecayClass::General)
        );
    }

    #[test]
    fn zero_tail_after_age_one_is_accepted() {
        // g positive only at ages 0..=1: ratios never jump from a finite
        // positive history, so the condition holds vacuously.
        let g = ClosureDecay::new(|age| if age <= 1 { 1.0 } else { 0.0 });
        assert!(check_ratio_monotone(&g, 100));
    }
}
