//! Sliding-window decay `SLIWIN_W` (paper §3.2).

use crate::func::{DecayClass, DecayFunction, Time};

/// Sliding-window decay: `g(x) = 1` for `x <= W`, `g(x) = 0` otherwise.
///
/// All data in the most recent window of `W` ticks counts fully; anything
/// older is discarded entirely. Introduced as a streaming model by Datar,
/// Gionis, Indyk & Motwani \[9\], who showed Θ(ε⁻¹ log² W) bits are necessary
/// and sufficient for (1+ε)-approximate window counts — the Exponential
/// Histogram in `td-eh` is that algorithm.
///
/// SLIWIN is *not* ratio-monotone: `g(x)/g(x+1)` jumps from `1` to `∞` at
/// the window edge, so the WBMH algorithm of §5 does not apply (and indeed
/// Theorem 1 shows sliding windows are, in a precise sense, the *hardest*
/// decay function).
///
/// # Examples
///
/// ```
/// use td_decay::{DecayFunction, SlidingWindow};
/// let g = SlidingWindow::new(100);
/// assert_eq!(g.weight(100), 1.0);
/// assert_eq!(g.weight(101), 0.0);
/// assert_eq!(g.horizon(), Some(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlidingWindow {
    window: Time,
}

impl SlidingWindow {
    /// A window covering ages `0..=window`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` (an empty window would weight nothing —
    /// the paper's model always has `W >= 1`).
    pub fn new(window: Time) -> Self {
        assert!(window > 0, "window must be positive");
        Self { window }
    }

    /// The window length W.
    pub fn window(&self) -> Time {
        self.window
    }
}

impl DecayFunction for SlidingWindow {
    fn weight(&self, age: Time) -> f64 {
        if age <= self.window {
            1.0
        } else {
            0.0
        }
    }

    fn weight_batch(&self, ages: &[Time], out: &mut [f64]) {
        assert_eq!(ages.len(), out.len(), "age/weight buffer length mismatch");
        let window = self.window;
        for (o, &a) in out.iter_mut().zip(ages) {
            // Branch-free indicator: trivially vectorizable.
            *o = f64::from(u8::from(a <= window));
        }
    }

    fn horizon(&self) -> Option<Time> {
        Some(self.window)
    }

    fn classify(&self) -> DecayClass {
        DecayClass::SlidingWindow {
            window: self.window,
        }
    }

    fn describe(&self) -> String {
        format!("SLIWIN(W={})", self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn step_shape() {
        let g = SlidingWindow::new(10);
        for age in 0..=10 {
            assert_eq!(g.weight(age), 1.0, "age {age} inside window");
        }
        for age in 11..100 {
            assert_eq!(g.weight(age), 0.0, "age {age} outside window");
        }
    }

    #[test]
    fn non_increasing_but_not_ratio_monotone() {
        let g = SlidingWindow::new(32);
        assert!(properties::is_non_increasing(&g, 100));
        assert!(!properties::check_ratio_monotone(&g, 100));
    }

    #[test]
    fn horizon_is_window() {
        assert_eq!(SlidingWindow::new(77).horizon(), Some(77));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_empty_window() {
        let _ = SlidingWindow::new(0);
    }
}
