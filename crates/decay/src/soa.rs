//! Structure-of-arrays bucket storage and chunked query kernels.
//!
//! Every histogram backend in the workspace used to keep its buckets as
//! an array-of-structs `VecDeque<Bucket>`: queries gathered ages into
//! per-query `Vec`s (pointer-chasing plus an allocation) before the
//! [`DecayFunction::weight_batch`] kernel could run, and structural
//! passes (expiry, merge cascades) shuffled 24-byte structs around.
//! This module is the layout-level fix (DESIGN.md §12):
//!
//! * [`BucketColumns`] stores the bucket fields as three parallel
//!   contiguous `Vec`s (`start`, `end`, `count`) with an amortized
//!   head offset for O(1) front expiry, so query kernels stream the
//!   boundary column directly — zero gather, zero per-query copy.
//! * [`dot_counts`] / [`dot_mass`] evaluate `Σ count_i · g(T − end_i)`
//!   by feeding fixed-width chunks of the *column itself* through
//!   [`DecayFunction::weight_from_ends`], using a stack scratch buffer:
//!   one virtual dispatch per [`CHUNK`] buckets, no heap traffic.
//! * The closed-form decay families override their batch kernels with
//!   fixed-width [`LANES`]-wide loops over the helpers below
//!   ([`exp_lane`], [`ln_lane`]) — autovectorization-friendly safe
//!   Rust with an exact scalar tail, no external SIMD crates.
//!
//! # Kernel accuracy contract
//!
//! The chunked transcendental kernels are *not* bit-identical to the
//! `std` scalar math the [`DecayFunction::weight`] closed forms use:
//! each family documents its divergence through
//! [`DecayFunction::kernel_relative_error`], and backends fold that
//! bound into their reported `error_bound`. The workspace-wide law
//! (see `proptest_laws`) is
//!
//! ```text
//! |weight_batch(x) − weight(x)| ≤ kernel_relative_error() · weight(x)
//! ```
//!
//! with both sides treated as zero below [`NEGLIGIBLE_WEIGHT`] (the
//! exponential kernel clamps its argument rather than descending into
//! subnormals; see [`exp_lane`]).

use crate::func::{DecayFunction, Time};

/// Lane width of the fixed-width kernel loops (`f64x4`-style): wide
/// enough for 256-bit autovectorization, small enough that the scalar
/// tail (≤ 3 elements) is noise.
pub const LANES: usize = 4;

/// Buckets per stack scratch buffer in the chunked dot-product helpers:
/// one `weight_from_ends` dispatch (virtual for `dyn` decays) covers
/// this many buckets.
pub const CHUNK: usize = 64;

/// Weights below this are treated as exactly zero by the kernel
/// accuracy contract: the fast exponential kernel clamps its argument
/// at −[`EXP_ARG_CLAMP`] instead of descending into subnormals, so two
/// implementations may disagree on values ≤ `exp(−708)` ≈ 3.3e−308.
pub const NEGLIGIBLE_WEIGHT: f64 = 1e-290;

/// The exponent magnitude at which [`exp_lane`] clamps: `exp(±708)` is
/// the last comfortably-normal magnitude (min positive normal is
/// ≈ 2.2e−308).
pub const EXP_ARG_CLAMP: f64 = 708.0;

// ---------------------------------------------------------------------
// Fast transcendental lanes (division-free Taylor/Estrin for exp,
// Cephes-derived rational for ln; safe Rust, branch-light so
// LANES-wide loops can vectorize).
// ---------------------------------------------------------------------

/// `1.5 · 2^52`: adding then subtracting forces round-to-nearest-even
/// to the nearest integer for |x| < 2^51 without an `fn round` call.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;

// exp: division-free degree-13 Taylor polynomial on r ∈ [−ln2/2, ln2/2].
// Truncation |r|^14/14! ≲ 4e-18 relative on the reduced range, well
// inside the 4·EPS kernel contract; Estrin grouping keeps the critical
// path short so the LANES-wide loop pipelines instead of serializing on
// the division a Cephes-style rational tail would need.
const EXP_C1: f64 = 6.93145751953125e-1; // ln2 high part
const EXP_C2: f64 = 1.428_606_820_309_417_3e-6; // ln2 low part
const EXP_T2: f64 = 0.5; // 1/2!
const EXP_T3: f64 = 1.6666666666666666e-1; // 1/3!
const EXP_T4: f64 = 4.1666666666666664e-2; // 1/4!
const EXP_T5: f64 = 8.333333333333333e-3; // 1/5!
const EXP_T6: f64 = 1.388_888_888_888_889e-3; // 1/6!
const EXP_T7: f64 = 1.984126984126984e-4; // 1/7!
const EXP_T8: f64 = 2.48015873015873e-5; // 1/8!
const EXP_T9: f64 = 2.7557319223985893e-6; // 1/9!
const EXP_T10: f64 = 2.755731922398589e-7; // 1/10!
const EXP_T11: f64 = 2.505210838544172e-8; // 1/11!
const EXP_T12: f64 = 2.08767569878681e-9; // 1/12!
const EXP_T13: f64 = 1.6059043836821613e-10; // 1/13!

/// One lane of the chunked exponential kernel: `e^x` for
/// `x ∈ [−EXP_ARG_CLAMP, EXP_ARG_CLAMP]` (arguments outside are clamped,
/// keeping the result monotone and ≥ `exp(−708)` > 0).
///
/// Within a couple of ULP of the correctly-rounded result (measured ≤ 2
/// ULP against `f64::exp` over dense sweeps; the equivalence tests
/// enforce [`DecayFunction::kernel_relative_error`]). `exp_lane(0.0)`
/// is exactly `1.0`.
#[inline(always)]
pub fn exp_lane(x: f64) -> f64 {
    let x = x.clamp(-EXP_ARG_CLAMP, EXP_ARG_CLAMP);
    // n = round(x / ln2), branchlessly.
    let shifted = x.mul_add(std::f64::consts::LOG2_E, ROUND_MAGIC);
    let n = shifted - ROUND_MAGIC;
    // r = x − n·ln2, with ln2 split for an exact-ish reduction.
    let r = n.mul_add(-EXP_C2, n.mul_add(-EXP_C1, x));
    // Estrin evaluation of the degree-13 Taylor series: pair adjacent
    // terms, then combine with r², r⁴, r⁸ powers. No division.
    //
    // `mul_add` everywhere: with an FMA unit each pair is one fused
    // instruction; without one it lowers to the (slow but *identical
    // in value*) libm fma, so results are bit-stable across targets.
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let t01 = 1.0 + r;
    let t23 = r.mul_add(EXP_T3, EXP_T2);
    let t45 = r.mul_add(EXP_T5, EXP_T4);
    let t67 = r.mul_add(EXP_T7, EXP_T6);
    let t89 = r.mul_add(EXP_T9, EXP_T8);
    let t1011 = r.mul_add(EXP_T11, EXP_T10);
    let t1213 = r.mul_add(EXP_T13, EXP_T12);
    let lo = r2.mul_add(t23, t01);
    let mid = r2.mul_add(t67, t45);
    let hi = r2.mul_add(t1011, t89);
    let e = r8.mul_add(r4.mul_add(t1213, hi), r4.mul_add(mid, lo));
    // e^x = e · 2^n. |n| ≤ 1022 after the clamp, so the biased exponent
    // stays in the normal range. `shifted` still carries n in its low
    // mantissa bits (ROUND_MAGIC ≡ 0 mod 2^12 there), so the scale is
    // one integer add+shift — no f64→i64 conversion, which SSE2 has no
    // packed form of and which would otherwise scalarize the lane loop.
    let scale = f64::from_bits(shifted.to_bits().wrapping_add(1023) << 52);
    e * scale
}

// ln: Cephes `log.c` rational approximation on m ∈ [√½·2, √2] − 1.
const LN_P: [f64; 6] = [
    1.018_756_638_045_809_3e-4,
    4.974_949_949_767_47e-1,
    4.705_791_198_788_817,
    1.449_892_253_416_109_3e1,
    1.793_686_785_078_198_3e1,
    7.708_387_337_558_854,
];
const LN_Q: [f64; 5] = [
    // Monic: leading 1.0 implied.
    1.128_735_871_891_674_6e1,
    4.522_791_458_375_322_5e1,
    8.298_752_669_127_767e1,
    7.115_447_506_185_639e1,
    2.312_516_201_267_653_3e1,
];
const LN2_HI: f64 = 0.693359375;
const LN2_LO: f64 = -2.121_944_400_546_905_7e-4;

/// One lane of the chunked natural-log kernel: `ln x` for positive
/// normal `x` (histogram ages are integers ≥ 1, so no zero/subnormal
/// handling is needed). Within ~1 ULP of `f64::ln`.
#[inline(always)]
pub fn ln_lane(x: f64) -> f64 {
    debug_assert!(x >= 1.0, "ln_lane is only defined for ages >= 1");
    let bits = x.to_bits();
    // x = m · 2^e with m ∈ [1, 2).
    let mut e = ((bits >> 52) & 0x7FF) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    // Re-center to m ∈ [√½, √2] so z = m − 1 is small.
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let z = m - 1.0;
    let y = z * z;
    // Horner with plain mul/add: `mul_add` lowers to a libm call when
    // the fma target feature is absent, which defeats the point.
    let p = ((((LN_P[0] * z + LN_P[1]) * z + LN_P[2]) * z + LN_P[3]) * z + LN_P[4]) * z + LN_P[5];
    let q = ((((z + LN_Q[0]) * z + LN_Q[1]) * z + LN_Q[2]) * z + LN_Q[3]) * z + LN_Q[4];
    let ef = e as f64;
    let r = z * y * (p / q) - 0.5 * y + z;
    r + ef * LN2_LO + ef * LN2_HI
}

// ---------------------------------------------------------------------
// Chunked dot-product helpers over bucket columns.
// ---------------------------------------------------------------------

/// `Σ counts[i] · g(t − ends[i])` streamed straight off the columns:
/// fixed-size stack scratch, one `weight_from_ends` dispatch per
/// [`CHUNK`] buckets, no heap allocation.
///
/// Caller contract: `ends[i] < t` for all `i` (query paths slice off
/// the at-tick suffix first; `weight_from_ends` clamps ages at 0 on
/// violation rather than wrapping).
pub fn dot_counts<G: DecayFunction + ?Sized>(g: &G, t: Time, ends: &[Time], counts: &[u64]) -> f64 {
    assert_eq!(ends.len(), counts.len(), "column length mismatch");
    let mut total = 0.0;
    let mut w = [0.0f64; CHUNK];
    for (ec, cc) in ends.chunks(CHUNK).zip(counts.chunks(CHUNK)) {
        let wc = &mut w[..ec.len()];
        g.weight_from_ends(t, ec, wc);
        let mut acc = 0.0;
        for (wi, &ci) in wc.iter().zip(cc) {
            acc += ci as f64 * *wi;
        }
        total += acc;
    }
    total
}

/// [`dot_counts`] for real-valued masses (WBMH's approximate bucket
/// counts): `Σ mass[i] · g(t − ends[i])`.
pub fn dot_mass<G: DecayFunction + ?Sized>(g: &G, t: Time, ends: &[Time], mass: &[f64]) -> f64 {
    assert_eq!(ends.len(), mass.len(), "column length mismatch");
    let mut total = 0.0;
    let mut w = [0.0f64; CHUNK];
    for (ec, mc) in ends.chunks(CHUNK).zip(mass.chunks(CHUNK)) {
        let wc = &mut w[..ec.len()];
        g.weight_from_ends(t, ec, wc);
        let mut acc = 0.0;
        for (wi, &mi) in wc.iter().zip(mc) {
            acc += mi * *wi;
        }
        total += acc;
    }
    total
}

/// Midpoint variant: `Σ counts[i] · (g(t − ends[i]) + g(t − starts[i]))/2`
/// — the cascaded-EH `Estimator::Midpoint` path, still zero-gather.
pub fn dot_counts_midpoint<G: DecayFunction + ?Sized>(
    g: &G,
    t: Time,
    starts: &[Time],
    ends: &[Time],
    counts: &[u64],
) -> f64 {
    assert_eq!(ends.len(), counts.len(), "column length mismatch");
    assert_eq!(starts.len(), ends.len(), "column length mismatch");
    let mut total = 0.0;
    let mut we = [0.0f64; CHUNK];
    let mut ws = [0.0f64; CHUNK];
    for ((ec, sc), cc) in ends
        .chunks(CHUNK)
        .zip(starts.chunks(CHUNK))
        .zip(counts.chunks(CHUNK))
    {
        let wec = &mut we[..ec.len()];
        let wsc = &mut ws[..ec.len()];
        g.weight_from_ends(t, ec, wec);
        g.weight_from_ends(t, sc, wsc);
        let mut acc = 0.0;
        for i in 0..ec.len() {
            acc += cc[i] as f64 * (0.5 * (wec[i] + wsc[i]));
        }
        total += acc;
    }
    total
}

/// Forward-decay ingest kernel (Cormode et al.): `out[i] = 1 / g(ticks[i] − landmark)`
/// — the per-item scale a forward-decay moment accumulator adds at
/// ingest, so that a query at `T` renormalizes by `g(T − landmark)` and
/// recovers the weight `g(T − landmark) / g(tᵢ − landmark)`.
///
/// Chunked through [`DecayFunction::weight_batch`] with a fixed-size
/// stack age buffer (one virtual dispatch per [`CHUNK`] ticks), then a
/// reciprocal sweep — same dispatch economics as the dot-product
/// helpers above. The reciprocal inherits the family's
/// [`DecayFunction::kernel_relative_error`] plus half an ULP.
///
/// Caller contract: `ticks[i] >= landmark` (panics on violation — a
/// forward accumulator never scales an item older than its landmark)
/// and `g` strictly positive at every requested age (finite-horizon
/// decays have no forward form; the reciprocal would be `inf`).
pub fn forward_weights<G: DecayFunction + ?Sized>(
    g: &G,
    landmark: Time,
    ticks: &[Time],
    out: &mut [f64],
) {
    assert_eq!(ticks.len(), out.len(), "tick/weight buffer length mismatch");
    let mut ages = [0u64; CHUNK];
    for (tc, oc) in ticks.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
        let ac = &mut ages[..tc.len()];
        for (a, &t) in ac.iter_mut().zip(tc) {
            *a = t
                .checked_sub(landmark)
                .expect("forward_weights: tick precedes landmark");
        }
        g.weight_batch(ac, oc);
        for o in oc.iter_mut() {
            *o = 1.0 / *o;
        }
    }
}

// ---------------------------------------------------------------------
// BucketColumns
// ---------------------------------------------------------------------

/// Structure-of-arrays bucket store: `start`, `end`, `count` as three
/// parallel contiguous `Vec`s, oldest bucket first.
///
/// Logical index `i` (0 = oldest live bucket) maps to physical index
/// `head + i`; [`BucketColumns::pop_front`] just bumps `head`, and the
/// dead prefix is compacted away once it exceeds both a fixed floor and
/// half the physical length — amortized O(1) expiry without the
/// wrap-around split a `VecDeque` imposes on every slice access. The
/// column accessors ([`starts`](Self::starts) etc.) always return the
/// *live* range as single contiguous slices, which is what lets query
/// kernels stream them with zero gather.
#[derive(Debug, Clone, Default)]
pub struct BucketColumns {
    head: usize,
    start: Vec<Time>,
    end: Vec<Time>,
    count: Vec<u64>,
}

/// Compact the dead prefix only once it is at least this long (and at
/// least half the physical storage), so short-lived pops never trigger
/// memmoves.
const COMPACT_MIN_HEAD: usize = 32;

impl BucketColumns {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with room for `cap` buckets per column.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            head: 0,
            start: Vec::with_capacity(cap),
            end: Vec::with_capacity(cap),
            count: Vec::with_capacity(cap),
        }
    }

    /// Number of live buckets.
    pub fn len(&self) -> usize {
        self.start.len() - self.head
    }

    /// Whether no bucket is live.
    pub fn is_empty(&self) -> bool {
        self.head == self.start.len()
    }

    /// Drops all buckets.
    pub fn clear(&mut self) {
        self.head = 0;
        self.start.clear();
        self.end.clear();
        self.count.clear();
    }

    /// The live `start` column, oldest first.
    pub fn starts(&self) -> &[Time] {
        &self.start[self.head..]
    }

    /// The live `end` column, oldest first.
    pub fn ends(&self) -> &[Time] {
        &self.end[self.head..]
    }

    /// The live `count` column, oldest first.
    pub fn counts(&self) -> &[u64] {
        &self.count[self.head..]
    }

    /// The bucket at logical index `i` as `(start, end, count)`.
    pub fn get(&self, i: usize) -> (Time, Time, u64) {
        let p = self.head + i;
        (self.start[p], self.end[p], self.count[p])
    }

    /// Overwrites the bucket at logical index `i`.
    pub fn set(&mut self, i: usize, start: Time, end: Time, count: u64) {
        let p = self.head + i;
        self.start[p] = start;
        self.end[p] = end;
        self.count[p] = count;
    }

    /// Sets only the count of the bucket at logical index `i` (burst
    /// coalescing into the newest bucket).
    pub fn set_count(&mut self, i: usize, count: u64) {
        let p = self.head + i;
        self.count[p] = count;
    }

    /// Appends a bucket at the newest end.
    pub fn push_back(&mut self, start: Time, end: Time, count: u64) {
        self.start.push(start);
        self.end.push(end);
        self.count.push(count);
    }

    /// The oldest bucket, if any.
    pub fn front(&self) -> Option<(Time, Time, u64)> {
        (!self.is_empty()).then(|| self.get(0))
    }

    /// The newest bucket, if any.
    pub fn back(&self) -> Option<(Time, Time, u64)> {
        let n = self.len();
        (n > 0).then(|| self.get(n - 1))
    }

    /// Removes the oldest bucket (amortized O(1): bumps the head
    /// offset, compacting only when the dead prefix has grown past
    /// [`COMPACT_MIN_HEAD`] and half the physical length).
    pub fn pop_front(&mut self) -> Option<(Time, Time, u64)> {
        if self.is_empty() {
            return None;
        }
        let out = self.get(0);
        self.head += 1;
        if self.head >= COMPACT_MIN_HEAD && self.head * 2 >= self.start.len() {
            self.compact();
        }
        Some(out)
    }

    /// Removes the bucket at logical index `i`, shifting newer buckets
    /// down (O(live − i) contiguous moves per column; merge cascades use
    /// this on indices near the newest end).
    pub fn remove(&mut self, i: usize) -> (Time, Time, u64) {
        let p = self.head + i;
        let out = (
            self.start.remove(p),
            self.end.remove(p),
            self.count.remove(p),
        );
        (out.0, out.1, out.2)
    }

    /// Moves the live range back to physical offset 0.
    fn compact(&mut self) {
        self.start.drain(..self.head);
        self.end.drain(..self.head);
        self.count.drain(..self.head);
        self.head = 0;
    }

    /// Iterates the live buckets as `(start, end, count)`, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (Time, Time, u64)> + '_ {
        self.starts()
            .iter()
            .zip(self.ends())
            .zip(self.counts())
            .map(|((&s, &e), &c)| (s, e, c))
    }

    /// Heap bytes currently held by the three columns (capacity, not
    /// live length — mirrors what a storage accountant should charge).
    pub fn capacity(&self) -> usize {
        self.start.capacity()
    }
}

/// Borrowed view of the live bucket columns of a histogram — what
/// window sketches expose so cascaded queries can stream boundaries
/// with zero gather (see `td_eh::WindowSketch::columns`).
#[derive(Debug, Clone, Copy)]
pub struct ColumnsView<'a> {
    /// Oldest-first `start` column.
    pub starts: &'a [Time],
    /// Oldest-first `end` column.
    pub ends: &'a [Time],
    /// Oldest-first `count` column.
    pub counts: &'a [u64],
}

impl<'a> From<&'a BucketColumns> for ColumnsView<'a> {
    fn from(c: &'a BucketColumns) -> Self {
        ColumnsView {
            starts: c.starts(),
            ends: c.ends(),
            counts: c.counts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, Polynomial};

    #[test]
    fn push_pop_head_offset() {
        let mut c = BucketColumns::new();
        for i in 0..100u64 {
            c.push_back(i, i, i + 1);
        }
        assert_eq!(c.len(), 100);
        for i in 0..40u64 {
            assert_eq!(c.pop_front(), Some((i, i, i + 1)));
        }
        assert_eq!(c.len(), 60);
        assert_eq!(c.starts().len(), 60);
        assert_eq!(c.front(), Some((40, 40, 41)));
        assert_eq!(c.back(), Some((99, 99, 100)));
        // Columns stay consistent views after compaction kicked in.
        assert_eq!(c.starts()[0], 40);
        assert_eq!(c.counts()[59], 100);
    }

    #[test]
    fn remove_shifts_newer_buckets() {
        let mut c = BucketColumns::new();
        for i in 0..5u64 {
            c.push_back(i, i, 10 + i);
        }
        assert_eq!(c.remove(2), (2, 2, 12));
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(2), (3, 3, 13));
        assert_eq!(c.ends(), &[0, 1, 3, 4]);
    }

    #[test]
    fn pop_everything_then_reuse() {
        let mut c = BucketColumns::new();
        for round in 0..3 {
            for i in 0..50u64 {
                c.push_back(i, i, 1);
            }
            while c.pop_front().is_some() {}
            assert!(c.is_empty(), "round {round}");
            assert_eq!(c.len(), 0);
        }
    }

    #[test]
    fn exp_lane_tracks_std_exp() {
        let mut worst = 0.0f64;
        for i in 0..70_000 {
            let x = -(i as f64) * 0.01; // 0 … −700
            let got = exp_lane(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
        }
        assert!(worst <= 4.0 * f64::EPSILON, "worst rel err {worst:e}");
        assert_eq!(exp_lane(0.0), 1.0);
    }

    #[test]
    fn exp_lane_clamps_instead_of_subnormals() {
        let w = exp_lane(-10_000.0);
        assert!(w > 0.0 && w < NEGLIGIBLE_WEIGHT);
        // Monotone floor: clamped region is constant, never increasing.
        assert_eq!(exp_lane(-10_000.0), exp_lane(-20_000.0));
    }

    #[test]
    fn ln_lane_tracks_std_ln() {
        let mut worst = 0.0f64;
        for i in 1..200_000u64 {
            let x = i as f64;
            let got = ln_lane(x);
            let want = x.ln();
            if want == 0.0 {
                assert_eq!(got, 0.0, "ln(1)");
                continue;
            }
            worst = worst.max(((got - want) / want).abs());
        }
        assert!(worst <= 4.0 * f64::EPSILON, "worst rel err {worst:e}");
    }

    #[test]
    fn dot_counts_matches_scalar_loop() {
        let g = Exponential::new(0.01);
        let t = 10_000u64;
        let ends: Vec<Time> = (0..500).map(|i| i * 17 % 9_999).collect();
        let counts: Vec<u64> = (0..500).map(|i| i % 7 + 1).collect();
        let got = dot_counts(&g, t, &ends, &counts);
        let want: f64 = ends
            .iter()
            .zip(&counts)
            .map(|(&e, &c)| c as f64 * g.weight(t - e))
            .sum();
        assert!((got - want).abs() <= 1e-12 * want.abs());
    }

    #[test]
    fn dot_midpoint_matches_scalar_loop() {
        let g = Polynomial::new(1.0);
        let t = 5_000u64;
        let starts: Vec<Time> = (0..300).map(|i| i * 13 % 4_000).collect();
        let ends: Vec<Time> = starts.iter().map(|&s| s + 17).collect();
        let counts: Vec<u64> = (0..300).map(|i| i % 5 + 1).collect();
        let got = dot_counts_midpoint(&g, t, &starts, &ends, &counts);
        let want: f64 = (0..300)
            .map(|i| counts[i] as f64 * 0.5 * (g.weight(t - ends[i]) + g.weight(t - starts[i])))
            .sum();
        assert!((got - want).abs() <= 1e-12 * want.abs());
    }

    #[test]
    fn forward_weights_matches_scalar_reciprocal() {
        let landmark = 1_000u64;
        let ticks: Vec<Time> = (0..200).map(|i| landmark + i * 31).collect();
        let mut out = vec![0.0; ticks.len()];
        for g in [
            Box::new(Exponential::new(0.01)) as Box<dyn DecayFunction>,
            Box::new(Polynomial::new(1.0)),
        ] {
            forward_weights(g.as_ref(), landmark, &ticks, &mut out);
            for (&t, &r) in ticks.iter().zip(&out) {
                let want = 1.0 / g.weight(t - landmark);
                assert!(
                    (r - want).abs() <= 1e-12 * want,
                    "{}: tick {t}: got {r}, want {want}",
                    g.describe()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "tick precedes landmark")]
    fn forward_weights_rejects_pre_landmark_ticks() {
        let g = Exponential::new(0.01);
        let mut out = [0.0; 1];
        forward_weights(&g, 10, &[9], &mut out);
    }
}
