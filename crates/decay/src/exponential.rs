//! Exponential decay `EXPD_λ` (paper §3.1).

use crate::func::{DecayClass, DecayFunction, Time};
use crate::soa::{exp_lane, LANES};

/// Exponential decay: `g(x) = exp(-λx)` for a rate `λ > 0`.
///
/// The relative significance of each measurement decreases exponentially
/// with elapsed time; equivalently, the weight ratio of two items is
/// *fixed forever* — which is exactly why the paper argues EXPD cannot
/// model a "less severe but more recent" event eventually overtaking a
/// "more severe but older" one (§1.2).
///
/// EXPD is the one family with a trivial O(1)-word algorithm
/// (`C ← f + e^{-λ} C`, Eq. 1 of the paper; see `td-counters`).
///
/// # Examples
///
/// ```
/// use td_decay::{DecayFunction, Exponential};
/// let g = Exponential::new(0.1);
/// assert!((g.weight(0) - 1.0).abs() < 1e-12);
/// assert!(g.weight(10) < g.weight(9));
/// // half-life constructor: weight halves every `h` ticks
/// let h = Exponential::with_half_life(100);
/// assert!((h.weight(100) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Exponential decay with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite and strictly positive.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "EXPD rate must be finite and positive, got {lambda}"
        );
        Self { lambda }
    }

    /// Exponential decay whose weight halves every `half_life` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `half_life == 0`.
    pub fn with_half_life(half_life: Time) -> Self {
        assert!(half_life > 0, "half-life must be positive");
        Self::new(std::f64::consts::LN_2 / half_life as f64)
    }

    /// The rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The per-tick multiplier `e^{-λ}` used by the classic counter
    /// update (Eq. 1).
    pub fn per_tick_factor(&self) -> f64 {
        (-self.lambda).exp()
    }
}

impl DecayFunction for Exponential {
    fn weight(&self, age: Time) -> f64 {
        (-self.lambda * age as f64).exp()
    }

    /// Chunked closed-form kernel: `LANES`-wide fixed-width loop over
    /// [`exp_lane`] with an exact scalar tail — no libm call per
    /// element, autovectorization-friendly (DESIGN.md §12).
    fn weight_batch(&self, ages: &[Time], out: &mut [f64]) {
        assert_eq!(ages.len(), out.len(), "age/weight buffer length mismatch");
        let nl = -self.lambda;
        let main = ages.len() - ages.len() % LANES;
        for (ac, oc) in ages[..main]
            .chunks_exact(LANES)
            .zip(out[..main].chunks_exact_mut(LANES))
        {
            for j in 0..LANES {
                oc[j] = exp_lane(nl * ac[j] as f64);
            }
        }
        for (o, &a) in out[main..].iter_mut().zip(&ages[main..]) {
            *o = exp_lane(nl * a as f64);
        }
    }

    /// Fused boundary-column kernel: ages are formed lane-wise from the
    /// `end` column, never materialized to a buffer.
    fn weight_from_ends(&self, t: Time, ends: &[Time], out: &mut [f64]) {
        assert_eq!(ends.len(), out.len(), "end/weight buffer length mismatch");
        let nl = -self.lambda;
        let main = ends.len() - ends.len() % LANES;
        for (ec, oc) in ends[..main]
            .chunks_exact(LANES)
            .zip(out[..main].chunks_exact_mut(LANES))
        {
            for j in 0..LANES {
                oc[j] = exp_lane(nl * t.saturating_sub(ec[j]) as f64);
            }
        }
        for (o, &e) in out[main..].iter_mut().zip(&ends[main..]) {
            *o = exp_lane(nl * t.saturating_sub(e) as f64);
        }
    }

    /// [`exp_lane`] is within 2 ULP of `f64::exp` (measured; asserted
    /// by the kernel-equivalence tests with this bound).
    fn kernel_relative_error(&self) -> f64 {
        4.0 * f64::EPSILON
    }

    fn classify(&self) -> DecayClass {
        DecayClass::Exponential {
            lambda: self.lambda,
        }
    }

    fn describe(&self) -> String {
        format!("EXPD(lambda={})", self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn weight_matches_closed_form() {
        let g = Exponential::new(0.25);
        for age in 0..200u64 {
            let expect = (-0.25 * age as f64).exp();
            assert!((g.weight(age) - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn non_increasing_and_ratio_constant() {
        let g = Exponential::new(0.03);
        assert!(properties::is_non_increasing(&g, 10_000));
        // g(x)/g(x+1) = e^λ for all x: ratio-monotone with equality.
        assert!(properties::check_ratio_monotone(&g, 10_000));
    }

    #[test]
    fn half_life() {
        let g = Exponential::with_half_life(50);
        assert!((g.weight(50) - 0.5).abs() < 1e-12);
        assert!((g.weight(100) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn per_tick_factor_consistent() {
        let g = Exponential::new(0.7);
        let mut w = 1.0;
        for age in 0..64u64 {
            assert!((g.weight(age) - w).abs() < 1e-9 * w.max(1e-300));
            w *= g.per_tick_factor();
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn classification() {
        match Exponential::new(0.5).classify() {
            DecayClass::Exponential { lambda } => assert_eq!(lambda, 0.5),
            other => panic!("unexpected class {other:?}"),
        }
    }
}
