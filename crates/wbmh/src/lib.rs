//! Weight-Based Merging Histograms (WBMH) — the paper's main algorithmic
//! contribution (§5, Lemma 5.1).
//!
//! A WBMH aggregates the stream into buckets whose **time boundaries are
//! determined by the decay function, the accuracy target ε, and the
//! clock — never by the stream**. The age axis is split into regions
//! `[b_i, b_{i+1} − 1]` inside which all weights agree to a `(1 + ε)`
//! factor (computed by [`td_decay::RegionSchedule`]); the open bucket is
//! sealed on a fixed cadence of `b_1 − 1` ticks, and two adjacent sealed
//! buckets merge exactly when their combined age span fits inside a
//! single region at the current time.
//!
//! Applicability: the decay must satisfy §5's condition that
//! `g(x)/g(x+1)` is non-increasing — then items co-bucketed within a
//! `(1+ε)` weight band *stay* within it forever. Exponential and
//! polynomial decay qualify; sliding windows do not (and the constructor
//! checks).
//!
//! Why it matters: the bucket count is `O(ε⁻¹ log D(g))` where
//! `D(g) = g(1)/g(N)`. For POLYD that is `O(α ε⁻¹ log N)` buckets whose
//! boundaries cost nothing per stream, and with the approximate counters
//! of `td-counters::approx` the total is `O(log N · log log N)` bits —
//! nearly as cheap as exponential decay and quadratically cheaper than
//! the `O(log² N)` cascaded-EH bound (experiment E6). For EXPD,
//! `log D(g) = Θ(N)` and WBMH degenerates — the paper's reason to keep
//! both algorithms around.
//!
//! This module reproduces the paper's §5 worked trace (`g = 1/x²`,
//! `1 + ε = 5`) *exactly*; see `paper_trace_matches_section_5`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use td_counters::approx::ApproxCount;
use td_decay::properties::check_ratio_monotone;
use td_decay::soa::{dot_counts, dot_mass, CHUNK};
use td_decay::storage::{bits_for_count, StorageAccounting};
use td_decay::{DecayFunction, RegionSchedule, Time};

/// How a query weights the items of a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WbmhEstimator {
    /// Weight the whole bucket at its end (newest-item) time: one-sided,
    /// `S <= S' <= (1+ε)·S` for exact counts.
    #[default]
    Paper,
    /// Weight the bucket at the geometric mean of its end- and
    /// start-time weights: two-sided, within `sqrt(1+ε)` each way.
    Geometric,
}

/// How bucket counts are stored.
#[derive(Debug, Clone)]
enum BucketCount {
    Exact(u64),
    Approx(ApproxCount),
}

impl BucketCount {
    fn value(&self) -> f64 {
        match self {
            BucketCount::Exact(c) => *c as f64,
            BucketCount::Approx(a) => a.value(),
        }
    }

    fn absorb(&mut self, f: u64) {
        match self {
            BucketCount::Exact(c) => *c = c.saturating_add(f),
            BucketCount::Approx(a) => a.absorb(f),
        }
    }

    fn merge(&self, other: &Self) -> Self {
        match (self, other) {
            (BucketCount::Exact(a), BucketCount::Exact(b)) => {
                BucketCount::Exact(a.saturating_add(*b))
            }
            (BucketCount::Approx(a), BucketCount::Approx(b)) => {
                BucketCount::Approx(ApproxCount::merge(a, b))
            }
            _ => unreachable!("count modes never mix within one histogram"),
        }
    }

    fn storage_bits(&self) -> u64 {
        match self {
            BucketCount::Exact(c) => bits_for_count(*c),
            BucketCount::Approx(a) => a.storage_bits(),
        }
    }
}

/// One WBMH bucket.
///
/// `start`/`end` are **partition-cell boundaries** — deterministic
/// functions of `(g, ε, T)` — which is what makes every structural
/// decision stream-independent (§5). `first_item`/`last_item` record
/// the actual item extent for reporting and for weighting the open
/// bucket.
#[derive(Debug, Clone)]
struct WbmhBucket {
    start: Time,
    end: Time,
    first_item: Time,
    last_item: Time,
    count: BucketCount,
}

/// Column storage for the two [`BucketCount`] modes. The mode is fixed
/// at construction (histograms never mix count modes), so queries can
/// match on it once and stream the matching column.
#[derive(Debug, Clone)]
enum CountCols {
    Exact(Vec<u64>),
    Approx {
        epsilon: f64,
        value: Vec<f64>,
        depth: Vec<u32>,
    },
}

/// Structure-of-arrays storage for the sealed bucket list, oldest
/// first: each [`WbmhBucket`] field lives in its own contiguous column
/// (see `td_decay::soa` for the layout rationale). Queries stream the
/// item-extent columns straight into the decay kernels with zero
/// gather, and the merge pass compacts in place with two cursors
/// instead of rebuilding a deque. WBMH never expires buckets — they
/// only merge — so unlike `BucketColumns` no head offset is needed: the
/// merge sweep *is* the compaction.
#[derive(Debug, Clone)]
struct WbmhColumns {
    start: Vec<Time>,
    end: Vec<Time>,
    first_item: Vec<Time>,
    last_item: Vec<Time>,
    counts: CountCols,
}

impl WbmhColumns {
    fn new(count_epsilon: Option<f64>) -> Self {
        let counts = match count_epsilon {
            None => CountCols::Exact(Vec::new()),
            Some(epsilon) => CountCols::Approx {
                epsilon,
                value: Vec::new(),
                depth: Vec::new(),
            },
        };
        Self {
            start: Vec::new(),
            end: Vec::new(),
            first_item: Vec::new(),
            last_item: Vec::new(),
            counts,
        }
    }

    fn len(&self) -> usize {
        self.start.len()
    }

    fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Oldest-item arrival times, oldest bucket first.
    fn first_items(&self) -> &[Time] {
        &self.first_item
    }

    /// Newest-item arrival times — non-decreasing (buckets are ordered
    /// and item extents disjoint), so query prefixes binary-search it.
    fn last_items(&self) -> &[Time] {
        &self.last_item
    }

    /// The (start, end) partition-cell span of bucket `i` — all the
    /// merge rule ever looks at.
    fn span(&self, i: usize) -> (Time, Time) {
        (self.start[i], self.end[i])
    }

    fn count_value(&self, i: usize) -> f64 {
        match &self.counts {
            CountCols::Exact(c) => c[i] as f64,
            CountCols::Approx { value, .. } => value[i],
        }
    }

    fn count_storage_bits(&self, i: usize) -> u64 {
        match &self.counts {
            CountCols::Exact(c) => bits_for_count(c[i]),
            CountCols::Approx {
                epsilon,
                value,
                depth,
            } => ApproxCount::from_parts(value[i], depth[i], *epsilon).storage_bits(),
        }
    }

    /// Reconstructs bucket `i` in AoS form (cold paths only:
    /// checkpointing, snapshots, cross-histogram merges).
    fn get(&self, i: usize) -> WbmhBucket {
        let count = match &self.counts {
            CountCols::Exact(c) => BucketCount::Exact(c[i]),
            CountCols::Approx {
                epsilon,
                value,
                depth,
            } => BucketCount::Approx(ApproxCount::from_parts(value[i], depth[i], *epsilon)),
        };
        WbmhBucket {
            start: self.start[i],
            end: self.end[i],
            first_item: self.first_item[i],
            last_item: self.last_item[i],
            count,
        }
    }

    fn push_back(&mut self, b: WbmhBucket) {
        self.start.push(b.start);
        self.end.push(b.end);
        self.first_item.push(b.first_item);
        self.last_item.push(b.last_item);
        match (&mut self.counts, b.count) {
            (CountCols::Exact(c), BucketCount::Exact(n)) => c.push(n),
            (CountCols::Approx { value, depth, .. }, BucketCount::Approx(a)) => {
                value.push(a.value());
                depth.push(a.depth());
            }
            _ => unreachable!("count modes never mix within one histogram"),
        }
    }

    /// Folds bucket `src` into bucket `dst` — the same min/max-span and
    /// [`BucketCount::merge`] rule as the AoS pair merge.
    fn fold(&mut self, dst: usize, src: usize) {
        self.start[dst] = self.start[dst].min(self.start[src]);
        self.end[dst] = self.end[dst].max(self.end[src]);
        self.first_item[dst] = self.first_item[dst].min(self.first_item[src]);
        self.last_item[dst] = self.last_item[dst].max(self.last_item[src]);
        match &mut self.counts {
            CountCols::Exact(c) => c[dst] = c[dst].saturating_add(c[src]),
            CountCols::Approx {
                epsilon,
                value,
                depth,
            } => {
                let a = ApproxCount::from_parts(value[dst], depth[dst], *epsilon);
                let b = ApproxCount::from_parts(value[src], depth[src], *epsilon);
                let m = ApproxCount::merge(&a, &b);
                value[dst] = m.value();
                depth[dst] = m.depth();
            }
        }
    }

    /// Moves bucket `src` into slot `dst` (the compaction shift of the
    /// in-place merge sweep). No-op when the cursors coincide.
    fn shift(&mut self, dst: usize, src: usize) {
        if dst == src {
            return;
        }
        self.start[dst] = self.start[src];
        self.end[dst] = self.end[src];
        self.first_item[dst] = self.first_item[src];
        self.last_item[dst] = self.last_item[src];
        match &mut self.counts {
            CountCols::Exact(c) => c[dst] = c[src],
            CountCols::Approx { value, depth, .. } => {
                value[dst] = value[src];
                depth[dst] = depth[src];
            }
        }
    }

    fn truncate(&mut self, len: usize) {
        self.start.truncate(len);
        self.end.truncate(len);
        self.first_item.truncate(len);
        self.last_item.truncate(len);
        match &mut self.counts {
            CountCols::Exact(c) => c.truncate(len),
            CountCols::Approx { value, depth, .. } => {
                value.truncate(len);
                depth.truncate(len);
            }
        }
    }
}

/// A precomputed lookup table over the (stream-independent) region
/// schedule answering "what is the first region at least `len` ticks
/// long?" in one binary search.
///
/// The §5 merge rule admits a pair iff the region containing the
/// union's newest age is long enough to hold the union's whole span —
/// so the *earliest* time a pair `(a, c)` can ever merge is
/// `union_end + b_i` for the first region `i` whose length fits the
/// union. Regions whose length is not a running maximum can never be
/// "first fit" for any span (an earlier, longer region wins), so the
/// table keeps only the strict running maxima of region length: it is
/// ascending in both length and boundary, and a single
/// `partition_point` answers the query. This replaces the per-pair
/// `region_of` + `region_span` recomputation the merge cascade used to
/// do on every scan.
#[derive(Debug, Clone)]
struct MergeLadder {
    /// `(region_len, b_i)` at strict running maxima of finite-region
    /// length, ascending in both components.
    steps: Vec<(Time, Time)>,
    /// Start age of the final, open-ended region.
    last_b: Time,
}

impl MergeLadder {
    fn new(schedule: &RegionSchedule) -> Self {
        let mut steps = Vec::new();
        let mut best = 0;
        for i in 0..schedule.num_regions() - 1 {
            let (start, end) = schedule.region_span(i);
            let end = end.expect("finite region");
            let len = end - start + 1;
            if len > best {
                best = len;
                steps.push((len, start));
            }
        }
        let last_b = schedule.boundary(schedule.num_regions() - 1);
        Self { steps, last_b }
    }

    /// Start age `b_i` of the first finite region at least `len` ticks
    /// long, if any.
    fn first_boundary_fitting(&self, len: Time) -> Option<Time> {
        let i = self.steps.partition_point(|&(l, _)| l < len);
        self.steps.get(i).map(|&(_, b)| b)
    }
}

/// A view of one bucket's time span and (possibly approximate) count,
/// as returned by [`Wbmh::bucket_spans`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketView {
    /// Arrival time of the bucket's oldest item.
    pub start: Time,
    /// Arrival time of the bucket's newest item.
    pub end: Time,
    /// The stored count (exact or rounded).
    pub count: f64,
}

/// A weight-based merging histogram for a ratio-monotone decay function.
///
/// # Examples
///
/// ```
/// use td_wbmh::Wbmh;
/// use td_decay::Polynomial;
/// let mut h = Wbmh::new(Polynomial::new(1.0), 0.1, 1 << 20);
/// for t in 1..=1000 {
///     h.observe(t, 1);
/// }
/// let est = h.query(1001);
/// let exact: f64 = (1..=1000u64).map(|t| 1.0 / (1001 - t) as f64).sum();
/// assert!(est >= exact * (1.0 - 1e-9));
/// assert!(est <= exact * 1.1 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Wbmh<G> {
    decay: G,
    epsilon: f64,
    schedule: RegionSchedule,
    /// Seal cadence: the open cell covers `[k·p, (k+1)·p − 1]`.
    seal_period: Time,
    /// Whether buckets entirely past the last schedule boundary may
    /// still merge (true only when the decay has nullified there).
    merge_beyond_schedule: bool,
    /// Approximation parameter for approximate bucket counts, if any.
    count_epsilon: Option<f64>,
    /// Sealed buckets, oldest first, in structure-of-arrays columns.
    buckets: WbmhColumns,
    /// The open (unsealed) bucket, if any.
    open: Option<WbmhBucket>,
    /// Items at the most recent tick, kept outside the histogram so a
    /// query at that tick can exclude them exactly (§2.1 convention).
    pending: Option<(Time, u64)>,
    /// Seals since the last merge pass; the pass is amortized (it runs
    /// every ~#buckets/8 seals, and always on an explicit `advance`),
    /// deferring merges never violates the ε band — it only keeps the
    /// histogram transiently finer than canonical.
    seals_since_pass: usize,
    /// The precomputed first-fit lookup over the region schedule.
    ladder: MergeLadder,
    /// Exact earliest time any currently adjacent sealed pair may merge
    /// (`Time::MAX` when none ever can; 0 means "unknown — recompute at
    /// the next pass"). A merge pass scheduled before this time is
    /// provably a no-op and is skipped without scanning the buckets;
    /// skipping changes no observable state, so structure stays
    /// bit-identical to running the pass. Maintained exactly: it is
    /// refreshed after every real pass, and lowered when a seal appends
    /// a bucket (the only other event that creates an adjacent pair).
    next_merge_at: Time,
    last_t: Time,
    started: bool,
}

impl<G: DecayFunction> Wbmh<G> {
    /// A WBMH with exact bucket counts.
    ///
    /// `max_age` is the operational lifetime: the region schedule is
    /// precomputed for ages up to `max_age`, and buckets older than the
    /// last boundary stop merging (choose `max_age` at least as large as
    /// the stream you will run; for POLYD the schedule costs only
    /// `O(ε⁻¹ α log max_age)` entries).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not finite/positive, `max_age == 0`, or
    /// the decay fails the §5 ratio-monotonicity audit on
    /// `1..=min(max_age, 4096)` (use `td-ceh` for such decays).
    pub fn new(decay: G, epsilon: f64, max_age: Time) -> Self {
        Self::build(decay, epsilon, max_age, None)
    }

    /// A WBMH whose bucket counts use the §5 adaptive-precision ladder
    /// with parameter `count_epsilon` — the configuration achieving the
    /// `O(log N · log log N)` bits of Lemma 5.1. The overall estimate
    /// error becomes `(1+ε)·(1+count_epsilon·π²/6) − 1`.
    ///
    /// # Panics
    ///
    /// As [`Wbmh::new`], plus if `count_epsilon` is not finite/positive.
    pub fn with_approx_counts(decay: G, epsilon: f64, max_age: Time, count_epsilon: f64) -> Self {
        assert!(
            count_epsilon.is_finite() && count_epsilon > 0.0,
            "count_epsilon must be finite and positive, got {count_epsilon}"
        );
        Self::build(decay, epsilon, max_age, Some(count_epsilon))
    }

    fn build(decay: G, epsilon: f64, max_age: Time, count_epsilon: Option<f64>) -> Self {
        assert!(
            check_ratio_monotone(&decay, max_age.min(4096)),
            "{} is not ratio-monotone (g(x)/g(x+1) must be non-increasing, §5); \
             use the cascaded EH instead",
            decay.describe()
        );
        let schedule = RegionSchedule::compute(&decay, epsilon, max_age);
        let seal_period = schedule.seal_period();
        let last = schedule.boundary(schedule.num_regions() - 1);
        let merge_beyond_schedule = decay.weight(last) == 0.0;
        let ladder = MergeLadder::new(&schedule);
        Self {
            decay,
            epsilon,
            schedule,
            seal_period,
            merge_beyond_schedule,
            count_epsilon,
            buckets: WbmhColumns::new(count_epsilon),
            open: None,
            pending: None,
            seals_since_pass: 0,
            ladder,
            next_merge_at: 0,
            last_t: 0,
            started: false,
        }
    }

    /// The decay function being tracked.
    pub fn decay(&self) -> &G {
        &self.decay
    }

    /// The accuracy parameter ε of the region schedule.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The precomputed, stream-independent region schedule.
    pub fn schedule(&self) -> &RegionSchedule {
        &self.schedule
    }

    /// The open-bucket seal cadence `b_1 − 1` (ticks).
    pub fn seal_period(&self) -> Time {
        self.seal_period
    }

    /// Number of stored buckets (sealed + open; pending tick excluded).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len() + usize::from(self.open.is_some())
    }

    fn fresh_count(&self, f: u64) -> BucketCount {
        match self.count_epsilon {
            None => BucketCount::Exact(f),
            Some(eps) => {
                let mut a = ApproxCount::zero(eps);
                a.absorb(f);
                BucketCount::Approx(a)
            }
        }
    }

    /// Folds the pending tick into its seal cell, sealing the open
    /// bucket when the cell changes.
    fn fold_pending(&mut self) {
        let Some((t, f)) = self.pending.take() else {
            return;
        };
        match &mut self.open {
            // `t` lies in the open cell iff `t <= open.end`: times are
            // monotone, so `t >= open.start` always holds, and the
            // single comparison replaces two divisions on the per-tick
            // hot path (the quotient is only needed when a new cell
            // actually opens, below).
            Some(open) if t <= open.end => {
                open.last_item = t;
                open.count.absorb(f);
            }
            _ => {
                if let Some(done) = self.open.take() {
                    self.buckets.push_back(done);
                    self.seals_since_pass += 1;
                    self.note_sealed_pair();
                }
                let cell = t / self.seal_period;
                self.open = Some(WbmhBucket {
                    start: cell * self.seal_period,
                    end: cell * self.seal_period + self.seal_period - 1,
                    first_item: t,
                    last_item: t,
                    count: self.fresh_count(f),
                });
            }
        }
    }

    /// True when the pair (older `a`, newer `c`) may merge at time
    /// `now` — the paper's §5 merge rule: there is a region `i` with
    /// `b_i <= now − c.end` and `now − a.start <= b_{i+1} − 1`.
    ///
    /// Reference implementation: the hot paths use
    /// [`Self::may_merge_hinted`]; this plain form remains as the
    /// brute-force ground truth for the `pair_next_merge` exactness
    /// test.
    #[cfg_attr(not(test), allow(dead_code))]
    fn may_merge(&self, a: (Time, Time), c: (Time, Time), now: Time) -> bool {
        let union_end = a.1.max(c.1);
        let union_start = a.0.min(c.0);
        if union_end >= now {
            return false;
        }
        let newest_age = now - union_end;
        let oldest_age = now - union_start;
        let region = self.schedule.region_of(newest_age);
        match self.schedule.region_span(region) {
            (_, Some(end)) => oldest_age <= end,
            (_, None) => self.merge_beyond_schedule,
        }
    }

    /// [`Self::may_merge`] with a region hint threaded through a sweep:
    /// returns the verdict plus the region index to hint the next pair
    /// with. Sweeps visit pairs in decreasing-age order, so the hinted
    /// walk is amortized O(1) where the plain lookup binary-searches —
    /// and the verdict is identical (`region_of_near` is exact).
    fn may_merge_hinted(
        &self,
        a: (Time, Time),
        c: (Time, Time),
        now: Time,
        hint: usize,
    ) -> (bool, usize) {
        let union_end = a.1.max(c.1);
        let union_start = a.0.min(c.0);
        if union_end >= now {
            return (false, hint);
        }
        let newest_age = now - union_end;
        let oldest_age = now - union_start;
        let region = self.schedule.region_of_near(newest_age, hint);
        debug_assert_eq!(region, self.schedule.region_of(newest_age));
        let ok = match self.schedule.region_span(region) {
            (_, Some(end)) => oldest_age <= end,
            (_, None) => self.merge_beyond_schedule,
        };
        (ok, region)
    }

    /// The smallest time strictly after `now` at which the pair
    /// (older `a`, newer `c`) may merge, or `Time::MAX` if it never
    /// can. Exact with respect to [`Self::may_merge`].
    fn pair_next_merge(&self, a: (Time, Time), c: (Time, Time), now: Time) -> Time {
        let e = a.1.max(c.1);
        let s = a.0.min(c.0);
        let len = e - s + 1;
        match self.ladder.first_boundary_fitting(len) {
            Some(b) => {
                let t0 = e.saturating_add(b);
                if t0 > now {
                    // The union's first-fit region is still ahead: the
                    // very first opportunity is when the newest age
                    // reaches that region's start.
                    return t0;
                }
                self.pair_next_merge_slow(e, s, len, now)
            }
            // No finite region fits; the open-ended tail region fits
            // everything (when the decay has nullified there).
            None if self.merge_beyond_schedule => e.saturating_add(self.ladder.last_b).max(now + 1),
            None => Time::MAX,
        }
    }

    /// Slow path of [`Self::pair_next_merge`], for a pair whose first
    /// opportunity is already behind `now` (it sat in a merge "gap"):
    /// walk the regions from the one containing the union's age at
    /// `now + 1` until one is long enough and its window is still open.
    fn pair_next_merge_slow(&self, e: Time, s: Time, len: Time, now: Time) -> Time {
        let mut i = self.schedule.region_of((now + 1).saturating_sub(e).max(1));
        loop {
            let (start, end) = self.schedule.region_span(i);
            match end {
                Some(end) => {
                    // Feasible times for region i: now' − e ≥ start and
                    // now' − s ≤ end, i.e. [e + start, s + end].
                    if end - start + 1 >= len && s.saturating_add(end) > now {
                        return e.saturating_add(start).max(now + 1);
                    }
                    i += 1;
                }
                None => {
                    return if self.merge_beyond_schedule {
                        e.saturating_add(start).max(now + 1)
                    } else {
                        Time::MAX
                    };
                }
            }
        }
    }

    /// Refreshes [`Self::next_merge_at`] as the exact minimum over all
    /// adjacent sealed pairs, as seen from time `now`. Only called
    /// after a *futile* merge pass — while passes keep merging,
    /// `next_merge_at` stays 0 ("ripe, don't bother") and no pair scan
    /// runs.
    fn recompute_next_merge(&mut self, now: Time) {
        let mut next = Time::MAX;
        for i in 0..self.buckets.len().saturating_sub(1) {
            let t = self.pair_next_merge(self.buckets.span(i), self.buckets.span(i + 1), now);
            next = next.min(t);
        }
        self.next_merge_at = next;
    }

    /// Lowers [`Self::next_merge_at`] for the pair a fresh seal just
    /// created at the back of the bucket list (the only event outside a
    /// merge pass that creates an adjacent pair).
    fn note_sealed_pair(&mut self) {
        // In the "ripe" state the bound is already 0 — nothing a new
        // pair could lower.
        if self.next_merge_at == 0 {
            return;
        }
        let n = self.buckets.len();
        if n < 2 {
            return;
        }
        let t = self.pair_next_merge(self.buckets.span(n - 2), self.buckets.span(n - 1), 0);
        self.next_merge_at = self.next_merge_at.min(t);
    }

    /// Runs one merge sweep at time `now`; returns whether anything
    /// merged.
    ///
    /// The sweep is oldest-to-newest with an accumulator: "merge at `i`
    /// and re-check `i` against its next neighbour" is exactly "keep
    /// folding the next bucket into the accumulator until it stops
    /// fitting, then flush" — same sequence of [`Self::may_merge`]
    /// decisions as the index-walking formulation, but O(len) per sweep
    /// with no mid-deque removals (each `remove` used to shift half the
    /// deque, which dominated ingest once the bucket list grew into the
    /// hundreds).
    ///
    /// One sweep reaches the canonical fixpoint in steady ingest: once a
    /// flush decides a pair cannot merge, growing the younger side only
    /// moves the union's newest age *younger* (an equal-or-shorter
    /// region) while the span grows, so the verdict cannot flip within
    /// the sweep — and any opportunity a sweep does miss (the rule only
    /// loosens as `now` advances) is picked up by a later pass.
    /// [`Wbmh::merge_from`], whose transient overlapping unions break
    /// the monotonicity argument, loops this to fixpoint explicitly.
    ///
    /// The sweep runs in place over the columns with two cursors: the
    /// accumulator lives in slot `write`, unmergeable buckets shift
    /// down to close the gaps, and one `truncate` drops the tail — no
    /// allocation, no deque rebuild ("merge at `i` and re-check `i`" is
    /// exactly this fold, see above).
    fn merge_pass(&mut self, now: Time) -> bool {
        let n = self.buckets.len();
        if n == 0 {
            return false;
        }
        let mut merged_any = false;
        let mut write = 0usize;
        // Oldest buckets first: ages only fall along the sweep, so
        // thread the region hint through it.
        let mut hint = self.schedule.num_regions() - 1;
        for read in 1..n {
            let (ok, region) =
                self.may_merge_hinted(self.buckets.span(write), self.buckets.span(read), now, hint);
            hint = region;
            if ok {
                // min/max span handles nested/overlapping pairs that
                // arise transiently after `merge_from`.
                self.buckets.fold(write, read);
                merged_any = true;
            } else {
                write += 1;
                self.buckets.shift(write, read);
            }
        }
        self.buckets.truncate(write + 1);
        merged_any
    }

    /// Seals the open bucket purely by clock: its cell closes once `now`
    /// has moved past it, even with no new arrivals.
    fn seal_by_clock(&mut self, now: Time) {
        if let Some(open) = &self.open {
            if now > open.end {
                let done = self.open.take().expect("checked above");
                self.buckets.push_back(done);
                self.seals_since_pass += 1;
                self.note_sealed_pair();
            }
        }
    }

    /// Advances the histogram's clock to `t`, folding pending items and
    /// running the stream-independent seal/merge schedule to its
    /// canonical state at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previous observation.
    pub fn advance(&mut self, t: Time) {
        self.advance_inner(t, true);
    }

    fn advance_inner(&mut self, t: Time, force_pass: bool) {
        if self.started {
            assert!(
                t >= self.last_t,
                "time went backwards: {t} < {}",
                self.last_t
            );
        }
        self.started = true;
        if let Some((pt, _)) = self.pending {
            if pt < t {
                self.fold_pending();
            }
        }
        self.seal_by_clock(t);
        if force_pass || self.seals_since_pass >= (self.buckets.len() / 8).max(4) {
            // `next_merge_at` is a *lower bound* on the earliest time
            // any adjacent pair may merge (0 when unknown): a pass
            // scheduled before it would scan every pair and merge
            // nothing, so skip the scan. The reset of
            // `seals_since_pass` mirrors what the no-op pass would
            // have done. The bound is computed lazily — only after a
            // pass that merged *nothing* — because that is the one
            // situation where skipping pays: a busy stream whose
            // passes keep merging would otherwise spend more on the
            // exact-minimum bookkeeping (an O(buckets) scan of
            // `pair_next_merge` after every pass) than the skips it
            // enables could ever save.
            if t < self.next_merge_at {
                self.seals_since_pass = 0;
            } else {
                let merged = self.merge_pass(t);
                self.seals_since_pass = 0;
                if merged {
                    self.next_merge_at = 0;
                } else {
                    self.recompute_next_merge(t);
                }
            }
        }
        self.last_t = t;
    }

    /// Ingests an item of value `f` at time `t` (non-decreasing `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previous observation.
    pub fn observe(&mut self, t: Time, f: u64) {
        self.advance_inner(t, false);
        if f == 0 {
            return; // zero values carry no mass and cost no state
        }
        match &mut self.pending {
            Some((pt, pf)) if *pt == t => *pf = pf.saturating_add(f),
            _ => self.pending = Some((t, f)),
        }
    }

    /// Ingests a burst of `(time, value)` items sorted by non-decreasing
    /// time, bit-identical in end state to sequential
    /// [`observe`](Self::observe) calls.
    ///
    /// The fold/seal/merge machinery of `advance_inner` runs once per
    /// *distinct tick*; a same-tick run pre-coalesces into a single
    /// pending update. (Equivalence is structural: on a repeated tick
    /// the sequential loop's extra `advance_inner` calls cannot fold
    /// pending — same tick — seal, or trip the merge throttle, whose
    /// counter only moves on seals, so they are no-ops.)
    ///
    /// # Panics
    ///
    /// Panics if any time precedes its predecessor.
    pub fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let mut i = 0;
        while i < items.len() {
            let t = items[i].0;
            self.advance_inner(t, false);
            let mut mass = 0u64;
            while i < items.len() && items[i].0 == t {
                mass = mass.saturating_add(items[i].1);
                i += 1;
            }
            if mass == 0 {
                continue;
            }
            match &mut self.pending {
                Some((pt, pf)) if *pt == t => *pf = pf.saturating_add(mass),
                _ => self.pending = Some((t, mass)),
            }
        }
    }

    /// Merges another WBMH's contents into this one — the distributed-
    /// streams operation. Because the bucket boundaries are functions of
    /// `(g, ε, T)` only (§5), two WBMHs over the same configuration that
    /// have been [`Wbmh::advance`]d to the same time have *aligned*
    /// partitions (any two buckets coincide, nest, or overlap on whole
    /// cells). The union of the two bucket lists is therefore itself a
    /// valid (transiently finer-than-canonical) WBMH state: every bucket
    /// keeps the `(1+ε)` weight band it was formed under, so the merged
    /// estimate keeps the **single**-histogram `(1+ε)` bound — merging
    /// does not compound errors. The regular merge pass then compacts
    /// the union wherever the §5 region rule allows (overlapping buckets
    /// whose union span does not currently fit one region stay separate,
    /// which costs at most a transient 2× in bucket count, never
    /// accuracy).
    ///
    /// # Panics
    ///
    /// Panics if the two histograms differ in schedule (decay/ε/max_age),
    /// count mode, or current time (`advance` both to the same tick
    /// first).
    pub fn merge_from(&mut self, other: &Wbmh<G>) {
        assert_eq!(
            self.schedule, other.schedule,
            "region schedules differ (decay/epsilon/max_age must match)"
        );
        assert_eq!(
            self.count_epsilon.is_some(),
            other.count_epsilon.is_some(),
            "count modes differ"
        );
        assert_eq!(
            self.last_t, other.last_t,
            "advance both histograms to the same tick before merging"
        );
        let mut all: Vec<WbmhBucket> = (0..self.buckets.len())
            .map(|i| self.buckets.get(i))
            .chain((0..other.buckets.len()).map(|i| other.buckets.get(i)))
            .collect();
        all.sort_by_key(|b| (b.start, b.end));
        let mut cols = WbmhColumns::new(self.count_epsilon);
        for b in all {
            cols.push_back(b);
        }
        self.buckets = cols;
        // Open buckets, if both exist, are in the same (current) cell.
        self.open = match (self.open.take(), &other.open) {
            (Some(mut a), Some(b)) => {
                debug_assert_eq!(a.start, b.start, "open cells must align");
                a.last_item = a.last_item.max(b.last_item);
                a.first_item = a.first_item.min(b.first_item);
                a.count = a.count.merge(&b.count);
                Some(a)
            }
            (a, b) => a.or_else(|| b.clone()),
        };
        // Pendings are at the shared current tick.
        self.pending = match (self.pending, other.pending) {
            (Some((ta, fa)), Some((tb, fb))) => {
                debug_assert_eq!(ta, tb);
                Some((ta, fa + fb))
            }
            (a, b) => a.or(b),
        };
        self.started |= other.started;
        // Transient overlapping unions from the interleave can cascade
        // across sweeps, so compact to fixpoint here (steady ingest
        // needs only the single sweep — see `merge_pass`).
        while self.merge_pass(self.last_t) {}
        self.seals_since_pass = 0;
        self.recompute_next_merge(self.last_t);
    }

    /// The decaying-sum estimate with the default one-sided estimator.
    pub fn query(&self, t: Time) -> f64 {
        self.query_with(t, WbmhEstimator::Paper)
    }

    /// The decaying-sum estimate with an explicit weighting rule.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last observed time.
    pub fn query_with(&self, t: Time, estimator: WbmhEstimator) -> f64 {
        assert!(
            !self.started || t >= self.last_t,
            "query time {t} precedes last observation {}",
            self.last_t
        );
        // Sealed buckets are weighted at their newest item (which is
        // their effective end: items never escape the cell, so
        // `last_item <= end` always); the open bucket likewise. Both
        // stay within the region's (1+ε) band. The decay kernel
        // consumes the `last_item` column directly — it is
        // non-decreasing, so the §2.1 exclusion of items at/after `t`
        // is one binary search for the live prefix, with zero gather
        // or copy.
        let lasts = self.buckets.last_items();
        let live = lasts.partition_point(|&l| l < t);
        let mut total: f64 = match (estimator, &self.buckets.counts) {
            (WbmhEstimator::Paper, CountCols::Exact(c)) => {
                dot_counts(&self.decay, t, &lasts[..live], &c[..live])
            }
            (WbmhEstimator::Paper, CountCols::Approx { value, .. }) => {
                dot_mass(&self.decay, t, &lasts[..live], &value[..live])
            }
            (WbmhEstimator::Geometric, _) => self.dot_geometric(t, live),
        };
        // The open bucket is a single scalar term.
        if let Some(open) = &self.open {
            if open.last_item < t {
                let we = self.decay.weight(t - open.last_item);
                total += match estimator {
                    WbmhEstimator::Paper => open.count.value() * we,
                    WbmhEstimator::Geometric => {
                        let ws = self.decay.weight(t - open.first_item);
                        open.count.value() * (we * ws).sqrt()
                    }
                };
            }
        }
        if let Some((pt, pf)) = self.pending {
            if pt < t {
                total += pf as f64 * self.decay.weight(t - pt);
            }
        }
        total
    }

    /// The geometric-mean dot product over the live sealed prefix:
    /// end- and start-age weights evaluated chunk-by-chunk through
    /// [`DecayFunction::weight_from_ends`] into stack scratch, then
    /// combined as `count · sqrt(w_end · w_start)`.
    fn dot_geometric(&self, t: Time, live: usize) -> f64 {
        let lasts = &self.buckets.last_items()[..live];
        let firsts = &self.buckets.first_items()[..live];
        let mut w_end = [0.0f64; CHUNK];
        let mut w_start = [0.0f64; CHUNK];
        let mut total = 0.0;
        let mut i = 0;
        while i < live {
            let n = CHUNK.min(live - i);
            self.decay
                .weight_from_ends(t, &lasts[i..i + n], &mut w_end[..n]);
            self.decay
                .weight_from_ends(t, &firsts[i..i + n], &mut w_start[..n]);
            for j in 0..n {
                total += self.buckets.count_value(i + j) * (w_end[j] * w_start[j]).sqrt();
            }
            i += n;
        }
        total
    }

    /// The *item extents* and counts of all stored buckets, oldest first
    /// (sealed, then open, then the pending tick if present) — the
    /// groups the §5 trace quotes. Structural (cell) boundaries are the
    /// deterministic partition and are not exposed per bucket.
    pub fn bucket_spans(&self) -> Vec<BucketView> {
        let mut v: Vec<BucketView> = (0..self.buckets.len())
            .map(|i| BucketView {
                start: self.buckets.first_items()[i],
                end: self.buckets.last_items()[i],
                count: self.buckets.count_value(i),
            })
            .collect();
        if let Some(open) = &self.open {
            v.push(BucketView {
                start: open.first_item,
                end: open.last_item,
                count: open.count.value(),
            });
        }
        if let Some((pt, pf)) = self.pending {
            v.push(BucketView {
                start: pt,
                end: pt,
                count: pf as f64,
            });
        }
        v
    }

    /// The worst-case relative error of the current configuration: the
    /// region band `(1+ε)` composed with the approximate-count ladder
    /// bound, minus one.
    pub fn error_bound(&self) -> f64 {
        let count_factor = match self.count_epsilon {
            None => 1.0,
            Some(eps) => 1.0 + eps * std::f64::consts::PI.powi(2) / 6.0,
        };
        (1.0 + self.epsilon) * count_factor - 1.0
    }
}

/// A compact serialization of a WBMH's **per-stream** state: bucket
/// spans and counts, the open bucket, and the pending tick. The shared
/// configuration (decay function, ε, region schedule, count mode) is
/// deliberately *not* included — §2.3's storage argument is exactly
/// that it is shared across all streams, and the telecom application
/// (§1.1) stores one such record per customer.
#[derive(Debug, Clone, PartialEq)]
pub struct WbmhSnapshot {
    /// Clock state at snapshot time.
    pub last_t: Time,
    /// Sealed buckets then the open bucket (if any), oldest first:
    /// `(start, end, first_item, last_item, count_value, merge_depth)`.
    /// `merge_depth` is 0 for exact counts.
    pub buckets: Vec<(Time, Time, Time, Time, f64, u32)>,
    /// Whether the final entry of `buckets` is the open bucket.
    pub has_open: bool,
    /// The pending (current-tick) items, if any.
    pub pending: Option<(Time, u64)>,
    /// Merge-pass throttle state (captured so a restored histogram
    /// replays the deterministic schedule tick-for-tick).
    pub seals_since_pass: usize,
}

impl<G: DecayFunction> Wbmh<G> {
    /// Captures the per-stream state for external storage.
    pub fn snapshot(&self) -> WbmhSnapshot {
        let encode = |b: &WbmhBucket| {
            let (value, depth) = match &b.count {
                BucketCount::Exact(c) => (*c as f64, 0),
                BucketCount::Approx(a) => (a.value(), a.depth()),
            };
            (b.start, b.end, b.first_item, b.last_item, value, depth)
        };
        let mut buckets: Vec<_> = (0..self.buckets.len())
            .map(|i| encode(&self.buckets.get(i)))
            .collect();
        let has_open = self.open.is_some();
        if let Some(open) = &self.open {
            buckets.push(encode(open));
        }
        WbmhSnapshot {
            last_t: self.last_t,
            buckets,
            has_open,
            pending: self.pending,
            seals_since_pass: self.seals_since_pass,
        }
    }

    /// Rebuilds a histogram from a snapshot plus the shared
    /// configuration. The configuration must match the one the snapshot
    /// was taken under (same decay/ε/max_age/count mode) — restoring
    /// under a different schedule silently reinterprets the bucket
    /// spans, so a round-trip test on first use is advisable.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's bucket spans are not sorted/disjoint,
    /// or if a count value is negative or non-finite.
    pub fn restore(
        decay: G,
        epsilon: f64,
        max_age: Time,
        count_epsilon: Option<f64>,
        snap: &WbmhSnapshot,
    ) -> Self {
        let mut h = match count_epsilon {
            None => Self::new(decay, epsilon, max_age),
            Some(ce) => Self::with_approx_counts(decay, epsilon, max_age, ce),
        };
        let decode = |&(start, end, first_item, last_item, value, depth): &(
            Time,
            Time,
            Time,
            Time,
            f64,
            u32,
        )|
         -> WbmhBucket {
            assert!(
                value.is_finite() && value >= 0.0,
                "invalid count value {value} in snapshot"
            );
            let count = match count_epsilon {
                None => {
                    assert_eq!(depth, 0, "exact-mode snapshot carries merge depths");
                    BucketCount::Exact(value as u64)
                }
                Some(ce) => BucketCount::Approx(ApproxCount::from_parts(value, depth, ce)),
            };
            WbmhBucket {
                start,
                end,
                first_item,
                last_item,
                count,
            }
        };
        let n_sealed = snap.buckets.len() - usize::from(snap.has_open);
        for pair in snap.buckets.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "snapshot buckets out of order");
        }
        for b in &snap.buckets[..n_sealed] {
            h.buckets.push_back(decode(b));
        }
        h.open = snap
            .has_open
            .then(|| decode(snap.buckets.last().expect("has_open")));
        h.pending = snap.pending;
        h.seals_since_pass = snap.seals_since_pass;
        h.last_t = snap.last_t;
        h.started = snap.last_t > 0 || !snap.buckets.is_empty() || snap.pending.is_some();
        h
    }
}

/// Checkpoint tag for [`Wbmh`].
const TAG_WBMH: u8 = 8;

impl<G: DecayFunction> td_decay::checkpoint::Checkpoint for Wbmh<G> {
    fn save_checkpoint(&self) -> Vec<u8> {
        use td_decay::checkpoint::{fingerprint, CheckpointWriter};
        let mut w = CheckpointWriter::new(TAG_WBMH);
        // Configuration pins: the schedule is derived from (g, ε,
        // max_age), so pinning ε, the decay description, the seal
        // period, and the schedule extent catches any mismatch that
        // would silently reinterpret bucket spans.
        w.put_u64(self.epsilon.to_bits());
        match self.count_epsilon {
            None => w.put_bool(false),
            Some(ce) => {
                w.put_bool(true);
                w.put_u64(ce.to_bits());
            }
        }
        w.put_u64(fingerprint(&self.decay.describe()));
        w.put_u64(self.seal_period);
        w.put_u64(self.schedule.num_regions() as u64);
        w.put_u64(self.schedule.boundary(self.schedule.num_regions() - 1));
        // Per-stream state.
        w.put_u64(self.last_t);
        w.put_bool(self.started);
        w.put_u64(self.seals_since_pass as u64);
        match self.pending {
            None => w.put_bool(false),
            Some((t, f)) => {
                w.put_bool(true);
                w.put_u64(t);
                w.put_u64(f);
            }
        }
        let encode = |w: &mut CheckpointWriter, b: &WbmhBucket| {
            w.put_u64(b.start);
            w.put_u64(b.end);
            w.put_u64(b.first_item);
            w.put_u64(b.last_item);
            match &b.count {
                BucketCount::Exact(c) => w.put_u64(*c),
                BucketCount::Approx(a) => {
                    w.put_u64(a.value().to_bits());
                    w.put_u32(a.depth());
                }
            }
        };
        w.put_u64(self.buckets.len() as u64);
        for i in 0..self.buckets.len() {
            encode(&mut w, &self.buckets.get(i));
        }
        match &self.open {
            None => w.put_bool(false),
            Some(b) => {
                w.put_bool(true);
                encode(&mut w, b);
            }
        }
        w.seal()
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), td_decay::RestoreError> {
        use td_decay::checkpoint::{fingerprint, CheckpointReader, RestoreError};
        let mut r = CheckpointReader::open(bytes, TAG_WBMH)?;
        if r.get_u64()? != self.epsilon.to_bits() {
            return Err(RestoreError::Invariant(format!(
                "epsilon mismatch: receiver has {}",
                self.epsilon
            )));
        }
        let has_ce = r.get_bool()?;
        let ce_bits = if has_ce { Some(r.get_u64()?) } else { None };
        if ce_bits != self.count_epsilon.map(f64::to_bits) {
            return Err(RestoreError::Invariant("count mode mismatch".into()));
        }
        if r.get_u64()? != fingerprint(&self.decay.describe()) {
            return Err(RestoreError::Invariant(format!(
                "decay mismatch: receiver is {}",
                self.decay.describe()
            )));
        }
        if r.get_u64()? != self.seal_period
            || r.get_u64()? != self.schedule.num_regions() as u64
            || r.get_u64()? != self.schedule.boundary(self.schedule.num_regions() - 1)
        {
            return Err(RestoreError::Invariant(
                "region schedule mismatch (different max_age?)".into(),
            ));
        }
        let last_t = r.get_u64()?;
        let started = r.get_bool()?;
        let seals_since_pass = r.get_u64()? as usize;
        let pending = if r.get_bool()? {
            let t = r.get_u64()?;
            let f = r.get_u64()?;
            if t > last_t {
                return Err(RestoreError::Invariant(format!(
                    "pending tick {t} newer than checkpoint clock {last_t}"
                )));
            }
            Some((t, f))
        } else {
            None
        };
        let count_epsilon = self.count_epsilon;
        let decode = |r: &mut CheckpointReader| -> Result<WbmhBucket, RestoreError> {
            let start = r.get_u64()?;
            let end = r.get_u64()?;
            let first_item = r.get_u64()?;
            let last_item = r.get_u64()?;
            let count = match count_epsilon {
                None => BucketCount::Exact(r.get_u64()?),
                Some(ce) => {
                    let value = f64::from_bits(r.get_u64()?);
                    let depth = r.get_u32()?;
                    if !value.is_finite() || value < 0.0 {
                        return Err(RestoreError::Invariant(format!(
                            "invalid count value {value}"
                        )));
                    }
                    BucketCount::Approx(ApproxCount::from_parts(value, depth, ce))
                }
            };
            if start > end || first_item < start || last_item > end || first_item > last_item {
                return Err(RestoreError::Invariant(format!(
                    "bucket items [{first_item}, {last_item}] escape cell [{start}, {end}]"
                )));
            }
            Ok(WbmhBucket {
                start,
                end,
                first_item,
                last_item,
                count,
            })
        };
        let n = r.get_u64()?;
        let mut buckets = WbmhColumns::new(count_epsilon);
        let mut prev_end: Option<Time> = None;
        for i in 0..n {
            let b = decode(&mut r)?;
            if let Some(pe) = prev_end {
                if b.start <= pe {
                    return Err(RestoreError::Invariant(format!(
                        "buckets {} and {i} overlap or run backwards",
                        i.saturating_sub(1)
                    )));
                }
            }
            prev_end = Some(b.end);
            buckets.push_back(b);
        }
        let open = if r.get_bool()? {
            let b = decode(&mut r)?;
            if let Some(pe) = prev_end {
                if b.start <= pe {
                    return Err(RestoreError::Invariant(
                        "open bucket overlaps sealed buckets".into(),
                    ));
                }
            }
            Some(b)
        } else {
            None
        };
        r.finish()?;
        if !started && (last_t != 0 || !buckets.is_empty() || open.is_some() || pending.is_some()) {
            return Err(RestoreError::Invariant(
                "unstarted histogram carries state".into(),
            ));
        }
        self.buckets = buckets;
        self.open = open;
        self.pending = pending;
        self.seals_since_pass = seals_since_pass;
        // 0 = "unknown — recompute at the next merge pass"; skipping is
        // only an optimization, so this keeps structure bit-identical.
        self.next_merge_at = 0;
        self.last_t = last_t;
        self.started = started;
        Ok(())
    }
}

impl<G: DecayFunction> td_decay::StreamAggregate for Wbmh<G> {
    fn observe(&mut self, t: Time, f: u64) {
        Wbmh::observe(self, t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        Wbmh::observe_batch(self, items)
    }
    fn batched_ingest_amortizes(&self) -> bool {
        true // expiry/merge cascade shared per distinct tick
    }
    fn advance(&mut self, t: Time) {
        Wbmh::advance(self, t)
    }
    fn query(&self, t: Time) -> f64 {
        Wbmh::query(self, t)
    }
    /// See [`Wbmh::merge_from`]: both histograms must have been advanced
    /// to the same tick.
    fn merge_from(&mut self, other: &Self) {
        Wbmh::merge_from(self, other)
    }
    fn error_bound(&self) -> td_decay::ErrorBound {
        // With exact bucket counts the Paper estimator weights every
        // item at its bucket's newest age, so the answer is one-sided
        // high within the region band. Approximate counts can round in
        // either direction, making the envelope symmetric. The chunked
        // weight kernel perturbs each bucket weight by at most its
        // documented relative error κ (DESIGN.md §12), widening both
        // sides by κ — ten-plus decimal orders below any ε.
        let kappa = self.decay.kernel_relative_error();
        let bound = Wbmh::error_bound(self);
        if self.count_epsilon.is_none() {
            td_decay::ErrorBound {
                lower: kappa,
                upper: bound + kappa,
            }
        } else {
            td_decay::ErrorBound::symmetric(bound + kappa)
        }
    }
}

impl<G: DecayFunction> StorageAccounting for Wbmh<G> {
    fn storage_bits(&self) -> u64 {
        // Per-stream state: one count per bucket plus a 2-bit presence/
        // alignment tag per occupied partition cell. Bucket *boundaries*
        // are functions of (g, ε, T) shared across all streams and are
        // not charged (§2.3, §5).
        let per_bucket_overhead = 2;
        let mut bits: u64 = (0..self.buckets.len())
            .map(|i| self.buckets.count_storage_bits(i) + per_bucket_overhead)
            .sum();
        if let Some(open) = &self.open {
            bits += open.count.storage_bits() + per_bucket_overhead;
        }
        if let Some((_, pf)) = self.pending {
            bits += bits_for_count(pf);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_counters::ExactDecayedSum;
    use td_decay::{Exponential, Polynomial};

    /// The paper's §5 trace: g(x) = 1/x², 1+ε = 5, one item per tick
    /// starting at t = 0. Bucket *time spans* at each quoted T must
    /// match the quoted weight groups exactly.
    #[test]
    fn paper_trace_matches_section_5() {
        let mut h = Wbmh::new(Polynomial::new(2.0), 4.0, 1 << 20);
        assert_eq!(h.schedule().boundary(1), 3);
        assert_eq!(h.schedule().boundary(2), 7);
        assert_eq!(h.schedule().boundary(3), 16);
        assert_eq!(h.seal_period(), 2);

        let mut fed = 0u64;
        let feed_until = |h: &mut Wbmh<Polynomial>, t_query: Time, fed: &mut u64| {
            while *fed < t_query {
                h.observe(*fed, 1);
                *fed += 1;
            }
            h.advance(t_query);
        };
        let spans = |h: &Wbmh<Polynomial>| -> Vec<(Time, Time)> {
            h.bucket_spans().iter().map(|b| (b.start, b.end)).collect()
        };

        // T=1: "(1)" → items {0}.
        feed_until(&mut h, 1, &mut fed);
        assert_eq!(spans(&h), vec![(0, 0)]);
        // T=2: "(1, 1/4)" → {0,1} in one bucket.
        feed_until(&mut h, 2, &mut fed);
        assert_eq!(spans(&h), vec![(0, 1)]);
        // T=3: "(1); (1/4, 1/9)" → {2} and {0,1}.
        feed_until(&mut h, 3, &mut fed);
        assert_eq!(spans(&h), vec![(0, 1), (2, 2)]);
        // T=4: "(1,1/4); (1/9,1/16)" → {2,3} and {0,1}.
        feed_until(&mut h, 4, &mut fed);
        assert_eq!(spans(&h), vec![(0, 1), (2, 3)]);
        // T=6: "(1,1/4); (1/9..1/36)" → {4,5} and {0..3}.
        feed_until(&mut h, 6, &mut fed);
        assert_eq!(spans(&h), vec![(0, 3), (4, 5)]);
        // T=8: "(1,1/4); (1/9,1/16); (1/25..1/64)" → {6,7},{4,5},{0..3}.
        feed_until(&mut h, 8, &mut fed);
        assert_eq!(spans(&h), vec![(0, 3), (4, 5), (6, 7)]);
        // T=9: "(1); (1/4,1/9); (1/16,1/25); (1/36..1/81)"
        //      → {8},{6,7},{4,5},{0..3}.
        feed_until(&mut h, 9, &mut fed);
        assert_eq!(spans(&h), vec![(0, 3), (4, 5), (6, 7), (8, 8)]);
        // T=10: "(1,1/4); (1/9..1/36); (1/49..1/100)"
        //      → {8,9},{4..7},{0..3}.
        feed_until(&mut h, 10, &mut fed);
        assert_eq!(spans(&h), vec![(0, 3), (4, 7), (8, 9)]);
    }

    /// The paper's stream-independence claim (§5): "the count in each
    /// bucket depends on the stream, but the boundaries of each bucket
    /// do not". Two streams with identical arrival times but completely
    /// different values must produce identical bucket time-partitions.
    #[test]
    fn boundaries_are_value_independent() {
        let mk = || Wbmh::new(Polynomial::new(1.0), 0.2, 1 << 20);
        let mut ones = mk();
        let mut wild = mk();
        for t in 0..=2_000u64 {
            if t % 3 != 2 {
                ones.observe(t, 1);
                wild.observe(t, 1 + (t * t) % 97);
            }
        }
        ones.advance(2_001);
        wild.advance(2_001);
        let sa: Vec<(Time, Time)> = ones
            .bucket_spans()
            .iter()
            .map(|b| (b.start, b.end))
            .collect();
        let sb: Vec<(Time, Time)> = wild
            .bucket_spans()
            .iter()
            .map(|b| (b.start, b.end))
            .collect();
        assert_eq!(sa, sb, "bucket boundaries must not depend on values");
        // Counts, of course, differ.
        let ca: f64 = ones.bucket_spans().iter().map(|b| b.count).sum();
        let cb: f64 = wild.bucket_spans().iter().map(|b| b.count).sum();
        assert!(cb > ca);
    }

    /// The merge-pass skip is sound only if `pair_next_merge` never
    /// overshoots the true first merge opportunity (a late bound would
    /// delay merges and change structure). Brute-force `may_merge` over
    /// a time window and compare against the ladder-computed answer for
    /// every adjacent pair of a live histogram.
    #[test]
    fn pair_next_merge_is_exact_against_brute_force() {
        let mut h = Wbmh::new(Polynomial::new(1.0), 0.3, 1 << 16);
        let mut x = 9u64;
        for t in 1..=2_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.observe(t, 1 + x % 4);
        }
        let now = h.last_t;
        let horizon = now + 4_000;
        let mut checked = 0;
        for i in 0..h.buckets.len() - 1 {
            let (a, c) = (h.buckets.span(i), h.buckets.span(i + 1));
            let got = h.pair_next_merge(a, c, now);
            let brute = ((now + 1)..=horizon).find(|&t| h.may_merge(a, c, t));
            match brute {
                Some(t) => {
                    assert_eq!(got, t, "pair {i}: ladder answer disagrees with may_merge");
                    checked += 1;
                }
                None => assert!(
                    got > horizon,
                    "pair {i}: ladder predicts merge at {got} but may_merge never fires by {horizon}"
                ),
            }
        }
        assert!(checked > 0, "no pair merged within the brute-force window");
    }

    /// With identical occupancy patterns the *entire* structure —
    /// including merge cascades — is reproducible tick for tick.
    #[test]
    fn structure_is_deterministic() {
        let mk = || Wbmh::new(Polynomial::new(2.0), 0.5, 1 << 16);
        let mut a = mk();
        let mut b = mk();
        let mut x = 5u64;
        for t in 0..=3_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x.is_multiple_of(4) {
                a.observe(t, 2);
                b.observe(t, 2);
            } else {
                a.advance(t);
                b.advance(t);
            }
        }
        let sa: Vec<(Time, Time)> = a.bucket_spans().iter().map(|v| (v.start, v.end)).collect();
        let sb: Vec<(Time, Time)> = b.bucket_spans().iter().map(|v| (v.start, v.end)).collect();
        assert_eq!(sa, sb);
    }

    fn audit_accuracy<G: DecayFunction + Clone>(g: G, eps: f64, n: u64, seed: u64) {
        let mut h = Wbmh::new(g.clone(), eps, 1 << 22);
        let mut exact = ExactDecayedSum::new(g);
        let mut x = seed;
        for t in 1..=n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 5;
            h.observe(t, f);
            exact.observe(t, f);
            if t % 479 == 0 || t == n {
                let truth = exact.query(t + 1);
                let est = h.query(t + 1);
                assert!(
                    est >= truth * (1.0 - 1e-9),
                    "t={t}: est={est} < truth={truth}"
                );
                assert!(
                    est <= truth * (1.0 + eps) + 1e-9,
                    "t={t}: est={est} > (1+{eps})·truth={truth}"
                );
            }
        }
    }

    #[test]
    fn one_sided_bound_polynomial() {
        audit_accuracy(Polynomial::new(1.0), 0.1, 5_000, 11);
        audit_accuracy(Polynomial::new(2.0), 0.25, 5_000, 12);
        audit_accuracy(Polynomial::new(0.5), 0.05, 5_000, 13);
    }

    #[test]
    fn one_sided_bound_exponential() {
        // WBMH is storage-inefficient for EXPD but still correct.
        audit_accuracy(Exponential::new(0.01), 0.1, 3_000, 14);
    }

    #[test]
    fn approx_counts_respect_combined_bound() {
        let g = Polynomial::new(1.0);
        let (eps, ceps) = (0.1, 0.05);
        let mut h = Wbmh::with_approx_counts(g, eps, 1 << 22, ceps);
        let mut exact = ExactDecayedSum::new(g);
        let mut x = 99u64;
        for t in 1..=8_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 5;
            h.observe(t, f);
            exact.observe(t, f);
        }
        let truth = exact.query(8_001);
        let est = h.query(8_001);
        let bound = h.error_bound();
        let rel = (est - truth) / truth;
        assert!(
            rel >= -bound - 1e-9 && rel <= bound + 1e-9,
            "rel={rel}, bound={bound}"
        );
    }

    #[test]
    fn bucket_count_is_logarithmic_for_polyd() {
        let eps = 0.5;
        let mut h1 = Wbmh::new(Polynomial::new(2.0), eps, 1 << 22);
        for t in 1..=(1u64 << 12) {
            h1.observe(t, 1);
        }
        h1.advance(1 << 12);
        let n12 = h1.num_buckets();
        let mut h2 = Wbmh::new(Polynomial::new(2.0), eps, 1 << 22);
        for t in 1..=(1u64 << 18) {
            h2.observe(t, 1);
        }
        h2.advance(1 << 18);
        let n18 = h2.num_buckets();
        assert!(n18 as f64 <= 2.5 * n12 as f64, "n12={n12}, n18={n18}");
        let regions = h2.schedule().num_regions();
        assert!(n18 <= 3 * regions + 4, "n18={n18}, regions={regions}");
    }

    #[test]
    fn storage_grows_subquadratically() {
        // Lemma 5.1: WBMH-with-approx-counts bits grow ~ log N·log log N.
        let run = |n: u64| -> u64 {
            let mut h = Wbmh::with_approx_counts(Polynomial::new(1.0), 0.2, 1 << 26, 0.1);
            for t in 1..=n {
                h.observe(t, 1);
            }
            h.advance(n + 1);
            h.storage_bits()
        };
        let b12 = run(1 << 12);
        let b24 = run(1 << 24);
        let ratio = b24 as f64 / b12 as f64;
        assert!(ratio < 3.5, "ratio={ratio} (b12={b12}, b24={b24})");
        assert!(ratio > 1.3, "ratio={ratio}");
    }

    #[test]
    fn sparse_stream_with_long_gaps() {
        let g = Polynomial::new(1.5);
        let mut h = Wbmh::new(g, 0.2, 1 << 22);
        let mut exact = ExactDecayedSum::new(g);
        let times = [1u64, 2, 3, 1000, 1001, 50_000, 50_001, 200_000];
        for &t in &times {
            h.observe(t, 10);
            exact.observe(t, 10);
        }
        let (est, truth) = (h.query(200_001), exact.query(200_001));
        assert!(est >= truth * (1.0 - 1e-9));
        assert!(est <= truth * 1.2 + 1e-9, "{est} vs {truth}");
    }

    #[test]
    fn merge_from_distributed_sites() {
        let g = Polynomial::new(1.0);
        let eps = 0.1;
        let mk = || Wbmh::new(g, eps, 1 << 20);
        let mut site_a = mk();
        let mut site_b = mk();
        let mut exact = ExactDecayedSum::new(g);
        let mut x = 31337u64;
        let n = 10_000u64;
        for t in 0..=n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 5;
            exact.observe(t, f);
            if x.is_multiple_of(2) {
                site_a.observe(t, f);
                site_b.advance(t);
            } else {
                site_b.observe(t, f);
                site_a.advance(t);
            }
        }
        site_a.advance(n + 1);
        site_b.advance(n + 1);
        site_a.merge_from(&site_b);
        let truth = exact.query(n + 1);
        let est = site_a.query(n + 1);
        assert!(est >= truth * (1.0 - 1e-9), "{est} < {truth}");
        assert!(est <= truth * (1.0 + eps) + 1e-9, "{est} > (1+eps){truth}");
        // Bucket structure stays canonical (no blow-up from merging).
        let regions = site_a.schedule().num_regions();
        assert!(site_a.num_buckets() <= 3 * regions + 4);
    }

    #[test]
    #[should_panic(expected = "same tick")]
    fn merge_from_rejects_time_skew() {
        let mk = || Wbmh::new(Polynomial::new(1.0), 0.1, 1 << 10);
        let mut a = mk();
        let mut b = mk();
        a.observe(5, 1);
        b.observe(9, 1);
        a.merge_from(&b);
    }

    #[test]
    fn query_excludes_pending_tick() {
        let mut h = Wbmh::new(Polynomial::new(1.0), 0.5, 1 << 10);
        h.observe(5, 3);
        assert_eq!(h.query(5), 0.0);
        assert!((h.query(6) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trip_exact_counts() {
        let g = Polynomial::new(1.0);
        let mut h = Wbmh::new(g, 0.1, 1 << 20);
        for t in 1..=5_000u64 {
            h.observe(t, 1 + t % 3);
        }
        let snap = h.snapshot();
        let restored = Wbmh::restore(g, 0.1, 1 << 20, None, &snap);
        assert_eq!(h.query(5_001), restored.query(5_001));
        // And both continue identically.
        let mut a = h;
        let mut b = restored;
        for t in 5_001..=6_000u64 {
            a.observe(t, t % 2);
            b.observe(t, t % 2);
        }
        assert_eq!(a.query(6_001), b.query(6_001));
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn snapshot_round_trip_approx_counts() {
        let g = Polynomial::new(2.0);
        let mut h = Wbmh::with_approx_counts(g, 0.2, 1 << 20, 0.1);
        for t in 1..=3_000u64 {
            h.observe(t, 2);
        }
        let snap = h.snapshot();
        let restored = Wbmh::restore(g, 0.2, 1 << 20, Some(0.1), &snap);
        assert_eq!(h.query(3_001), restored.query(3_001));
        use td_decay::storage::StorageAccounting;
        assert_eq!(h.storage_bits(), restored.storage_bits());
    }

    #[test]
    fn empty_snapshot_round_trip() {
        let g = Polynomial::new(1.0);
        let h = Wbmh::new(g, 0.5, 1 << 10);
        let snap = h.snapshot();
        let restored = Wbmh::restore(g, 0.5, 1 << 10, None, &snap);
        assert_eq!(restored.query(100), 0.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Wbmh::new(Polynomial::new(1.0), 0.5, 1 << 10);
        assert_eq!(h.query(100), 0.0);
        assert_eq!(h.num_buckets(), 0);
        assert_eq!(h.storage_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "not ratio-monotone")]
    fn rejects_sliding_window() {
        use td_decay::SlidingWindow;
        let _ = Wbmh::new(SlidingWindow::new(100), 0.1, 1 << 10);
    }

    #[test]
    fn geometric_estimator_is_two_sided_and_tighter() {
        let g = Polynomial::new(1.0);
        let mut h = Wbmh::new(g, 0.5, 1 << 22);
        let mut exact = ExactDecayedSum::new(g);
        for t in 1..=20_000u64 {
            h.observe(t, 1);
            exact.observe(t, 1);
        }
        let truth = exact.query(20_001);
        let paper = h.query_with(20_001, WbmhEstimator::Paper);
        let geo = h.query_with(20_001, WbmhEstimator::Geometric);
        assert!((geo - truth).abs() <= (paper - truth).abs());
        let band = (1.5f64).sqrt();
        assert!(geo <= truth * band + 1e-9 && geo >= truth / band - 1e-9);
    }
}
