//! Cascaded Exponential Histograms (CEH): decaying sums under **any**
//! decay function (paper §4.2, Theorem 1).
//!
//! Theorem 1 observes that, by summation by parts (paper Eq. 3), a
//! decaying sum under any non-increasing `g` is a *positively weighted*
//! combination of sliding-window counts:
//!
//! ```text
//! S_g(T) = g(N)·S_SLIWIN_N(T) + Σ_i (g(N−i) − g(N+1−i))·S_SLIWIN_{N−i}(T)
//! ```
//!
//! and each window count is available, to within `(1±ε)`, from a single
//! Exponential Histogram (Lemma 4.1). Substituting the EH's estimates
//! collapses the N-term sum to one term per *bucket* (paper Eq. 4);
//! Abel-summing once more gives the equivalent evaluation implemented
//! here:
//!
//! ```text
//! S'_g(T) = Σ_j C_j · g(T − e_j)
//! ```
//!
//! where `e_j` is bucket `j`'s end time. (The module tests pin the
//! paper's own 8/5/3/2 worked example to guard this reading of Eq. 4 —
//! the `C_j` there are *suffix* counts, and the two forms are equal.)
//!
//! The estimate is **one-sided**: every item is weighted at its bucket's
//! end time, so `S_g(T) <= S'_g(T) <= (1+ε)·S_g(T)` whenever the
//! underlying sketch guarantees that any bucket old enough to straddle a
//! window boundary counts at most an ε fraction of the newer items
//! (both `td-eh` variants do). Storage is the sketch's —
//! `O(ε⁻¹ log² N)` bits — for any decay function, which is what makes
//! sliding windows the "hardest" decay in the paper's sense.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use td_decay::soa::{dot_counts, dot_counts_midpoint};
use td_decay::storage::StorageAccounting;
use td_decay::{DecayFunction, Time};
use td_eh::{DominationEh, WindowSketch};

/// How the cascaded query weights each bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CehEstimator {
    /// Weight the whole bucket at its end time — the paper's Eq. (4).
    /// One-sided: never underestimates, overestimates by at most `(1+ε)`.
    #[default]
    Paper,
    /// Weight the bucket at the average of its start- and end-time
    /// weights — a two-sided heuristic with roughly half the error on
    /// smooth decays (not covered by the Theorem 1 bound; measured in
    /// experiment E4).
    Midpoint,
}

/// A decaying sum under an arbitrary decay function, maintained through
/// a cascaded Exponential Histogram (Theorem 1).
///
/// Generic over the window sketch `S`; the default [`DominationEh`]
/// accepts bulk per-tick values. The constructor wires the sketch's
/// expiry window to the decay's horizon automatically (a SLIWIN decay
/// expires buckets; POLYD keeps the whole history live, as §2.3's
/// definition of `N` prescribes).
///
/// # Examples
///
/// ```
/// use td_ceh::CascadedEh;
/// use td_decay::Polynomial;
/// let mut s = CascadedEh::new(Polynomial::new(1.0), 0.1);
/// for t in 1..=100 {
///     s.observe(t, 1);
/// }
/// let est = s.query(101);
/// let exact: f64 = (1..=100u64).map(|t| 1.0 / (101 - t) as f64).sum();
/// assert!(est >= exact * (1.0 - 1e-9));
/// assert!(est <= exact * 1.1 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct CascadedEh<G, S = DominationEh> {
    decay: G,
    sketch: S,
}

impl<G: DecayFunction> CascadedEh<G, DominationEh> {
    /// A cascaded histogram for `decay` targeting relative error
    /// `epsilon`, over a [`DominationEh`] sketch.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]`.
    pub fn new(decay: G, epsilon: f64) -> Self {
        let window = decay.horizon();
        Self {
            decay,
            sketch: DominationEh::new(epsilon, window),
        }
    }
}

impl<G: DecayFunction> CascadedEh<G, DominationEh> {
    /// Merges another cascaded histogram's sketch into this one
    /// (distributed sites over disjoint substreams; see
    /// [`DominationEh::merge_from`] for the `k·ε` error composition).
    ///
    /// The decay functions must be identical; this is checked by the
    /// sketch configuration (ε, expiry window) plus the decay
    /// description string — supply genuinely equal decays.
    ///
    /// # Panics
    ///
    /// Panics if the decay descriptions, ε, or windows differ.
    pub fn merge_from(&mut self, other: &CascadedEh<G, DominationEh>) {
        assert_eq!(
            self.decay.describe(),
            other.decay.describe(),
            "decay functions differ"
        );
        self.sketch.merge_from(&other.sketch);
    }
}

impl<G: DecayFunction, S: WindowSketch> CascadedEh<G, S> {
    /// Wraps an existing window sketch (e.g. a [`td_eh::ClassicEh`] for
    /// strictly 0/1 streams).
    pub fn with_sketch(decay: G, sketch: S) -> Self {
        Self { decay, sketch }
    }

    /// The decay function being tracked.
    pub fn decay(&self) -> &G {
        &self.decay
    }

    /// The underlying window sketch.
    pub fn sketch(&self) -> &S {
        &self.sketch
    }

    /// Ingests an item of value `f` at time `t` (non-decreasing `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previous observation, or (for
    /// [`td_eh::ClassicEh`] sketches) if `f > 1`.
    pub fn observe(&mut self, t: Time, f: u64) {
        self.sketch.observe(t, f);
    }

    /// Ingests a burst of `(time, value)` items sorted by non-decreasing
    /// time, delegating to the sketch's amortized batch path (same end
    /// state as sequential [`observe`](Self::observe) calls).
    ///
    /// # Panics
    ///
    /// Panics if any time precedes its predecessor.
    pub fn observe_batch(&mut self, items: &[(Time, u64)]) {
        self.sketch.observe_batch(items);
    }

    /// Advances the sketch's clock to `t` without ingesting, expiring
    /// buckets past the decay horizon (for finite-horizon decays).
    pub fn advance(&mut self, t: Time) {
        self.sketch.advance(t);
    }

    /// The live prefix of the sketch's bucket columns with `end < t`:
    /// items at or after the query time are excluded (§2.1). Ends are
    /// non-decreasing, so the prefix boundary is a binary search — the
    /// query kernels then stream the borrowed columns directly into
    /// [`DecayFunction::weight_batch`] with zero gather or copy.
    fn live_prefix(&self, t: Time) -> td_decay::ColumnsView<'_> {
        let cols = self.sketch.columns();
        let live = cols.ends.partition_point(|&e| e < t);
        td_decay::ColumnsView {
            starts: &cols.starts[..live],
            ends: &cols.ends[..live],
            counts: &cols.counts[..live],
        }
    }

    /// The decaying-sum estimate `S'_g(T)` of Eq. (4), with the default
    /// one-sided estimator.
    pub fn query(&self, t: Time) -> f64 {
        self.query_with(t, CehEstimator::Paper)
    }

    /// The decaying-sum estimate with an explicit bucket-weighting rule.
    pub fn query_with(&self, t: Time, estimator: CehEstimator) -> f64 {
        let live = self.live_prefix(t);
        match estimator {
            CehEstimator::Paper => dot_counts(&self.decay, t, live.ends, live.counts),
            CehEstimator::Midpoint => {
                dot_counts_midpoint(&self.decay, t, live.starts, live.ends, live.counts)
            }
        }
    }

    /// Evaluates the same bucket snapshot under several decay functions
    /// in one traversal (the cascaded structure is decay-agnostic: one
    /// sketch serves any number of decays, which is the practical payoff
    /// of Theorem 1). One `weight_batch` call per decay over the shared
    /// age column.
    pub fn query_many(&self, t: Time, decays: &[&dyn DecayFunction]) -> Vec<f64> {
        let live = self.live_prefix(t);
        decays
            .iter()
            .map(|g| dot_counts(*g, t, live.ends, live.counts))
            .collect()
    }

    /// Number of live buckets in the sketch.
    pub fn num_buckets(&self) -> usize {
        self.sketch.columns().ends.len()
    }

    /// The decaying-sum estimate with bucket **ages quantized** to the
    /// multiplicative `(1+δ)` grid — the paper's closing §5 remark
    /// (attributed to Y. Matias): for polynomial decay a constant-factor
    /// error in a time boundary is only a constant-factor error in that
    /// bucket's contribution, so boundaries need just
    /// `O(log log N + log(1/δ))` bits instead of `log N`.
    ///
    /// Ages are rounded **down** to the grid (weights rounded up), so
    /// the estimate stays one-sided:
    /// `S <= estimate <= (1+ε)·(1+δ)^α·S` for `g(x) = x^{-α}`
    /// ([`CascadedEh::quantized_boundary_bits`] gives the matching
    /// storage account; the E13 ablation measures both).
    pub fn query_quantized(&self, t: Time, delta: f64) -> f64 {
        assert!(
            delta.is_finite() && delta > 0.0,
            "delta must be finite and positive, got {delta}"
        );
        let base = (1.0 + delta).ln();
        let mut total = 0.0;
        let live = self.live_prefix(t);
        for (&e, &c) in live.ends.iter().zip(live.counts) {
            let age = (t - e) as f64;
            // Round the age down to the (1+δ) grid (grid index 0 = age 1).
            let idx = (age.ln() / base).floor().max(0.0);
            let q_age = (base * idx).exp().round().max(1.0) as Time;
            total += c as f64 * self.decay.weight(q_age.min(t - e));
        }
        total
    }

    /// Storage bits for the quantized-boundary representation: per
    /// bucket, a `(1+δ)` grid index over ages up to `max_age` —
    /// `⌈log₂ log_{1+δ}(max_age)⌉` bits — plus the exact count (compare
    /// with [`StorageAccounting::storage_bits`], which charges a full
    /// `log₂ N` timestamp per bucket).
    pub fn quantized_boundary_bits(&self, delta: f64, max_age: Time) -> u64 {
        let grid_points = ((max_age.max(2) as f64).ln() / (1.0 + delta).ln()).ceil();
        let idx_bits = td_decay::storage::bits_for_count(grid_points as u64);
        self.sketch
            .columns()
            .counts
            .iter()
            .map(|&c| idx_bits + td_decay::storage::bits_for_count(c))
            .sum()
    }
}

impl<G: DecayFunction, S: WindowSketch + StorageAccounting> StorageAccounting for CascadedEh<G, S> {
    fn storage_bits(&self) -> u64 {
        self.sketch.storage_bits()
    }
}

/// Checkpoint tag for [`CascadedEh`] over a [`DominationEh`] sketch.
const TAG_CEH: u8 = 7;

impl<G: DecayFunction> td_decay::checkpoint::Checkpoint for CascadedEh<G, DominationEh> {
    fn save_checkpoint(&self) -> Vec<u8> {
        use td_decay::checkpoint::{fingerprint, CheckpointWriter};
        let mut w = CheckpointWriter::new(TAG_CEH);
        w.put_u64(fingerprint(&self.decay.describe())); // configuration pin
        w.put_bytes(&self.sketch.save_checkpoint());
        w.seal()
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), td_decay::RestoreError> {
        use td_decay::checkpoint::{fingerprint, CheckpointReader, RestoreError};
        let mut r = CheckpointReader::open(bytes, TAG_CEH)?;
        let fp = r.get_u64()?;
        if fp != fingerprint(&self.decay.describe()) {
            return Err(RestoreError::Invariant(format!(
                "decay mismatch: receiver is {}",
                self.decay.describe()
            )));
        }
        let inner = r.get_bytes()?.to_vec();
        r.finish()?;
        self.sketch.restore_checkpoint(&inner)
    }
}

impl<G: DecayFunction> td_decay::StreamAggregate for CascadedEh<G, DominationEh> {
    fn observe(&mut self, t: Time, f: u64) {
        CascadedEh::observe(self, t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        CascadedEh::observe_batch(self, items)
    }
    fn batched_ingest_amortizes(&self) -> bool {
        true // per-level clock advance shared per distinct tick
    }
    fn advance(&mut self, t: Time) {
        CascadedEh::advance(self, t)
    }
    fn query(&self, t: Time) -> f64 {
        CascadedEh::query(self, t)
    }
    fn merge_from(&mut self, other: &Self) {
        CascadedEh::merge_from(self, other)
    }
    fn error_bound(&self) -> td_decay::ErrorBound {
        // Theorem 1's one-sided [S, (1+ε)S] envelope; a k-site union
        // widens the over-count side to k·ε (the under side stays 0:
        // every item is represented by a bucket at least as old). The
        // chunked weight kernel perturbs each bucket weight by at most
        // its documented relative error κ (DESIGN.md §12), so both
        // sides widen by κ — ten-plus decimal orders below any ε.
        let kappa = self.decay.kernel_relative_error();
        let eps = self.sketch.sites() as f64 * self.sketch.epsilon();
        td_decay::ErrorBound {
            lower: kappa,
            upper: eps + kappa,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_counters::ExactDecayedSum;
    use td_decay::{ClosureDecay, Exponential, Polynomial, SlidingWindow, TableDecay};
    use td_eh::ClassicEh;

    /// The paper's §4.2 worked example: consecutive weights 8, 5, 3, 2.
    /// With one item per tick at t = 0..4 and T = 4, the decaying count
    /// is 8f(3) + 5f(2) + 3f(1) + 2f(0); with single-tick buckets the
    /// cascaded estimate must be exact.
    #[test]
    fn paper_eq4_worked_example() {
        let g = TableDecay::new(vec![8.0, 8.0, 5.0, 3.0, 2.0], 0.0).unwrap();
        let mut ceh = CascadedEh::new(g.clone(), 0.5);
        let f = [1u64, 0, 1, 1]; // f(0), f(1), f(2), f(3)
        for (t, &v) in f.iter().enumerate() {
            ceh.observe(t as Time, v);
        }
        let want = 8.0 * f[3] as f64 + 5.0 * f[2] as f64 + 3.0 * f[1] as f64 + 2.0 * f[0] as f64;
        assert_eq!(ceh.query(4), want);
    }

    /// The example's explicit grouping: with buckets {f(0),f(1)},
    /// {f(2)}, {f(3)} the estimate is 2[f0..f3] + (5−2)[f2+f3] +
    /// (8−5)[f3] in suffix form, which must equal the collapsed
    /// per-bucket form Σ C_j·g(T−e_j).
    #[test]
    fn paper_eq4_grouping_identity() {
        let g = TableDecay::new(vec![8.0, 8.0, 5.0, 3.0, 2.0], 0.0).unwrap();
        // Per-bucket: 2·g(4−1=3)... bucket [0,1] ends at 1 → age 3;
        // bucket [2] age 2; bucket [3] age 1.
        let per_bucket = 2.0 * g.weight(3) + g.weight(2) + g.weight(1);
        // Suffix form: g(3)·D0 + (g(2)−g(3))·D1 + (g(1)−g(2))·D2 with
        // D0 = 4, D1 = 2, D2 = 1.
        let d = [4.0, 2.0, 1.0];
        let suffix = g.weight(3) * d[0]
            + (g.weight(2) - g.weight(3)) * d[1]
            + (g.weight(1) - g.weight(2)) * d[2];
        assert_eq!(per_bucket, suffix);
        assert_eq!(per_bucket, 19.0);
    }

    fn drive_and_audit<G: DecayFunction + Clone>(g: G, eps: f64, n: u64, seed: u64) {
        let mut ceh = CascadedEh::new(g.clone(), eps);
        let mut exact = ExactDecayedSum::new(g);
        let mut x = seed;
        for t in 1..=n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 4;
            ceh.observe(t, f);
            exact.observe(t, f);
            if t % 251 == 0 || t == n {
                let truth = exact.query(t + 1);
                let est = ceh.query(t + 1);
                assert!(
                    est >= truth * (1.0 - 1e-9),
                    "t={t}: est={est} < truth={truth}"
                );
                assert!(
                    est <= truth * (1.0 + eps) + 1e-9,
                    "t={t}: est={est} > (1+eps)·truth={truth}"
                );
            }
        }
    }

    #[test]
    fn one_sided_bound_polynomial() {
        drive_and_audit(Polynomial::new(1.0), 0.1, 4_000, 42);
        drive_and_audit(Polynomial::new(2.0), 0.05, 4_000, 43);
    }

    #[test]
    fn one_sided_bound_exponential() {
        drive_and_audit(Exponential::new(0.01), 0.1, 4_000, 44);
    }

    #[test]
    fn one_sided_bound_sliding_window() {
        drive_and_audit(SlidingWindow::new(256), 0.1, 4_000, 45);
    }

    #[test]
    fn one_sided_bound_staircase() {
        let stair = ClosureDecay::new(|age| match age {
            0..=9 => 1.0,
            10..=99 => 0.5,
            100..=999 => 0.1,
            _ => 0.01,
        })
        .with_name("STAIRCASE");
        drive_and_audit(stair, 0.1, 4_000, 46);
    }

    #[test]
    fn classic_sketch_for_binary_streams() {
        let g = Polynomial::new(1.5);
        let sketch = ClassicEh::new(0.05, None);
        let mut ceh = CascadedEh::with_sketch(g, sketch);
        let mut exact = ExactDecayedSum::new(g);
        let mut x = 7u64;
        for t in 1..=5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x.is_multiple_of(3) as u64;
            ceh.observe(t, f);
            exact.observe(t, f);
        }
        let (est, truth) = (ceh.query(5_001), exact.query(5_001));
        assert!(est >= truth * (1.0 - 1e-9), "{est} vs {truth}");
        assert!(est <= truth * 1.2, "{est} vs {truth}");
    }

    #[test]
    fn midpoint_estimator_is_closer_on_smooth_decay() {
        let g = Polynomial::new(1.0);
        let mut ceh = CascadedEh::new(g, 0.2);
        let mut exact = ExactDecayedSum::new(g);
        for t in 1..=10_000u64 {
            ceh.observe(t, 1);
            exact.observe(t, 1);
        }
        let truth = exact.query(10_001);
        let paper = ceh.query_with(10_001, CehEstimator::Paper);
        let mid = ceh.query_with(10_001, CehEstimator::Midpoint);
        assert!((mid - truth).abs() <= (paper - truth).abs());
    }

    #[test]
    fn quantized_ages_stay_one_sided_within_band() {
        // §5 closing remark: POLYD contribution error is a constant
        // factor of the boundary error.
        for alpha in [1.0, 2.0] {
            let g = Polynomial::new(alpha);
            let (eps, delta) = (0.1, 0.25);
            let mut ceh = CascadedEh::new(g, eps);
            let mut exact = ExactDecayedSum::new(g);
            let mut x = 5u64;
            for t in 1..=20_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let f = x % 4;
                ceh.observe(t, f);
                exact.observe(t, f);
            }
            let truth = exact.query(20_001);
            let est = ceh.query_quantized(20_001, delta);
            let band = (1.0 + eps) * (1.0 + delta).powf(alpha);
            assert!(
                est >= truth * (1.0 - 1e-9),
                "alpha={alpha}: {est} < {truth}"
            );
            assert!(
                est <= truth * band + 1e-9,
                "alpha={alpha}: {est} > {band}*{truth}"
            );
            // And the boundary storage is far below the full-timestamp
            // accounting.
            use td_decay::storage::StorageAccounting;
            assert!(
                ceh.quantized_boundary_bits(delta, 1 << 40) < ceh.storage_bits(),
                "quantized boundaries must be cheaper"
            );
        }
    }

    #[test]
    fn query_many_matches_individual_queries() {
        let mut ceh = CascadedEh::new(Polynomial::new(1.0), 0.1);
        for t in 1..=1_000u64 {
            ceh.observe(t, 1 + t % 3);
        }
        let g1 = Polynomial::new(1.0);
        let g2 = Exponential::new(0.01);
        let g3 = SlidingWindow::new(100);
        let many = ceh.query_many(1_001, &[&g1, &g2, &g3]);
        let one1 = ceh.query_with(1_001, CehEstimator::Paper);
        assert!((many[0] - one1).abs() < 1e-9);
        assert!(many[1] > 0.0 && many[2] > 0.0);
    }

    #[test]
    fn merge_from_distributed_sites() {
        let g = Polynomial::new(1.0);
        let eps = 0.05;
        let mut whole = CascadedEh::new(g, eps);
        let mut a = CascadedEh::new(g, eps);
        let mut b = CascadedEh::new(g, eps);
        let mut exact = ExactDecayedSum::new(g);
        let mut x = 21u64;
        for t in 1..=8_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 5;
            whole.observe(t, f);
            exact.observe(t, f);
            if x.is_multiple_of(2) {
                a.observe(t, f);
            } else {
                b.observe(t, f);
            }
        }
        a.merge_from(&b);
        let truth = exact.query(8_001);
        let est = a.query(8_001);
        // Two sites → 2ε one-sided bound.
        assert!(est >= truth * (1.0 - 1e-9), "{est} < {truth}");
        assert!(est <= truth * (1.0 + 2.0 * eps) + 1e-9, "{est} vs {truth}");
    }

    #[test]
    fn sliwin_horizon_wires_expiry() {
        let mut ceh = CascadedEh::new(SlidingWindow::new(100), 0.1);
        for t in 1..=100_000u64 {
            ceh.observe(t, 1);
        }
        // The sketch must not retain the whole history.
        assert!(ceh.sketch().live_total() <= 300);
    }

    #[test]
    fn empty_query_is_zero() {
        let ceh = CascadedEh::new(Polynomial::new(1.0), 0.1);
        assert_eq!(ceh.query(10), 0.0);
    }

    #[test]
    fn excludes_items_at_query_time() {
        let mut ceh = CascadedEh::new(Polynomial::new(1.0), 0.1);
        ceh.observe(5, 3);
        assert_eq!(ceh.query(5), 0.0);
        assert!(ceh.query(6) > 0.0);
    }
}
