//! The unified `timedecay` API: time-decaying stream aggregates with
//! automatic, storage-optimal backend selection.
//!
//! This crate ties the whole workspace together. Pick a decay function,
//! build a [`DecayedSum`] (or one of the composite aggregates re-exported
//! from `td-aggregates`), feed `(time, value)` pairs, query any time —
//! the paper's decision table (§8) picks the cheapest backend that still
//! carries a `(1+ε)` guarantee:
//!
//! | decay class | backend | storage bits |
//! |---|---|---|
//! | constant (no decay) | exact counter | `Θ(log n)` |
//! | `EXPD_λ` | quantized EXPD counter (Eq. 1) | `Θ(log N)` |
//! | `SLIWIN_W` | cascaded EH | `Θ(ε⁻¹ log² N)` |
//! | ratio-monotone (e.g. `POLYD_α`) | WBMH + approx counters | `O(log N·log log N)` |
//! | anything else | cascaded EH (Thm 1) | `O(ε⁻¹ log² N)` |
//!
//! ```
//! use td_core::{DecayedSum, Polynomial};
//!
//! let mut sum = DecayedSum::builder(Polynomial::new(1.0))
//!     .epsilon(0.05)
//!     .build();
//! for t in 1..=1_000u64 {
//!     sum.observe(t, 1);
//! }
//! let est = sum.query(1_001);
//! let exact: f64 = (1..=1000u64).map(|t| 1.0 / (1001 - t) as f64).sum();
//! assert!((est - exact).abs() <= 0.06 * exact);
//! assert_eq!(sum.backend_name(), "wbmh");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use td_counters::{ExpCounter, PolyExpCounter, QuantizedExpCounter};
use td_decay::storage::bits_for_count;

pub use td_aggregates::{
    DecayedAverage, DecayedCount, DecayedLpNorm, DecayedQuantile, DecayedSampler, DecayedVariance,
};
pub use td_ceh::{CascadedEh, CehEstimator};
pub use td_counters as counters;
pub use td_decay::{
    ClosureDecay, Constant, DecayClass, DecayFunction, Exponential, LogDecay, MaxOf,
    PolyExponential, Polynomial, ProductOf, RegionSchedule, Scaled, ShiftedPolynomial,
    SlidingWindow, StorageAccounting, StreamAggregate, SumOf, TableDecay, Time,
};
pub use td_eh::{ClassicEh, DominationEh, WindowSketch};
pub use td_sketch as sketch;
pub use td_wbmh::{Wbmh, WbmhEstimator};

/// Which summation backend a [`DecayedSum`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Pick by the decay function's [`DecayClass`] (the §8 table).
    #[default]
    Auto,
    /// Force the cascaded Exponential Histogram (works for any decay).
    ForceCeh,
    /// Force the weight-based merging histogram (requires a
    /// ratio-monotone decay; the builder panics otherwise).
    ForceWbmh,
    /// Force the exact store-everything baseline (for audits).
    ForceExact,
}

/// The decay function held by a [`DecayedSum`] backend: the closed
/// forms the §8 table dispatches on are stored *unboxed*, so their
/// weight evaluation — in particular the
/// [`DecayFunction::weight_batch`] query kernel — runs as a monomorphic
/// loop instead of one virtual call behind `Box<dyn DecayFunction>`;
/// everything else falls back to the boxed [`AnyDecay::Dyn`] variant
/// (still only one virtual call per *query* thanks to the batch
/// kernel).
pub enum AnyDecay {
    /// `g(x) = 1` (no decay).
    Constant(Constant),
    /// `g(x) = exp(-λx)` (EXPD).
    Exp(Exponential),
    /// `g(x) = 1` for `x <= W`, else 0 (SLIWIN).
    Sliding(SlidingWindow),
    /// `g(x) = x^k e^{-λx} / k!` (§3.4).
    PolyExp(PolyExponential),
    /// Any other decay, behind one level of virtual dispatch.
    Dyn(Box<dyn DecayFunction>),
}

impl AnyDecay {
    /// Wraps a boxed decay, unboxing it when its [`DecayClass`] names a
    /// closed form whose reconstruction is *bit-identical* to the
    /// original on a set of probe ages. The probe guards against
    /// wrappers (e.g. [`Scaled`]) whose class hints at the inner shape
    /// while the weights differ — those stay safely boxed.
    pub fn from_box(decay: Box<dyn DecayFunction>) -> Self {
        fn faithful(original: &dyn DecayFunction, rebuilt: &dyn DecayFunction) -> bool {
            const PROBES: [Time; 8] = [0, 1, 2, 3, 10, 100, 10_000, 1 << 30];
            PROBES
                .iter()
                .all(|&x| original.weight(x) == rebuilt.weight(x))
        }
        match decay.classify() {
            DecayClass::Constant if faithful(&*decay, &Constant) => AnyDecay::Constant(Constant),
            DecayClass::Exponential { lambda } => {
                let g = Exponential::new(lambda);
                if faithful(&*decay, &g) {
                    AnyDecay::Exp(g)
                } else {
                    AnyDecay::Dyn(decay)
                }
            }
            DecayClass::SlidingWindow { window } => {
                let g = SlidingWindow::new(window);
                if faithful(&*decay, &g) {
                    AnyDecay::Sliding(g)
                } else {
                    AnyDecay::Dyn(decay)
                }
            }
            DecayClass::PolyExponential { degree, lambda } => {
                let g = PolyExponential::new(degree, lambda);
                if faithful(&*decay, &g) {
                    AnyDecay::PolyExp(g)
                } else {
                    AnyDecay::Dyn(decay)
                }
            }
            _ => AnyDecay::Dyn(decay),
        }
    }
}

impl DecayFunction for AnyDecay {
    fn weight(&self, age: Time) -> f64 {
        match self {
            AnyDecay::Constant(g) => g.weight(age),
            AnyDecay::Exp(g) => g.weight(age),
            AnyDecay::Sliding(g) => g.weight(age),
            AnyDecay::PolyExp(g) => g.weight(age),
            AnyDecay::Dyn(g) => g.weight(age),
        }
    }
    // One match, then the concrete family's monomorphic kernel.
    fn weight_batch(&self, ages: &[Time], out: &mut [f64]) {
        match self {
            AnyDecay::Constant(g) => g.weight_batch(ages, out),
            AnyDecay::Exp(g) => g.weight_batch(ages, out),
            AnyDecay::Sliding(g) => g.weight_batch(ages, out),
            AnyDecay::PolyExp(g) => g.weight_batch(ages, out),
            AnyDecay::Dyn(g) => g.weight_batch(ages, out),
        }
    }
    fn horizon(&self) -> Option<Time> {
        match self {
            AnyDecay::Constant(g) => g.horizon(),
            AnyDecay::Exp(g) => g.horizon(),
            AnyDecay::Sliding(g) => g.horizon(),
            AnyDecay::PolyExp(g) => g.horizon(),
            AnyDecay::Dyn(g) => g.horizon(),
        }
    }
    fn classify(&self) -> DecayClass {
        match self {
            AnyDecay::Constant(g) => g.classify(),
            AnyDecay::Exp(g) => g.classify(),
            AnyDecay::Sliding(g) => g.classify(),
            AnyDecay::PolyExp(g) => g.classify(),
            AnyDecay::Dyn(g) => g.classify(),
        }
    }
    fn describe(&self) -> String {
        match self {
            AnyDecay::Constant(g) => g.describe(),
            AnyDecay::Exp(g) => g.describe(),
            AnyDecay::Sliding(g) => g.describe(),
            AnyDecay::PolyExp(g) => g.describe(),
            AnyDecay::Dyn(g) => g.describe(),
        }
    }
}

/// The selected backend (one variant per row of the §8 table).
enum Backend {
    /// Constant decay: a plain exact counter. Tracks the mass observed
    /// at the newest tick separately so `query(T)` can exclude items at
    /// `T` itself (§2.1) exactly like every decaying backend does.
    Plain {
        /// Saturating running total of everything observed.
        total: u64,
        /// Newest observation tick.
        last_t: Time,
        /// Mass observed exactly at `last_t`.
        at_last: u64,
    },
    /// Exponential decay: the Eq. 1 counter (quantized to the precision
    /// the target ε warrants).
    Exp(QuantizedExpCounter),
    /// Polyexponential decay (§3.4): k + 1 pipelined counters, exact.
    PolyExp(PolyExpCounter),
    /// Cascaded EH (Theorem 1).
    Ceh(CascadedEh<AnyDecay>),
    /// Weight-based merging histogram (§5) with approximate counters.
    Wbmh(Box<Wbmh<AnyDecay>>),
    /// Exact baseline.
    Exact(td_counters::ExactDecayedSum<AnyDecay>),
}

/// Builder for [`DecayedSum`].
///
/// Defaults: `epsilon = 0.05`, `max_age = 2^40` (the WBMH schedule
/// horizon), `backend = Auto`.
pub struct DecayedSumBuilder {
    decay: Box<dyn DecayFunction>,
    epsilon: f64,
    max_age: Time,
    choice: BackendChoice,
}

impl DecayedSumBuilder {
    /// Target relative error ε (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0,1], got {epsilon}"
        );
        self.epsilon = epsilon;
        self
    }

    /// The operational lifetime for WBMH schedules (default `2^40`
    /// ticks). Streams longer than this still work but old buckets stop
    /// merging; see [`Wbmh::new`].
    pub fn max_age(mut self, max_age: Time) -> Self {
        assert!(max_age > 0, "max_age must be positive");
        self.max_age = max_age;
        self
    }

    /// Override the automatic backend selection.
    pub fn backend(mut self, choice: BackendChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Builds the sum.
    ///
    /// # Panics
    ///
    /// Panics if [`BackendChoice::ForceWbmh`] is combined with a decay
    /// that is not ratio-monotone.
    pub fn build(self) -> DecayedSum {
        let class = self.decay.classify();
        let backend = match (self.choice, class) {
            (BackendChoice::ForceExact, _) => Backend::Exact(td_counters::ExactDecayedSum::new(
                AnyDecay::from_box(self.decay),
            )),
            (BackendChoice::ForceCeh, _) => Backend::Ceh(CascadedEh::new(
                AnyDecay::from_box(self.decay),
                self.epsilon,
            )),
            (BackendChoice::ForceWbmh, _) => Backend::Wbmh(Box::new(Wbmh::with_approx_counts(
                AnyDecay::from_box(self.decay),
                self.epsilon,
                self.max_age,
                self.epsilon,
            ))),
            (BackendChoice::Auto, DecayClass::Constant) => Backend::Plain {
                total: 0,
                last_t: 0,
                at_last: 0,
            },
            (BackendChoice::Auto, DecayClass::Exponential { lambda }) => {
                // Quantize to the precision the ε target warrants: the
                // relative drift per operation is ~2^{1−m}.
                let mantissa = ((2.0 / self.epsilon).log2().ceil() as u32 + 8).clamp(8, 52);
                Backend::Exp(QuantizedExpCounter::new(Exponential::new(lambda), mantissa))
            }
            (BackendChoice::Auto, DecayClass::RatioMonotone) => {
                Backend::Wbmh(Box::new(Wbmh::with_approx_counts(
                    AnyDecay::from_box(self.decay),
                    self.epsilon,
                    self.max_age,
                    self.epsilon,
                )))
            }
            (BackendChoice::Auto, DecayClass::PolyExponential { degree, lambda }) => {
                Backend::PolyExp(PolyExpCounter::new(degree, lambda))
            }
            (BackendChoice::Auto, DecayClass::SlidingWindow { .. }) => Backend::Ceh(
                CascadedEh::new(AnyDecay::from_box(self.decay), self.epsilon),
            ),
            (BackendChoice::Auto, DecayClass::General) => {
                // The Theorem 1 guarantee needs a genuinely non-increasing
                // weight function; audit custom decays before trusting
                // them to the histogram (fail loudly, not silently wrong).
                assert!(
                    td_decay::properties::is_non_increasing(&self.decay, self.max_age.min(4096),),
                    "{} is not non-increasing — not a decay function in the \
                     paper's §2 sense (polyexponential shapes have their own \
                     backend via DecayClass::PolyExponential)",
                    self.decay.describe()
                );
                Backend::Ceh(CascadedEh::new(
                    AnyDecay::from_box(self.decay),
                    self.epsilon,
                ))
            }
        };
        DecayedSum { backend }
    }
}

fn self_backend_name(b: &Backend) -> &'static str {
    match b {
        Backend::Plain { .. } => "plain",
        Backend::Exp(_) => "exp-counter",
        Backend::PolyExp(_) => "polyexp-pipeline",
        Backend::Ceh(_) => "ceh",
        Backend::Wbmh(_) => "wbmh",
        Backend::Exact(_) => "exact",
    }
}

/// A time-decaying sum (Problem 2.1) with automatic backend selection.
///
/// See the crate docs for the selection table and an end-to-end
/// example.
pub struct DecayedSum {
    backend: Backend,
}

impl DecayedSum {
    /// Starts building a decayed sum for `decay`.
    pub fn builder<G: DecayFunction + 'static>(decay: G) -> DecayedSumBuilder {
        DecayedSumBuilder {
            decay: Box::new(decay),
            epsilon: 0.05,
            max_age: 1 << 40,
            choice: BackendChoice::Auto,
        }
    }

    /// Convenience: build with defaults.
    pub fn new<G: DecayFunction + 'static>(decay: G) -> Self {
        Self::builder(decay).build()
    }

    /// Ingests an item of value `f` at time `t` (non-decreasing `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previous observation.
    pub fn observe(&mut self, t: Time, f: u64) {
        match &mut self.backend {
            // Saturate rather than wrap/panic: a landmark counter fed
            // past u64::MAX pins at the ceiling (queries stay monotone).
            Backend::Plain {
                total,
                last_t,
                at_last,
            } => {
                // Same ordered-arrival contract as every other backend:
                // silently folding out-of-order mass into `at_last`
                // would wrongly hide it from `query(last_t)`.
                assert!(t >= *last_t, "time went backwards: {t} < {last_t}");
                *total = total.saturating_add(f);
                if t > *last_t {
                    *last_t = t;
                    *at_last = f;
                } else {
                    *at_last = at_last.saturating_add(f);
                }
            }
            Backend::Exp(c) => c.observe(t, f),
            Backend::PolyExp(c) => c.observe(t, f),
            Backend::Ceh(c) => c.observe(t, f),
            Backend::Wbmh(w) => w.observe(t, f),
            Backend::Exact(e) => e.observe(t, f),
        }
    }

    /// Ingests a burst of `(time, value)` items sorted by non-decreasing
    /// time, via the selected backend's amortized batch path (same end
    /// state as sequential [`observe`](Self::observe) calls).
    ///
    /// # Panics
    ///
    /// Panics if any time precedes its predecessor.
    pub fn observe_batch(&mut self, items: &[(Time, u64)]) {
        match &mut self.backend {
            Backend::Plain {
                total,
                last_t,
                at_last,
            } => {
                for &(t, f) in items {
                    assert!(t >= *last_t, "time went backwards: {t} < {last_t}");
                    *total = total.saturating_add(f);
                    if t > *last_t {
                        *last_t = t;
                        *at_last = f;
                    } else {
                        *at_last = at_last.saturating_add(f);
                    }
                }
            }
            Backend::Exp(c) => c.observe_batch(items),
            Backend::PolyExp(c) => c.observe_batch(items),
            Backend::Ceh(c) => c.observe_batch(items),
            Backend::Wbmh(w) => w.observe_batch(items),
            Backend::Exact(e) => e.observe_batch(items),
        }
    }

    /// The decaying-sum estimate `S'_g(T)` (items at `T` excluded,
    /// §2.1).
    pub fn query(&self, t: Time) -> f64 {
        match &self.backend {
            // §2.1: items at the query time itself are not yet visible,
            // even under constant decay.
            Backend::Plain {
                total,
                last_t,
                at_last,
            } => {
                if t > *last_t {
                    *total as f64
                } else {
                    total.saturating_sub(*at_last) as f64
                }
            }
            Backend::Exp(c) => c.query(t),
            Backend::PolyExp(c) => c.query(t),
            Backend::Ceh(c) => c.query(t),
            Backend::Wbmh(w) => w.query(t),
            Backend::Exact(e) => e.query(t),
        }
    }

    /// Merges another sum's state into this one — the distributed-
    /// streams operation, available when both sums use the same backend
    /// and configuration. WBMH backends must be [`DecayedSum::advance`]d
    /// to the same tick first; histogram backends widen their error to
    /// `k·ε` after merging `k` sites (WBMH keeps `ε`; counters stay
    /// exact) — see the per-backend `merge_from` docs.
    ///
    /// # Panics
    ///
    /// Panics if the backends or their configurations differ.
    pub fn merge_from(&mut self, other: &DecayedSum) {
        match (&mut self.backend, &other.backend) {
            (
                Backend::Plain {
                    total,
                    last_t,
                    at_last,
                },
                Backend::Plain {
                    total: ot,
                    last_t: olt,
                    at_last: oal,
                },
            ) => {
                *total = total.saturating_add(*ot);
                match (*olt).cmp(last_t) {
                    std::cmp::Ordering::Greater => {
                        *last_t = *olt;
                        *at_last = *oal;
                    }
                    std::cmp::Ordering::Equal => *at_last = at_last.saturating_add(*oal),
                    std::cmp::Ordering::Less => {}
                }
            }
            (Backend::Exp(a), Backend::Exp(b)) => a.merge_from(b),
            (Backend::PolyExp(a), Backend::PolyExp(b)) => a.merge_from(b),
            (Backend::Ceh(a), Backend::Ceh(b)) => a.merge_from(b),
            (Backend::Wbmh(a), Backend::Wbmh(b)) => a.merge_from(b),
            (Backend::Exact(a), Backend::Exact(b)) => a.merge_from(b),
            _ => panic!(
                "cannot merge different backends ({} vs {})",
                self_backend_name(&self.backend),
                self_backend_name(&other.backend)
            ),
        }
    }

    /// Advances the clock to `t` without ingesting, propagated to every
    /// backend: WBMH runs its deterministic seal/merge schedule, the
    /// CEH and exact backends expire horizon-passed state (so storage
    /// shrinks during ingest silence), and the counters fold their
    /// pending tick forward. Only the plain landmark counter is
    /// genuinely clock-free.
    pub fn advance(&mut self, t: Time) {
        match &mut self.backend {
            Backend::Plain {
                last_t, at_last, ..
            } => {
                // Advancing past the newest tick makes its mass
                // queryable (it is now strictly in the past).
                if t > *last_t {
                    *last_t = t;
                    *at_last = 0;
                }
            }
            Backend::Exp(c) => c.advance(t),
            Backend::PolyExp(c) => c.advance(t),
            Backend::Ceh(c) => c.advance(t),
            Backend::Wbmh(w) => w.advance(t),
            Backend::Exact(e) => e.advance(t),
        }
    }

    /// Which backend was selected: `"plain"`, `"exp-counter"`, `"ceh"`,
    /// `"wbmh"`, or `"exact"`.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            Backend::Plain { .. } => "plain",
            Backend::Exp(_) => "exp-counter",
            Backend::PolyExp(_) => "polyexp-pipeline",
            Backend::Ceh(_) => "ceh",
            Backend::Wbmh(_) => "wbmh",
            Backend::Exact(_) => "exact",
        }
    }
}

impl StreamAggregate for DecayedSum {
    fn observe(&mut self, t: Time, f: u64) {
        DecayedSum::observe(self, t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        DecayedSum::observe_batch(self, items)
    }
    fn batched_ingest_amortizes(&self) -> bool {
        match &self.backend {
            Backend::Plain { .. } | Backend::Exp(_) => false,
            Backend::PolyExp(c) => c.batched_ingest_amortizes(),
            Backend::Ceh(c) => c.batched_ingest_amortizes(),
            Backend::Wbmh(w) => w.batched_ingest_amortizes(),
            Backend::Exact(e) => e.batched_ingest_amortizes(),
        }
    }
    fn advance(&mut self, t: Time) {
        DecayedSum::advance(self, t)
    }
    fn query(&self, t: Time) -> f64 {
        DecayedSum::query(self, t)
    }
    fn merge_from(&mut self, other: &Self) {
        DecayedSum::merge_from(self, other)
    }
    fn error_bound(&self) -> td_decay::ErrorBound {
        match &self.backend {
            Backend::Plain { .. } => td_decay::ErrorBound::exact(),
            Backend::Exp(c) => StreamAggregate::error_bound(c),
            Backend::PolyExp(c) => StreamAggregate::error_bound(c),
            Backend::Ceh(c) => StreamAggregate::error_bound(c),
            Backend::Wbmh(w) => StreamAggregate::error_bound(&**w),
            Backend::Exact(e) => StreamAggregate::error_bound(e),
        }
    }
}

impl DecayedCount for DecayedSum {
    fn observe(&mut self, t: Time, f: u64) {
        DecayedSum::observe(self, t, f);
    }
    fn query(&self, t: Time) -> f64 {
        DecayedSum::query(self, t)
    }
}

impl StorageAccounting for DecayedSum {
    fn storage_bits(&self) -> u64 {
        match &self.backend {
            Backend::Plain { total, .. } => bits_for_count(*total),
            Backend::Exp(c) => StorageAccounting::storage_bits(c),
            Backend::PolyExp(c) => StorageAccounting::storage_bits(c),
            Backend::Ceh(c) => StorageAccounting::storage_bits(c),
            Backend::Wbmh(w) => StorageAccounting::storage_bits(&**w),
            Backend::Exact(e) => StorageAccounting::storage_bits(e),
        }
    }
}

/// Checkpoint tag for [`DecayedSum`].
const TAG_DECAYED_SUM: u8 = 9;

impl td_decay::checkpoint::Checkpoint for DecayedSum {
    fn save_checkpoint(&self) -> Vec<u8> {
        use td_decay::checkpoint::CheckpointWriter;
        let mut w = CheckpointWriter::new(TAG_DECAYED_SUM);
        // One byte selects the backend variant; delegating backends nest
        // their own sealed checkpoint so corruption inside the payload is
        // still caught by the inner checksum.
        match &self.backend {
            Backend::Plain {
                total,
                last_t,
                at_last,
            } => {
                w.put_u8(0);
                w.put_u64(*total);
                w.put_u64(*last_t);
                w.put_u64(*at_last);
            }
            Backend::Exp(c) => {
                w.put_u8(1);
                w.put_bytes(&c.save_checkpoint());
            }
            Backend::PolyExp(c) => {
                w.put_u8(2);
                w.put_bytes(&c.save_checkpoint());
            }
            Backend::Ceh(c) => {
                w.put_u8(3);
                w.put_bytes(&c.save_checkpoint());
            }
            Backend::Wbmh(h) => {
                w.put_u8(4);
                w.put_bytes(&h.save_checkpoint());
            }
            Backend::Exact(e) => {
                w.put_u8(5);
                w.put_bytes(&e.save_checkpoint());
            }
        }
        w.seal()
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), td_decay::RestoreError> {
        use td_decay::checkpoint::{CheckpointReader, RestoreError};
        let mut r = CheckpointReader::open(bytes, TAG_DECAYED_SUM)?;
        let variant = r.get_u8()?;
        match (&mut self.backend, variant) {
            (
                Backend::Plain {
                    total,
                    last_t,
                    at_last,
                },
                0,
            ) => {
                let t = r.get_u64()?;
                let lt = r.get_u64()?;
                let al = r.get_u64()?;
                if al > t {
                    return Err(RestoreError::Invariant(format!(
                        "at-tick mass {al} exceeds total {t}"
                    )));
                }
                r.finish()?;
                *total = t;
                *last_t = lt;
                *at_last = al;
                Ok(())
            }
            (Backend::Exp(c), 1) => {
                let inner = r.get_bytes()?.to_vec();
                r.finish()?;
                c.restore_checkpoint(&inner)
            }
            (Backend::PolyExp(c), 2) => {
                let inner = r.get_bytes()?.to_vec();
                r.finish()?;
                c.restore_checkpoint(&inner)
            }
            (Backend::Ceh(c), 3) => {
                let inner = r.get_bytes()?.to_vec();
                r.finish()?;
                c.restore_checkpoint(&inner)
            }
            (Backend::Wbmh(h), 4) => {
                let inner = r.get_bytes()?.to_vec();
                r.finish()?;
                h.restore_checkpoint(&inner)
            }
            (Backend::Exact(e), 5) => {
                let inner = r.get_bytes()?.to_vec();
                r.finish()?;
                e.restore_checkpoint(&inner)
            }
            (backend, v) => Err(RestoreError::Invariant(format!(
                "backend mismatch: receiver is {}, checkpoint variant {v}",
                self_backend_name(backend)
            ))),
        }
    }
}

// Keep the plain (f64) exponential counter exported for users who want
// the raw Eq. 1 recurrence without quantization.
pub use td_counters::ExpCounter as RawExpCounter;
const _: fn() = || {
    // Compile-time check that the raw counter stays object-compatible
    // with the aggregate backend trait.
    fn assert_impl<T: DecayedCount>() {}
    assert_impl::<ExpCounter>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use td_counters::ExactDecayedSum;

    #[test]
    fn auto_selection_follows_the_table() {
        assert_eq!(DecayedSum::new(Constant).backend_name(), "plain");
        assert_eq!(
            DecayedSum::new(Exponential::new(0.1)).backend_name(),
            "exp-counter"
        );
        assert_eq!(
            DecayedSum::new(SlidingWindow::new(100)).backend_name(),
            "ceh"
        );
        assert_eq!(DecayedSum::new(Polynomial::new(2.0)).backend_name(), "wbmh");
        assert_eq!(
            DecayedSum::new(ClosureDecay::new(|a| 1.0 / (1.0 + (a as f64).sqrt()))).backend_name(),
            "ceh"
        );
    }

    #[test]
    fn polyexp_routes_to_pipeline_and_is_exact() {
        use td_decay::PolyExponential;
        let g = PolyExponential::new(2, 0.05);
        let mut s = DecayedSum::new(g);
        assert_eq!(s.backend_name(), "polyexp-pipeline");
        let mut exact = ExactDecayedSum::new(g);
        for t in 1..=2_000u64 {
            let f = 1 + t % 4;
            s.observe(t, f);
            exact.observe(t, f);
        }
        let (a, b) = (s.query(2_001), exact.query(2_001));
        assert!((a - b).abs() <= 1e-6 * b.max(1.0), "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "not non-increasing")]
    fn auto_rejects_increasing_closure() {
        let bad = ClosureDecay::new(|age| age as f64);
        let _ = DecayedSum::new(bad);
    }

    #[test]
    fn force_overrides() {
        let s = DecayedSum::builder(Polynomial::new(1.0))
            .backend(BackendChoice::ForceCeh)
            .build();
        assert_eq!(s.backend_name(), "ceh");
        let s = DecayedSum::builder(Polynomial::new(1.0))
            .backend(BackendChoice::ForceExact)
            .build();
        assert_eq!(s.backend_name(), "exact");
    }

    #[test]
    #[should_panic(expected = "not ratio-monotone")]
    fn force_wbmh_rejects_sliding_window() {
        let _ = DecayedSum::builder(SlidingWindow::new(10))
            .backend(BackendChoice::ForceWbmh)
            .build();
    }

    fn audit<G: DecayFunction + Clone + 'static>(g: G, eps: f64, band: f64) {
        let mut s = DecayedSum::builder(g.clone()).epsilon(eps).build();
        let mut exact = ExactDecayedSum::new(g);
        let mut x = 77u64;
        for t in 1..=3_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 4;
            s.observe(t, f);
            exact.observe(t, f);
        }
        let (est, truth) = (s.query(3_001), exact.query(3_001));
        assert!(
            (est - truth).abs() <= band * truth + 1e-9,
            "{}: {est} vs {truth}",
            s.backend_name()
        );
    }

    #[test]
    fn every_auto_backend_is_accurate() {
        audit(Exponential::new(0.01), 0.05, 0.05);
        audit(SlidingWindow::new(512), 0.05, 0.05);
        audit(Polynomial::new(1.0), 0.05, 0.15); // ε band × count ladder
        audit(Constant, 0.05, 1e-9);
    }

    #[test]
    fn storage_ordering_matches_the_paper() {
        // For polynomial decay over the same stream: exp-counter is not
        // applicable, but WBMH must beat CEH, and both must beat exact.
        let g = Polynomial::new(1.0);
        let mk = |choice| {
            let mut s = DecayedSum::builder(g).epsilon(0.1).backend(choice).build();
            for t in 1..=20_000u64 {
                s.observe(t, 1);
            }
            StorageAccounting::storage_bits(&s)
        };
        let wbmh = mk(BackendChoice::Auto);
        let ceh = mk(BackendChoice::ForceCeh);
        let exact = mk(BackendChoice::ForceExact);
        assert!(wbmh < ceh, "wbmh={wbmh}, ceh={ceh}");
        assert!(ceh < exact, "ceh={ceh}, exact={exact}");
    }

    #[test]
    fn merge_from_same_backend() {
        // WBMH route.
        let g = Polynomial::new(1.0);
        let mk = || DecayedSum::builder(g).epsilon(0.1).build();
        let mut a = mk();
        let mut b = mk();
        let mut exact = ExactDecayedSum::new(g);
        for t in 1..=3_000u64 {
            let f = 1 + t % 3;
            exact.observe(t, f);
            if t % 2 == 0 {
                a.observe(t, f);
                b.advance(t);
            } else {
                b.observe(t, f);
                a.advance(t);
            }
        }
        a.advance(3_001);
        b.advance(3_001);
        a.merge_from(&b);
        let (est, truth) = (a.query(3_001), exact.query(3_001));
        assert!((est - truth).abs() <= 0.2 * truth, "{est} vs {truth}");

        // Exponential-counter route.
        let ge = Exponential::new(0.01);
        let mut ca = DecayedSum::new(ge);
        let mut cb = DecayedSum::new(ge);
        ca.observe(1, 10);
        cb.observe(5, 20);
        ca.merge_from(&cb);
        let want = 10.0 * ge.weight(9) + 20.0 * ge.weight(5);
        let got = ca.query(10);
        assert!((got - want).abs() <= 1e-3 * want, "{got} vs {want}");
    }

    #[test]
    #[should_panic(expected = "cannot merge different backends")]
    fn merge_from_rejects_backend_mismatch() {
        let mut a = DecayedSum::new(Exponential::new(0.1));
        let b = DecayedSum::new(Polynomial::new(1.0));
        a.merge_from(&b);
    }

    #[test]
    fn builder_validation() {
        let b = DecayedSum::builder(Polynomial::new(1.0)).epsilon(0.5);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn builder_rejects_bad_epsilon() {
        let _ = DecayedSum::builder(Polynomial::new(1.0)).epsilon(0.0);
    }

    #[test]
    fn plain_backend_saturates_instead_of_overflowing() {
        let mut s = DecayedSum::new(Constant);
        assert_eq!(s.backend_name(), "plain");
        s.observe(1, u64::MAX);
        s.observe(2, u64::MAX);
        s.observe(3, 7);
        // The running total pins at the ceiling; queries stay monotone
        // and finite rather than wrapping around to a tiny count.
        assert_eq!(s.query(4), u64::MAX as f64);
        // Merging two saturated sums also stays pinned.
        let mut other = DecayedSum::new(Constant);
        other.observe(1, u64::MAX);
        s.merge_from(&other);
        assert_eq!(s.query(5), u64::MAX as f64);
        // Batched ingest takes the same saturating path.
        let mut b = DecayedSum::new(Constant);
        b.observe_batch(&[(1, u64::MAX), (1, u64::MAX), (2, 3)]);
        assert_eq!(b.query(3), u64::MAX as f64);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn plain_backend_rejects_out_of_order_times() {
        let mut s = DecayedSum::new(Constant);
        assert_eq!(s.backend_name(), "plain");
        s.observe(10, 1);
        s.observe(5, 1);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn plain_backend_rejects_out_of_order_batch() {
        let mut s = DecayedSum::new(Constant);
        s.observe_batch(&[(10, 1), (5, 1)]);
    }

    #[test]
    fn advance_propagates_and_storage_shrinks() {
        // A sliding-window CEH full of items, then a long silent
        // period: `advance` must reach the underlying histogram so
        // expired buckets are dropped and the footprint shrinks without
        // any further `observe`.
        let mut s = DecayedSum::builder(SlidingWindow::new(100))
            .epsilon(0.1)
            .build();
        assert_eq!(s.backend_name(), "ceh");
        for t in 1..=5_000u64 {
            s.observe(t, 3);
        }
        let loaded = StorageAccounting::storage_bits(&s);
        s.advance(50_000);
        let drained = StorageAccounting::storage_bits(&s);
        assert!(
            drained < loaded,
            "storage did not shrink after advance: {drained} vs {loaded}"
        );
        assert_eq!(s.query(50_001), 0.0);

        // Same check on the exact baseline (its deque must prune).
        let mut e = DecayedSum::builder(SlidingWindow::new(100))
            .backend(BackendChoice::ForceExact)
            .build();
        for t in 1..=5_000u64 {
            e.observe(t, 3);
        }
        let loaded = StorageAccounting::storage_bits(&e);
        e.advance(50_000);
        assert!(StorageAccounting::storage_bits(&e) < loaded);
        assert_eq!(e.query(50_001), 0.0);
    }

    #[test]
    fn batched_ingest_matches_sequential_per_backend() {
        // Exact query equality for every backend the §8 table can
        // select: the batch path runs the same machinery once per
        // distinct tick, so estimates are identical, not merely close.
        let decays: Vec<Box<dyn Fn() -> DecayedSum>> = vec![
            Box::new(|| DecayedSum::new(Constant)),
            Box::new(|| DecayedSum::new(Exponential::new(0.05))),
            Box::new(|| DecayedSum::new(SlidingWindow::new(64))),
            Box::new(|| DecayedSum::new(Polynomial::new(1.5))),
            Box::new(|| DecayedSum::new(td_decay::PolyExponential::new(2, 0.03))),
            Box::new(|| {
                DecayedSum::builder(Polynomial::new(1.0))
                    .backend(BackendChoice::ForceExact)
                    .build()
            }),
        ];
        let mut items = Vec::new();
        let mut x = 9u64;
        let mut t = 0u64;
        for _ in 0..800 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += x % 3; // repeated ticks exercise coalescing
            items.push((t.max(1), x % 20));
        }
        for mk in &decays {
            let mut seq = mk();
            let mut bat = mk();
            for &(t, f) in &items {
                seq.observe(t, f);
            }
            bat.observe_batch(&items);
            let t_end = items.last().unwrap().0 + 1;
            let (a, b) = (seq.query(t_end), bat.query(t_end));
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "{}: {a} vs {b}",
                seq.backend_name()
            );
        }
    }

    #[test]
    fn any_decay_unboxes_closed_forms_but_not_wrappers() {
        use td_decay::Scaled;
        // Closed forms round-trip to monomorphic variants.
        assert!(matches!(
            AnyDecay::from_box(Box::new(Exponential::new(0.2))),
            AnyDecay::Exp(_)
        ));
        assert!(matches!(
            AnyDecay::from_box(Box::new(SlidingWindow::new(9))),
            AnyDecay::Sliding(_)
        ));
        // A scaled constant still classifies as `Constant` but weighs
        // `factor ≠ 1` — the faithfulness probe must keep it boxed
        // rather than silently replacing it with the unit constant.
        let unboxed = AnyDecay::from_box(Box::new(Scaled::new(Constant, 3.0)));
        assert!(matches!(unboxed, AnyDecay::Dyn(_)));
        assert_eq!(unboxed.weight(5), 3.0);
    }
}
