//! Time-decaying variance (paper §7.3).

use td_ceh::CascadedEh;
use td_decay::storage::StorageAccounting;
use td_decay::{DecayFunction, Time};
use td_wbmh::Wbmh;

use crate::count::DecayedCount;

/// The time-decaying variance
/// `V_g(T) = Σ g(T−t_i)·(f_i − A_g(T))²` (paper §7.3), via the
/// three-sums reduction
///
/// ```text
/// V_g = Σg·f² − (Σg·f)² / Σg
/// ```
///
/// maintained as three decayed sums over any [`DecayedCount`] backend.
///
/// **Error characteristics** (documented rather than hidden, as the
/// paper itself defers the sharp algorithm to Cohen–Kaplan \[4\]): with
/// each sum accurate to `(1±ε)`, the absolute error of `V` is
/// `O(ε·Σg·f²)`; when the variance is small relative to the decayed
/// second moment (`V ≪ A²·Σg`, the near-constant-stream regime) the
/// *relative* error degrades by the factor `Σg·f²/V` — experiment E11
/// measures exactly this. For well-spread values the estimate is a
/// solid `(1 ± O(ε))`.
///
/// # Examples
///
/// ```
/// use td_aggregates::DecayedVariance;
/// use td_decay::SlidingWindow;
/// let mut v = DecayedVariance::ceh(SlidingWindow::new(100), 0.05);
/// for t in 1..=100u64 {
///     v.observe(t, if t % 2 == 0 { 0 } else { 10 });
/// }
/// // V_g is the weighted *sum* of squared deviations (paper §7.3):
/// // 100 items, each (f − 5)² = 25 → V = 2500.
/// let var = v.query(101).unwrap();
/// assert!((var - 2500.0).abs() < 500.0);
/// ```
#[derive(Debug, Clone)]
pub struct DecayedVariance<B> {
    weights: B,
    sums: B,
    squares: B,
}

impl<G: DecayFunction + Clone> DecayedVariance<CascadedEh<G>> {
    /// A decayed variance over cascaded-EH backends (any decay).
    pub fn ceh(decay: G, epsilon: f64) -> Self {
        Self {
            weights: CascadedEh::new(decay.clone(), epsilon),
            sums: CascadedEh::new(decay.clone(), epsilon),
            squares: CascadedEh::new(decay, epsilon),
        }
    }
}

impl<G: DecayFunction + Clone> DecayedVariance<Wbmh<G>> {
    /// A decayed variance over WBMH backends (ratio-monotone decay).
    ///
    /// # Panics
    ///
    /// Panics if the decay is not ratio-monotone (see [`Wbmh::new`]).
    pub fn wbmh(decay: G, epsilon: f64, max_age: Time) -> Self {
        Self {
            weights: Wbmh::new(decay.clone(), epsilon, max_age),
            sums: Wbmh::new(decay.clone(), epsilon, max_age),
            squares: Wbmh::new(decay, epsilon, max_age),
        }
    }
}

impl<B: DecayedCount> DecayedVariance<B> {
    /// Builds a variance from three explicit backends (fed `1`, `f`,
    /// and `f²` respectively).
    pub fn from_backends(weights: B, sums: B, squares: B) -> Self {
        Self {
            weights,
            sums,
            squares,
        }
    }

    /// Ingests an item of value `f` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `f² > u64::MAX` (values above `2^32 − 1`).
    pub fn observe(&mut self, t: Time, f: u64) {
        let sq = f.checked_mul(f).expect("value too large: f² overflows u64");
        self.weights.observe(t, 1);
        self.sums.observe(t, f);
        self.squares.observe(t, sq);
    }

    /// The decayed-variance estimate (clamped at zero: the reduction can
    /// go slightly negative under approximation noise), or `None` when
    /// no item carries positive weight.
    pub fn query(&self, t: Time) -> Option<f64> {
        let w = self.weights.query(t);
        if w <= 0.0 {
            return None;
        }
        let s = self.sums.query(t);
        let q = self.squares.query(t);
        Some((q - s * s / w).max(0.0))
    }

    /// The decayed average `A_g(T)` (free by-product of the reduction).
    pub fn average(&self, t: Time) -> Option<f64> {
        let w = self.weights.query(t);
        (w > 0.0).then(|| self.sums.query(t) / w)
    }

    /// The decayed standard deviation.
    pub fn std_dev(&self, t: Time) -> Option<f64> {
        self.query(t).map(f64::sqrt)
    }
}

impl<B: crate::count::MergeableCount> DecayedVariance<B> {
    /// Merges another variance's state (distributed sites over disjoint
    /// substreams); all three internal sums merge per the backend's
    /// `merge_from`.
    pub fn merge_from(&mut self, other: &DecayedVariance<B>) {
        self.weights.merge_counts(&other.weights);
        self.sums.merge_counts(&other.sums);
        self.squares.merge_counts(&other.squares);
    }
}

impl<B: StorageAccounting> StorageAccounting for DecayedVariance<B> {
    fn storage_bits(&self) -> u64 {
        self.weights.storage_bits() + self.sums.storage_bits() + self.squares.storage_bits()
    }
}

/// The unified-aggregate view: `query` returns the variance (or `0.0`
/// before any item carries weight — use [`DecayedVariance::query`] to
/// distinguish the empty case).
impl<B: td_decay::StreamAggregate> td_decay::StreamAggregate for DecayedVariance<B> {
    fn observe(&mut self, t: Time, f: u64) {
        let sq = f.checked_mul(f).expect("value too large: f² overflows u64");
        self.weights.observe(t, 1);
        self.sums.observe(t, f);
        self.squares.observe(t, sq);
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        // Map the burst into the three component streams (1, f, f²) up
        // front so each backend takes one amortized batch.
        let unit: Vec<(Time, u64)> = items.iter().map(|&(t, _)| (t, 1)).collect();
        let sq: Vec<(Time, u64)> = items
            .iter()
            .map(|&(t, f)| {
                (
                    t,
                    f.checked_mul(f).expect("value too large: f² overflows u64"),
                )
            })
            .collect();
        self.weights.observe_batch(&unit);
        self.sums.observe_batch(items);
        self.squares.observe_batch(&sq);
    }
    fn batched_ingest_amortizes(&self) -> bool {
        // The mapped scratch vectors only pay off when the component
        // backends amortize; otherwise per-item fan-out is cheaper.
        self.sums.batched_ingest_amortizes()
    }
    fn advance(&mut self, t: Time) {
        self.weights.advance(t);
        self.sums.advance(t);
        self.squares.advance(t);
    }
    fn query(&self, t: Time) -> f64 {
        let w = self.weights.query(t);
        if w <= 0.0 {
            return 0.0;
        }
        let s = self.sums.query(t);
        let q = self.squares.query(t);
        (q - s * s / w).max(0.0)
    }
    fn merge_from(&mut self, other: &Self) {
        self.weights.merge_from(&other.weights);
        self.sums.merge_from(&other.sums);
        self.squares.merge_from(&other.squares);
    }
    fn error_bound(&self) -> td_decay::ErrorBound {
        // Σgf² − (Σgf)²/Σg is a *difference* of approximate sums, so
        // relative error is unbounded when the two terms nearly cancel
        // (constant-valued streams). Only all-exact components certify
        // an envelope; the conformance harness checks variance against
        // an absolute ε·Σgf² budget instead.
        let exact = td_decay::ErrorBound::exact();
        if self.weights.error_bound() == exact
            && self.sums.error_bound() == exact
            && self.squares.error_bound() == exact
        {
            exact
        } else {
            td_decay::ErrorBound::unbounded()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_counters::ExactDecayedSum;
    use td_decay::{Polynomial, SlidingWindow};

    fn exact_variance<G: DecayFunction>(g: &G, items: &[(Time, u64)], t: Time) -> f64 {
        let mut w = 0.0;
        let mut s = 0.0;
        for &(ti, f) in items {
            if ti < t {
                let wt = g.weight(t - ti);
                w += wt;
                s += wt * f as f64;
            }
        }
        let a = s / w;
        items
            .iter()
            .filter(|&&(ti, _)| ti < t)
            .map(|&(ti, f)| g.weight(t - ti) * (f as f64 - a).powi(2))
            .sum()
    }

    #[test]
    fn exact_backend_matches_definition() {
        let g = Polynomial::new(1.0);
        let mut v = DecayedVariance::from_backends(
            ExactDecayedSum::new(g),
            ExactDecayedSum::new(g),
            ExactDecayedSum::new(g),
        );
        let mut items = Vec::new();
        let mut x = 3u64;
        for t in 1..=500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 30;
            v.observe(t, f);
            items.push((t, f));
        }
        let got = v.query(501).unwrap();
        let want = exact_variance(&g, &items, 501);
        assert!((got - want).abs() < 1e-6 * want.max(1.0), "{got} vs {want}");
    }

    #[test]
    fn spread_values_within_band() {
        let g = Polynomial::new(1.5);
        let mut v = DecayedVariance::wbmh(g, 0.05, 1 << 20);
        let mut items = Vec::new();
        let mut x = 23u64;
        for t in 1..=3_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 100; // high coefficient of variation
            v.observe(t, f);
            items.push((t, f));
        }
        let got = v.query(3_001).unwrap();
        let want = exact_variance(&g, &items, 3_001);
        assert!((got - want).abs() <= 0.35 * want, "{got} vs {want}");
    }

    #[test]
    fn constant_stream_has_zero_variance() {
        let mut v = DecayedVariance::ceh(SlidingWindow::new(50), 0.1);
        for t in 1..=200u64 {
            v.observe(t, 7);
        }
        // Exact arithmetic on identical values: the reduction is exact
        // at Σg·49 − (Σg·7)²/Σg = 0 up to the (correlated) histogram
        // noise; clamping keeps it non-negative.
        let var = v.query(201).unwrap();
        let second_moment = 49.0 * 50.0;
        assert!(var <= 0.25 * second_moment, "var={var}");
    }

    #[test]
    fn average_accessor_consistent() {
        let g = SlidingWindow::new(10);
        let mut v = DecayedVariance::ceh(g, 0.05);
        for t in 1..=100u64 {
            v.observe(t, t % 5);
        }
        let a = v.average(101).unwrap();
        assert!((a - 2.0).abs() < 0.5, "a={a}");
        assert!(v.std_dev(101).unwrap() >= 0.0);
    }

    #[test]
    fn merge_from_combines_sites() {
        let g = SlidingWindow::new(2_000);
        let mut whole = DecayedVariance::ceh(g, 0.05);
        let mut a = DecayedVariance::ceh(g, 0.05);
        let mut b = DecayedVariance::ceh(g, 0.05);
        let mut x = 71u64;
        for t in 1..=2_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 100;
            whole.observe(t, f);
            if x.is_multiple_of(2) {
                a.observe(t, f);
            } else {
                b.observe(t, f);
            }
        }
        a.merge_from(&b);
        let (m, w) = (a.query(2_001).unwrap(), whole.query(2_001).unwrap());
        assert!((m - w).abs() <= 0.35 * w, "{m} vs {w}");
    }

    #[test]
    fn empty_is_none() {
        let v = DecayedVariance::ceh(Polynomial::new(1.0), 0.1);
        assert_eq!(v.query(10), None);
        assert_eq!(v.average(10), None);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn rejects_values_whose_square_overflows() {
        let mut v = DecayedVariance::ceh(Polynomial::new(1.0), 0.1);
        v.observe(1, u64::MAX);
    }
}
