//! Time-decaying `L_p` norms (paper §7.1).

use std::collections::VecDeque;

use td_decay::storage::{
    bits_for_count, bits_for_quantized_float, bits_for_timestamp, StorageAccounting,
};
use td_decay::{DecayFunction, Time};
use td_sketch::StableSketcher;

/// One bucket of the vector histogram: the `L`-dimensional sketch of
/// all updates that arrived in `[start, end]`, plus the update count
/// that drives the domination merge rule.
#[derive(Debug, Clone)]
struct VecBucket {
    start: Time,
    end: Time,
    updates: u64,
    acc: Vec<f64>,
}

/// The time-decaying `L_p` norm of a `d`-dimensional update vector
/// (paper §7.1).
///
/// Each data item increments coordinate `c_i` by `a_i`; the decayed
/// vector is `H_g(T)_j = Σ_{t_i<T, c_i=j} g(T−t_i)·a_i`, and this
/// structure estimates `‖H_g(T)‖_p` for a fixed `p ∈ (0, 2]` in `o(d)`
/// space.
///
/// Construction (exactly the paper's recipe):
///
/// 1. a seed-regenerated `L × d` p-stable matrix ([`StableSketcher`]) —
///    never materialized;
/// 2. every update folds `a_i × column(c_i)` into an `L`-vector;
/// 3. the `L`-vectors are held in exponential-histogram buckets merged
///    by the §4.1 domination rule (sketches are linear, so merging adds
///    accumulators);
/// 4. a query takes the `g(T − end)`-weighted sum of bucket vectors —
///    the sketch of the (bucket-granularity) decayed vector — and
///    applies Indyk's median estimator.
///
/// Errors compose: `(1±ε_time)` from bucketing times
/// `(1±O(1/√L))` from the sketch.
///
/// # Examples
///
/// ```
/// use td_aggregates::DecayedLpNorm;
/// use td_decay::SlidingWindow;
/// let mut n = DecayedLpNorm::new(SlidingWindow::new(100), 1.0, 0.1, 201, 7);
/// n.observe(1, 3, 5); // coordinate 3 += 5
/// n.observe(2, 9, 5); // coordinate 9 += 5
/// let est = n.query(3);
/// assert!((est - 10.0).abs() / 10.0 < 0.5); // ‖(…,5,…,5,…)‖₁ = 10
/// ```
#[derive(Debug, Clone)]
pub struct DecayedLpNorm<G> {
    decay: G,
    sketcher: StableSketcher,
    epsilon: f64,
    window: Option<Time>,
    buckets: VecDeque<VecBucket>,
    live_updates: u64,
    last_t: Time,
    started: bool,
    inserts_since_merge: usize,
}

impl<G: DecayFunction> DecayedLpNorm<G> {
    /// A decayed `L_p` norm estimator.
    ///
    /// * `p` — the norm exponent, in `(0, 2]` (the paper treats
    ///   `p ∈ [1, 2]`; the CMS generator is valid down to 0).
    /// * `epsilon` — the time-bucketing accuracy (per §4.1).
    /// * `rows` — the sketch width `L`; the estimator's own standard
    ///   error is `Θ(1/√L)`. Use an odd number (clean median).
    /// * `seed` — the sketch seed.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0,2]`, `rows == 0`, or `epsilon ∉ (0,1]`.
    pub fn new(decay: G, p: f64, epsilon: f64, rows: usize, seed: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0,1], got {epsilon}"
        );
        let window = decay.horizon();
        Self {
            decay,
            sketcher: StableSketcher::new(p, rows, seed),
            epsilon,
            window,
            buckets: VecDeque::new(),
            live_updates: 0,
            last_t: 0,
            started: false,
            inserts_since_merge: 0,
        }
    }

    /// The norm exponent p.
    pub fn p(&self) -> f64 {
        self.sketcher.p()
    }

    /// Number of live buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    fn expire(&mut self, now: Time) {
        if let Some(w) = self.window {
            let cutoff = now.saturating_sub(w);
            while let Some(front) = self.buckets.front() {
                if front.end < cutoff {
                    self.live_updates -= front.updates;
                    self.buckets.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Domination merge on update counts (the §4.1 rule): adjacent
    /// buckets merge when their combined update count is at most an
    /// ε fraction of all newer updates. Sketch linearity makes the
    /// merge a vector addition.
    fn canonicalize(&mut self) {
        if self.buckets.len() < 2 {
            return;
        }
        let mut idx = self.buckets.len() - 1;
        let mut suffix: f64 = 0.0;
        while idx > 0 {
            let combined = self.buckets[idx - 1].updates + self.buckets[idx].updates;
            if (combined as f64) <= self.epsilon * suffix {
                let newer = self.buckets.remove(idx).expect("idx in range");
                let older = &mut self.buckets[idx - 1];
                older.end = newer.end;
                older.updates += newer.updates;
                for (a, b) in older.acc.iter_mut().zip(newer.acc.iter()) {
                    *a += b;
                }
                idx -= 1;
            } else {
                suffix += self.buckets[idx].updates as f64;
                idx -= 1;
            }
        }
    }

    /// Ingests an update: coordinate `coord` += `amount` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previous observation.
    pub fn observe(&mut self, t: Time, coord: u64, amount: u64) {
        if self.started {
            assert!(
                t >= self.last_t,
                "time went backwards: {t} < {}",
                self.last_t
            );
        }
        self.started = true;
        self.last_t = t;
        self.expire(t);
        if amount == 0 {
            return;
        }
        let rows = self.sketcher.rows();
        match self.buckets.back_mut() {
            Some(b) if b.start == t && b.end == t => {
                self.sketcher.accumulate(&mut b.acc, coord, amount as f64);
                b.updates += 1;
            }
            _ => {
                let mut acc = vec![0.0; rows];
                self.sketcher.accumulate(&mut acc, coord, amount as f64);
                self.buckets.push_back(VecBucket {
                    start: t,
                    end: t,
                    updates: 1,
                    acc,
                });
            }
        }
        self.live_updates += 1;
        self.inserts_since_merge += 1;
        if self.inserts_since_merge >= (self.buckets.len() / 4).max(8) {
            self.canonicalize();
            self.inserts_since_merge = 0;
        }
    }

    /// Merges another estimator's contents into this one (distributed
    /// sites over disjoint substreams). Sketches are linear, so bucket
    /// vectors add; bucket lists interleave by end time and
    /// re-canonicalize under the domination rule — giving the same
    /// `k·ε_time` time-bucketing bound as `DominationEh::merge_from`,
    /// with the sketch estimator unaffected.
    ///
    /// # Panics
    ///
    /// Panics if the two estimators differ in `p`, row count, seed
    /// configuration (checked via a probe entry), `epsilon`, or window.
    pub fn merge_from(&mut self, other: &DecayedLpNorm<G>) {
        assert_eq!(
            self.sketcher.rows(),
            other.sketcher.rows(),
            "row counts differ"
        );
        assert!(
            (self.sketcher.p() - other.sketcher.p()).abs() < f64::EPSILON,
            "norm exponents differ"
        );
        assert!(
            (self.sketcher.entry(0, 0) - other.sketcher.entry(0, 0)).abs() < f64::EPSILON
                && (self.sketcher.entry(0, 12345) - other.sketcher.entry(0, 12345)).abs()
                    < f64::EPSILON,
            "sketch seeds differ (linearity requires identical matrices)"
        );
        assert!(
            (self.epsilon - other.epsilon).abs() < f64::EPSILON,
            "epsilon differs"
        );
        assert_eq!(self.window, other.window, "expiry windows differ");
        let mut merged: Vec<VecBucket> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let mut a = self.buckets.iter().cloned().peekable();
        let mut b = other.buckets.iter().cloned().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.end <= y.end {
                        merged.push(a.next().expect("peeked"));
                    } else {
                        merged.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.by_ref());
                    break;
                }
                (None, Some(_)) => {
                    merged.extend(b.by_ref());
                    break;
                }
                (None, None) => break,
            }
        }
        self.buckets = merged.into();
        self.live_updates = self.live_updates.saturating_add(other.live_updates);
        self.last_t = self.last_t.max(other.last_t);
        self.started |= other.started;
        self.expire(self.last_t);
        self.canonicalize();
        self.inserts_since_merge = 0;
    }

    /// The decayed `L_p` norm estimate at time `t` (items at `t`
    /// excluded).
    pub fn query(&self, t: Time) -> f64 {
        let mut combined = vec![0.0; self.sketcher.rows()];
        for b in &self.buckets {
            if b.end >= t {
                continue;
            }
            let w = self.decay.weight(t - b.end);
            if w == 0.0 {
                continue;
            }
            for (c, a) in combined.iter_mut().zip(b.acc.iter()) {
                *c += w * a;
            }
        }
        if combined.iter().all(|&x| x == 0.0) {
            return 0.0;
        }
        self.sketcher.estimate(&combined)
    }
}

impl<G: DecayFunction> StorageAccounting for DecayedLpNorm<G> {
    fn storage_bits(&self) -> u64 {
        // Per bucket: a timestamp, an update count, and L quantized
        // floats (we charge a 24-bit mantissa — the estimator's own
        // Θ(1/√L) noise floor dwarfs finer precision).
        let span = self.last_t;
        self.buckets
            .iter()
            .map(|b| {
                bits_for_timestamp(span)
                    + bits_for_count(b.updates)
                    + self.sketcher.rows() as u64 * bits_for_quantized_float(24, 64)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use td_decay::{Exponential, Polynomial, SlidingWindow};

    fn exact_decayed_norm<G: DecayFunction>(
        g: &G,
        updates: &[(Time, u64, u64)],
        t: Time,
        p: f64,
    ) -> f64 {
        let mut h: HashMap<u64, f64> = HashMap::new();
        for &(ti, c, a) in updates {
            if ti < t {
                *h.entry(c).or_default() += g.weight(t - ti) * a as f64;
            }
        }
        h.values()
            .map(|v| v.abs().powf(p))
            .sum::<f64>()
            .powf(1.0 / p)
    }

    fn drive<G: DecayFunction + Clone>(g: G, p: f64, n: u64, seed: u64) -> (f64, f64) {
        let mut lp = DecayedLpNorm::new(g.clone(), p, 0.1, 401, seed);
        let mut updates = Vec::new();
        let mut x = seed | 1;
        for t in 1..=n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let coord = x % 500;
            let amount = 1 + (x >> 32) % 9;
            lp.observe(t, coord, amount);
            updates.push((t, coord, amount));
        }
        (lp.query(n + 1), exact_decayed_norm(&g, &updates, n + 1, p))
    }

    #[test]
    fn l1_norm_under_sliding_window() {
        let (est, truth) = drive(SlidingWindow::new(500), 1.0, 3_000, 2);
        assert!((est - truth).abs() / truth < 0.25, "{est} vs {truth}");
    }

    #[test]
    fn l2_norm_under_polynomial_decay() {
        let (est, truth) = drive(Polynomial::new(1.0), 2.0, 3_000, 3);
        assert!((est - truth).abs() / truth < 0.25, "{est} vs {truth}");
    }

    #[test]
    fn l1_5_norm_under_exponential_decay() {
        let (est, truth) = drive(Exponential::new(0.01), 1.5, 3_000, 4);
        assert!((est - truth).abs() / truth < 0.25, "{est} vs {truth}");
    }

    #[test]
    fn storage_is_sublinear_in_dimension_and_stream() {
        let mut lp = DecayedLpNorm::new(Polynomial::new(1.0), 1.0, 0.2, 31, 5);
        for t in 1..=20_000u64 {
            lp.observe(t, t % 10_000, 1);
        }
        // Far fewer buckets than updates, independent of d = 10_000.
        assert!(lp.num_buckets() < 600, "buckets={}", lp.num_buckets());
    }

    #[test]
    fn empty_norm_is_zero() {
        let lp = DecayedLpNorm::new(Polynomial::new(1.0), 1.0, 0.1, 11, 0);
        assert_eq!(lp.query(100), 0.0);
    }

    #[test]
    fn excludes_updates_at_query_time() {
        let mut lp = DecayedLpNorm::new(SlidingWindow::new(10), 1.0, 0.1, 11, 0);
        lp.observe(5, 1, 100);
        assert_eq!(lp.query(5), 0.0);
        assert!(lp.query(6) > 0.0);
    }

    #[test]
    fn merge_from_combines_sites() {
        let mk = || DecayedLpNorm::new(SlidingWindow::new(100_000), 1.0, 0.1, 201, 55);
        let mut site_a = mk();
        let mut site_b = mk();
        let mut whole = mk();
        let mut updates = Vec::new();
        let mut x = 909u64;
        for t in 1..=4_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let (coord, amt) = (x % 300, 1 + (x >> 32) % 5);
            updates.push((t, coord, amt));
            whole.observe(t, coord, amt);
            if x.is_multiple_of(2) {
                site_a.observe(t, coord, amt);
            } else {
                site_b.observe(t, coord, amt);
            }
        }
        site_a.merge_from(&site_b);
        let truth = exact_decayed_norm(&SlidingWindow::new(100_000), &updates, 4_001, 1.0);
        let merged_est = site_a.query(4_001);
        let whole_est = whole.query(4_001);
        assert!(
            (merged_est - truth).abs() / truth < 0.25,
            "{merged_est} vs {truth}"
        );
        // The merged and single-site estimates agree closely (identical
        // sketch matrices; only bucket granularity differs).
        assert!((merged_est - whole_est).abs() / whole_est < 0.1);
    }

    #[test]
    #[should_panic(expected = "sketch seeds differ")]
    fn merge_from_rejects_seed_mismatch() {
        let mut a = DecayedLpNorm::new(SlidingWindow::new(100), 1.0, 0.1, 11, 1);
        let b = DecayedLpNorm::new(SlidingWindow::new(100), 1.0, 0.1, 11, 2);
        a.merge_from(&b);
    }

    #[test]
    fn window_expiry_drops_old_mass() {
        let mut lp = DecayedLpNorm::new(SlidingWindow::new(100), 1.0, 0.1, 101, 9);
        lp.observe(1, 0, 1_000_000);
        for t in 2..=500u64 {
            lp.observe(t, t % 7, 1);
        }
        // The huge early update is far outside the window.
        let est = lp.query(501);
        assert!(est < 1_000.0, "est={est}");
    }
}
