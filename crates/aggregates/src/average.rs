//! The Decaying Average Problem (paper Problem 2.2).

use td_ceh::CascadedEh;
use td_decay::storage::StorageAccounting;
use td_decay::{DecayFunction, Time};
use td_wbmh::Wbmh;

use crate::count::DecayedCount;

/// The time-decaying average
/// `A_g(T) = Σ f_i·g(T−t_i) / Σ g(T−t_i)` (Problem 2.2, DAP).
///
/// As the paper observes (§2.2), the numerator is a decaying sum of the
/// value stream and the denominator is a decaying count of the stream
/// `(t_i, 1)`; both are maintained by any [`DecayedCount`] backend, and
/// an approximate average follows from the two approximate sums: with
/// both one-sided within `(1+ε)`, the ratio lies within
/// `[1/(1+ε), 1+ε]` of the true average.
///
/// The decaying average is the aggregate behind every application in
/// §1.1 — RED queue estimation, ATM holding times, gateway selection —
/// and is what the Figure 1 experiment rates links with.
///
/// # Examples
///
/// ```
/// use td_aggregates::DecayedAverage;
/// use td_decay::Polynomial;
/// let mut a = DecayedAverage::wbmh(Polynomial::new(1.0), 0.1, 1 << 20);
/// a.observe(1, 10);
/// a.observe(2, 20);
/// let avg = a.query(3).unwrap();
/// // truth: (10·g(2) + 20·g(1)) / (g(2) + g(1)) = 25/1.5
/// assert!((avg - 25.0 / 1.5).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DecayedAverage<B> {
    values: B,
    weights: B,
}

impl<G: DecayFunction + Clone> DecayedAverage<CascadedEh<G>> {
    /// A decayed average over cascaded-EH backends (any decay function).
    pub fn ceh(decay: G, epsilon: f64) -> Self {
        Self {
            values: CascadedEh::new(decay.clone(), epsilon),
            weights: CascadedEh::new(decay, epsilon),
        }
    }
}

impl<G: DecayFunction + Clone> DecayedAverage<Wbmh<G>> {
    /// A decayed average over WBMH backends (ratio-monotone decay).
    ///
    /// # Panics
    ///
    /// Panics if the decay is not ratio-monotone (see [`Wbmh::new`]).
    pub fn wbmh(decay: G, epsilon: f64, max_age: Time) -> Self {
        Self {
            values: Wbmh::new(decay.clone(), epsilon, max_age),
            weights: Wbmh::new(decay, epsilon, max_age),
        }
    }
}

impl<B: DecayedCount> DecayedAverage<B> {
    /// Builds an average from two explicit backends (the `values`
    /// backend receives `(t, f)`, the `weights` backend `(t, 1)`).
    pub fn from_backends(values: B, weights: B) -> Self {
        Self { values, weights }
    }

    /// Ingests an item of value `f` at time `t`.
    pub fn observe(&mut self, t: Time, f: u64) {
        self.values.observe(t, f);
        self.weights.observe(t, 1);
    }

    /// The decayed-average estimate, or `None` when no item carries
    /// positive weight yet.
    pub fn query(&self, t: Time) -> Option<f64> {
        let den = self.weights.query(t);
        if den <= 0.0 {
            return None;
        }
        Some(self.values.query(t) / den)
    }

    /// The numerator (decayed value sum) estimate.
    pub fn value_sum(&self, t: Time) -> f64 {
        self.values.query(t)
    }

    /// The denominator (decayed weight total) estimate.
    pub fn weight_total(&self, t: Time) -> f64 {
        self.weights.query(t)
    }
}

impl<B: crate::count::MergeableCount> DecayedAverage<B> {
    /// Merges another average's state (distributed sites over disjoint
    /// substreams). Error composition follows the backend's
    /// `merge_from`.
    pub fn merge_from(&mut self, other: &DecayedAverage<B>) {
        self.values.merge_counts(&other.values);
        self.weights.merge_counts(&other.weights);
    }
}

impl<B: StorageAccounting> StorageAccounting for DecayedAverage<B> {
    fn storage_bits(&self) -> u64 {
        self.values.storage_bits() + self.weights.storage_bits()
    }
}

/// The unified-aggregate view: `query` returns the average (or `0.0`
/// before any item carries weight — use [`DecayedAverage::query`] to
/// distinguish the empty case).
impl<B: td_decay::StreamAggregate> td_decay::StreamAggregate for DecayedAverage<B> {
    fn observe(&mut self, t: Time, f: u64) {
        self.values.observe(t, f);
        self.weights.observe(t, 1);
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        self.values.observe_batch(items);
        // The denominator stream replaces every value with 1 (one unit
        // of decayed weight per item), so batch it through a mapped
        // scratch vector.
        let unit: Vec<(Time, u64)> = items.iter().map(|&(t, _)| (t, 1)).collect();
        self.weights.observe_batch(&unit);
    }
    fn batched_ingest_amortizes(&self) -> bool {
        // The mapped scratch vector only pays off when the component
        // backends amortize; otherwise per-item fan-out is cheaper.
        self.values.batched_ingest_amortizes()
    }
    fn advance(&mut self, t: Time) {
        self.values.advance(t);
        self.weights.advance(t);
    }
    fn query(&self, t: Time) -> f64 {
        let den = self.weights.query(t);
        if den <= 0.0 {
            return 0.0;
        }
        self.values.query(t) / den
    }
    fn merge_from(&mut self, other: &Self) {
        self.values.merge_from(&other.values);
        self.weights.merge_from(&other.weights);
    }
    fn error_bound(&self) -> td_decay::ErrorBound {
        // A ratio of two estimates: the worst over-estimate divides the
        // numerator's high side by the denominator's low side, and vice
        // versa.
        let num = self.values.error_bound();
        let den = self.weights.error_bound();
        if !num.is_bounded() || !den.is_bounded() || den.lower >= 1.0 {
            return td_decay::ErrorBound::unbounded();
        }
        td_decay::ErrorBound {
            lower: 1.0 - (1.0 - num.lower) / (1.0 + den.upper),
            upper: (1.0 + num.upper) / (1.0 - den.lower) - 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_counters::ExactDecayedSum;
    use td_decay::{Exponential, Polynomial, SlidingWindow};

    fn exact_average<G: DecayFunction + Clone>(
        g: G,
        items: &[(Time, u64)],
        t: Time,
    ) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for &(ti, f) in items {
            if ti < t {
                let w = g.weight(t - ti);
                num += f as f64 * w;
                den += w;
            }
        }
        (den > 0.0).then_some(num / den)
    }

    #[test]
    fn sliding_window_average_is_plain_mean() {
        let g = SlidingWindow::new(10);
        let mut a = DecayedAverage::ceh(g, 0.1);
        for t in 1..=100u64 {
            a.observe(t, t); // value = time
        }
        // Window at T=101 holds values 91..=100 → mean 95.5.
        let avg = a.query(101).unwrap();
        assert!((avg - 95.5).abs() <= 0.1 * 95.5, "avg={avg}");
    }

    #[test]
    fn polynomial_average_tracks_exact() {
        let g = Polynomial::new(1.0);
        let mut a = DecayedAverage::wbmh(g, 0.1, 1 << 20);
        let mut items = Vec::new();
        let mut x = 17u64;
        for t in 1..=3_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = x % 100;
            a.observe(t, f);
            items.push((t, f));
        }
        let got = a.query(3_001).unwrap();
        let want = exact_average(g, &items, 3_001).unwrap();
        // Ratio of two one-sided (1+ε) estimates.
        assert!(
            got <= want * 1.1 + 1e-9 && got >= want / 1.1 - 1e-9,
            "{got} vs {want}"
        );
    }

    #[test]
    fn average_shifts_toward_recent_values() {
        // Values switch from 10 to 90 halfway: a decayed average must
        // land closer to 90.
        let g = Polynomial::new(2.0);
        let mut a = DecayedAverage::wbmh(g, 0.1, 1 << 20);
        for t in 1..=1000u64 {
            a.observe(t, if t <= 500 { 10 } else { 90 });
        }
        let avg = a.query(1001).unwrap();
        assert!(avg > 80.0, "avg={avg}");
    }

    #[test]
    fn from_backends_with_exact() {
        let g = Exponential::new(0.1);
        let mut a = DecayedAverage::from_backends(ExactDecayedSum::new(g), ExactDecayedSum::new(g));
        a.observe(1, 4);
        a.observe(2, 8);
        let want = (4.0 * g.weight(2) + 8.0 * g.weight(1)) / (g.weight(2) + g.weight(1));
        assert!((a.query(3).unwrap() - want).abs() < 1e-12);
    }

    #[test]
    fn merge_from_combines_sites() {
        let g = Polynomial::new(1.0);
        let mut whole = DecayedAverage::ceh(g, 0.05);
        let mut a = DecayedAverage::ceh(g, 0.05);
        let mut b = DecayedAverage::ceh(g, 0.05);
        for t in 1..=2_000u64 {
            let f = 10 + t % 30;
            whole.observe(t, f);
            if t % 2 == 0 {
                a.observe(t, f);
            } else {
                b.observe(t, f);
            }
        }
        a.merge_from(&b);
        let (m, w) = (a.query(2_001).unwrap(), whole.query(2_001).unwrap());
        assert!((m - w).abs() <= 0.2 * w, "{m} vs {w}");
    }

    #[test]
    fn empty_average_is_none() {
        let a = DecayedAverage::ceh(Polynomial::new(1.0), 0.1);
        assert_eq!(a.query(5), None);
    }
}
