//! Time-decaying random selection (paper §7.2).

use rand::Rng;

use td_ceh::CascadedEh;
use td_decay::storage::StorageAccounting;
use td_decay::{DecayFunction, Time};
use td_sketch::MvdList;

/// Time-decaying random selection: returns item `i` with probability
/// (approximately) `g(T − t_i) / Σ_j g(T − t_j)` (paper §7.2).
///
/// The construction follows Cohen–Kaplan \[5\] as the paper sketches it:
///
/// 1. an [`MvdList`] retains the suffix-minima of a uniform rank stream,
///    so for every window `w` the retained minimum-rank entry is a
///    *uniform* selection from the window;
/// 2. a decay function is a mixture of window indicators:
///    `g(a) = Σ_{w >= a} (g(w) − g(w+1))`, so sampling a window `w`
///    with probability ∝ `(g(w) − g(w+1)) · c_w` (where `c_w` is the
///    window's item count) and then selecting uniformly inside it gives
///    the exact `g`-weighted item distribution — the `c_w` cancels;
/// 3. the window counts `ĉ_w` come from a cascaded EH (Lemma 4.1), so
///    the selection probabilities are approximate; the paper's footnote
///    4 notes plain EHs are biased (this is measured, not hidden —
///    experiment E9 audits the total-variation gap).
///
/// The mixture over windows collapses to one term per retained MV/D
/// entry: entry `e_j` (oldest-first) is the selection for exactly the
/// windows `w ∈ [T − t_{e_j}, T − t_{e_{j−1}} − 1]`, so a sample costs
/// `O(log n · log N)` — no pass over the stream.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use td_aggregates::DecayedSampler;
/// use td_decay::Polynomial;
/// let mut s = DecayedSampler::new(Polynomial::new(1.0), 0.1, 42);
/// for t in 1..=100u64 {
///     s.observe(t, t);
/// }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let picked = s.sample(101, &mut rng).unwrap();
/// assert!(picked >= 1 && picked <= 100);
/// ```
#[derive(Debug, Clone)]
pub struct DecayedSampler<G, V> {
    decay: G,
    mvd: MvdList<V>,
    counts: CascadedEh<G>,
}

impl<G: DecayFunction + Clone, V: Clone> DecayedSampler<G, V> {
    /// A sampler under `decay`, with window counts tracked at accuracy
    /// `epsilon` and rank stream seeded by `seed`.
    pub fn new(decay: G, epsilon: f64, seed: u64) -> Self {
        Self {
            counts: CascadedEh::new(decay.clone(), epsilon),
            decay,
            mvd: MvdList::with_seed(seed),
        }
    }

    /// Ingests an item with payload `value` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previous observation.
    pub fn observe(&mut self, t: Time, value: V) {
        self.mvd.observe(t, value);
        self.counts.observe(t, 1);
        if let Some(h) = self.decay.horizon() {
            self.mvd.expire_before(t.saturating_sub(h));
        }
    }

    /// Number of retained MV/D entries.
    pub fn retained(&self) -> usize {
        self.mvd.len()
    }

    /// Draws one `g`-weighted random selection at time `T` (`None` when
    /// nothing with positive weight is retained).
    pub fn sample<R: Rng + ?Sized>(&self, t: Time, rng: &mut R) -> Option<V> {
        let weights = self.entry_weights(t);
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        let mut coin = rng.random::<f64>() * total;
        for &(idx, w) in &weights {
            coin -= w;
            if coin <= 0.0 {
                return self.mvd.entries().nth(idx).map(|e| e.value.clone());
            }
        }
        // Floating-point slack: fall back to the last positive entry.
        weights
            .iter()
            .rev()
            .find(|&&(_, w)| w > 0.0)
            .and_then(|&(idx, _)| self.mvd.entries().nth(idx))
            .map(|e| e.value.clone())
    }

    /// The unnormalized selection weight of each retained entry at time
    /// `T`: `W_j = Σ_{w ∈ range_j} (g(w) − g(w+1)) · ĉ_w`, with `ĉ_w`
    /// piecewise-constant between histogram-bucket ages.
    fn entry_weights(&self, t: Time) -> Vec<(usize, f64)> {
        // Bucket age breakpoints with cumulative (suffix) counts:
        // ĉ_w = Σ counts of buckets whose end-age <= w.
        let buckets = self.counts.sketch().buckets();
        // (age at which this bucket enters the window, its count),
        // sorted by increasing age = newest bucket first.
        let mut jumps: Vec<(Time, f64)> = buckets
            .iter()
            .rev()
            .filter(|b| b.end < t)
            .map(|b| (t - b.end, b.count as f64))
            .collect();
        if jumps.is_empty() {
            return Vec::new();
        }
        // Cumulative counts: after age jumps[i].0, the window holds
        // cum[i] items.
        let mut cum = 0.0;
        for j in jumps.iter_mut() {
            cum += j.1;
            j.1 = cum;
        }
        // ĉ(w): the count for window w.
        let c_of = |w: Time| -> f64 {
            // Largest jump age <= w.
            match jumps.binary_search_by(|&(a, _)| a.cmp(&w)) {
                Ok(i) => jumps[i].1,
                Err(0) => 0.0,
                Err(i) => jumps[i - 1].1,
            }
        };
        // Mass of windows [u, v] (v = None → unbounded) given
        // piecewise-constant ĉ: Σ_w (g(w) − g(w+1))·ĉ_w, split at the
        // jump ages. The unbounded upper end folds in the "window = ∞"
        // atom of the mixture (weight lim g per item), so the telescoped
        // tail is simply ĉ·g(x) with nothing subtracted — this keeps
        // constant and slowly-vanishing decays exact.
        let mass = |u: Time, v: Option<Time>| -> f64 {
            if let Some(v) = v {
                if u > v {
                    return 0.0;
                }
            }
            let mut total = 0.0;
            let mut x = u;
            // Jump ages strictly inside (u, v] split the range.
            let start_idx = jumps.partition_point(|&(a, _)| a <= u);
            for &(a, _) in &jumps[start_idx..] {
                if v.is_some_and(|v| a > v) {
                    break;
                }
                // Piece [x, a − 1] has constant count c_of(x).
                if a > x {
                    total += c_of(x) * (self.decay.weight(x) - self.decay.weight(a));
                }
                x = a;
            }
            let upper = match v {
                Some(v) => self.decay.weight(v + 1),
                None => 0.0,
            };
            total += c_of(x) * (self.decay.weight(x) - upper);
            total
        };
        let entries: Vec<Time> = self
            .mvd
            .entries()
            .filter(|e| e.t < t)
            .map(|e| e.t)
            .collect();
        let mut out = Vec::with_capacity(entries.len());
        for (j, &tj) in entries.iter().enumerate() {
            let lo = t - tj; // smallest window containing e_j
            let hi = if j == 0 {
                None // the oldest entry serves all larger windows
            } else {
                Some(t - entries[j - 1] - 1) // up to just excluding e_{j−1}
            };
            out.push((j, mass(lo, hi)));
        }
        out
    }
}

impl<G: DecayFunction, V> StorageAccounting for DecayedSampler<G, V> {
    fn storage_bits(&self) -> u64 {
        self.mvd.storage_bits() + self.counts.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use td_decay::{Polynomial, SlidingWindow};

    /// Empirical selection frequencies vs the target g-weights, averaged
    /// over independent rank streams (both randomness sources matter).
    fn audit_distribution<G: DecayFunction + Clone>(g: G, n: u64, tol_tv: f64) {
        let t_query = n + 1;
        let trials = 3_000u64;
        let mut hits = vec![0u32; n as usize + 1];
        for seed in 0..trials {
            let mut s: DecayedSampler<G, u64> = DecayedSampler::new(g.clone(), 0.05, seed);
            for t in 1..=n {
                s.observe(t, t);
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let v = s.sample(t_query, &mut rng).expect("non-empty");
            hits[v as usize] += 1;
        }
        // Target distribution.
        let weights: Vec<f64> = (1..=n).map(|t| g.weight(t_query - t)).collect();
        let z: f64 = weights.iter().sum();
        // Total variation distance.
        let mut tv = 0.0;
        for t in 1..=n as usize {
            let p_emp = hits[t] as f64 / trials as f64;
            let p_true = weights[t - 1] / z;
            tv += (p_emp - p_true).abs();
        }
        tv /= 2.0;
        assert!(tv < tol_tv, "total variation {tv} exceeds {tol_tv}");
    }

    #[test]
    fn polynomial_selection_matches_weights() {
        audit_distribution(Polynomial::new(1.0), 60, 0.12);
    }

    #[test]
    fn sliding_window_selection_is_uniform_inside() {
        audit_distribution(SlidingWindow::new(30), 60, 0.12);
    }

    #[test]
    fn sample_returns_recent_more_often_under_steep_decay() {
        let g = Polynomial::new(3.0);
        let mut recent = 0u32;
        let trials = 500;
        for seed in 0..trials {
            let mut s: DecayedSampler<_, u64> = DecayedSampler::new(g, 0.1, seed);
            for t in 1..=200u64 {
                s.observe(t, t);
            }
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
            if s.sample(201, &mut rng).unwrap() > 190 {
                recent += 1;
            }
        }
        // Under 1/x³ decay, the last 10 items carry the overwhelming
        // majority of the weight.
        assert!(
            u64::from(recent) > trials * 3 / 5,
            "recent={recent}/{trials}"
        );
    }

    #[test]
    fn horizon_expires_candidates() {
        let mut s: DecayedSampler<_, u64> = DecayedSampler::new(SlidingWindow::new(50), 0.1, 1);
        for t in 1..=1_000u64 {
            s.observe(t, t);
        }
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let v = s.sample(1_001, &mut rng).unwrap();
            assert!(v >= 951, "picked expired item {v}");
        }
        assert!(s.retained() < 60);
    }

    #[test]
    fn empty_sampler_yields_none() {
        let s: DecayedSampler<_, u64> = DecayedSampler::new(Polynomial::new(1.0), 0.1, 0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(s.sample(10, &mut rng), None);
    }
}
