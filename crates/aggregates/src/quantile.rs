//! Time-decaying approximate quantiles (paper §7.2).

use rand::Rng;

use td_decay::storage::StorageAccounting;
use td_decay::{DecayFunction, Time};

use crate::select::DecayedSampler;

/// A time-decaying approximate `p`-quantile: an item that, with high
/// probability, is a `[p ± ε]`-quantile of the value distribution
/// weighted by `g(T − t_i)` (paper §7.2).
///
/// Uses the folklore technique the paper cites: run `R` *independent*
/// decayed random selections (independent rank streams), and report the
/// `p`-quantile of the sampled values. By a Chernoff bound,
/// `R = O(ε⁻² log(1/δ))` repetitions put the reported item inside the
/// `[p − ε, p + ε]` band with probability `1 − δ`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use td_aggregates::DecayedQuantile;
/// use td_decay::SlidingWindow;
/// let mut q = DecayedQuantile::new(SlidingWindow::new(100), 0.1, 101, 1);
/// for t in 1..=100u64 {
///     q.observe(t, t); // values 1..=100 in the window
/// }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let med = q.query(101, 0.5, &mut rng).unwrap();
/// assert!(med > 25 && med < 75);
/// ```
#[derive(Debug, Clone)]
pub struct DecayedQuantile<G, V> {
    samplers: Vec<DecayedSampler<G, V>>,
}

impl<G: DecayFunction + Clone, V: Clone + PartialOrd> DecayedQuantile<G, V> {
    /// A quantile summary backed by `repetitions` independent samplers
    /// (rank streams seeded from `seed`, `seed + 1`, ...).
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn new(decay: G, epsilon: f64, repetitions: usize, seed: u64) -> Self {
        assert!(repetitions > 0, "need at least one sampler");
        Self {
            samplers: (0..repetitions)
                .map(|i| DecayedSampler::new(decay.clone(), epsilon, seed + i as u64))
                .collect(),
        }
    }

    /// The number of independent samplers R.
    pub fn repetitions(&self) -> usize {
        self.samplers.len()
    }

    /// Ingests an item with payload `value` at time `t`.
    pub fn observe(&mut self, t: Time, value: V) {
        for s in &mut self.samplers {
            s.observe(t, value.clone());
        }
    }

    /// The approximate `p`-quantile (`p ∈ [0, 1]`) of the decayed value
    /// distribution at time `T`, or `None` when nothing carries weight.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn query<R: Rng + ?Sized>(&self, t: Time, p: f64, rng: &mut R) -> Option<V> {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile must be in [0,1], got {p}"
        );
        let mut samples: Vec<V> = self
            .samplers
            .iter()
            .filter_map(|s| s.sample(t, rng))
            .collect();
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("values must be totally ordered"));
        let idx = ((samples.len() - 1) as f64 * p).round() as usize;
        samples.into_iter().nth(idx)
    }

    /// The approximate decayed median.
    pub fn median<R: Rng + ?Sized>(&self, t: Time, rng: &mut R) -> Option<V> {
        self.query(t, 0.5, rng)
    }
}

impl<G: DecayFunction, V> StorageAccounting for DecayedQuantile<G, V> {
    fn storage_bits(&self) -> u64 {
        self.samplers.iter().map(|s| s.storage_bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use td_decay::{Polynomial, SlidingWindow};

    #[test]
    fn window_median_of_uniform_values() {
        let mut q = DecayedQuantile::new(SlidingWindow::new(200), 0.1, 151, 9);
        for t in 1..=200u64 {
            q.observe(t, t);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let med = q.median(201, &mut rng).unwrap();
        // True median 100; allow the ±ε·n band for R = 151.
        assert!((med as i64 - 100).unsigned_abs() < 40, "med={med}");
    }

    #[test]
    fn quantile_edges() {
        let mut q = DecayedQuantile::new(SlidingWindow::new(100), 0.1, 51, 2);
        for t in 1..=100u64 {
            q.observe(t, t);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let lo = q.query(101, 0.0, &mut rng).unwrap();
        let hi = q.query(101, 1.0, &mut rng).unwrap();
        assert!(lo <= hi);
        assert!(lo <= 40, "lo={lo}");
        assert!(hi >= 60, "hi={hi}");
    }

    #[test]
    fn decayed_median_tracks_recent_distribution_shift() {
        // Values jump from ~10 to ~1000 at t = 500: a steep decay's
        // median must follow the new regime.
        let g = Polynomial::new(3.0);
        let mut q = DecayedQuantile::new(g, 0.1, 75, 4);
        for t in 1..=1_000u64 {
            q.observe(t, if t <= 500 { 10 + t % 5 } else { 1_000 + t % 5 });
        }
        let mut rng = StdRng::seed_from_u64(5);
        let med = q.median(1_001, &mut rng).unwrap();
        assert!(med >= 1_000, "med={med}");
    }

    #[test]
    fn empty_quantile_is_none() {
        let q: DecayedQuantile<_, u64> = DecayedQuantile::new(Polynomial::new(1.0), 0.1, 5, 0);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(q.query(10, 0.5, &mut rng), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_out_of_range_p() {
        let q: DecayedQuantile<_, u64> = DecayedQuantile::new(Polynomial::new(1.0), 0.1, 5, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = q.query(10, 1.5, &mut rng);
    }
}
