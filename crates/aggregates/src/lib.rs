//! Time-decaying aggregates beyond the plain sum (paper §2.2 and §7).
//!
//! Everything here composes the histogram substrates (`td-eh`, `td-ceh`,
//! `td-wbmh`) and randomized substrates (`td-sketch`) into the
//! user-level aggregates the paper formulates:
//!
//! * [`count::DecayedCount`] — the common backend trait, implemented by
//!   all three summation substrates and the exact baseline;
//! * [`average::DecayedAverage`] — Problem 2.2 (DAP), the ratio of a
//!   decayed value sum to a decayed weight total;
//! * [`variance::DecayedVariance`] — §7.3, via the three-sums reduction
//!   `V = Σgf² − (Σgf)²/Σg` (with the cancellation regime documented
//!   and measured rather than hidden);
//! * [`lp::DecayedLpNorm`] — §7.1: Indyk stable sketches cascaded
//!   through an exponential-histogram bucket structure, giving decayed
//!   `L_p` norms of an update vector for any decay function;
//! * [`select::DecayedSampler`] — §7.2: time-decayed random selection
//!   via an MV/D list plus the window-mixture reduction;
//! * [`quantile::DecayedQuantile`] — §7.2: approximate decayed
//!   quantiles by repeated independent selection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod average;
pub mod count;
pub mod lp;
pub mod quantile;
pub mod select;
pub mod variance;

pub use average::DecayedAverage;
pub use count::{DecayedCount, MergeableCount};
pub use lp::DecayedLpNorm;
pub use quantile::DecayedQuantile;
pub use select::DecayedSampler;
pub use variance::DecayedVariance;
