//! The common decayed-count backend trait.

use td_counters::{ExactDecayedSum, ExpCounter};
use td_decay::{DecayFunction, Time};
use td_eh::WindowSketch;
use td_wbmh::Wbmh;

/// Anything that maintains a decaying sum `S_g(T)` of a `u64`-valued
/// stream — the substrate interface the composite aggregates (average,
/// variance, selection) are built over.
///
/// Implementations in this workspace: [`td_ceh::CascadedEh`] (any
/// decay), [`td_wbmh::Wbmh`] (ratio-monotone decay),
/// [`td_counters::ExpCounter`] (exponential decay), and
/// [`td_counters::ExactDecayedSum`] (the baseline).
pub trait DecayedCount {
    /// Ingests an item of value `f` at time `t` (non-decreasing `t`).
    fn observe(&mut self, t: Time, f: u64);

    /// The decaying-sum estimate `S'_g(T)` over items strictly before
    /// `t` (§2.1 convention).
    fn query(&self, t: Time) -> f64;
}

/// A [`DecayedCount`] that also supports the distributed-streams merge
/// (union of two disjoint substreams' summaries).
pub trait MergeableCount: DecayedCount {
    /// Merges `other`'s state into `self`; see each backend's
    /// `merge_from` for its error composition.
    fn merge_counts(&mut self, other: &Self);
}

impl<G: DecayFunction> MergeableCount for td_ceh::CascadedEh<G> {
    fn merge_counts(&mut self, other: &Self) {
        self.merge_from(other);
    }
}

impl<G: DecayFunction> MergeableCount for Wbmh<G> {
    fn merge_counts(&mut self, other: &Self) {
        self.merge_from(other);
    }
}

impl MergeableCount for ExpCounter {
    fn merge_counts(&mut self, other: &Self) {
        self.merge_from(other);
    }
}

impl<G: DecayFunction> MergeableCount for ExactDecayedSum<G> {
    fn merge_counts(&mut self, other: &Self) {
        self.merge_from(other);
    }
}

impl<G: DecayFunction, S: WindowSketch> DecayedCount for td_ceh::CascadedEh<G, S> {
    fn observe(&mut self, t: Time, f: u64) {
        td_ceh::CascadedEh::observe(self, t, f);
    }
    fn query(&self, t: Time) -> f64 {
        td_ceh::CascadedEh::query(self, t)
    }
}

impl<G: DecayFunction> DecayedCount for Wbmh<G> {
    fn observe(&mut self, t: Time, f: u64) {
        Wbmh::observe(self, t, f);
    }
    fn query(&self, t: Time) -> f64 {
        Wbmh::query(self, t)
    }
}

impl DecayedCount for ExpCounter {
    fn observe(&mut self, t: Time, f: u64) {
        ExpCounter::observe(self, t, f);
    }
    fn query(&self, t: Time) -> f64 {
        ExpCounter::query(self, t)
    }
}

impl<G: DecayFunction> DecayedCount for ExactDecayedSum<G> {
    fn observe(&mut self, t: Time, f: u64) {
        ExactDecayedSum::observe(self, t, f);
    }
    fn query(&self, t: Time) -> f64 {
        ExactDecayedSum::query(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_ceh::CascadedEh;
    use td_decay::{Exponential, Polynomial};

    /// All four backends agree (within their bands) on the same stream.
    #[test]
    fn backends_agree_on_exponential_decay() {
        let lam = 0.05;
        let g = Exponential::new(lam);
        let mut backends: Vec<Box<dyn DecayedCount>> = vec![
            Box::new(ExactDecayedSum::new(g)),
            Box::new(ExpCounter::new(g)),
            Box::new(CascadedEh::new(g, 0.05)),
            Box::new(Wbmh::new(g, 0.05, 1 << 14)),
        ];
        for t in 1..=2_000u64 {
            let f = 1 + t % 3;
            for b in backends.iter_mut() {
                b.observe(t, f);
            }
        }
        let truth = backends[0].query(2_001);
        for (i, b) in backends.iter().enumerate().skip(1) {
            let est = b.query(2_001);
            assert!(
                (est - truth).abs() <= 0.06 * truth + 1e-9,
                "backend {i}: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn trait_objects_are_usable_for_polynomial() {
        let g = Polynomial::new(1.0);
        let mut b: Box<dyn DecayedCount> = Box::new(Wbmh::new(g, 0.1, 1 << 20));
        b.observe(1, 5);
        assert!(b.query(2) > 0.0);
    }
}
